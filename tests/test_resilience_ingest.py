"""Tests for the hardened ingest front-end (quarantine/dedup/re-sort)."""

import pytest

from repro.errors import ConfigError, IngestError
from repro.resilience import HardenedIngestor, IngestConfig
from repro.simlog.record import render_line


@pytest.fixture
def lines(small_log):
    return [render_line(r) for r in small_log.records[:1000]]


def _conserved(stats):
    return stats.lines_seen == (
        stats.records_out
        + stats.quarantined
        + stats.duplicates_dropped
        + stats.blank_skipped
    )


class TestIngestConfig:
    def test_defaults_valid(self):
        cfg = IngestConfig()
        assert 0.0 < cfg.max_bad_ratio < 1.0

    def test_rejects_bad_ratio(self):
        with pytest.raises(ConfigError):
            IngestConfig(max_bad_ratio=1.5)

    def test_rejects_negative_windows(self):
        with pytest.raises(ConfigError):
            IngestConfig(dedup_window=-1)
        with pytest.raises(ConfigError):
            IngestConfig(min_lines_for_budget=0)


class TestCleanStream:
    def test_clean_lines_pass_through(self, lines, small_log):
        ingestor = HardenedIngestor()
        records = list(ingestor.ingest_lines(lines))
        assert records == list(small_log.records[:1000])
        assert ingestor.stats.records_out == 1000
        assert ingestor.stats.quarantined == 0
        assert _conserved(ingestor.stats)

    def test_blank_lines_counted_not_quarantined(self, lines):
        ingestor = HardenedIngestor()
        noisy = lines[:10] + ["", "   ", "\t"] + lines[10:20]
        records = list(ingestor.ingest_lines(noisy))
        assert len(records) == 20
        assert ingestor.stats.blank_skipped == 3
        assert ingestor.stats.quarantined == 0
        assert _conserved(ingestor.stats)


class TestQuarantine:
    def test_bad_lines_quarantined_with_reason(self, lines):
        ingestor = HardenedIngestor()
        noisy = lines[:50] + ["total garbage $$$"] + lines[50:100]
        records = list(ingestor.ingest_lines(noisy))
        assert len(records) == 100
        assert ingestor.stats.quarantined == 1
        (letter,) = ingestor.dead_letters
        assert letter.line == "total garbage $$$"
        assert letter.reason
        assert _conserved(ingestor.stats)

    def test_dead_letter_cap_bounds_memory(self, lines):
        cfg = IngestConfig(dead_letter_cap=5, max_bad_ratio=1.0)
        ingestor = HardenedIngestor(cfg)
        noisy = [f"garbage {i}" for i in range(50)] + lines[:50]
        list(ingestor.ingest_lines(noisy))
        assert ingestor.stats.quarantined == 50  # all counted...
        assert len(ingestor.dead_letters) == 5  # ...but only 5 kept

    def test_long_bad_line_clipped(self):
        cfg = IngestConfig(max_bad_ratio=1.0)
        ingestor = HardenedIngestor(cfg)
        ingestor.accept_line("x" * 100_000)
        assert len(ingestor.dead_letters[0].line) <= 240

    def test_error_budget_raises_past_ratio(self, lines):
        cfg = IngestConfig(max_bad_ratio=0.10, min_lines_for_budget=100)
        ingestor = HardenedIngestor(cfg)
        # 80 good lines, then garbage until the budget trips.
        noisy = lines[:80] + [f"junk {i}" for i in range(40)]
        with pytest.raises(IngestError, match="error budget"):
            list(ingestor.ingest_lines(noisy))
        assert ingestor.stats.bad_ratio > 0.10

    def test_budget_not_enforced_during_grace_period(self, lines):
        cfg = IngestConfig(max_bad_ratio=0.10, min_lines_for_budget=100)
        ingestor = HardenedIngestor(cfg)
        # One bad line among ten: 10% > budget would trip, but the
        # stream is shorter than the grace period.
        noisy = ["bad line!"] + lines[:9]
        records = list(ingestor.ingest_lines(noisy))
        assert len(records) == 9


class TestDedup:
    def test_exact_duplicates_dropped_within_window(self, lines):
        ingestor = HardenedIngestor()
        doubled = [line for line in lines[:100] for _ in range(2)]
        records = list(ingestor.ingest_lines(doubled))
        assert len(records) == 100
        assert ingestor.stats.duplicates_dropped == 100
        assert _conserved(ingestor.stats)

    def test_duplicate_outside_window_passes(self, lines):
        cfg = IngestConfig(dedup_window=4)
        ingestor = HardenedIngestor(cfg)
        stream = [lines[0]] + lines[1:10] + [lines[0]]  # repeat far apart
        records = list(ingestor.ingest_lines(stream))
        assert len(records) == 11
        assert ingestor.stats.duplicates_dropped == 0

    def test_dedup_disabled_with_zero_window(self, lines):
        cfg = IngestConfig(dedup_window=0)
        ingestor = HardenedIngestor(cfg)
        records = list(ingestor.ingest_lines([lines[0], lines[0]]))
        assert len(records) == 2


class TestReordering:
    def test_mild_reordering_repaired(self, lines):
        # Swap adjacent pairs: displacement 1, well inside the window.
        swapped = list(lines)
        for i in range(0, len(swapped) - 1, 2):
            swapped[i], swapped[i + 1] = swapped[i + 1], swapped[i]
        ingestor = HardenedIngestor()
        records = list(ingestor.ingest_lines(swapped))
        times = [r.timestamp for r in records]
        assert times == sorted(times)
        assert ingestor.stats.resorted > 0

    def test_resort_disabled_with_zero_window(self, lines):
        swapped = [lines[1], lines[0]] + lines[2:10]
        cfg = IngestConfig(reorder_window=0)
        ingestor = HardenedIngestor(cfg)
        records = list(ingestor.ingest_lines(swapped))
        times = [r.timestamp for r in records]
        assert times != sorted(times)

    def test_conservation_holds_with_heap_drained(self, lines):
        ingestor = HardenedIngestor()
        noisy = lines[:300] + ["junk"] + lines[300:305] + ["", lines[300]]
        list(ingestor.ingest_lines(noisy))
        assert _conserved(ingestor.stats)


class TestIngestPath:
    def test_streams_from_file(self, lines, small_log, tmp_path):
        path = tmp_path / "feed.log"
        path.write_text("\n".join(lines[:100] + ["garbage!"]) + "\n")
        ingestor = HardenedIngestor()
        records = list(ingestor.ingest_path(path))
        assert records == list(small_log.records[:100])
        assert ingestor.stats.quarantined == 1

    def test_reset_clears_everything(self, lines):
        ingestor = HardenedIngestor()
        list(ingestor.ingest_lines(lines[:50] + ["junk"]))
        ingestor.reset()
        assert ingestor.stats.lines_seen == 0
        assert ingestor.dead_letters == []
        # dedup memory cleared: a line from the first feed passes again
        records = list(ingestor.ingest_lines(lines[:50]))
        assert len(records) == 50

    def test_stats_as_dict_has_bad_ratio(self, lines):
        ingestor = HardenedIngestor()
        list(ingestor.ingest_lines(lines[:10]))
        d = ingestor.stats.as_dict()
        assert d["lines_seen"] == 10
        assert d["bad_ratio"] == 0.0
