"""Tests for optimizers and gradient clipping."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.nn.optimizers import SGD, Adam, RMSprop, clip_gradients


def quadratic_descent(optimizer, start=5.0, steps=200):
    """Minimize f(x) = x^2 with the given optimizer; returns final |x|."""
    x = np.array([start])
    for _ in range(steps):
        g = 2.0 * x
        optimizer.step({"x": x}, {"x": g})
    return float(abs(x[0]))


class TestClipGradients:
    def test_small_gradients_untouched(self):
        g = {"a": np.array([0.3, 0.4])}
        norm = clip_gradients(g, max_norm=10.0)
        assert norm == pytest.approx(0.5)
        assert np.allclose(g["a"], [0.3, 0.4])

    def test_large_gradients_scaled_to_norm(self):
        g = {"a": np.array([30.0, 40.0])}
        clip_gradients(g, max_norm=5.0)
        total = np.sqrt(np.sum(g["a"] ** 2))
        assert total == pytest.approx(5.0, rel=1e-6)

    def test_direction_preserved(self):
        g = {"a": np.array([30.0, 40.0])}
        clip_gradients(g, max_norm=5.0)
        assert g["a"][1] / g["a"][0] == pytest.approx(40.0 / 30.0)

    def test_global_norm_across_arrays(self):
        g = {"a": np.array([3.0]), "b": np.array([4.0])}
        assert clip_gradients(g, max_norm=100.0) == pytest.approx(5.0)

    def test_rejects_nonpositive_norm(self):
        with pytest.raises(ConfigError):
            clip_gradients({"a": np.ones(2)}, max_norm=0.0)


class TestSGD:
    def test_plain_step(self):
        x = np.array([1.0])
        SGD(0.1).step({"x": x}, {"x": np.array([2.0])})
        assert x[0] == pytest.approx(0.8)

    def test_momentum_accumulates(self):
        opt = SGD(0.1, momentum=0.9)
        x = np.array([0.0])
        g = {"x": np.array([1.0])}
        opt.step({"x": x}, g)
        first = x[0]
        opt.step({"x": x}, g)
        # Second step moves farther due to velocity.
        assert (x[0] - first) < first

    def test_converges_on_quadratic(self):
        assert quadratic_descent(SGD(0.1)) < 1e-6

    def test_momentum_converges(self):
        assert quadratic_descent(SGD(0.05, momentum=0.9)) < 1e-4

    def test_rejects_bad_momentum(self):
        with pytest.raises(ConfigError):
            SGD(0.1, momentum=1.0)

    def test_rejects_bad_lr(self):
        with pytest.raises(ConfigError):
            SGD(0.0)


class TestRMSprop:
    def test_converges_on_quadratic(self):
        # RMSprop's normalized steps stall near the lr scale; it reaches
        # the neighbourhood of the optimum, not machine precision.
        assert quadratic_descent(RMSprop(0.05), steps=600) < 0.1

    def test_adapts_per_parameter(self):
        """A dimension with huge gradients gets a smaller effective step."""
        opt = RMSprop(0.1)
        x = np.array([0.0, 0.0])
        for _ in range(3):
            opt.step({"x": x}, {"x": np.array([1000.0, 1.0])})
        # RMS normalization: both dims move at comparable magnitude.
        assert abs(x[0]) < 10 * abs(x[1])

    @pytest.mark.parametrize("kwargs", [{"rho": 0.0}, {"rho": 1.0}, {"eps": 0.0}])
    def test_rejects_bad_params(self, kwargs):
        with pytest.raises(ConfigError):
            RMSprop(0.01, **kwargs)


class TestAdam:
    def test_converges_on_quadratic(self):
        assert quadratic_descent(Adam(0.1), steps=400) < 1e-3

    def test_bias_correction_first_step(self):
        """First Adam step has magnitude ~lr regardless of gradient scale."""
        for scale in (1e-3, 1e3):
            opt = Adam(0.1)
            x = np.array([0.0])
            opt.step({"x": x}, {"x": np.array([scale])})
            assert abs(x[0]) == pytest.approx(0.1, rel=1e-3)

    @pytest.mark.parametrize("kwargs", [{"beta1": 1.0}, {"beta2": 0.0}, {"eps": -1}])
    def test_rejects_bad_params(self, kwargs):
        with pytest.raises(ConfigError):
            Adam(0.01, **kwargs)


class TestStepValidation:
    def test_key_mismatch_raises(self):
        with pytest.raises(ConfigError):
            SGD(0.1).step({"x": np.ones(2)}, {"y": np.ones(2)})

    def test_shape_mismatch_raises(self):
        with pytest.raises(ConfigError):
            SGD(0.1).step({"x": np.ones(2)}, {"x": np.ones(3)})

    def test_updates_in_place(self):
        x = np.ones(3)
        original = x
        SGD(0.1).step({"x": x}, {"x": np.ones(3)})
        assert x is original  # same array object, mutated in place
        assert not np.allclose(x, 1.0)
