"""Tests for failure-class attribution."""

import pytest

from repro.core.chains import Episode, FailureChain
from repro.core.classify import (
    FailureClassifier,
    classify_by_keywords,
    keyword_class_rules,
)
from repro.errors import NotFittedError, TrainingError
from repro.events import Label, ParsedEvent
from repro.simlog.faults import FailureClass
from repro.topology import CrayNodeId

NODE = CrayNodeId(0, 0, 0, 0, 0)


def chain_of(ids):
    events = []
    for i, pid in enumerate(ids):
        last = i == len(ids) - 1
        events.append(
            ParsedEvent(
                timestamp=float(i),
                phrase_id=pid,
                node=NODE,
                label=Label.ERROR if last else Label.UNKNOWN,
                terminal=last,
            )
        )
    return FailureChain(NODE, tuple(events))


class TestKeywordRules:
    def test_rules_cover_all_classes(self):
        assert set(keyword_class_rules()) == set(FailureClass)

    @pytest.mark.parametrize(
        "phrases,expected",
        [
            (["CPU 3: Machine Check Exception", "Kernel panic"], FailureClass.MCE),
            (["LustreError: operation failed", "DVS: Verify Filesystem"], FailureClass.FILESYSTEM),
            (["Slurm load partitions error", "Killed process 3"], FailureClass.JOB),
            (["aprun segfault at 0x3", "Trap invalid code"], FailureClass.TRAPS),
            (["Debug NMI detected", "node heartbeat fault"], FailureClass.HARDWARE),
            (["Kernel panic - not syncing", "Call Trace:", "Stack:"], FailureClass.PANIC),
        ],
    )
    def test_classifies_table7_examples(self, phrases, expected):
        assert classify_by_keywords(phrases) is expected

    def test_no_match_returns_none(self):
        assert classify_by_keywords(["nothing interesting here"]) is None

    def test_panic_downweighted(self):
        """A trap chain ending in a stack trace must stay Traps."""
        phrases = ["Trap invalid code 3", "segfault at 0x1", "Stack: 0x2"]
        assert classify_by_keywords(phrases) is FailureClass.TRAPS


class TestFailureClassifier:
    @pytest.fixture
    def fitted(self):
        chains = [chain_of([1, 2, 9]), chain_of([1, 2, 9]), chain_of([5, 6, 9])]
        labels = [FailureClass.MCE, FailureClass.MCE, FailureClass.PANIC]
        return FailureClassifier(12).fit(chains, labels)

    def test_classifies_training_pattern(self, fitted):
        assert fitted.classify(chain_of([1, 2, 9])) is FailureClass.MCE
        assert fitted.classify(chain_of([5, 6, 9])) is FailureClass.PANIC

    def test_classifies_episode(self, fitted):
        ep = Episode(
            NODE,
            (
                ParsedEvent(timestamp=0.0, phrase_id=1, node=NODE),
                ParsedEvent(timestamp=1.0, phrase_id=2, node=NODE),
            ),
        )
        assert fitted.classify(ep) is FailureClass.MCE

    def test_class_scores_sum_structure(self, fitted):
        scores = fitted.class_scores(chain_of([1, 2, 9]))
        assert set(scores) == set(FailureClass)
        assert scores[FailureClass.MCE] > scores[FailureClass.PANIC] - 1e-9

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            FailureClassifier(12).classify(chain_of([1, 2, 9]))

    def test_rejects_length_mismatch(self):
        with pytest.raises(TrainingError):
            FailureClassifier(12).fit([chain_of([1, 2, 9])], [])

    def test_rejects_empty(self):
        with pytest.raises(TrainingError):
            FailureClassifier(12).fit([], [])

    def test_fit_with_keywords_on_real_data(self, trained_model):
        """Bootstrapped class attribution works on real extracted chains."""
        vocab_texts = [
            trained_model.parser.vocab.text_of(i)
            for i in range(trained_model.num_phrases)
        ]
        clf = FailureClassifier(trained_model.num_phrases).fit_with_keywords(
            trained_model.phase1.chains, vocab_texts
        )
        # Every chain classifies into some class without error.
        classes = {clf.classify(c) for c in trained_model.phase1.chains}
        assert classes  # at least one class present
        assert all(isinstance(c, FailureClass) for c in classes)

    def test_keyword_bootstrap_agrees_with_ground_truth(
        self, trained_model, small_log
    ):
        """Keyword attribution matches the generator's class on most chains."""
        vocab = trained_model.parser.vocab
        gt = small_log.ground_truth
        total = hits = 0
        for chain in trained_model.phase1.chains:
            match = next(
                (
                    f
                    for f in gt.failures
                    if f.node == chain.node
                    and abs(f.terminal_time - chain.terminal_time) < 5.0
                ),
                None,
            )
            if match is None:
                continue
            phrases = [vocab.text_of(int(i)) for i in chain.phrase_ids()]
            predicted = classify_by_keywords(phrases)
            total += 1
            hits += predicted is match.failure_class
        assert total > 0
        assert hits / total >= 0.7, f"keyword attribution accuracy {hits}/{total}"
