"""Tests for cumulative delta-time computation and vector encoding."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.deltas import LeadTimeScaler, chain_to_deltas
from repro.errors import ShapeError


class TestChainToDeltas:
    def test_table4_semantics(self):
        """Table 4: dT is the cumulative difference to the last phrase,
        which gets dT = 0."""
        # Timestamps from the paper's Table 4 example (seconds within
        # the minute, chain ends at 04:00:06.288).
        ts = np.array([0.0, 1.077, 2.011, 3.240, 3.265, 7.822])
        deltas = chain_to_deltas(ts)
        assert deltas[-1] == 0.0
        assert deltas[0] == pytest.approx(7.822)
        assert deltas[1] == pytest.approx(6.745)

    def test_monotone_nonincreasing(self):
        deltas = chain_to_deltas(np.array([0.0, 5.0, 5.0, 9.0]))
        assert all(a >= b for a, b in zip(deltas, deltas[1:]))

    def test_single_event(self):
        assert chain_to_deltas(np.array([42.0])).tolist() == [0.0]

    def test_rejects_decreasing(self):
        with pytest.raises(ShapeError):
            chain_to_deltas(np.array([5.0, 1.0]))

    def test_rejects_empty(self):
        with pytest.raises(ShapeError):
            chain_to_deltas(np.array([]))

    @given(st.lists(st.floats(0, 1e5), min_size=1, max_size=20))
    def test_property_last_is_zero(self, times):
        ts = np.sort(np.array(times))
        deltas = chain_to_deltas(ts)
        assert deltas[-1] == 0.0
        assert np.all(deltas >= 0)


class TestLeadTimeScaler:
    @pytest.fixture
    def scaler(self):
        return LeadTimeScaler(max_lead_seconds=600.0, vocab_size=50)

    def test_encode_shape(self, scaler):
        out = scaler.encode(np.array([10.0, 0.0]), np.array([3, 7]))
        assert out.shape == (2, 2)

    def test_dt_normalization(self, scaler):
        out = scaler.encode(np.array([300.0]), np.array([0]))
        assert out[0, 0] == pytest.approx(0.5)

    def test_dt_clipped_at_horizon(self, scaler):
        out = scaler.encode(np.array([9000.0]), np.array([0]))
        assert out[0, 0] == 1.0

    def test_id_scaling(self, scaler):
        out = scaler.encode(np.array([0.0]), np.array([25]))
        assert out[0, 1] == pytest.approx(25 / 50 * scaler.id_scale)

    def test_decode_lead_round_trip(self, scaler):
        for dt in (0.0, 120.0, 599.0):
            encoded = scaler.encode(np.array([dt]), np.array([0]))
            assert scaler.decode_lead_seconds(encoded[0, 0]) == pytest.approx(dt)

    def test_decode_phrase_round_trip(self, scaler):
        ids = np.arange(50)
        encoded = scaler.encode(np.zeros(50), ids)
        assert np.array_equal(scaler.decode_phrase_id(encoded[:, 1]), ids)

    def test_encode_chain(self, scaler):
        out = scaler.encode_chain(np.array([0.0, 60.0]), np.array([1, 2]))
        assert out[0, 0] == pytest.approx(0.1)  # 60s before end
        assert out[1, 0] == 0.0

    def test_rejects_negative_deltas(self, scaler):
        with pytest.raises(ShapeError):
            scaler.encode(np.array([-1.0]), np.array([0]))

    def test_rejects_out_of_vocab(self, scaler):
        with pytest.raises(ShapeError):
            scaler.encode(np.array([0.0]), np.array([50]))

    def test_rejects_shape_mismatch(self, scaler):
        with pytest.raises(ShapeError):
            scaler.encode(np.array([0.0, 1.0]), np.array([0]))

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_lead_seconds": 0.0, "vocab_size": 10},
            {"max_lead_seconds": 10.0, "vocab_size": 1},
            {"max_lead_seconds": 10.0, "vocab_size": 10, "id_scale": 0.0},
        ],
    )
    def test_rejects_bad_params(self, kwargs):
        with pytest.raises(ShapeError):
            LeadTimeScaler(**kwargs)

    @given(
        st.floats(0, 600),
        st.integers(0, 49),
    )
    def test_property_round_trip(self, dt, pid):
        scaler = LeadTimeScaler(600.0, 50)
        enc = scaler.encode(np.array([dt]), np.array([pid]))
        assert scaler.decode_lead_seconds(enc[0, 0]) == pytest.approx(dt, abs=1e-9)
        assert scaler.decode_phrase_id(enc[0, 1]) == pid


class TestPaperUnitsMSE:
    @pytest.fixture
    def scaler(self):
        return LeadTimeScaler(max_lead_seconds=600.0, vocab_size=50)

    def test_exact_match_is_zero(self, scaler):
        v = scaler.encode(np.array([60.0, 0.0]), np.array([3, 7]))
        assert np.allclose(scaler.mse_paper_units(v, v), 0.0)

    def test_one_id_off_contributes_half(self, scaler):
        """A single-id phrase mismatch alone gives MSE 0.5 — exactly the
        paper's threshold, which is why 0.5 demands an exact phrase
        match."""
        a = scaler.encode(np.array([0.0]), np.array([10]))
        b = scaler.encode(np.array([0.0]), np.array([11]))
        assert scaler.mse_paper_units(a, b)[0] == pytest.approx(0.5)

    def test_one_minute_dt_error_contributes_half(self, scaler):
        a = scaler.encode(np.array([60.0]), np.array([10]))
        b = scaler.encode(np.array([0.0]), np.array([10]))
        assert scaler.mse_paper_units(a, b)[0] == pytest.approx(0.5)

    def test_independent_of_id_scale(self):
        """The paper-unit MSE must not change with the internal id_scale."""
        for id_scale in (1.0, 4.0, 10.0):
            scaler = LeadTimeScaler(600.0, 50, id_scale=id_scale)
            a = scaler.encode(np.array([30.0]), np.array([5]))
            b = scaler.encode(np.array([90.0]), np.array([9]))
            expected = 0.5 * ((60.0 / 60.0) ** 2 + 4.0**2)
            assert scaler.mse_paper_units(a, b)[0] == pytest.approx(expected)

    def test_rejects_bad_shapes(self, scaler):
        with pytest.raises(ShapeError):
            scaler.mse_paper_units(np.zeros((2, 2)), np.zeros((3, 2)))
        with pytest.raises(ShapeError):
            scaler.mse_paper_units(np.zeros((2, 3)), np.zeros((2, 3)))
