"""Tests for failure-chain extraction and episode segmentation."""

import pytest

from repro.core.chains import ChainExtractor, Episode, FailureChain, segment_episodes
from repro.errors import ChainExtractionError
from repro.events import EventSequence, Label, ParsedEvent
from repro.topology import CrayNodeId

NODE = CrayNodeId(0, 0, 0, 0, 0)
NODE2 = CrayNodeId(0, 0, 0, 0, 1)


def ev(t, pid, label=Label.UNKNOWN, terminal=False, node=NODE):
    return ParsedEvent(
        timestamp=t, phrase_id=pid, node=node, label=label, terminal=terminal
    )


def seq(*events, node=NODE):
    return EventSequence(node, events)


class TestFailureChain:
    def test_valid_chain(self):
        chain = FailureChain(
            NODE,
            (ev(0, 1), ev(5, 2, Label.ERROR), ev(9, 3, Label.ERROR, terminal=True)),
        )
        assert chain.lead_time == 9.0
        assert chain.terminal_time == 9.0
        assert len(chain) == 3

    def test_requires_terminal_last(self):
        with pytest.raises(ChainExtractionError):
            FailureChain(NODE, (ev(0, 1), ev(5, 2)))

    def test_requires_two_events(self):
        with pytest.raises(ChainExtractionError):
            FailureChain(NODE, (ev(0, 1, terminal=True, label=Label.ERROR),))

    def test_rejects_safe_members(self):
        with pytest.raises(ChainExtractionError):
            FailureChain(
                NODE,
                (ev(0, 1, Label.SAFE), ev(5, 2, Label.ERROR, terminal=True)),
            )

    def test_rejects_unordered(self):
        with pytest.raises(ChainExtractionError):
            FailureChain(
                NODE, (ev(5, 1), ev(0, 2, Label.ERROR, terminal=True))
            )

    def test_arrays(self):
        chain = FailureChain(
            NODE, (ev(1, 7), ev(2, 8, Label.ERROR, terminal=True))
        )
        assert chain.phrase_ids().tolist() == [7, 8]
        assert chain.timestamps().tolist() == [1.0, 2.0]


class TestChainExtractor:
    def test_extracts_window(self):
        s = seq(
            ev(0, 1),
            ev(100, 2),
            ev(650, 3),  # within lookback 600 of terminal at 700
            ev(700, 9, Label.ERROR, terminal=True),
        )
        chains = ChainExtractor(lookback=600.0).extract([s])
        assert len(chains) == 1
        assert chains[0].phrase_ids().tolist() == [2, 3, 9]  # event at 0 excluded

    def test_safe_events_ignored(self):
        s = seq(
            ev(10, 1),
            ev(20, 2, Label.SAFE),
            ev(30, 9, Label.ERROR, terminal=True),
        )
        chains = ChainExtractor().extract([s])
        assert chains[0].phrase_ids().tolist() == [1, 9]

    def test_min_events_filter(self):
        s = seq(ev(30, 9, Label.ERROR, terminal=True))
        assert ChainExtractor(min_events=2).extract([s]) == []

    def test_two_terminals_two_chains(self):
        s = seq(
            ev(10, 1),
            ev(20, 9, Label.ERROR, terminal=True),
            ev(1000, 2),
            ev(1010, 9, Label.ERROR, terminal=True),
        )
        chains = ChainExtractor().extract([s])
        assert len(chains) == 2
        # The first terminal must not appear in the second chain.
        assert chains[1].phrase_ids().tolist() == [2, 9]

    def test_maintenance_mass_shutdown_filtered(self, small_topology):
        nodes = small_topology.node_list()[:6]
        sequences = []
        for node in nodes:
            sequences.append(
                seq(
                    ev(90, 1, node=node),
                    ev(100, 9, Label.ERROR, terminal=True, node=node),
                    node=node,
                )
            )
        extractor = ChainExtractor(mass_threshold=5, mass_window=60.0)
        assert extractor.extract(sequences) == []

    def test_isolated_failures_not_filtered(self, small_topology):
        nodes = small_topology.node_list()[:3]
        sequences = [
            seq(
                ev(100 + i * 500, 1, node=node),
                ev(110 + i * 500, 9, Label.ERROR, terminal=True, node=node),
                node=node,
            )
            for i, node in enumerate(nodes)
        ]
        extractor = ChainExtractor(mass_threshold=3, mass_window=60.0)
        assert len(extractor.extract(sequences)) == 3

    def test_chains_sorted_by_terminal_time(self):
        s1 = seq(ev(500, 1), ev(510, 9, Label.ERROR, terminal=True))
        s2 = seq(
            ev(10, 1, node=NODE2),
            ev(20, 9, Label.ERROR, terminal=True, node=NODE2),
            node=NODE2,
        )
        chains = ChainExtractor().extract([s1, s2])
        assert chains[0].terminal_time < chains[1].terminal_time

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"lookback": 0.0},
            {"mass_window": -1.0},
            {"mass_threshold": 1},
            {"min_events": 1},
        ],
    )
    def test_rejects_bad_params(self, kwargs):
        with pytest.raises(ChainExtractionError):
            ChainExtractor(**kwargs)


class TestSegmentEpisodes:
    def test_gap_splits(self):
        s = seq(ev(0, 1), ev(10, 2), ev(2000, 3), ev(2010, 4))
        episodes = segment_episodes(s, gap=600.0, min_events=2)
        assert len(episodes) == 2
        assert episodes[0].phrase_ids().tolist() == [1, 2]
        assert episodes[1].phrase_ids().tolist() == [3, 4]

    def test_terminal_closes_episode(self):
        s = seq(
            ev(0, 1),
            ev(10, 9, Label.ERROR, terminal=True),
            ev(20, 2),
            ev(30, 3),
        )
        episodes = segment_episodes(s, gap=600.0, min_events=2)
        assert len(episodes) == 2
        assert episodes[0].ends_in_terminal
        assert not episodes[1].ends_in_terminal

    def test_min_events_drops_singletons(self):
        s = seq(ev(0, 1), ev(5000, 2))
        assert segment_episodes(s, gap=600.0, min_events=2) == []

    def test_safe_events_excluded(self):
        s = seq(ev(0, 1), ev(5, 2, Label.SAFE), ev(10, 3))
        episodes = segment_episodes(s, gap=600.0, min_events=2)
        assert episodes[0].phrase_ids().tolist() == [1, 3]

    def test_episode_time_span(self):
        s = seq(ev(5, 1), ev(25, 2))
        ep = segment_episodes(s, gap=600.0)[0]
        assert ep.start_time == 5.0
        assert ep.end_time == 25.0

    def test_rejects_bad_params(self):
        s = seq(ev(0, 1))
        with pytest.raises(ChainExtractionError):
            segment_episodes(s, gap=0.0)
        with pytest.raises(ChainExtractionError):
            segment_episodes(s, min_events=0)

    def test_empty_episode_rejected(self):
        with pytest.raises(ChainExtractionError):
            Episode(NODE, ())
