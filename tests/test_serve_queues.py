"""Tests for the serving layer's queues, dedup and shard routing."""

import asyncio

import pytest

from repro.errors import ConfigError
from repro.serve import HashDeduper, ShardQueue, ShardRouter


class TestShardRouter:
    def test_stable_and_in_range(self):
        router = ShardRouter(4)
        keys = [f"c0-0c{i}s{j}n{k}" for i in range(2) for j in range(4) for k in range(4)]
        first = [router.shard_of_key(k) for k in keys]
        second = [router.shard_of_key(k) for k in keys]
        assert first == second
        assert all(0 <= s < 4 for s in first)
        assert len(set(first)) > 1  # keys actually spread across shards

    def test_routes_line_by_source_token(self):
        router = ShardRouter(8)
        line = "2026-01-01T00:00:00.000000 c0-0c1s2n3 kernel: mce event"
        assert router.shard_of_line(line) == router.shard_of_key("c0-0c1s2n3")

    def test_mangled_line_falls_back_to_whole_line(self):
        router = ShardRouter(8)
        assert 0 <= router.shard_of_line("garbage") < 8

    def test_rejects_bad_shard_count(self):
        with pytest.raises(ConfigError):
            ShardRouter(0)


class TestShardQueue:
    def test_offer_peek_commit_fifo(self):
        async def run():
            queue = ShardQueue(4)
            assert queue.offer("a") and queue.offer("b")
            assert await queue.peek() == "a"
            assert await queue.peek() == "a"  # peek does not consume
            queue.commit()
            assert await queue.peek() == "b"
            queue.commit()
            assert queue.offered == 2 and queue.committed == 2
            assert queue.depth == 0

        asyncio.run(run())

    def test_offer_bounded_and_high_water(self):
        async def run():
            queue = ShardQueue(2)
            assert queue.offer(1) and queue.offer(2)
            assert not queue.offer(3)
            assert queue.high_water == 2

        asyncio.run(run())

    def test_peek_many_returns_head_run_without_consuming(self):
        async def run():
            queue = ShardQueue(8)
            for item in ("a", "b", "c"):
                assert queue.offer(item)
            assert await queue.peek_many(2) == ["a", "b"]
            assert await queue.peek_many(8) == ["a", "b", "c"]
            assert queue.depth == 3  # nothing consumed
            queue.commit()
            assert await queue.peek_many(8) == ["b", "c"]

        asyncio.run(run())

    def test_peek_many_waits_for_first_item(self):
        async def run():
            queue = ShardQueue(4)

            async def producer():
                await asyncio.sleep(0.01)
                queue.offer("late")

            task = asyncio.ensure_future(producer())
            assert await queue.peek_many(4) == ["late"]
            await task

        asyncio.run(run())

    def test_peek_many_rejects_bad_count(self):
        async def run():
            with pytest.raises(ConfigError):
                await ShardQueue(4).peek_many(0)

        asyncio.run(run())

    def test_commit_without_item_raises(self):
        async def run():
            queue = ShardQueue(2)
            with pytest.raises(ConfigError):
                queue.commit()

        asyncio.run(run())

    def test_offer_wait_backpressure_succeeds_when_space_frees(self):
        async def run():
            queue = ShardQueue(1)
            assert queue.offer("held")

            async def consumer():
                await asyncio.sleep(0.01)
                await queue.peek()
                queue.commit()

            task = asyncio.ensure_future(consumer())
            admitted = await queue.offer_wait("waited", timeout=1.0)
            await task
            return admitted

        assert asyncio.run(run())

    def test_offer_wait_sheds_on_timeout(self):
        async def run():
            queue = ShardQueue(1)
            queue.offer("stuck")
            return await queue.offer_wait("shed me", timeout=0.02)

        assert asyncio.run(run()) is False

    def test_closed_queue_rejects_offers(self):
        async def run():
            queue = ShardQueue(2)
            queue.close()
            assert not queue.offer("x")
            assert not await queue.offer_wait("y", timeout=0.01)

        asyncio.run(run())

    def test_join_waits_for_drain_and_times_out(self):
        async def run():
            queue = ShardQueue(2)
            queue.offer("x")
            assert not await queue.join(timeout=0.02)  # nobody draining

            async def drain():
                await queue.peek()
                queue.commit()

            task = asyncio.ensure_future(drain())
            drained = await queue.join(timeout=1.0)
            await task
            assert drained

        asyncio.run(run())

    def test_crash_between_peek_and_commit_replays_item(self):
        """The peek/commit contract behind bit-identical crash recovery."""

        async def run():
            queue = ShardQueue(4)
            queue.offer("item")
            first = await queue.peek()
            # Simulated crash: no commit.  The item must still be there.
            second = await queue.peek()
            assert first is second
            queue.commit()
            assert queue.depth == 0

        asyncio.run(run())

    def test_rejects_bad_capacity(self):
        with pytest.raises(ConfigError):
            ShardQueue(0)


class TestHashDeduper:
    def test_detects_duplicates_in_window(self):
        dedup = HashDeduper(16)
        assert not dedup.seen("line one")
        assert not dedup.seen("line two")
        assert dedup.seen("line one")
        assert dedup.duplicates == 1

    def test_window_eviction_forgets_old_lines(self):
        dedup = HashDeduper(2)
        assert not dedup.seen("a")
        assert not dedup.seen("b")
        assert not dedup.seen("c")  # evicts "a"
        assert not dedup.seen("a")  # forgotten, admitted again

    def test_zero_window_disables_dedup(self):
        dedup = HashDeduper(0)
        assert not dedup.seen("same")
        assert not dedup.seen("same")
        assert dedup.duplicates == 0

    def test_contains_does_not_record(self):
        dedup = HashDeduper(8)
        digest = dedup.digest("pending line")
        assert not dedup.contains(digest)
        assert not dedup.contains(digest)  # query is side-effect free
        dedup.record(digest)
        assert dedup.contains(digest)

    def test_shed_then_retry_is_not_deduped(self):
        # The ingest contract: only *admitted* lines are recorded, so a
        # client retrying a shed batch is not mistaken for a duplicate.
        dedup = HashDeduper(8)
        digest = dedup.digest("shed line")
        assert not dedup.contains(digest)  # first attempt: checked, shed
        assert not dedup.contains(digest)  # retry: still admissible
        dedup.record(digest)
        assert dedup.contains(digest)  # accepted now; third copy dedups

    def test_reserve_blocks_in_flight_duplicates_until_resolved(self):
        # The reservation protocol closes the check-then-act window in
        # ingest: the digest is staged before any await, so a concurrent
        # batch carrying the same line dedups against the reservation.
        dedup = HashDeduper(8)
        digest = dedup.digest("in flight")
        assert dedup.reserve(digest)
        assert not dedup.reserve(digest)  # concurrent twin: deduped
        dedup.release(digest)  # shed: reservation leaves no trace...
        assert not dedup.contains(digest)
        assert dedup.reserve(digest)  # ...so the client retry is admitted
        dedup.commit_reserved(digest)  # admitted: promoted to the window
        assert dedup.contains(digest)
        assert not dedup.reserve(digest)

    def test_reserve_with_zero_window_always_admits(self):
        dedup = HashDeduper(0)
        assert dedup.reserve(b"x")
        assert dedup.reserve(b"x")

    def test_reservations_are_transient_not_checkpointed(self):
        dedup = HashDeduper(8)
        committed = dedup.digest("committed line")
        in_flight = dedup.digest("in-flight line")
        assert dedup.reserve(committed)
        dedup.commit_reserved(committed)
        assert dedup.reserve(in_flight)

        restored = HashDeduper(8)
        restored.load_state_dict(dedup.state_dict())
        assert restored.contains(committed)
        # A reservation is pre-admission state: it must not survive a
        # restore, or a crashed ingest would pin its lines forever.
        assert restored.reserve(in_flight)

    def test_state_dict_round_trip(self):
        dedup = HashDeduper(4)
        for line in ["a", "b", "a", "c"]:
            dedup.seen(line)
        state = dedup.state_dict()
        restored = HashDeduper(4)
        restored.load_state_dict(state)
        assert restored.duplicates == dedup.duplicates
        assert restored.seen("a") == dedup.seen("a")
        assert restored.seen("zz") == dedup.seen("zz")

    def test_load_rejects_bad_version(self):
        with pytest.raises(ConfigError):
            HashDeduper(4).load_state_dict({"version": 99})

    def test_rejects_negative_window(self):
        with pytest.raises(ConfigError):
            HashDeduper(-1)
