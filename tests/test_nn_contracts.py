"""Runtime tensor-contract tests: spec parsing, dim binding, layer wiring,
and the ``python -O`` compile-out guarantee."""

import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.errors import ContractError, ShapeError
from repro.nn import Dense, Embedding, LSTMCell, StackedLSTM
from repro.nn.contracts import parse_spec, tensor_contract

RNG = np.random.default_rng


# ----------------------------------------------------------------------
# Spec parsing
# ----------------------------------------------------------------------
class TestParseSpec:
    def test_parses_input_and_output(self):
        inp, out = parse_spec("(B, T, input_size):float -> (B, T, hidden_size):float")
        assert inp.dims == ("B", "T", "input_size")
        assert out.dims == ("B", "T", "hidden_size")
        assert inp.dtype is np.floating

    def test_parses_ellipsis_lead(self):
        inp, out = parse_spec("(..., in_dim):float -> (..., out_dim):float")
        assert inp.ellipsis_lead
        assert inp.dims == ("in_dim",)

    def test_none_output(self):
        inp, out = parse_spec("(..., dim):float -> None")
        assert out is None

    def test_rejects_garbage(self):
        for bad in ("no arrow", "(a:float", "(a) -> (b):complex", "-> (b):float"):
            with pytest.raises(ContractError):
                parse_spec(bad)


# ----------------------------------------------------------------------
# Decorator semantics on a toy class
# ----------------------------------------------------------------------
class Toy:
    def __init__(self):
        self.width = 3

    @tensor_contract("(B, width):float -> (B, width):float")
    def ok(self, x):
        return x

    @tensor_contract("(B, width):float -> (B, width):float")
    def shrinks(self, x):
        return x[:-1]

    @tensor_contract("(B, width):float -> (B, width):int")
    def wrong_dtype(self, x):
        return x


class TestDecorator:
    def test_passes_matching_tensor(self):
        x = np.zeros((4, 3))
        assert Toy().ok(x) is x

    def test_owner_attribute_pins_dim(self):
        with pytest.raises(ContractError, match="width"):
            Toy().ok(np.zeros((4, 5)))

    def test_free_dim_binds_on_first_use(self):
        # B is free: bound from the input, so a shrunken output fails.
        with pytest.raises(ContractError, match="B"):
            Toy().shrinks(np.zeros((4, 3)))

    def test_output_dtype_checked(self):
        with pytest.raises(ContractError, match="int"):
            Toy().wrong_dtype(np.zeros((4, 3)))

    def test_coercible_list_is_checked_like_an_array(self):
        # Lists are coerced (Embedding accepts id lists), then checked.
        with pytest.raises(ContractError, match="width"):
            Toy().ok([[1.0, 2.0]])

    def test_object_input_fails_dtype_check(self):
        with pytest.raises(ContractError, match="dtype"):
            Toy().ok([["a", "b", "c"]])

    def test_contract_error_is_shape_error(self):
        # Pre-contract callers catching ShapeError keep working.
        assert issubclass(ContractError, ShapeError)

    def test_spec_stored_on_wrapper(self):
        assert Toy.ok.__tensor_contract__ == "(B, width):float -> (B, width):float"


# ----------------------------------------------------------------------
# The real layers are wired with contracts
# ----------------------------------------------------------------------
class TestLayerContracts:
    def test_dense_rejects_wrong_trailing_dim(self):
        d = Dense(4, 2, RNG(0))
        with pytest.raises(ShapeError):
            d.forward(np.zeros((2, 5)))

    def test_dense_rejects_int_input(self):
        d = Dense(4, 2, RNG(0))
        with pytest.raises(ContractError, match="float"):
            d.forward(np.zeros((2, 4), dtype=np.int64))

    def test_embedding_rejects_float_ids(self):
        e = Embedding(10, 4, RNG(0))
        with pytest.raises(ContractError, match="int"):
            e.forward(np.zeros((2, 3)))

    def test_lstm_cell_contract_names_owner_dims(self):
        cell = LSTMCell(4, 8, RNG(0))
        with pytest.raises(ShapeError):
            cell.forward(np.zeros((2, 5, 3)))

    def test_stacked_lstm_roundtrip_respects_contracts(self):
        net = StackedLSTM(4, 8, 2, RNG(0))
        x = RNG(1).normal(size=(2, 5, 4))
        h = net.forward(x)
        assert h.shape == (2, 5, 8)
        dx = net.backward(np.ones_like(h))
        assert dx.shape == x.shape

    def test_batch_dim_consistency_across_call(self):
        # B binds from the input; a mismatched upstream gradient fails
        # inside backward's own contract (B/T consistency per call).
        cell = LSTMCell(4, 8, RNG(0))
        cell.forward(RNG(1).normal(size=(2, 5, 4)))
        with pytest.raises(ShapeError):
            cell.backward(np.ones((3, 5, 8)))


# ----------------------------------------------------------------------
# python -O compiles the contracts out
# ----------------------------------------------------------------------
def test_contracts_compiled_out_under_dash_O():
    src_dir = Path(repro.__file__).resolve().parents[1]
    probe = textwrap.dedent(
        """
        import numpy as np
        from repro.nn import Dense
        from repro.nn.contracts import tensor_contract

        d = Dense(4, 2, np.random.default_rng(0))
        assert not hasattr(d.forward, "__tensor_contract__")
        assert tensor_contract("(B, x):float -> (B, x):float")(len) is len
        # The layer's own hand-written check still guards shapes.
        try:
            d.forward(np.zeros((2, 5)))
        except Exception as exc:
            assert type(exc).__name__ == "ShapeError", exc
        else:
            raise AssertionError("expected ShapeError under -O")
        print("OK")
        """
    )
    result = subprocess.run(
        [sys.executable, "-O", "-c", probe],
        env={"PYTHONPATH": str(src_dir), "PATH": "/usr/bin:/bin"},
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stderr
    assert "OK" in result.stdout


def test_declared_contracts_exposes_specs_statically():
    from repro.nn.contracts import declared_contracts
    from repro.nn.layers import Dense, Embedding
    from repro.nn.lstm import LSTMCell, StackedLSTM

    dense = declared_contracts(Dense)
    assert dense["forward"] == "(..., in_dim):float -> (..., out_dim):float"
    for cls in (Embedding, LSTMCell, StackedLSTM):
        specs = declared_contracts(cls)
        assert "forward" in specs and "backward" in specs


def test_declared_contracts_survive_dash_O():
    """The spec registry backs declared_contracts when wrappers compile out."""
    src_dir = Path(repro.__file__).resolve().parents[1]
    probe = textwrap.dedent(
        """
        from repro.nn.contracts import declared_contracts
        from repro.nn.layers import Dense

        specs = declared_contracts(Dense)
        assert specs["forward"] == "(..., in_dim):float -> (..., out_dim):float", specs
        assert not hasattr(Dense.forward, "__tensor_contract__")
        print("OK")
        """
    )
    result = subprocess.run(
        [sys.executable, "-O", "-c", probe],
        env={"PYTHONPATH": str(src_dir), "PATH": "/usr/bin:/bin"},
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stderr
    assert "OK" in result.stdout


# ----------------------------------------------------------------------
# Multi-group specs (batched stateful methods)
# ----------------------------------------------------------------------
class ToyMulti:
    def __init__(self):
        self.width = 3

    @tensor_contract(
        "(B, width):float, (B, width):float -> (B, width):float, (B, width):float"
    )
    def pair(self, x, state=None):
        if state is None:
            state = np.zeros_like(x)
        return x, state

    @tensor_contract("(B, width):float -> (B, width):float, (B, width):float")
    def not_a_pair(self, x):
        return x


class TestMultiGroupSpecs:
    def test_parses_tuple_sides(self):
        inp, out = parse_spec(
            "(B, I):float, (B, H):float -> (B, H):float, (B, H):float"
        )
        assert isinstance(inp, tuple) and len(inp) == 2
        assert isinstance(out, tuple) and len(out) == 2
        assert inp[0].dims == ("B", "I")
        assert out[1].dims == ("B", "H")

    def test_parses_integer_literal_dims(self):
        inp, _ = parse_spec("(num_layers, 2, B, H):float -> None")
        assert inp.dims == ("num_layers", 2, "B", "H")

    def test_rejects_unbalanced_groups(self):
        for bad in ("(a):float, (b:float -> (c):float", "(a, (b)):float -> None"):
            with pytest.raises(ContractError):
                parse_spec(bad)

    def test_optional_state_arg_skipped_when_none(self):
        x = np.zeros((4, 3))
        out, state = ToyMulti().pair(x)
        assert out is x and state.shape == x.shape

    def test_bindings_shared_across_groups(self):
        # B binds from x; a state with a different batch dim is provably
        # wrong before the method body runs.
        with pytest.raises(ContractError, match="B"):
            ToyMulti().pair(np.zeros((4, 3)), np.zeros((5, 3)))

    def test_tuple_output_arity_enforced(self):
        with pytest.raises(ContractError):
            ToyMulti().not_a_pair(np.zeros((4, 3)))

    def test_step_batch_contract_rejects_mismatched_state(self):
        cell = LSTMCell(4, 8, RNG(0))
        x = RNG(1).normal(size=(2, 4))
        h, c = cell.step_batch(x)
        assert h.shape == c.shape == (2, 8)
        with pytest.raises(ShapeError):
            cell.step_batch(x, np.zeros((3, 8)), np.zeros((3, 8)))

    def test_stacked_step_batch_contract_checks_state_tensor(self):
        net = StackedLSTM(4, 8, 2, RNG(0))
        x = RNG(1).normal(size=(2, 4))
        top, states = net.step_batch(x)
        assert top.shape == (2, 8)
        assert states.shape == (2, 2, 2, 8)
        with pytest.raises(ShapeError):
            net.step_batch(x, np.zeros((1, 2, 2, 8)))
