"""Tests for worker supervision: restarts, backoff, give-up, recovery."""

import asyncio

import numpy as np
import pytest

from repro.errors import ConfigError, InjectedFaultError
from repro.serve import RestartPolicy, Supervisor


class TestRestartPolicy:
    def test_delay_grows_exponentially_and_caps(self):
        policy = RestartPolicy(base_delay=0.1, max_delay=0.5, jitter=0.0)
        rng = np.random.default_rng(0)
        delays = [policy.delay(n, rng) for n in range(1, 6)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_stretches_within_bound(self):
        policy = RestartPolicy(base_delay=0.1, max_delay=1.0, jitter=0.5)
        rng = np.random.default_rng(1)
        for _ in range(50):
            delay = policy.delay(1, rng)
            assert 0.1 <= delay <= 0.1 * 1.5

    def test_zero_failures_means_no_delay(self):
        policy = RestartPolicy()
        assert policy.delay(0, np.random.default_rng(0)) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            RestartPolicy(base_delay=-1.0)
        with pytest.raises(ConfigError):
            RestartPolicy(base_delay=1.0, max_delay=0.5)
        with pytest.raises(ConfigError):
            RestartPolicy(jitter=-0.1)
        with pytest.raises(ConfigError):
            RestartPolicy(max_restarts=-1)


class TestSupervisor:
    def test_restarts_crashing_worker_until_it_settles(self):
        async def run():
            crashes_left = [3]
            done = asyncio.Event()

            async def worker(_index):
                if crashes_left[0] > 0:
                    crashes_left[0] -= 1
                    raise InjectedFaultError("injected crash")
                done.set()

            supervisor = Supervisor(
                worker, 1, policy=RestartPolicy(base_delay=0.001, jitter=0.0)
            )
            await supervisor.start()
            await asyncio.wait_for(done.wait(), 5.0)
            await supervisor.stop()
            return supervisor

        supervisor = asyncio.run(run())
        assert supervisor.total_restarts == 3
        assert supervisor.states[0].last_error is not None
        assert "injected crash" in supervisor.states[0].last_error
        assert not supervisor.states[0].failed

    def test_gives_up_after_max_restarts_and_calls_hook(self):
        async def run():
            given_up = []

            async def worker(_index):
                raise InjectedFaultError("always crashing")

            supervisor = Supervisor(
                worker,
                1,
                policy=RestartPolicy(
                    base_delay=0.001, jitter=0.0, max_restarts=2
                ),
                on_give_up=given_up.append,
            )
            await supervisor.start()
            for _ in range(200):
                if supervisor.states[0].failed:
                    break
                await asyncio.sleep(0.01)
            await supervisor.stop()
            return supervisor, given_up

        supervisor, given_up = asyncio.run(run())
        assert supervisor.states[0].failed
        assert given_up == [0]
        # 2 tolerated restarts + the failure that exhausted the budget.
        assert supervisor.states[0].restarts == 3

    def test_note_progress_resets_backoff_and_records_recovery(self):
        async def run():
            first = [True]
            processed = asyncio.Event()

            async def worker(index):
                if first[0]:
                    first[0] = False
                    raise InjectedFaultError("one crash")
                supervisor.note_progress(index)
                processed.set()
                await asyncio.sleep(3600)

            supervisor = Supervisor(
                worker, 1, policy=RestartPolicy(base_delay=0.001, jitter=0.0)
            )
            await supervisor.start()
            await asyncio.wait_for(processed.wait(), 5.0)
            await supervisor.stop()
            return supervisor

        supervisor = asyncio.run(run())
        state = supervisor.states[0]
        assert state.consecutive_failures == 0
        assert len(state.recovery_times) == 1
        assert 0.0 < state.recovery_times[0] < 5.0
        assert supervisor.recovery_times() == state.recovery_times

    def test_clean_worker_exit_stops_supervision(self):
        async def run():
            ran = []

            async def worker(index):
                ran.append(index)

            supervisor = Supervisor(worker, 2)
            await supervisor.start()
            await asyncio.sleep(0.05)
            await supervisor.stop()
            return supervisor, ran

        supervisor, ran = asyncio.run(run())
        assert sorted(ran) == [0, 1]
        assert supervisor.total_restarts == 0

    def test_concurrent_stops_cancel_each_worker_exactly_once(self):
        # Regression: stop() used to read self._tasks, await the
        # gather, and only then clear the list — a second concurrent
        # stop() (or a start() racing shutdown) saw the stale list and
        # re-cancelled tasks mid-unwind.  The list is now detached
        # before the first await, so the window is gone.
        async def run():
            unwound = []

            async def worker(index):
                try:
                    await asyncio.Event().wait()
                except asyncio.CancelledError:
                    unwound.append(index)
                    raise

            supervisor = Supervisor(
                worker, 2, policy=RestartPolicy(base_delay=0.001, jitter=0.0)
            )
            await supervisor.start()
            await asyncio.sleep(0.02)
            await asyncio.gather(supervisor.stop(), supervisor.stop())
            return supervisor, unwound

        supervisor, unwound = asyncio.run(run())
        assert sorted(unwound) == [0, 1]
        assert supervisor._tasks == []
        assert all(not state.running for state in supervisor.states)

    def test_deterministic_jitter_across_supervisors(self):
        a = Supervisor(lambda i: None, 1, seed=42)
        b = Supervisor(lambda i: None, 1, seed=42)
        policy = RestartPolicy(base_delay=0.1, jitter=0.5)
        draws_a = [policy.delay(1, a._rng) for _ in range(10)]
        draws_b = [policy.delay(1, b._rng) for _ in range(10)]
        assert draws_a == draws_b

    def test_rejects_zero_workers_and_double_start(self):
        with pytest.raises(ConfigError):
            Supervisor(lambda i: None, 0)

        async def run():
            async def worker(_index):
                await asyncio.sleep(3600)

            supervisor = Supervisor(worker, 1)
            await supervisor.start()
            with pytest.raises(ConfigError):
                await supervisor.start()
            await supervisor.stop()

        asyncio.run(run())
