"""Tests for the log generator's ground-truth consistency."""

import numpy as np
import pytest

from repro.errors import LogGenerationError
from repro.simlog import GeneratorConfig, LogGenerator
from repro.simlog.record import render_line


class TestGeneratorConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"horizon": 100.0, "edge_margin": 60.0},
            {"background_rate": 0.0},
            {"ambient_anomaly_rate": -1.0},
            {"failure_count": -1},
            {"near_miss_ratio": -0.1},
            {"maintenance_fraction": 1.5},
            {"downtime": -1.0},
        ],
    )
    def test_rejects_bad_config(self, kwargs):
        with pytest.raises(LogGenerationError):
            GeneratorConfig(**kwargs)


class TestGeneratedLog:
    def test_records_sorted_by_time(self, small_log):
        times = [r.timestamp for r in small_log.records]
        assert times == sorted(times)

    def test_requested_failure_count(self, small_log):
        assert len(small_log.ground_truth.failures) == 80

    def test_near_miss_count(self, small_log):
        assert len(small_log.ground_truth.near_misses) == 40

    def test_maintenance_window_exists(self, small_log):
        assert len(small_log.ground_truth.maintenance) == 1

    def test_failures_have_positive_lead(self, small_log):
        for f in small_log.ground_truth.failures:
            assert f.lead_time > 0

    def test_terminal_records_exist_for_failures(self, small_log):
        """Every injected failure's terminal message appears in the log."""
        terminal_times = {
            (r.node, round(r.timestamp, 6))
            for r in small_log.records
            if "cb_node_unavailable" in r.message
        }
        for f in small_log.ground_truth.failures:
            assert (f.node, round(f.terminal_time, 6)) in terminal_times

    def test_near_miss_has_no_terminal(self, small_log):
        """No terminal message falls within a near-miss span on its node."""
        for m in small_log.ground_truth.near_misses:
            for r in small_log.records:
                if (
                    r.node == m.node
                    and m.start_time <= r.timestamp <= m.end_time
                ):
                    assert "cb_node_unavailable" not in r.message

    def test_downtime_silence(self, small_log):
        """A failed node logs nothing between terminal and reboot."""
        downtime = small_log.config.downtime
        for f in small_log.ground_truth.failures[:10]:
            lo = f.terminal_time + 1e-6
            hi = f.terminal_time + downtime - 1.0
            in_window = [
                r
                for r in small_log.records
                if r.node == f.node and lo < r.timestamp < hi
            ]
            assert not in_window, f"node {f.node} logged during downtime"

    def test_maintenance_is_mass_shutdown(self, small_log):
        """Maintenance shuts down many nodes within a small time window."""
        event = small_log.ground_truth.maintenance[0]
        assert len(event.nodes) >= 3
        shutdowns = [
            r.timestamp
            for r in small_log.records
            if r.node in event.nodes
            and "node shutdown in progress" in r.message
            and event.start_time <= r.timestamp <= event.start_time + 25.0
        ]
        assert len(shutdowns) == len(event.nodes)

    def test_lines_render(self, small_log):
        line = next(iter(small_log.lines()))
        assert render_line(small_log.records[0]) == line

    def test_deterministic_generation(self, small_topology):
        config = GeneratorConfig(horizon=4 * 3600.0, failure_count=5)
        gen = LogGenerator(small_topology)
        a = gen.generate(config, np.random.default_rng(9))
        b = gen.generate(config, np.random.default_rng(9))
        assert len(a) == len(b)
        assert [render_line(r) for r in a.records[:50]] == [
            render_line(r) for r in b.records[:50]
        ]

    def test_ground_truth_summary(self, small_log):
        s = small_log.ground_truth.summary()
        assert s["failures"] == 80
        assert s["near_misses"] == 40

    def test_failure_near_lookup(self, small_log):
        f = small_log.ground_truth.failures[0]
        hit = small_log.ground_truth.failure_near(
            f.node, f.terminal_time - 10.0, lookahead=60.0
        )
        assert hit == f

    def test_failure_near_misses_other_node(self, small_log, small_topology):
        f = small_log.ground_truth.failures[0]
        other = next(n for n in small_topology.nodes() if n != f.node)
        assert (
            small_log.ground_truth.failure_near(
                other, f.terminal_time - 10.0, lookahead=60.0
            )
            is None
        )

    def test_failures_in_range(self, small_log):
        gt = small_log.ground_truth
        all_failures = gt.failures_in(0.0, small_log.config.horizon)
        assert len(all_failures) == len(gt.failures)
        assert gt.failures_in(0.0, 1.0) == []


class TestSplit:
    def test_split_partitions_records(self, small_log):
        train, test = small_log.split(0.3)
        assert len(train) + len(test) == len(small_log)

    def test_split_is_chronological(self, small_log):
        train, test = small_log.split(0.3)
        cut = small_log.config.horizon * 0.3
        assert all(r.timestamp < cut for r in train.records)
        assert all(r.timestamp >= cut for r in test.records)

    def test_split_partitions_ground_truth(self, small_log):
        train, test = small_log.split(0.3)
        total = len(train.ground_truth.failures) + len(test.ground_truth.failures)
        assert total == len(small_log.ground_truth.failures)

    def test_split_rejects_bad_fraction(self, small_log):
        with pytest.raises(LogGenerationError):
            small_log.split(0.0)


class TestCollisionHandling:
    def test_impossible_density_raises(self, small_topology):
        """Too many failures for the horizon must fail loudly, not hang."""
        config = GeneratorConfig(
            horizon=2000.0, failure_count=10_000, edge_margin=900.0
        )
        gen = LogGenerator(small_topology)
        with pytest.raises(LogGenerationError):
            gen.generate(config, np.random.default_rng(0))
