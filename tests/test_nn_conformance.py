"""Model-zoo conformance suite: every registered family must pass.

The registry's contract (``repro/nn/registry.py``) is that a family is
only registered once it passes this suite against both sequence-model
roles:

* seeded finite-difference gradient checks on **every trainable
  parameter tensor** (classifier and regressor roles),
* training actually reduces the loss on a small overfit problem,
* ``Desh.fit`` -> ``save_model`` -> ``load_model`` round-trips with
  bit-identical ``warn()`` output,
* online ``DeshModel.update`` works,
* every ``forward`` / ``forward_infer`` / ``backward`` kernel declares
  a ``@tensor_contract`` (what deshlint F1 consumes),
* unknown model names fail as :class:`ConfigError` naming the registry.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Desh
from repro.errors import ConfigError
from repro.nn import (
    AttentionBackbone,
    AttentionLayer,
    CausalConv1d,
    SequenceClassifier,
    SequenceRegressor,
    TCNBackbone,
    TemporalBlock,
    get_model,
    registered_models,
)
from repro.nn.contracts import declared_contracts
from repro.nn.lstm import LSTMCell, StackedLSTM
from repro.nn.optimizers import RMSprop
from repro.pipeline.persist import load_model, save_model

MODELS = registered_models()

#: Central finite differences with this step keep truncation error well
#: below the acceptance bar while staying above f64 cancellation noise
#: for O(1)-magnitude losses.
FD_EPS = 1e-5
FD_TOL = 1e-5


def _assert_grads_match(model, loss) -> None:
    """Compare analytic grads against central differences, elementwise.

    ``loss`` recomputes the scalar training loss from the model's live
    parameters; the analytic gradients must already be accumulated.
    Checks every element of every parameter tensor.
    """
    grads = {k: v.copy() for k, v in model.grads().items()}
    for name, p in model.params().items():
        flat = p.reshape(-1)
        g = grads[name].reshape(-1)
        for i in range(flat.size):
            orig = flat[i]
            flat[i] = orig + FD_EPS
            lp = loss()
            flat[i] = orig - FD_EPS
            lm = loss()
            flat[i] = orig
            numeric = (lp - lm) / (2 * FD_EPS)
            # Sub-noise elements: central differences of an O(1) loss
            # carry ~1e-11 of f64 cancellation error, so gradients that
            # small can only be compared absolutely.
            if abs(g[i] - numeric) <= 1e-9:
                continue
            rel = abs(g[i] - numeric) / max(1e-6, abs(g[i]) + abs(numeric))
            assert rel <= FD_TOL, (
                f"{name}[{i}]: analytic {g[i]:.3e} vs numeric {numeric:.3e} "
                f"(rel {rel:.2e})"
            )


# ----------------------------------------------------------------------
# gradient checks
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", MODELS)
def test_regressor_gradients_match_finite_differences(name):
    rng = np.random.default_rng(11)
    model = SequenceRegressor(
        2, output_dim=2, hidden_size=5, num_layers=2, seed=3, backbone=name
    )
    x = rng.random((4, 6, 2))
    y = rng.random((4, 2))

    def loss() -> float:
        return model.loss_fn.loss(model.forward(x), y)

    model._zero_grad()
    pred = model.forward(x)
    model._backward(model.loss_fn.grad(pred, y))
    _assert_grads_match(model, loss)


@pytest.mark.parametrize("name", MODELS)
def test_classifier_gradients_match_finite_differences(name):
    rng = np.random.default_rng(12)
    vocab, steps = 6, 2
    model = SequenceClassifier(
        vocab,
        embed_dim=4,
        hidden_size=5,
        num_layers=1,
        steps=steps,
        seed=4,
        backbone=name,
    )
    x = rng.integers(0, vocab, size=(3, 6))
    y = rng.integers(0, vocab, size=(3, steps))

    def loss() -> float:
        logits = model.forward(x)
        return sum(
            model.loss_fn.loss(lg, y[:, k]) for k, lg in enumerate(logits)
        )

    model._zero_grad()
    logits = model.forward(x)
    model._backward(
        [model.loss_fn.grad(lg, y[:, k]) for k, lg in enumerate(logits)]
    )
    _assert_grads_match(model, loss)


# ----------------------------------------------------------------------
# training smoke: the loss must actually go down
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", MODELS)
def test_fit_reduces_loss_on_overfit_problem(name):
    rng = np.random.default_rng(21)
    model = SequenceRegressor(
        2, output_dim=2, hidden_size=8, num_layers=2, seed=5, backbone=name
    )
    x = rng.random((16, 5, 2))
    y = rng.random((16, 2))
    losses = model.fit(
        x,
        y,
        epochs=30,
        batch_size=8,
        optimizer=RMSprop(0.01),
        rng=np.random.default_rng(6),
    )
    assert losses[-1] < losses[0] * 0.7, losses[:3] + losses[-3:]


# ----------------------------------------------------------------------
# full-model round trip + online update (per family)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module", params=MODELS)
def zoo_model(request, small_log, mini_config):
    """A trained end-to-end Desh model per registered family."""
    config = mini_config.replace(
        model=request.param,
        phase2=mini_config.phase2.__class__(
            hidden_size=16, epochs=40, learning_rate=0.01
        ),
    )
    train, _ = small_log.split(0.3)
    return Desh(config).fit(list(train.records), train_classifier=False)


def test_save_load_roundtrip_bit_identical_warn(zoo_model, test_split, tmp_path):
    save_model(zoo_model, tmp_path / "model")
    loaded = load_model(tmp_path / "model")
    assert loaded.config.model == zoo_model.config.model
    records = list(test_split.records)
    assert loaded.warn(records) == zoo_model.warn(records)


def test_online_update_supported(zoo_model, test_split):
    records = list(test_split.records)[:400]
    learned = zoo_model.update(records, epochs=2)
    assert learned >= 0
    assert isinstance(zoo_model.warn(records), list)


# ----------------------------------------------------------------------
# tensor contracts on every kernel
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "cls",
    [
        StackedLSTM,
        TCNBackbone,
        AttentionBackbone,
        CausalConv1d,
        TemporalBlock,
        AttentionLayer,
        LSTMCell,
    ],
)
def test_kernels_declare_tensor_contracts(cls):
    contracts = declared_contracts(cls)
    for method in ("forward", "backward"):
        assert method in contracts, f"{cls.__name__}.{method} lacks a contract"
    if hasattr(cls, "forward_infer"):
        assert "forward_infer" in contracts, (
            f"{cls.__name__}.forward_infer lacks a contract"
        )


@pytest.mark.parametrize("name", MODELS)
def test_registered_backbones_declare_contracts(name):
    contracts = declared_contracts(get_model(name).backbone)
    assert {"forward", "forward_infer", "backward"} <= set(contracts)


# ----------------------------------------------------------------------
# registry failure modes
# ----------------------------------------------------------------------
def test_unknown_model_raises_configerror_naming_registry():
    with pytest.raises(ConfigError) as exc:
        get_model("bogus")
    message = str(exc.value)
    for name in MODELS:
        assert name in message


def test_unknown_hyperparameter_raises_configerror():
    with pytest.raises(ConfigError, match="kernel_size"):
        get_model("tcn").resolve_params({"stride": 2})


def test_unknown_backbone_in_model_ctor():
    with pytest.raises(ConfigError, match="registered models"):
        SequenceRegressor(2, backbone="bogus")
