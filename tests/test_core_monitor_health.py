"""Tests for StreamingMonitor health transitions, eviction and state.

Satellite coverage for the serving layer's dependencies on the monitor:
the healthy → degraded → recovered status machine, eager terminal
episode close, LRU eviction under sustained feed, forced degraded mode
and the checkpointable state dict.
"""

import pytest

from repro.core import StreamingMonitor
from repro.core.phase3 import PartialScore
from repro.errors import ConfigError, PredictionError
from repro.events import Label, ParsedEvent
from repro.topology import CrayNodeId


class _FakeParser:
    """Pass-through parser: the 'records' fed in are already events."""

    def encode(self, record):
        return record


class _FakeScorer:
    """Scripted phase-3 stand-in: fail or flag on demand."""

    def __init__(self):
        self.fail = False
        self.flag = False

    def score_partial(self, events):
        if self.fail:
            raise PredictionError("scripted scoring failure")
        return self.flag, 0.5, 60.0

    def score_partial_batch(self, units):
        # Same shape as Phase3Predictor.score_partial_batch: a scoring
        # failure is attributed to the unit, never raised.
        results = []
        for events in units:
            try:
                results.append(PartialScore(*self.score_partial(events)))
            except PredictionError as exc:
                results.append(
                    PartialScore(False, float("inf"), 0.0, error=exc)
                )
        return results


class _FakeModel:
    def __init__(self):
        self.parser = _FakeParser()
        self.predictor = _FakeScorer()
        self.classifier = None


def _event(ts, node="c0-0c0s0n0", terminal=False, phrase=5):
    return ParsedEvent(
        timestamp=float(ts),
        phrase_id=phrase,
        node=CrayNodeId.parse(node),
        label=Label.ERROR,
        terminal=terminal,
    )


@pytest.fixture
def model():
    return _FakeModel()


@pytest.fixture
def monitor(model):
    return StreamingMonitor(model, recovery_successes=3)


class TestStatusTransitions:
    def test_starts_healthy(self, monitor):
        assert monitor.status == "healthy"
        assert monitor.health().status == "healthy"

    def test_scoring_failure_degrades(self, monitor, model):
        monitor.feed(_event(1.0))
        assert monitor.status == "healthy"
        model.predictor.fail = True
        monitor.feed(_event(2.0))
        assert monitor.status == "degraded"
        assert monitor.degraded_skips == 1
        assert monitor.health().status == "degraded"

    def test_recovers_after_consecutive_successes(self, monitor, model):
        model.predictor.fail = True
        monitor.feed(_event(1.0))
        model.predictor.fail = False
        monitor.feed(_event(2.0))
        monitor.feed(_event(3.0))
        assert monitor.status == "degraded"  # 2 of 3 needed
        monitor.feed(_event(4.0))
        assert monitor.status == "recovered"

    def test_failure_resets_recovery_progress(self, monitor, model):
        model.predictor.fail = True
        monitor.feed(_event(1.0))
        model.predictor.fail = False
        monitor.feed(_event(2.0))
        monitor.feed(_event(3.0))
        model.predictor.fail = True
        monitor.feed(_event(4.0))  # relapse: progress resets
        model.predictor.fail = False
        monitor.feed(_event(5.0))
        monitor.feed(_event(6.0))
        assert monitor.status == "degraded"
        monitor.feed(_event(7.0))
        assert monitor.status == "recovered"

    def test_forced_degraded_mode_skips_scoring_and_degrades_status(
        self, monitor
    ):
        monitor.degraded_mode = True
        monitor.feed(_event(1.0))
        assert monitor.scores_attempted == 0
        assert monitor.degraded_skips == 1
        assert monitor.status == "degraded"
        # Events are still buffered: the episode stays warm.
        assert monitor.open_episode(CrayNodeId.parse("c0-0c0s0n0"))

    def test_scores_attempted_counts_only_real_attempts(self, monitor):
        monitor.feed(_event(1.0))
        monitor.feed(_event(2.0))
        monitor.degraded_mode = True
        monitor.feed(_event(3.0))
        assert monitor.scores_attempted == 2
        assert monitor.health().scores_attempted == 2

    def test_rejects_bad_recovery_successes(self, model):
        with pytest.raises(ConfigError):
            StreamingMonitor(model, recovery_successes=0)


class TestEpisodeLifecycle:
    def test_terminal_event_closes_episode_eagerly(self, monitor):
        monitor.feed(_event(1.0))
        monitor.feed(_event(2.0, terminal=True))
        node = CrayNodeId.parse("c0-0c0s0n0")
        assert monitor.open_episode(node) == ()
        assert not monitor.has_alerted(node)
        assert monitor.episodes_closed == 1
        assert node not in monitor.pending_nodes()

    def test_terminal_close_clears_alert_latch(self, monitor, model):
        model.predictor.flag = True
        warning = monitor.feed(_event(1.0))
        assert warning is not None
        node = CrayNodeId.parse("c0-0c0s0n0")
        assert monitor.has_alerted(node)
        monitor.feed(_event(2.0, terminal=True))
        assert not monitor.has_alerted(node)
        # The next episode on the same node may alert again.
        warning = monitor.feed(_event(3.0))
        assert warning is not None

    def test_gap_closes_episode_and_starts_fresh(self, monitor):
        monitor.feed(_event(1.0))
        monitor.feed(_event(2.0))
        monitor.feed(_event(2000.0))  # beyond the 600 s default gap
        node = CrayNodeId.parse("c0-0c0s0n0")
        assert len(monitor.open_episode(node)) == 1
        assert monitor.episodes_closed == 1


class TestEviction:
    def test_lru_node_eviction_under_sustained_feed(self, model):
        monitor = StreamingMonitor(model, max_nodes=4)
        nodes = [f"c0-0c0s{s}n{n}" for s in range(4) for n in range(2)]
        for ts, node in enumerate(nodes):
            monitor.feed(_event(float(ts + 1), node=node))
        assert len(monitor.pending_nodes()) == 4
        assert monitor.nodes_evicted == 4
        # The survivors are the most recently active nodes.
        tracked = {str(n) for n in monitor.pending_nodes()}
        assert tracked == set(nodes[-4:])

    def test_touch_refreshes_lru_position(self, model):
        monitor = StreamingMonitor(model, max_nodes=2)
        monitor.feed(_event(1.0, node="c0-0c0s0n0"))
        monitor.feed(_event(2.0, node="c0-0c0s0n1"))
        monitor.feed(_event(3.0, node="c0-0c0s0n0"))  # refresh oldest
        monitor.feed(_event(4.0, node="c0-0c0s1n0"))  # evicts s0n1
        tracked = {str(n) for n in monitor.pending_nodes()}
        assert tracked == {"c0-0c0s0n0", "c0-0c0s1n0"}

    def test_event_buffer_bounded_per_node(self, model):
        monitor = StreamingMonitor(model, max_events_per_node=8)
        for ts in range(20):
            monitor.feed(_event(float(ts) / 10.0))
        node = CrayNodeId.parse("c0-0c0s0n0")
        assert len(monitor.open_episode(node)) == 8
        assert monitor.events_evicted == 12


class TestStateDict:
    def test_round_trip_preserves_everything(self, model):
        monitor = StreamingMonitor(model, recovery_successes=2)
        model.predictor.flag = True
        monitor.feed(_event(1.0, node="c0-0c0s0n0"))
        model.predictor.flag = False
        model.predictor.fail = True
        monitor.feed(_event(2.0, node="c0-0c0s0n1"))
        model.predictor.fail = False
        monitor.feed(_event(3.0, node="c0-0c0s1n0"))

        restored = StreamingMonitor(model, recovery_successes=2)
        restored.load_state_dict(monitor.state_dict())
        assert restored.state_dict() == monitor.state_dict()
        assert restored.status == monitor.status == "degraded"
        assert restored.has_alerted(CrayNodeId.parse("c0-0c0s0n0"))
        # LRU order survives: evict behavior matches from here on.
        assert [str(n) for n in restored.pending_nodes()] == [
            str(n) for n in monitor.pending_nodes()
        ]

    def test_resumed_feed_matches_uninterrupted(self, model):
        events = [
            _event(float(ts + 1), node=f"c0-0c0s{ts % 2}n{ts % 2}")
            for ts in range(30)
        ]
        straight = StreamingMonitor(model)
        for event in events:
            straight.feed(event)

        first = StreamingMonitor(model)
        for event in events[:15]:
            first.feed(event)
        resumed = StreamingMonitor(model)
        resumed.load_state_dict(first.state_dict())
        for event in events[15:]:
            resumed.feed(event)
        assert resumed.state_dict() == straight.state_dict()

    def test_load_rejects_unknown_version(self, monitor):
        with pytest.raises(ConfigError):
            monitor.load_state_dict({"version": 99})
