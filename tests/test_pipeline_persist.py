"""Full-model persistence and cached inference-side parsing.

The headline regression: ``save``/``load`` must round-trip a trained
model to identical ``warn()`` output — the legacy persistence kept only
the regressor + vocabulary and silently dropped the classifier, chains
and embeddings.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis import evaluate_model
from repro.cli import load_predictor, save_model
from repro.config import DeshConfig
from repro.core.desh import DeshModel
from repro.errors import SerializationError
from repro.pipeline import ArtifactStore, load_model
from repro.resilience import FAULT_PROFILES, chaos_evaluation


def _warn_tuples(model, records):
    return [
        (w.node, w.decision_time, w.lead_seconds, w.mse, w.likely_class)
        for w in model.warn(records)
    ]


class TestFullModelRoundTrip:
    def test_warn_output_identical_after_reload(
        self, trained_model, test_split, tmp_path
    ):
        trained_model.save(tmp_path / "model")
        loaded = DeshModel.load(tmp_path / "model")
        records = list(test_split.records)
        assert _warn_tuples(trained_model, records) == _warn_tuples(
            loaded, records
        )

    def test_reloaded_components_complete(self, trained_model, tmp_path):
        trained_model.save(tmp_path / "model")
        loaded = DeshModel.load(tmp_path / "model")
        assert loaded.num_chains == trained_model.num_chains
        assert loaded.num_phrases == trained_model.num_phrases
        assert loaded.config == trained_model.config
        assert (loaded.classifier is None) == (trained_model.classifier is None)
        assert (
            loaded.phase1.embedder.state_arrays()["w_in"]
            == trained_model.phase1.embedder.state_arrays()["w_in"]
        ).all()
        assert loaded.phase2.losses == pytest.approx(trained_model.phase2.losses)

    def test_reloaded_model_supports_online_update(
        self, trained_model, test_split, tmp_path
    ):
        trained_model.save(tmp_path / "model")
        loaded = DeshModel.load(tmp_path / "model")
        before = loaded.num_chains
        learned = loaded.update(list(test_split.records), epochs=1)
        assert learned > 0
        assert loaded.num_chains == before + learned

    def test_cli_save_model_writes_legacy_superset(
        self, trained_model, tmp_path
    ):
        """New directories keep every legacy file + key, so old readers work."""
        save_model(trained_model, tmp_path / "model")
        meta = json.loads((tmp_path / "model" / "meta.json").read_text())
        for key in (
            "max_lead_seconds",
            "vocab_size",
            "id_scale",
            "num_chains",
            "config_seed",
        ):
            assert key in meta
        parser, predictor = load_predictor(
            tmp_path / "model", trained_model.config
        )
        assert parser.num_phrases == trained_model.num_phrases
        assert (
            predictor.scaler.max_lead_seconds
            == trained_model.phase2.scaler.max_lead_seconds
        )

    def test_legacy_directory_rejected_with_clear_error(
        self, trained_model, tmp_path
    ):
        """Pre-pipeline (format-1) directories fail loudly, not lossily."""
        directory = tmp_path / "legacy"
        directory.mkdir()
        trained_model.phase2.regressor.save(directory / "phase2.npz")
        trained_model.parser.vocab.save(directory / "vocab.json")
        (directory / "meta.json").write_text(
            json.dumps(
                {
                    "max_lead_seconds": 1.0,
                    "vocab_size": 2,
                    "id_scale": 1.0,
                    "num_chains": 0,
                    "config_seed": 0,
                }
            )
        )
        with pytest.raises(SerializationError, match="legacy"):
            load_model(directory)

    def test_unreadable_metadata_rejected(self, tmp_path):
        with pytest.raises(SerializationError, match="metadata"):
            load_model(tmp_path)

    def test_garbled_model_name_rejected_naming_registry(
        self, trained_model, tmp_path
    ):
        """A corrupt manifest model name is a ConfigError, not a KeyError."""
        from repro.errors import ConfigError
        from repro.nn import registered_models

        directory = tmp_path / "garbled"
        save_model(trained_model, directory)
        meta = json.loads((directory / "meta.json").read_text())
        meta["model"] = "lstm-v9-typo"
        (directory / "meta.json").write_text(json.dumps(meta))
        with pytest.raises(ConfigError) as exc:
            load_model(directory)
        for name in registered_models():
            assert name in str(exc.value)


class TestCachedEvaluation:
    def test_evaluate_model_caches_encoded_test_stream(
        self, trained_model, test_split, tmp_path
    ):
        store = ArtifactStore(tmp_path / "cache")
        records = list(test_split.records)
        first = evaluate_model(
            trained_model, records, test_split.ground_truth, store=store
        )
        assert any(e["stage"] == "encode" for e in store.entries())
        second = evaluate_model(
            trained_model, records, test_split.ground_truth, store=store
        )
        assert first.counts == second.counts
        # And matches the uncached path exactly.
        uncached = evaluate_model(
            trained_model, records, test_split.ground_truth, store=None
        )
        assert first.counts == uncached.counts

    def test_corrupt_encode_artifact_is_reencoded(
        self, trained_model, test_split, tmp_path
    ):
        store = ArtifactStore(tmp_path / "cache")
        records = list(test_split.records)
        first = evaluate_model(
            trained_model, records, test_split.ground_truth, store=store
        )
        for entry in store.entries():
            if entry["stage"] == "encode":
                from pathlib import Path

                (Path(entry["path"]) / "events.npz").write_bytes(b"garbage")
        again = evaluate_model(
            trained_model, records, test_split.ground_truth, store=store
        )
        assert first.counts == again.counts

    def test_chaos_evaluation_routes_through_store(
        self, trained_model, test_split, tmp_path
    ):
        store = ArtifactStore(tmp_path / "cache")
        records = list(test_split.records)
        report = chaos_evaluation(
            trained_model,
            records,
            test_split.ground_truth,
            FAULT_PROFILES["mild"],
            seed=1,
            store=store,
        )
        assert report.lines_accounted
        encode_entries = [
            e for e in store.entries() if e["stage"] == "encode"
        ]
        # Clean + post-ingest chaotic streams were both cached.
        assert len(encode_entries) == 2
        # Re-running the same profile serves both parses from cache and
        # reproduces the metrics exactly.
        again = chaos_evaluation(
            trained_model,
            records,
            test_split.ground_truth,
            FAULT_PROFILES["mild"],
            seed=1,
            store=store,
        )
        assert again.clean.counts == report.clean.counts
        assert again.chaotic.counts == report.chaotic.counts
