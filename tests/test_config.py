"""Tests for configuration dataclasses (Table 5 defaults + validation)."""

import pytest

from repro.config import (
    DeshConfig,
    EmbeddingConfig,
    Phase1Config,
    Phase2Config,
    Phase3Config,
)
from repro.errors import ConfigError


class TestTable5Defaults:
    """The defaults must match the paper's Table 5 specification."""

    def test_phase1_hidden_layers(self):
        assert Phase1Config().hidden_layers == 2

    def test_phase1_steps(self):
        assert Phase1Config().prediction_steps == 3

    def test_phase1_history(self):
        assert Phase1Config().history_size == 8

    def test_phase2_hidden_layers(self):
        assert Phase2Config().hidden_layers == 2

    def test_phase2_steps(self):
        assert Phase2Config().prediction_steps == 1

    def test_phase2_history(self):
        assert Phase2Config().history_size == 5

    def test_phase3_history(self):
        assert Phase3Config().history_size == 5

    def test_embedding_windows_8_left_3_right(self):
        cfg = EmbeddingConfig()
        assert (cfg.window_left, cfg.window_right) == (8, 3)

    def test_train_fraction_30_percent(self):
        assert DeshConfig().train_fraction == pytest.approx(0.30)


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"dim": 0},
            {"window_left": -1},
            {"negatives": 0},
            {"learning_rate": 0.0},
            {"learning_rate": 0.001, "min_learning_rate": 0.01},
        ],
    )
    def test_embedding_rejects(self, kwargs):
        with pytest.raises(ConfigError):
            EmbeddingConfig(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"hidden_size": 0},
            {"history_size": 0},
            {"prediction_steps": 0},
            {"epochs": -1},
            {"grad_clip": 0.0},
        ],
    )
    def test_phase1_rejects(self, kwargs):
        with pytest.raises(ConfigError):
            Phase1Config(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rho": 0.0},
            {"rho": 1.0},
            {"max_lead_seconds": 0.0},
            {"corrupt_prob": 1.0},
            {"corrupt_prob": -0.1},
        ],
    )
    def test_phase2_rejects(self, kwargs):
        with pytest.raises(ConfigError):
            Phase2Config(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mse_threshold": 0.0},
            {"min_chain_events": 0},
            {"confirmation_windows": 0},
            {"max_suffix_skip": -1},
        ],
    )
    def test_phase3_rejects(self, kwargs):
        with pytest.raises(ConfigError):
            Phase3Config(**kwargs)

    def test_phase3_allows_flag_position_zero(self):
        assert Phase3Config(flag_position=0).flag_position == 0

    @pytest.mark.parametrize("fraction", [0.0, 1.0, -0.5, 2.0])
    def test_desh_rejects_bad_fraction(self, fraction):
        with pytest.raises(ConfigError):
            DeshConfig(train_fraction=fraction)


class TestReplace:
    def test_replace_returns_copy(self):
        base = DeshConfig()
        other = base.replace(seed=99)
        assert other.seed == 99
        assert base.seed != 99

    def test_configs_are_frozen(self):
        with pytest.raises(Exception):
            DeshConfig().seed = 1  # type: ignore[misc]

    def test_phase2_augmentation_defaults(self):
        cfg = Phase2Config()
        assert cfg.augment_copies >= 1
        assert 0.0 <= cfg.corrupt_prob < 1.0
