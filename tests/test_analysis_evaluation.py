"""Tests for joining verdicts with ground truth."""

import pytest

from repro.analysis.evaluation import EpisodeKind, Evaluator
from repro.core.chains import Episode
from repro.core.phase3 import EpisodeVerdict
from repro.errors import DatasetError
from repro.events import Label, ParsedEvent
from repro.simlog.faults import FailureClass
from repro.simlog.generator import FailureEvent, GroundTruth, NearMissEvent
from repro.topology import CrayNodeId

NODE = CrayNodeId(0, 0, 0, 0, 0)
OTHER = CrayNodeId(0, 0, 0, 0, 1)


def episode(node, start, end):
    events = (
        ParsedEvent(timestamp=start, phrase_id=1, node=node),
        ParsedEvent(timestamp=end, phrase_id=2, node=node),
    )
    return Episode(node, events)


def verdict(node, start, end, flagged, lead=50.0):
    return EpisodeVerdict(
        episode=episode(node, start, end),
        flagged=flagged,
        mse=0.1 if flagged else 9.9,
        decision_index=0 if flagged else -1,
        decision_time=start if flagged else float("nan"),
        lead_seconds=lead if flagged else 0.0,
    )


@pytest.fixture
def truth():
    return GroundTruth(
        failures=[
            FailureEvent(NODE, FailureClass.MCE, "mce", 900.0, 1000.0),
            FailureEvent(OTHER, FailureClass.PANIC, "panic", 1950.0, 2000.0),
        ],
        near_misses=[
            NearMissEvent(NODE, FailureClass.MCE, "mce", 3000.0, 3100.0),
        ],
    )


class TestClassify:
    def test_chain_match(self, truth):
        e = Evaluator(truth)
        scored = e.classify(verdict(NODE, 900.0, 1000.0, True))
        assert scored.kind is EpisodeKind.CHAIN
        assert scored.failure_class is FailureClass.MCE

    def test_chain_requires_same_node(self, truth):
        e = Evaluator(truth)
        scored = e.classify(verdict(OTHER, 900.0, 1000.0, True))
        assert scored.kind is not EpisodeKind.CHAIN

    def test_near_miss_match(self, truth):
        e = Evaluator(truth)
        scored = e.classify(verdict(NODE, 3000.0, 3090.0, True))
        assert scored.kind is EpisodeKind.NEAR_MISS

    def test_clutter_fallback(self, truth):
        e = Evaluator(truth)
        scored = e.classify(verdict(NODE, 5000.0, 5050.0, False))
        assert scored.kind is EpisodeKind.CLUTTER

    def test_slack_extends_match(self, truth):
        e = Evaluator(truth, slack=60.0)
        # Episode ends 40s before the terminal; slack covers it.
        scored = e.classify(verdict(NODE, 900.0, 960.0, True))
        assert scored.kind is EpisodeKind.CHAIN


class TestEvaluate:
    def test_confusion_counting(self, truth):
        verdicts = [
            verdict(NODE, 900.0, 1000.0, True),  # TP (chain flagged)
            verdict(OTHER, 1950.0, 2000.0, False),  # FN (chain missed)
            verdict(NODE, 3000.0, 3100.0, True),  # FP (near miss flagged)
            verdict(OTHER, 5000.0, 5050.0, False),  # TN (clutter quiet)
        ]
        result = Evaluator(truth).evaluate(verdicts)
        assert (result.counts.tp, result.counts.fp) == (1, 1)
        assert (result.counts.fn, result.counts.tn) == (1, 1)

    def test_uncovered_failure_counts_as_fn(self, truth):
        """A failure with no episode at all is still a miss."""
        result = Evaluator(truth).evaluate([verdict(NODE, 900.0, 1000.0, True)])
        assert result.counts.fn == 1
        assert len(result.uncovered_failures) == 1
        assert result.uncovered_failures[0].node == OTHER

    def test_lead_times_from_true_positives_only(self, truth):
        verdicts = [
            verdict(NODE, 900.0, 1000.0, True, lead=80.0),
            verdict(NODE, 3000.0, 3100.0, True, lead=40.0),  # FP, excluded
        ]
        result = Evaluator(truth).evaluate(verdicts)
        assert result.lead_times().tolist() == [80.0]

    def test_true_and_false_positive_lists(self, truth):
        verdicts = [
            verdict(NODE, 900.0, 1000.0, True),
            verdict(NODE, 3000.0, 3100.0, True),
        ]
        result = Evaluator(truth).evaluate(verdicts)
        assert len(result.true_positives()) == 1
        assert len(result.false_positives()) == 1

    def test_metrics_property(self, truth):
        result = Evaluator(truth).evaluate(
            [
                verdict(NODE, 900.0, 1000.0, True),
                verdict(OTHER, 1950.0, 2000.0, True),
            ]
        )
        assert result.metrics.recall == pytest.approx(100.0)

    def test_rejects_negative_slack(self, truth):
        with pytest.raises(DatasetError):
            Evaluator(truth, slack=-1.0)
