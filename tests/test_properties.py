"""Cross-cutting property-based tests (hypothesis).

These target invariants that hold for *any* valid input, complementing
the per-module example-based tests.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.chains import segment_episodes
from repro.core.deltas import LeadTimeScaler, chain_to_deltas
from repro.events import EventSequence, Label, ParsedEvent
from repro.nn.activations import softmax
from repro.nn.data import sliding_windows_continuous
from repro.parallel import shard_sequences
from repro.parsing.tokenizer import mask_message
from repro.topology import ClusterTopology, CrayNodeId

NODE = CrayNodeId(0, 0, 0, 0, 0)


# ----------------------------------------------------------------------
# tokenizer
# ----------------------------------------------------------------------
printable = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126), min_size=1, max_size=80
)


@given(printable)
def test_masking_is_idempotent(message):
    once = mask_message(message)
    assert mask_message(once) == once


@given(printable)
def test_masking_never_raises_and_shrinks_or_holds_tokens(message):
    masked = mask_message(message)
    # Masking never invents additional whitespace-separated tokens beyond
    # splitting existing ones; token count can only stay or shrink.
    assert len(masked.split(" ")) <= max(len(message.split()), 1)


# ----------------------------------------------------------------------
# deltas / scaler
# ----------------------------------------------------------------------
@given(
    st.lists(st.floats(0, 1e6, allow_nan=False), min_size=1, max_size=30),
)
def test_deltas_antitone_and_anchored(times):
    ts = np.sort(np.asarray(times))
    deltas = chain_to_deltas(ts)
    assert deltas[-1] == 0.0
    assert np.all(np.diff(deltas) <= 1e-9)


@given(
    st.integers(2, 200),
    st.floats(1.0, 10_000.0),
    st.floats(0.1, 16.0),
)
def test_scaler_round_trip_any_config(vocab, horizon, id_scale):
    scaler = LeadTimeScaler(horizon, vocab, id_scale=id_scale)
    ids = np.arange(vocab)
    enc = scaler.encode(np.zeros(vocab), ids)
    assert np.array_equal(scaler.decode_phrase_id(enc[:, 1]), ids)


@given(st.integers(2, 100))
def test_paper_mse_zero_iff_equal(vocab):
    scaler = LeadTimeScaler(600.0, vocab)
    v = scaler.encode(np.array([10.0, 0.0]), np.array([0, vocab - 1]))
    assert np.allclose(scaler.mse_paper_units(v, v), 0.0)


# ----------------------------------------------------------------------
# episode segmentation
# ----------------------------------------------------------------------
@st.composite
def anomalous_sequences(draw):
    n = draw(st.integers(0, 25))
    times = sorted(draw(st.lists(st.floats(0, 1e5), min_size=n, max_size=n)))
    events = []
    for i, t in enumerate(times):
        terminal = draw(st.booleans()) and draw(st.booleans())  # ~25%
        events.append(
            ParsedEvent(
                timestamp=t,
                phrase_id=draw(st.integers(0, 10)),
                node=NODE,
                label=Label.ERROR if terminal else Label.UNKNOWN,
                terminal=terminal,
            )
        )
    return EventSequence(NODE, events)


@given(anomalous_sequences(), st.floats(1.0, 1e4))
@settings(max_examples=60)
def test_episode_partition_properties(seq, gap):
    episodes = segment_episodes(seq, gap=gap, min_events=1)
    # Episodes partition the anomalous events (min_events=1 keeps all).
    total = sum(len(e) for e in episodes)
    assert total == len(seq)
    for ep in episodes:
        times = ep.timestamps()
        # intra-episode gaps bounded...
        assert np.all(np.diff(times) <= gap + 1e-6)
        # ...and terminals only ever in final position.
        for event in ep.events[:-1]:
            assert not event.terminal


# ----------------------------------------------------------------------
# sharding
# ----------------------------------------------------------------------
@given(st.lists(st.integers(1, 40), min_size=0, max_size=30), st.integers(1, 8))
@settings(max_examples=60)
def test_sharding_partitions_and_balances(lengths, shards):
    seqs = []
    for i, n in enumerate(lengths):
        node = CrayNodeId(0, 0, 0, 0, i % 4)
        seqs.append(
            EventSequence(
                node,
                [
                    ParsedEvent(timestamp=float(j), phrase_id=0, node=node)
                    for j in range(n)
                ],
            )
        )
    out = shard_sequences(seqs, shards)
    assert len(out) == shards
    flat = [s for shard in out for s in shard]
    assert sorted(id(s) for s in flat) == sorted(id(s) for s in seqs)
    if lengths:
        loads = [sum(len(s) for s in shard) for shard in out]
        # LPT guarantee: max load <= optimal * 4/3 + largest item.
        assert max(loads) <= (sum(lengths) / shards) * (4 / 3) + max(lengths)


# ----------------------------------------------------------------------
# windows
# ----------------------------------------------------------------------
@given(st.integers(1, 40), st.integers(1, 6), st.integers(1, 3))
def test_continuous_window_count(t, history, steps):
    seq = np.arange(t * 2, dtype=float).reshape(t, 2)
    x, y = sliding_windows_continuous(seq, history, steps)
    assert len(x) == max(0, t - history - steps + 1)


# ----------------------------------------------------------------------
# topology
# ----------------------------------------------------------------------
@given(
    st.integers(1, 4),
    st.integers(1, 2),
    st.integers(1, 3),
    st.integers(1, 4),
    st.integers(1, 4),
)
def test_topology_enumeration_bijective(cols, rows, chassis, slots, blades):
    topo = ClusterTopology(cols, rows, chassis, slots, blades)
    seen = set()
    for i in range(topo.num_nodes):
        node = topo.node_at(i)
        assert topo.index_of(node) == i
        seen.add(node)
    assert len(seen) == topo.num_nodes


# ----------------------------------------------------------------------
# nn numerics
# ----------------------------------------------------------------------
@given(
    st.lists(
        st.floats(-1e3, 1e3, allow_nan=False), min_size=2, max_size=30
    )
)
def test_softmax_is_distribution(xs):
    p = softmax(np.array(xs))
    assert np.all(p >= 0)
    assert p.sum() == pytest.approx(1.0, abs=1e-9)
