"""Tests for the sequence classifier and regressor models."""

import numpy as np
import pytest

from repro.errors import NotFittedError, SerializationError, ShapeError, TrainingError
from repro.nn.data import sliding_windows, sliding_windows_continuous
from repro.nn.model import SequenceClassifier, SequenceRegressor


@pytest.fixture(scope="module")
def cyclic_data():
    """A deterministic cyclic phrase sequence the model must memorize."""
    seq = np.array(list(range(8)) * 40)
    return sliding_windows(seq, history=8, steps=3)


@pytest.fixture(scope="module")
def trained_classifier(cyclic_data):
    x, y = cyclic_data
    model = SequenceClassifier(8, embed_dim=8, hidden_size=16, steps=3, seed=1)
    model.fit(x, y, epochs=6, batch_size=32)
    return model


@pytest.fixture(scope="module")
def sine_data():
    t = np.linspace(0, 12 * np.pi, 800)
    sig = np.stack([np.sin(t), np.cos(t)], axis=1)
    x, y = sliding_windows_continuous(sig, history=5, steps=1)
    return x, y[:, 0, :]


@pytest.fixture(scope="module")
def trained_regressor(sine_data):
    x, y = sine_data
    model = SequenceRegressor(2, hidden_size=16, seed=2)
    model.fit(x, y, epochs=4, batch_size=64)
    return model


class TestSequenceClassifier:
    def test_learns_cyclic_sequence(self, trained_classifier, cyclic_data):
        x, y = cyclic_data
        assert trained_classifier.accuracy(x, y) > 0.95

    def test_loss_decreases(self, trained_classifier):
        assert trained_classifier.history[-1] < trained_classifier.history[0]

    def test_predict_logits_shape(self, trained_classifier, cyclic_data):
        x, _ = cyclic_data
        assert trained_classifier.predict_logits(x[:5]).shape == (5, 3, 8)

    def test_predict_next_shape(self, trained_classifier, cyclic_data):
        x, _ = cyclic_data
        assert trained_classifier.predict_next(x[:5]).shape == (5, 3)

    def test_topk_contains_argmax(self, trained_classifier, cyclic_data):
        x, _ = cyclic_data
        best = trained_classifier.predict_next(x[:10])
        top3 = trained_classifier.predict_topk(x[:10], 3)
        for i in range(10):
            for s in range(3):
                assert best[i, s] in top3[i, s]

    def test_autoregressive_matches_cycle(self, trained_classifier):
        """Feeding predictions back continues the memorized cycle."""
        window = np.array([[0, 1, 2, 3, 4, 5, 6, 7]])
        preds = trained_classifier.predict_autoregressive(window, 4)
        assert preds.tolist() == [[0, 1, 2, 3]]

    def test_autoregressive_shape_and_validation(self, trained_classifier):
        window = np.array([[0, 1, 2, 3, 4, 5, 6, 7], [1, 2, 3, 4, 5, 6, 7, 0]])
        assert trained_classifier.predict_autoregressive(window, 2).shape == (2, 2)
        with pytest.raises(ShapeError):
            trained_classifier.predict_autoregressive(window, 0)
        with pytest.raises(ShapeError):
            trained_classifier.predict_autoregressive(np.array([0, 1]), 1)

    def test_autoregressive_before_fit_raises(self):
        model = SequenceClassifier(8, steps=1)
        with pytest.raises(NotFittedError):
            model.predict_autoregressive(np.zeros((1, 4), dtype=int), 2)

    def test_topk_bounds(self, trained_classifier, cyclic_data):
        x, _ = cyclic_data
        with pytest.raises(ShapeError):
            trained_classifier.predict_topk(x[:1], 0)
        with pytest.raises(ShapeError):
            trained_classifier.predict_topk(x[:1], 9)

    def test_predict_before_fit_raises(self):
        model = SequenceClassifier(8, steps=1)
        with pytest.raises(NotFittedError):
            model.predict_logits(np.zeros((1, 4), dtype=int))

    def test_fit_rejects_bad_shapes(self):
        model = SequenceClassifier(8, steps=2)
        with pytest.raises(ShapeError):
            model.fit(np.zeros((4, 3), dtype=int), np.zeros((4, 3), dtype=int))

    def test_fit_rejects_empty(self):
        model = SequenceClassifier(8, steps=1)
        with pytest.raises(TrainingError):
            model.fit(np.zeros((0, 3), dtype=int), np.zeros((0, 1), dtype=int))

    def test_rejects_tiny_vocab(self):
        with pytest.raises(ShapeError):
            SequenceClassifier(1)

    def test_pretrained_embeddings_used(self):
        vecs = np.full((8, 4), 0.25)
        model = SequenceClassifier(8, embed_dim=4, pretrained_embeddings=vecs)
        assert np.array_equal(model.embedding.W, vecs)

    def test_save_load_round_trip(self, trained_classifier, cyclic_data, tmp_path):
        x, _ = cyclic_data
        path = tmp_path / "clf.npz"
        trained_classifier.save(path)
        loaded = SequenceClassifier.load(path)
        assert np.allclose(
            loaded.predict_logits(x[:4]), trained_classifier.predict_logits(x[:4])
        )

    def test_load_wrong_kind_raises(self, trained_regressor, tmp_path):
        path = tmp_path / "reg.npz"
        trained_regressor.save(path)
        with pytest.raises(SerializationError):
            SequenceClassifier.load(path)

    def test_load_missing_raises(self, tmp_path):
        with pytest.raises(SerializationError):
            SequenceClassifier.load(tmp_path / "nope.npz")


class TestSequenceRegressor:
    def test_learns_sine(self, trained_regressor, sine_data):
        x, y = sine_data
        pred = trained_regressor.predict(x[:100])
        assert np.mean((pred - y[:100]) ** 2) < 0.01

    def test_loss_decreases(self, trained_regressor):
        assert trained_regressor.history[-1] < trained_regressor.history[0]

    def test_mse_per_sample_shape(self, trained_regressor, sine_data):
        x, y = sine_data
        mses = trained_regressor.mse_per_sample(x[:7], y[:7])
        assert mses.shape == (7,)
        assert np.all(mses >= 0)

    def test_mse_per_sample_rejects_mismatch(self, trained_regressor, sine_data):
        x, _ = sine_data
        with pytest.raises(ShapeError):
            trained_regressor.mse_per_sample(x[:3], np.zeros((3, 5)))

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            SequenceRegressor(2).predict(np.zeros((1, 5, 2)))

    def test_forward_rejects_wrong_dim(self, trained_regressor):
        with pytest.raises(ShapeError):
            trained_regressor.forward(np.zeros((2, 5, 3)))

    def test_separate_output_dim(self):
        model = SequenceRegressor(4, output_dim=2, hidden_size=8)
        x = np.random.default_rng(0).standard_normal((3, 5, 4))
        assert model.forward(x).shape == (3, 2)

    def test_save_load_round_trip(self, trained_regressor, sine_data, tmp_path):
        x, _ = sine_data
        path = tmp_path / "reg.npz"
        trained_regressor.save(path)
        loaded = SequenceRegressor.load(path)
        assert np.allclose(loaded.predict(x[:4]), trained_regressor.predict(x[:4]))

    def test_fit_rejects_bad_target_shape(self):
        model = SequenceRegressor(2)
        with pytest.raises(ShapeError):
            model.fit(np.zeros((4, 5, 2)), np.zeros((4, 3)))
