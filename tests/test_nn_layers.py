"""Tests for Dense and Embedding layers, including gradient checks."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn.initializers import glorot_uniform, orthogonal, zeros
from repro.nn.layers import Dense, Embedding


def numeric_grad(f, x, eps=1e-6):
    """Central-difference gradient of scalar f with respect to array x."""
    g = np.zeros_like(x)
    flat_x, flat_g = x.reshape(-1), g.reshape(-1)
    for i in range(flat_x.size):
        old = flat_x[i]
        flat_x[i] = old + eps
        hi = f()
        flat_x[i] = old - eps
        lo = f()
        flat_x[i] = old
        flat_g[i] = (hi - lo) / (2 * eps)
    return g


class TestInitializers:
    def test_glorot_bounds(self, rng):
        w = glorot_uniform(rng, 10, 20)
        limit = np.sqrt(6.0 / 30)
        assert w.shape == (10, 20)
        assert np.all(np.abs(w) <= limit)

    def test_glorot_rejects_bad_dims(self, rng):
        with pytest.raises(ShapeError):
            glorot_uniform(rng, 0, 5)

    def test_orthogonal_square(self, rng):
        q = orthogonal(rng, 8, 8)
        assert np.allclose(q @ q.T, np.eye(8), atol=1e-10)

    def test_orthogonal_tall(self, rng):
        q = orthogonal(rng, 10, 4)
        assert np.allclose(q.T @ q, np.eye(4), atol=1e-10)

    def test_orthogonal_wide(self, rng):
        q = orthogonal(rng, 4, 10)
        assert np.allclose(q @ q.T, np.eye(4), atol=1e-10)

    def test_zeros(self):
        z = zeros(3, 4)
        assert z.shape == (3, 4) and not z.any()


class TestDense:
    def test_forward_shape(self, rng):
        layer = Dense(5, 3, rng)
        assert layer.forward(np.ones((7, 5))).shape == (7, 3)

    def test_forward_leading_axes(self, rng):
        layer = Dense(5, 3, rng)
        assert layer.forward(np.ones((2, 7, 5))).shape == (2, 7, 3)

    def test_forward_rejects_wrong_dim(self, rng):
        with pytest.raises(ShapeError):
            Dense(5, 3, rng).forward(np.ones((7, 4)))

    def test_backward_before_forward_raises(self, rng):
        with pytest.raises(ShapeError):
            Dense(5, 3, rng).backward(np.ones((7, 3)))

    def test_gradient_check(self, rng):
        layer = Dense(4, 3, rng)
        x = rng.standard_normal((6, 4))
        target = rng.standard_normal((6, 3))

        def loss():
            y = layer.forward(x)
            return 0.5 * float(np.sum((y - target) ** 2))

        y = layer.forward(x)
        layer.zero_grad()
        dx = layer.backward(y - target)

        assert np.allclose(numeric_grad(loss, layer.W), layer.dW, atol=1e-5)
        assert np.allclose(numeric_grad(loss, layer.b), layer.db, atol=1e-5)
        assert np.allclose(numeric_grad(loss, x), dx, atol=1e-5)

    def test_grads_accumulate_until_zeroed(self, rng):
        layer = Dense(4, 3, rng)
        x = rng.standard_normal((2, 4))
        dy = rng.standard_normal((2, 3))
        layer.forward(x)
        layer.backward(dy)
        first = layer.dW.copy()
        layer.forward(x)
        layer.backward(dy)
        assert np.allclose(layer.dW, 2 * first)
        layer.zero_grad()
        assert not layer.dW.any()

    def test_rejects_bad_dims(self, rng):
        with pytest.raises(ShapeError):
            Dense(0, 3, rng)


class TestEmbedding:
    def test_forward_shape(self, rng):
        emb = Embedding(10, 4, rng)
        out = emb.forward(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 4)

    def test_lookup_matches_table(self, rng):
        emb = Embedding(10, 4, rng)
        out = emb.forward(np.array([3]))
        assert np.array_equal(out[0], emb.W[3])

    def test_rejects_float_ids(self, rng):
        with pytest.raises(ShapeError):
            Embedding(10, 4, rng).forward(np.array([1.5]))

    def test_rejects_out_of_range(self, rng):
        with pytest.raises(ShapeError):
            Embedding(10, 4, rng).forward(np.array([10]))
        with pytest.raises(ShapeError):
            Embedding(10, 4, rng).forward(np.array([-1]))

    def test_backward_scatters_with_duplicates(self, rng):
        emb = Embedding(10, 4, rng)
        ids = np.array([2, 2, 5])
        emb.forward(ids)
        emb.backward(np.ones((3, 4)))
        assert np.allclose(emb.dW[2], 2.0)  # duplicate id accumulates
        assert np.allclose(emb.dW[5], 1.0)
        assert not emb.dW[0].any()

    def test_backward_before_forward_raises(self, rng):
        with pytest.raises(ShapeError):
            Embedding(10, 4, rng).backward(np.ones((1, 4)))

    def test_load_vectors(self, rng):
        emb = Embedding(5, 3, rng)
        vecs = np.arange(15, dtype=float).reshape(5, 3)
        emb.load_vectors(vecs)
        assert np.array_equal(emb.W, vecs)

    def test_load_vectors_shape_mismatch(self, rng):
        with pytest.raises(ShapeError):
            Embedding(5, 3, rng).load_vectors(np.ones((5, 4)))
