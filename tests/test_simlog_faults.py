"""Tests for failure classes, chain templates and the fault model."""

import numpy as np
import pytest

from repro.errors import LogGenerationError
from repro.simlog.faults import (
    PAPER_LEAD_TIMES,
    ChainTemplate,
    FailureClass,
    FaultModel,
    default_fault_model,
)
from repro.simlog.templates import default_catalog


class TestFailureClass:
    def test_six_classes(self):
        """Table 7 defines exactly six node-failure classes."""
        assert len(FailureClass) == 6

    def test_paper_lead_times_cover_all_classes(self):
        assert set(PAPER_LEAD_TIMES) == set(FailureClass)

    def test_panic_has_shortest_lead(self):
        """Kernel panics happen just before the failure (Section 4.2)."""
        assert min(PAPER_LEAD_TIMES, key=PAPER_LEAD_TIMES.get) is FailureClass.PANIC

    def test_mce_has_longest_lead(self):
        assert max(PAPER_LEAD_TIMES, key=PAPER_LEAD_TIMES.get) is FailureClass.MCE

    def test_table7_values(self):
        assert PAPER_LEAD_TIMES[FailureClass.JOB] == pytest.approx(81.52)
        assert PAPER_LEAD_TIMES[FailureClass.MCE] == pytest.approx(160.29)
        assert PAPER_LEAD_TIMES[FailureClass.PANIC] == pytest.approx(58.87)


class TestChainTemplate:
    def make(self, **kw):
        base = dict(
            name="t",
            failure_class=FailureClass.MCE,
            stage_keys=("mce_logged", "uncorr_mce"),
            lead_mean=100.0,
            lead_std=10.0,
        )
        base.update(kw)
        return ChainTemplate(**base)

    def test_requires_two_stages(self):
        with pytest.raises(LogGenerationError):
            self.make(stage_keys=("mce_logged",))

    def test_requires_positive_lead(self):
        with pytest.raises(LogGenerationError):
            self.make(lead_mean=-5.0)

    def test_validate_against_catalog(self, catalog):
        self.make().validate_against(catalog)

    def test_validate_rejects_unknown_key(self, catalog):
        with pytest.raises(LogGenerationError):
            self.make(stage_keys=("mce_logged", "no_such")).validate_against(catalog)

    def test_validate_rejects_nonterminal_terminal(self, catalog):
        with pytest.raises(LogGenerationError):
            self.make(terminal_key="mce_logged").validate_against(catalog)

    def test_lead_time_positive_and_bounded(self, rng):
        chain = self.make()
        leads = [chain.sample_lead_time(rng) for _ in range(200)]
        assert all(5.0 <= l <= 100.0 + 3 * 10.0 for l in leads)

    def test_lead_time_near_mean(self, rng):
        chain = self.make()
        leads = np.array([chain.sample_lead_time(rng) for _ in range(500)])
        assert abs(leads.mean() - 100.0) < 5.0

    def test_offsets_descending(self, rng):
        chain = self.make(
            stage_keys=("mce_logged", "corr_dimm", "mce_notify_irq", "uncorr_mce")
        )
        for _ in range(50):
            offsets = chain.sample_offsets(rng)
            assert len(offsets) == 4
            assert all(a > b for a, b in zip(offsets, offsets[1:]))
            assert all(o > 0 for o in offsets)

    def test_first_offset_is_lead(self, rng):
        """The first stage fires the full lead time before the terminal."""
        chain = self.make()
        offsets = chain.sample_offsets(rng)
        assert 5.0 <= offsets[0] <= 130.0

    def test_offsets_shape_reproducible(self):
        """Same seed -> same offsets (Observation 4 determinism)."""
        chain = self.make()
        a = chain.sample_offsets(np.random.default_rng(3))
        b = chain.sample_offsets(np.random.default_rng(3))
        assert np.array_equal(a, b)


class TestFaultModel:
    def test_default_model_is_valid(self, catalog, fault_model):
        fault_model.validate_against(catalog)

    def test_all_classes_have_chains(self, fault_model):
        for cls in FailureClass:
            assert fault_model.chains_for(cls), f"no chains for {cls}"

    def test_default_mix_sums_to_one(self, fault_model):
        assert sum(fault_model.class_mix.values()) == pytest.approx(1.0)

    def test_sample_class_follows_mix(self, fault_model, rng):
        draws = [fault_model.sample_class(rng) for _ in range(2000)]
        freq = draws.count(FailureClass.MCE) / len(draws)
        assert abs(freq - fault_model.class_mix[FailureClass.MCE]) < 0.05

    def test_sample_chain_respects_class(self, fault_model, rng):
        for _ in range(20):
            chain = fault_model.sample_chain(rng, FailureClass.PANIC)
            assert chain.failure_class is FailureClass.PANIC

    def test_with_mix_replaces(self, fault_model):
        mix = {c: (1.0 if c is FailureClass.MCE else 0.0) for c in FailureClass}
        new = fault_model.with_mix(mix)
        assert new.class_mix[FailureClass.MCE] == 1.0
        assert fault_model.class_mix[FailureClass.MCE] != 1.0

    def test_rejects_unnormalized_mix(self, fault_model):
        with pytest.raises(LogGenerationError):
            fault_model.with_mix({FailureClass.MCE: 0.7})

    def test_rejects_weight_without_chains(self):
        chains = default_fault_model().chains_for(FailureClass.MCE)
        mix = {c: 0.0 for c in FailureClass}
        mix[FailureClass.PANIC] = 1.0  # no Panic chains in this subset
        with pytest.raises(LogGenerationError):
            FaultModel(chains=tuple(chains), class_mix=mix)

    def test_rejects_empty_chains(self):
        with pytest.raises(LogGenerationError):
            FaultModel(chains=())

    def test_lead_means_match_table7(self, fault_model):
        """Chain templates carry their class's Table-7 lead time."""
        for chain in fault_model.chains:
            assert chain.lead_mean == pytest.approx(
                PAPER_LEAD_TIMES[chain.failure_class]
            )
