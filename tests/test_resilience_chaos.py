"""Tests for the seeded fault injector and the chaos acceptance protocol."""

import dataclasses

import pytest

from repro.errors import ConfigError
from repro.resilience import (
    FAULT_PROFILES,
    ChaosInjector,
    FaultProfile,
    HardenedIngestor,
    chaos_evaluation,
)
from repro.simlog.record import parse_line, render_line


@pytest.fixture
def lines(small_log):
    return [render_line(r) for r in small_log.records[:2000]]


class TestFaultProfile:
    def test_named_profiles_exist(self):
        assert set(FAULT_PROFILES) == {
            "none",
            "mild",
            "moderate",
            "severe",
            "service-crash",
            "service-storm",
        }

    def test_none_profile_is_null(self):
        assert FAULT_PROFILES["none"].is_null()
        assert not FAULT_PROFILES["moderate"].is_null()
        assert not FAULT_PROFILES["service-crash"].is_null()

    def test_line_vs_service_fault_split(self):
        # service-crash touches only the workers, never the data — the
        # precondition for the soak's bit-identity assertion.
        assert not FAULT_PROFILES["service-crash"].has_line_faults()
        assert FAULT_PROFILES["service-storm"].has_line_faults()
        assert FAULT_PROFILES["moderate"].has_line_faults()
        assert not FAULT_PROFILES["none"].has_line_faults()

    def test_rejects_bad_service_fault_bounds(self):
        with pytest.raises(ConfigError):
            FaultProfile(crash_rate=1.5)
        with pytest.raises(ConfigError):
            FaultProfile(stall_seconds=-0.1)
        with pytest.raises(ConfigError):
            FaultProfile(burst_factor=0)

    def test_rejects_bad_rate(self):
        with pytest.raises(ConfigError):
            FaultProfile(corrupt_rate=1.5)
        with pytest.raises(ConfigError):
            FaultProfile(drop_rate=-0.1)

    def test_rejects_bad_bounds(self):
        with pytest.raises(ConfigError):
            FaultProfile(reorder_window=-1)
        with pytest.raises(ConfigError):
            FaultProfile(clock_skew_seconds=-2.0)
        with pytest.raises(ConfigError):
            FaultProfile(drop_chunk=0)


class TestChaosInjector:
    def test_null_profile_is_identity(self, lines):
        injector = ChaosInjector(FAULT_PROFILES["none"], seed=1)
        assert list(injector.inject(lines)) == lines
        assert injector.stats.faults_applied == 0
        assert injector.stats.lines_in == injector.stats.lines_out == len(lines)

    def test_deterministic_for_same_seed(self, lines):
        profile = FAULT_PROFILES["severe"]
        a = list(ChaosInjector(profile, seed=9).inject(lines))
        b = list(ChaosInjector(profile, seed=9).inject(lines))
        assert a == b

    def test_different_seeds_differ(self, lines):
        profile = FAULT_PROFILES["severe"]
        a = list(ChaosInjector(profile, seed=1).inject(lines))
        b = list(ChaosInjector(profile, seed=2).inject(lines))
        assert a != b

    def test_stats_account_for_emitted_lines(self, lines):
        injector = ChaosInjector(FAULT_PROFILES["severe"], seed=3)
        out = list(injector.inject(lines))
        s = injector.stats
        assert s.lines_in == len(lines)
        assert s.lines_out == len(out)
        # emitted = in - dropped + duplicated + garbage
        assert s.lines_out == s.lines_in - s.dropped + s.duplicated + s.garbage_injected

    def test_corruption_applied_at_roughly_the_rate(self, lines):
        profile = FaultProfile(corrupt_rate=0.05)
        injector = ChaosInjector(profile, seed=4)
        list(injector.inject(lines))
        expected = 0.05 * len(lines)
        assert expected * 0.4 <= injector.stats.corrupted <= expected * 2.0

    def test_reordering_is_bounded_by_window(self):
        # Unique synthetic lines so each one's displacement is traceable.
        unique = [f"line-{i:05d}" for i in range(500)]
        window = 8
        injector = ChaosInjector(FaultProfile(reorder_window=window), seed=5)
        out = list(injector.inject(unique))
        assert sorted(out) == unique
        assert injector.stats.reordered > 0
        for j, line in enumerate(out):
            assert abs(int(line.split("-")[1]) - j) < window

    def test_clock_skew_rewrites_timestamp_parseably(self, lines):
        profile = FaultProfile(skew_rate=1.0, clock_skew_seconds=3.0)
        injector = ChaosInjector(profile, seed=6)
        out = list(injector.inject(lines))
        assert injector.stats.skewed == len(lines)
        for original, skewed in zip(lines, out):
            a, b = parse_line(original), parse_line(skewed)
            assert abs(a.timestamp - b.timestamp) <= 3.0
            assert a.message == b.message

    def test_drop_removes_chunks(self, lines):
        profile = FaultProfile(drop_rate=0.01, drop_chunk=3)
        injector = ChaosInjector(profile, seed=7)
        out = list(injector.inject(lines))
        assert injector.stats.dropped > 0
        assert len(out) == len(lines) - injector.stats.dropped

    def test_inject_records_renders_then_faults(self, small_log):
        records = list(small_log.records[:100])
        injector = ChaosInjector(FAULT_PROFILES["none"], seed=0)
        out = list(injector.inject_records(records))
        assert out == [render_line(r) for r in records]


class TestServiceFaults:
    def test_deterministic_for_same_seed(self):
        profile = FAULT_PROFILES["service-storm"]
        a = [ChaosInjector(profile, seed=11).service_faults() for _ in range(1)]
        first = ChaosInjector(profile, seed=11)
        second = ChaosInjector(profile, seed=11)
        draws_a = [first.service_faults() for _ in range(200)]
        draws_b = [second.service_faults() for _ in range(200)]
        assert draws_a == draws_b
        assert a  # the single-draw list above is also deterministic

    def test_independent_of_line_fault_stream(self, lines):
        # Consuming line faults must not perturb the service-fault
        # decisions (separate derived RNG streams).
        profile = FAULT_PROFILES["service-storm"]
        plain = ChaosInjector(profile, seed=12)
        interleaved = ChaosInjector(profile, seed=12)
        list(interleaved.inject(lines[:500]))
        draws_plain = [plain.service_faults() for _ in range(100)]
        draws_inter = [interleaved.service_faults() for _ in range(100)]
        assert draws_plain == draws_inter

    def test_rates_are_roughly_honored_and_counted(self):
        profile = FaultProfile(
            crash_rate=0.2, stall_rate=0.1, stall_seconds=0.5,
            burst_rate=0.3, burst_factor=4,
        )
        injector = ChaosInjector(profile, seed=13)
        draws = [injector.service_faults() for _ in range(1000)]
        crashes = sum(1 for d in draws if d.crash)
        stalls = sum(1 for d in draws if d.stall_seconds > 0)
        bursts = sum(1 for d in draws if d.burst_factor > 1)
        assert 100 <= crashes <= 320
        assert 40 <= stalls <= 190
        assert 180 <= bursts <= 440
        s = injector.stats
        assert (s.crashes_injected, s.stalls_injected, s.bursts_injected) == (
            crashes, stalls, bursts,
        )
        assert s.faults_applied >= crashes + stalls + bursts

    def test_null_profile_never_faults(self):
        injector = ChaosInjector(FAULT_PROFILES["none"], seed=14)
        assert all(
            injector.service_faults().is_null() for _ in range(100)
        )


@pytest.mark.chaos
class TestChaosAcceptance:
    """The ISSUE acceptance protocol: moderate faults, bounded damage."""

    def test_moderate_chaos_completes_and_accounts_for_lines(
        self, trained_model, test_split
    ):
        """5% corruption + reordering: no raise, full quarantine accounting."""
        report = chaos_evaluation(
            trained_model,
            list(test_split.records),
            test_split.ground_truth,
            FAULT_PROFILES["moderate"],
            seed=3,
        )
        assert report.lines_accounted
        assert report.ingest_stats.quarantined > 0
        assert report.dead_letters > 0
        assert report.chaos_stats.reordered > 0

    def test_moderate_recall_degrades_at_most_10pp(
        self, trained_model, test_split
    ):
        report = chaos_evaluation(
            trained_model,
            list(test_split.records),
            test_split.ground_truth,
            FAULT_PROFILES["moderate"],
            seed=3,
        )
        assert report.recall_delta <= 10.0, (
            f"recall degraded {report.recall_delta:.1f}pp under moderate chaos"
        )

    def test_report_summary_renders(self, trained_model, test_split):
        report = chaos_evaluation(
            trained_model,
            list(test_split.records[:3000]),
            test_split.ground_truth,
            FAULT_PROFILES["mild"],
            seed=1,
        )
        text = report.summary()
        assert "recall" in text
        assert "dead letters" in text

    def test_chaos_pipeline_deterministic(self, trained_model, test_split):
        records = list(test_split.records[:3000])

        def run():
            injector = ChaosInjector(FAULT_PROFILES["moderate"], seed=11)
            ingestor = HardenedIngestor()
            return list(ingestor.ingest_lines(injector.inject_records(records)))

        assert run() == run()


class TestChaosCli:
    def test_chaos_command_registered(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(
            ["chaos", "--system", "M1", "--profile", "moderate", "--chaos-seed", "3"]
        )
        assert args.command == "chaos"
        assert args.profile == "moderate"

    def test_unknown_profile_is_clean_error(self, capsys):
        from repro.cli import main

        code = main(["chaos", "--profile", "nope"])
        assert code == 2
        assert "unknown fault profile" in capsys.readouterr().err
