"""Tests for the LSTM cell and stacked LSTM, including full BPTT checks."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn.lstm import LSTMCell, StackedLSTM


def numeric_grad(f, x, rng, samples=10, eps=1e-6):
    """Central differences at a random subset of positions."""
    flat = x.reshape(-1)
    idxs = rng.choice(flat.size, min(samples, flat.size), replace=False)
    out = {}
    for i in idxs:
        old = flat[i]
        flat[i] = old + eps
        hi = f()
        flat[i] = old - eps
        lo = f()
        flat[i] = old
        out[int(i)] = (hi - lo) / (2 * eps)
    return out


class TestLSTMCellForward:
    def test_output_shape(self, rng):
        cell = LSTMCell(3, 5, rng)
        assert cell.forward(rng.standard_normal((4, 7, 3))).shape == (4, 7, 5)

    def test_rejects_wrong_input_dim(self, rng):
        with pytest.raises(ShapeError):
            LSTMCell(3, 5, rng).forward(np.ones((4, 7, 2)))

    def test_rejects_2d_input(self, rng):
        with pytest.raises(ShapeError):
            LSTMCell(3, 5, rng).forward(np.ones((4, 3)))

    def test_rejects_bad_initial_state(self, rng):
        cell = LSTMCell(3, 5, rng)
        with pytest.raises(ShapeError):
            cell.forward(np.ones((4, 7, 3)), h0=np.zeros((4, 4)))

    def test_forget_gate_bias_initialized_to_one(self, rng):
        cell = LSTMCell(3, 5, rng)
        assert np.all(cell.b[5:10] == 1.0)
        assert not cell.b[:5].any()

    def test_outputs_bounded(self, rng):
        """h = o * tanh(c) with o in (0,1) implies |h| < 1."""
        cell = LSTMCell(3, 5, rng)
        h = cell.forward(10 * rng.standard_normal((2, 20, 3)))
        assert np.all(np.abs(h) < 1.0)

    def test_deterministic(self):
        a = LSTMCell(3, 5, np.random.default_rng(0))
        b = LSTMCell(3, 5, np.random.default_rng(0))
        x = np.random.default_rng(1).standard_normal((2, 4, 3))
        assert np.allclose(a.forward(x), b.forward(x))

    def test_state_carries_information(self, rng):
        """Changing an early input must affect later outputs (memory)."""
        cell = LSTMCell(2, 4, rng)
        x = rng.standard_normal((1, 10, 2))
        h1 = cell.forward(x).copy()
        x2 = x.copy()
        x2[0, 0] += 1.0
        h2 = cell.forward(x2)
        assert not np.allclose(h1[0, -1], h2[0, -1])


class TestLSTMCellBackward:
    def test_backward_before_forward_raises(self, rng):
        with pytest.raises(ShapeError):
            LSTMCell(3, 5, rng).backward(np.ones((1, 1, 5)))

    def test_backward_shape(self, rng):
        cell = LSTMCell(3, 5, rng)
        x = rng.standard_normal((4, 7, 3))
        h = cell.forward(x)
        dx = cell.backward(np.ones_like(h))
        assert dx.shape == x.shape

    def test_backward_rejects_wrong_shape(self, rng):
        cell = LSTMCell(3, 5, rng)
        cell.forward(rng.standard_normal((4, 7, 3)))
        with pytest.raises(ShapeError):
            cell.backward(np.ones((4, 7, 4)))

    @pytest.mark.parametrize("param", ["W", "U", "b"])
    def test_parameter_gradients_match_numeric(self, param):
        rng = np.random.default_rng(7)
        cell = LSTMCell(3, 4, rng)
        x = rng.standard_normal((2, 6, 3))
        target = rng.standard_normal((2, 6, 4))

        def loss():
            return 0.5 * float(np.sum((cell.forward(x) - target) ** 2))

        h = cell.forward(x)
        cell.zero_grad()
        cell.backward(h - target)
        analytic = cell.grads()[param].reshape(-1)
        for i, num in numeric_grad(loss, cell.params()[param], rng).items():
            assert analytic[i] == pytest.approx(num, abs=1e-4, rel=1e-4)

    def test_input_gradient_matches_numeric(self):
        rng = np.random.default_rng(8)
        cell = LSTMCell(3, 4, rng)
        x = rng.standard_normal((2, 6, 3))
        target = rng.standard_normal((2, 6, 4))

        def loss():
            return 0.5 * float(np.sum((cell.forward(x) - target) ** 2))

        h = cell.forward(x)
        cell.zero_grad()
        dx = cell.backward(h - target).reshape(-1)
        for i, num in numeric_grad(loss, x, rng).items():
            assert dx[i] == pytest.approx(num, abs=1e-4, rel=1e-4)


class TestStackedLSTM:
    def test_layer_sizes(self, rng):
        stack = StackedLSTM(3, 8, 2, rng)
        assert stack.layers[0].input_size == 3
        assert stack.layers[1].input_size == 8

    def test_forward_shape(self, rng):
        stack = StackedLSTM(3, 8, 2, rng)
        assert stack.forward(rng.standard_normal((4, 5, 3))).shape == (4, 5, 8)

    def test_rejects_zero_layers(self, rng):
        with pytest.raises(ShapeError):
            StackedLSTM(3, 8, 0, rng)

    def test_backward_shape(self, rng):
        stack = StackedLSTM(3, 8, 2, rng)
        x = rng.standard_normal((4, 5, 3))
        h = stack.forward(x)
        assert stack.backward(np.ones_like(h)).shape == x.shape

    def test_stacked_gradient_check(self):
        rng = np.random.default_rng(9)
        stack = StackedLSTM(2, 3, 2, rng)
        x = rng.standard_normal((2, 4, 2))
        target = rng.standard_normal((2, 4, 3))

        def loss():
            return 0.5 * float(np.sum((stack.forward(x) - target) ** 2))

        h = stack.forward(x)
        stack.zero_grad()
        stack.backward(h - target)
        params = stack.params()
        grads = stack.grads()
        for key in ("l0.W", "l1.U", "l0.b"):
            analytic = grads[key].reshape(-1)
            for i, num in numeric_grad(loss, params[key], rng, samples=6).items():
                assert analytic[i] == pytest.approx(num, abs=1e-4, rel=1e-4)

    def test_param_namespacing(self, rng):
        stack = StackedLSTM(3, 8, 2, rng)
        keys = set(stack.params())
        assert keys == {"l0.W", "l0.U", "l0.b", "l1.W", "l1.U", "l1.b"}

    def test_zero_grad_clears_all_layers(self, rng):
        stack = StackedLSTM(3, 8, 2, rng)
        x = rng.standard_normal((2, 4, 3))
        h = stack.forward(x)
        stack.backward(np.ones_like(h))
        stack.zero_grad()
        assert all(not g.any() for g in stack.grads().values())
