"""Tests for Safe/Unknown/Error phrase labeling (Table 3)."""

import pytest

from repro.errors import LabelingError
from repro.events import Label
from repro.parsing.labeling import PhraseLabeler, default_labeler


@pytest.fixture(scope="module")
def labeler() -> PhraseLabeler:
    return default_labeler()


class TestErrorPhrases:
    """Phrases from Table 3 column 3 must label Error."""

    @pytest.mark.parametrize(
        "phrase",
        [
            "cb_node_unavailable",
            "Kernel panic - not syncing: Fatal Machine check",
            "Debug NMI detected on cpu <*>",
            "Stop NMI detected on cpu <*>",
            "Call Trace: <<*>> panic+<*>/<*>",
            "ec_node_failed: node heartbeat fault <*>",
            "System: halted",
            "WARNING: Node <*> is down",
        ],
    )
    def test_error(self, labeler, phrase):
        assert labeler.label(phrase) == Label.ERROR


class TestSafePhrases:
    """Phrases from Table 3 column 1 must label Safe."""

    @pytest.mark.parametrize(
        "phrase",
        [
            "Mounting NID specific <*>",
            "cpu <*> apic_timer_irqs <*>",
            "Setting flag <*>",
            "Wait4Boot",
            "Sending ec node info with boot code <*>",
            "Running sysctl, using values from <*>",
        ],
    )
    def test_safe(self, labeler, phrase):
        assert labeler.label(phrase) == Label.SAFE


class TestUnknownPhrases:
    """Ambiguous phrases (Table 3 column 2) default to Unknown."""

    @pytest.mark.parametrize(
        "phrase",
        [
            "LNet: No gnilnd traffic received from <*>",
            "python invoked oom killer: gfp_mask=<*>, order=<*>",
            "PCIe Bus Error: severity=Corrected, type=Physical Layer, id=<*>",
            "LustreError: <*>:0:(client.c:<*>) <*> operation failed",
            "DVS: Verify Filesystem <*>",
            "never seen before message",
        ],
    )
    def test_unknown(self, labeler, phrase):
        assert labeler.label(phrase) == Label.UNKNOWN


class TestTerminals:
    def test_terminal_phrases(self, labeler):
        assert labeler.is_terminal("cb_node_unavailable")
        assert labeler.is_terminal("ec_console_log: node shutdown in progress <*>")

    def test_non_terminal_error(self, labeler):
        assert not labeler.is_terminal("Kernel panic - not syncing")

    def test_terminals_are_errors(self, labeler):
        """Every terminal phrase must carry the Error label."""
        for phrase in ("cb_node_unavailable", "node shutdown in progress"):
            assert labeler.label(phrase) == Label.ERROR


class TestPrecedence:
    def test_error_beats_safe(self):
        """A phrase matching both rule sets is an anomaly indicator."""
        labeler = PhraseLabeler(
            safe_patterns=("heartbeat",), error_patterns=("heartbeat fault",)
        )
        assert labeler.label("node heartbeat fault detected") == Label.ERROR


class TestValidation:
    def test_empty_phrase_raises(self, labeler):
        with pytest.raises(LabelingError):
            labeler.label("")

    def test_empty_pattern_list_raises(self):
        with pytest.raises(LabelingError):
            PhraseLabeler(safe_patterns=())

    def test_invalid_regex_raises(self):
        with pytest.raises(LabelingError):
            PhraseLabeler(safe_patterns=("[unclosed",))

    def test_label_many(self, labeler):
        labels = labeler.label_many(["Wait4Boot", "cb_node_unavailable"])
        assert labels == [Label.SAFE, Label.ERROR]
