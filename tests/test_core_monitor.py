"""Tests for the streaming failure monitor."""

import pytest

from repro.core import StreamingMonitor
from repro.simlog.record import LogRecord
from repro.topology import CrayNodeId


@pytest.fixture
def monitor(trained_model):
    return StreamingMonitor(trained_model)


class TestStreamingMonitor:
    def test_warns_on_real_failures(self, monitor, test_split):
        warnings = list(monitor.run(test_split.records))
        assert warnings
        gt = test_split.ground_truth
        confirmed = sum(
            1
            for w in warnings
            if gt.failure_near(w.node, w.decision_time, lookahead=700.0)
        )
        assert confirmed >= len(gt.failures) * 0.3

    def test_counts_records_and_warnings(self, monitor, test_split):
        warnings = list(monitor.run(test_split.records))
        assert monitor.records_seen == len(test_split.records)
        assert monitor.warnings_raised == len(warnings)

    def test_at_most_one_alert_per_episode(self, monitor, test_split):
        """No duplicate alerts for a single node episode."""
        warnings = list(monitor.run(test_split.records))
        keyed = [(str(w.node), round(w.decision_time // 600)) for w in warnings]
        # Two alerts for the same node within the same 10-minute window
        # would indicate episode-level alert spam.
        assert len(keyed) == len(set(keyed))

    def test_safe_records_never_alert(self, monitor, small_log):
        safe = [
            r
            for r in small_log.records[:300]
            if "Wait4Boot" in r.message or "session opened" in r.message
        ]
        assert all(monitor.feed(r) is None for r in safe)

    def test_unknown_message_ignored(self, monitor):
        record = LogRecord(
            1.0,
            CrayNodeId(0, 0, 0, 0, 0),
            "kernel",
            "never seen message family xyz qqq",
        )
        assert monitor.feed(record) is None

    def test_system_records_ignored(self, monitor, small_log):
        record = LogRecord(1.0, None, "erd", small_log.records[0].message)
        assert monitor.feed(record) is None

    def test_pending_nodes_tracks_open_episodes(self, monitor, test_split):
        for record in test_split.records[:2000]:
            monitor.feed(record)
        pending = monitor.pending_nodes()
        assert isinstance(pending, list)

    def test_reset_clears_state(self, monitor, test_split):
        for record in test_split.records[:2000]:
            monitor.feed(record)
        monitor.reset()
        assert monitor.pending_nodes() == []

    def test_gap_closes_episode(self, trained_model, test_split):
        """After a long quiet period a node can alert again."""
        monitor = StreamingMonitor(trained_model, episode_gap=600.0)
        warnings = list(monitor.run(test_split.records))
        nodes = [str(w.node) for w in warnings]
        # With many failures per node over the horizon, repeated alerts
        # for one node across distinct episodes are expected.
        assert len(nodes) >= len(set(nodes))
