"""Tests for the streaming failure monitor."""

import dataclasses

import pytest

from repro.core import StreamingMonitor
from repro.events import Label
from repro.simlog.record import LogRecord, render_line
from repro.topology import CrayNodeId


@pytest.fixture
def monitor(trained_model):
    return StreamingMonitor(trained_model)


def _find_record(model, records, *, terminal):
    """First record encoding to an anomalous (non-)terminal event."""
    for record in records:
        event = model.parser.encode(record)
        if (
            event is not None
            and event.node is not None
            and event.label != Label.SAFE
            and event.terminal == terminal
        ):
            return record
    raise AssertionError("no matching record in fixture log")


class TestStreamingMonitor:
    def test_warns_on_real_failures(self, monitor, test_split):
        warnings = list(monitor.run(test_split.records))
        assert warnings
        gt = test_split.ground_truth
        confirmed = sum(
            1
            for w in warnings
            if gt.failure_near(w.node, w.decision_time, lookahead=700.0)
        )
        assert confirmed >= len(gt.failures) * 0.3

    def test_counts_records_and_warnings(self, monitor, test_split):
        warnings = list(monitor.run(test_split.records))
        assert monitor.records_seen == len(test_split.records)
        assert monitor.warnings_raised == len(warnings)

    def test_at_most_one_alert_per_episode(self, monitor, test_split):
        """No duplicate alerts for a single node episode."""
        warnings = list(monitor.run(test_split.records))
        keyed = [(str(w.node), round(w.decision_time // 600)) for w in warnings]
        # Two alerts for the same node within the same 10-minute window
        # would indicate episode-level alert spam.
        assert len(keyed) == len(set(keyed))

    def test_safe_records_never_alert(self, monitor, small_log):
        safe = [
            r
            for r in small_log.records[:300]
            if "Wait4Boot" in r.message or "session opened" in r.message
        ]
        assert all(monitor.feed(r) is None for r in safe)

    def test_unknown_message_ignored(self, monitor):
        record = LogRecord(
            1.0,
            CrayNodeId(0, 0, 0, 0, 0),
            "kernel",
            "never seen message family xyz qqq",
        )
        assert monitor.feed(record) is None

    def test_system_records_ignored(self, monitor, small_log):
        record = LogRecord(1.0, None, "erd", small_log.records[0].message)
        assert monitor.feed(record) is None

    def test_pending_nodes_tracks_open_episodes(self, monitor, test_split):
        for record in test_split.records[:2000]:
            monitor.feed(record)
        pending = monitor.pending_nodes()
        assert isinstance(pending, list)

    def test_reset_clears_state(self, monitor, test_split):
        for record in test_split.records[:2000]:
            monitor.feed(record)
        monitor.reset()
        assert monitor.pending_nodes() == []

    def test_gap_closes_episode(self, trained_model, test_split):
        """After a long quiet period a node can alert again."""
        monitor = StreamingMonitor(trained_model, episode_gap=600.0)
        warnings = list(monitor.run(test_split.records))
        nodes = [str(w.node) for w in warnings]
        # With many failures per node over the horizon, repeated alerts
        # for one node across distinct episodes are expected.
        assert len(nodes) >= len(set(nodes))

    def test_gap_exactly_at_boundary_keeps_episode_open(
        self, trained_model, test_split
    ):
        """The close rule is strict: a gap of *exactly* episode_gap stays open."""
        monitor = StreamingMonitor(trained_model, episode_gap=600.0)
        anomalous = _find_record(trained_model, test_split.records, terminal=False)
        monitor.feed(anomalous)
        exactly = dataclasses.replace(
            anomalous, timestamp=anomalous.timestamp + 600.0
        )
        monitor.feed(exactly)
        assert monitor.episodes_closed == 0
        assert len(monitor._buffers[anomalous.node]) == 2
        # one microsecond past the gap closes it
        beyond = dataclasses.replace(
            anomalous, timestamp=anomalous.timestamp + 1200.000001
        )
        monitor.feed(beyond)
        assert monitor.episodes_closed == 1
        assert len(monitor._buffers[anomalous.node]) == 1

    def test_terminal_event_closes_episode_eagerly(
        self, trained_model, test_split
    ):
        """A terminal event must not linger in pending_nodes()."""
        monitor = StreamingMonitor(trained_model)
        anomalous = _find_record(trained_model, test_split.records, terminal=False)
        terminal = _find_record(trained_model, test_split.records, terminal=True)
        monitor.feed(anomalous)
        down = dataclasses.replace(
            terminal,
            node=anomalous.node,
            timestamp=anomalous.timestamp + 1.0,
        )
        monitor.feed(down)
        assert anomalous.node not in monitor.pending_nodes()
        assert monitor.episodes_closed == 1

    def test_duplicate_records_buffer_both_in_record_path(
        self, trained_model, test_split
    ):
        """feed() is dedup-free by design; dedup lives in the ingest path."""
        monitor = StreamingMonitor(trained_model)
        anomalous = _find_record(trained_model, test_split.records, terminal=False)
        monitor.feed(anomalous)
        monitor.feed(anomalous)
        assert monitor.records_seen == 2
        assert len(monitor._buffers[anomalous.node]) == 2

    def test_duplicate_lines_dropped_in_line_path(
        self, trained_model, test_split
    ):
        monitor = StreamingMonitor(trained_model)
        anomalous = _find_record(trained_model, test_split.records, terminal=False)
        line = render_line(anomalous)
        monitor.feed_line(line)
        monitor.feed_line(line)
        health = monitor.health()
        assert health.records_seen == 1
        assert health.ingest["duplicates_dropped"] == 1

    def test_lru_eviction_bounds_node_table(self, monitor, test_split):
        bounded = StreamingMonitor(monitor.model, max_nodes=4)
        for record in test_split.records:
            bounded.feed(record)
        assert len(bounded._buffers) <= 4
        assert bounded.nodes_evicted > 0

    def test_event_cap_bounds_episode_buffers(self, trained_model, test_split):
        bounded = StreamingMonitor(trained_model, max_events_per_node=4)
        anomalous = _find_record(trained_model, test_split.records, terminal=False)
        for i in range(10):
            bumped = dataclasses.replace(
                anomalous, timestamp=anomalous.timestamp + 0.1 * i
            )
            bounded.feed(bumped)
        assert len(bounded._buffers[anomalous.node]) == 4
        assert bounded.events_evicted == 6

    def test_prediction_error_degrades_to_counted_skip(
        self, trained_model, test_split
    ):
        from repro.core.phase3 import PartialScore
        from repro.errors import PredictionError

        monitor = StreamingMonitor(trained_model)

        class _Poisoned:
            def score_partial_batch(self, units):
                # Batched scoring attributes the failure per unit
                # instead of raising, like Phase3Predictor does.
                error = PredictionError("poisoned episode")
                return [
                    PartialScore(False, float("inf"), 0.0, error=error)
                    for _ in units
                ]

        monitor.model = dataclasses.replace(
            trained_model, predictor=_Poisoned()
        )
        anomalous = _find_record(trained_model, test_split.records, terminal=False)
        assert monitor.feed(anomalous) is None
        assert monitor.degraded_skips == 1

    def test_health_snapshot_counts(self, monitor, test_split):
        warnings = list(monitor.run(test_split.records[:2000]))
        health = monitor.health()
        assert health.records_seen == 2000
        assert health.warnings_raised == len(warnings)
        assert health.open_episodes == len(monitor.pending_nodes())
        assert health.ingest is None  # record path never built an ingestor
        as_dict = health.as_dict()
        assert as_dict["records_seen"] == 2000
        assert "ingest" not in as_dict

    def test_rejects_bad_bounds(self, trained_model):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            StreamingMonitor(trained_model, max_nodes=0)
        with pytest.raises(ConfigError):
            StreamingMonitor(trained_model, max_events_per_node=1)


class TestBatchedFeedEquivalence:
    """feed_batch must be observably identical to sequential feed."""

    def _sequential(self, trained_model, records):
        monitor = StreamingMonitor(trained_model)
        warnings = [w for w in map(monitor.feed, records) if w is not None]
        return monitor, warnings

    def test_feed_batch_bit_identical_to_feed(self, trained_model, test_split):
        records = test_split.records[:2500]
        reference, expected = self._sequential(trained_model, records)
        for batch_size in (3, 64, len(records)):
            monitor = StreamingMonitor(trained_model)
            warnings = list(monitor.run(records, batch_size=batch_size))
            assert warnings == expected
            assert monitor.state_dict() == reference.state_dict()

    def test_outcomes_mirror_counter_deltas(self, trained_model, test_split):
        records = test_split.records[:1500]
        monitor = StreamingMonitor(trained_model)
        outcomes = monitor.feed_batch(records)
        assert len(outcomes) == len(records)
        attempted = sum(1 for o in outcomes if o.attempted)
        skipped = sum(1 for o in outcomes if o.skipped)
        raised = [o.warning for o in outcomes if o.warning is not None]
        assert attempted == monitor.scores_attempted
        assert skipped == monitor.degraded_skips
        assert len(raised) == monitor.warnings_raised

    def test_degraded_mode_skips_whole_batch(self, trained_model, test_split):
        monitor = StreamingMonitor(trained_model)
        monitor.degraded_mode = True
        outcomes = monitor.feed_batch(test_split.records[:400])
        assert all(o.warning is None for o in outcomes)
        assert not any(o.attempted for o in outcomes)
        assert monitor.scores_attempted == 0
        assert monitor.degraded_skips == sum(1 for o in outcomes if o.skipped)
        assert monitor.degraded_skips > 0

    def test_state_round_trip_mid_stream(self, trained_model, test_split):
        records = test_split.records[:2000]
        half = len(records) // 2
        reference, expected = self._sequential(trained_model, records)

        first = StreamingMonitor(trained_model)
        head = [w for w in map(first.feed, records[:half]) if w is not None]
        resumed = StreamingMonitor(trained_model)
        resumed.load_state_dict(first.state_dict())
        tail = [
            o.warning
            for o in resumed.feed_batch(records[half:])
            if o.warning is not None
        ]
        assert head + tail == expected
        assert resumed.state_dict() == reference.state_dict()

    def test_feed_line_batch_matches_feed_line(self, trained_model, test_split):
        lines = [render_line(r) for r in test_split.records[:1200]]
        sequential = StreamingMonitor(trained_model)
        expected = [
            w for w in map(sequential.feed_line, lines) if w is not None
        ]
        batched = StreamingMonitor(trained_model)
        warnings = list(batched.run_lines(lines, batch_size=64))
        assert warnings == expected
        assert batched.state_dict() == sequential.state_dict()

    def test_feed_line_batch_reports_ingest_error_in_outcome(
        self, trained_model
    ):
        from repro.resilience import IngestConfig

        monitor = StreamingMonitor(
            trained_model,
            ingest_config=IngestConfig(
                max_bad_ratio=0.0, min_lines_for_budget=1
            ),
        )
        outcomes = monitor.feed_line_batch(["not a log line at all"])
        assert len(outcomes) == 1
        assert outcomes[0].ingest_error is not None
        assert outcomes[0].warning is None
        assert not outcomes[0].attempted

    def test_run_rejects_bad_batch_size(self, monitor, test_split):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            list(monitor.run(test_split.records[:10], batch_size=0))
        with pytest.raises(ConfigError):
            list(monitor.run_lines([], batch_size=0))
