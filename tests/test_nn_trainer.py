"""Tests for the validated training harness."""

import numpy as np
import pytest

from repro.errors import ConfigError, TrainingError
from repro.nn.data import sliding_windows_continuous
from repro.nn.model import SequenceRegressor
from repro.nn.optimizers import RMSprop
from repro.nn.trainer import EarlyStoppingConfig, TrainingHistory, fit_with_validation


def val_mse(model, x, y):
    pred = model.forward(x)
    return float(np.mean((pred - y) ** 2))


@pytest.fixture(scope="module")
def sine_windows():
    t = np.linspace(0, 10 * np.pi, 600)
    sig = np.stack([np.sin(t), np.cos(t)], axis=1)
    x, y = sliding_windows_continuous(sig, history=5, steps=1)
    return x, y[:, 0, :]


class TestEarlyStoppingConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"patience": 0},
            {"min_delta": -1.0},
            {"val_fraction": 0.0},
            {"val_fraction": 1.0},
            {"max_epochs": 0},
            {"lr_decay": 0.0},
            {"lr_decay": 1.5},
        ],
    )
    def test_rejects_bad_params(self, kwargs):
        with pytest.raises(ConfigError):
            EarlyStoppingConfig(**kwargs)


class TestFitWithValidation:
    def test_trains_and_records_history(self, sine_windows):
        x, y = sine_windows
        model = SequenceRegressor(2, hidden_size=12, seed=0)
        history = fit_with_validation(
            model,
            x,
            y,
            optimizer=RMSprop(0.005),
            val_loss_fn=val_mse,
            config=EarlyStoppingConfig(max_epochs=8, patience=8),
            batch_size=64,
        )
        assert history.epochs_run == 8
        assert len(history.train_losses) == 8
        assert history.val_losses[-1] < history.val_losses[0]
        assert 0 <= history.best_epoch < 8

    def test_early_stopping_triggers(self, sine_windows):
        """With an absurd min_delta, no epoch 'improves' and patience
        stops training long before max_epochs."""
        x, y = sine_windows
        model = SequenceRegressor(2, hidden_size=12, seed=1)
        history = fit_with_validation(
            model,
            x,
            y,
            optimizer=RMSprop(0.005),
            val_loss_fn=val_mse,
            config=EarlyStoppingConfig(
                max_epochs=50, patience=3, min_delta=1e9
            ),
            batch_size=64,
        )
        assert history.stopped_early
        # Epoch 0 always "improves" from infinity; then `patience` flat
        # epochs follow before the stop.
        assert history.epochs_run == 4

    def test_lr_decay_applied_on_plateau(self, sine_windows):
        x, y = sine_windows
        model = SequenceRegressor(2, hidden_size=12, seed=2)
        opt = RMSprop(0.01)
        fit_with_validation(
            model,
            x,
            y,
            optimizer=opt,
            val_loss_fn=val_mse,
            config=EarlyStoppingConfig(
                max_epochs=10, patience=4, min_delta=1e9, lr_decay=0.5
            ),
            batch_size=64,
        )
        assert opt.learning_rate < 0.01

    def test_rejects_tiny_dataset(self):
        model = SequenceRegressor(2, hidden_size=4, seed=0)
        with pytest.raises(TrainingError):
            fit_with_validation(
                model,
                np.zeros((1, 5, 2)),
                np.zeros((1, 2)),
                optimizer=RMSprop(0.01),
                val_loss_fn=val_mse,
            )

    def test_rejects_length_mismatch(self, sine_windows):
        x, y = sine_windows
        model = SequenceRegressor(2, hidden_size=4, seed=0)
        with pytest.raises(TrainingError):
            fit_with_validation(
                model,
                x,
                y[:-5],
                optimizer=RMSprop(0.01),
                val_loss_fn=val_mse,
            )

    def test_best_val_loss_property(self):
        h = TrainingHistory(val_losses=[3.0, 1.0, 2.0])
        assert h.best_val_loss == 1.0
        assert TrainingHistory().best_val_loss == float("inf")

    def test_works_with_classifier(self):
        """The harness is model-agnostic: classifiers train through the
        same interface with a classification validation loss."""
        import numpy as np

        from repro.nn.data import sliding_windows
        from repro.nn.model import SequenceClassifier
        from repro.nn.optimizers import SGD

        seq = np.array([0, 1, 2, 3] * 60)
        x, y = sliding_windows(seq, history=4, steps=1)
        model = SequenceClassifier(
            4, embed_dim=6, hidden_size=8, steps=1, seed=0
        )

        def val_error(m, xv, yv):
            # error rate = 1 - accuracy on the held-out windows
            logits = m.forward(xv)[0]
            return float((np.argmax(logits, axis=-1) != yv[:, 0]).mean())

        history = fit_with_validation(
            model,
            x,
            y,
            optimizer=SGD(0.5, momentum=0.9),
            val_loss_fn=val_error,
            config=EarlyStoppingConfig(max_epochs=12, patience=12),
            batch_size=32,
        )
        assert history.val_losses[-1] < 0.1  # learned the cycle
