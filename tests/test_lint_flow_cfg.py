"""Golden-CFG tests for the dataflow engine's CFG builder + solver.

The CFG builder assigns block ids in construction order, so
``CFG.describe()`` is deterministic and the expected graphs can be
compared verbatim.  The solver tests pin the termination guarantees:
a loop-carried shape reaches a fixpoint (joins only move up the
lattice) and the hard pass budget bounds a pathological domain.
"""

import ast
import textwrap

from repro.lint.flow.cfg import build_cfg
from repro.lint.flow.solver import Domain, solve


def _cfg(src: str):
    func = ast.parse(textwrap.dedent(src)).body[0]
    return build_cfg(func)


def _describe(src: str) -> str:
    return _cfg(src).describe()


def test_try_except_finally_golden():
    got = _describe(
        """
        def f(x):
            try:
                y = x + 1
                z = risky(y)
            except ValueError:
                z = 0
            except KeyError:
                z = 1
            finally:
                log(z)
            return z
        """
    )
    assert got == (
        "b0[Try] -> b4\n"
        "b1[-] (exit) -> -\n"
        "b2[Assign] -> b5\n"
        "b3[Assign] -> b5\n"
        "b4[Assign,Assign] -> b2,b3,b5\n"  # body may raise into either handler
        "b5[Expr] -> b6\n"  # finally joins body + both handlers
        "b6[Return] -> b1"
    )


def test_while_else_golden():
    got = _describe(
        """
        def f(n):
            i = 0
            while i < n:
                if stop(i):
                    break
                i += 1
            else:
                mark(n)
            return i
        """
    )
    assert got == (
        "b0[Assign] -> b2\n"
        "b1[-] (exit) -> -\n"
        "b2[While] -> b4,b7\n"  # head -> body, else (exhaustion path)
        "b3[Return] -> b1\n"
        "b4[If] -> b5,b6\n"
        "b5[Break] -> b3\n"  # break skips the else clause
        "b6[AugAssign] -> b2\n"  # back edge
        "b7[Expr] -> b3"
    )


def test_nested_comprehensions_never_split_blocks():
    got = _describe(
        """
        def f(rows):
            flat = [cell for row in rows for cell in row if cell]
            table = {k: [v * 2 for v in vals] for k, vals in rows}
            return flat, table
        """
    )
    assert got == (
        "b0[Assign,Assign,Return] -> b1\n"
        "b1[-] (exit) -> -"
    )


def test_with_block_sequenced_linearly():
    got = _describe(
        """
        def f(path):
            with open(path) as fh:
                data = fh.read()
            return data
        """
    )
    assert got == (
        "b0[With,Assign,Return] -> b1\n"
        "b1[-] (exit) -> -"
    )


# ----------------------------------------------------------------------
# async constructs: every await point renders as a `~` yield marker
# ----------------------------------------------------------------------
def test_async_with_marks_acquire_and_body_awaits():
    got = _describe(
        """
        async def f(self, x):
            async with self._lock:
                y = await fetch(x)
            return y
        """
    )
    assert got == (
        # AsyncWith~ : __aenter__ awaits while acquiring; Assign~ : the
        # body await.  Return runs lock-held-to-released, no yield.
        "b0[AsyncWith~,Assign~,Return] -> b1\n"
        "b1[-] (exit) -> -"
    )


def test_async_for_with_else_clause():
    got = _describe(
        """
        async def f(self, items):
            total = 0
            async for item in items:
                total += item
            else:
                mark(total)
            return total
        """
    )
    assert got == (
        "b0[Assign] -> b2\n"
        "b1[-] (exit) -> -\n"
        "b2[AsyncFor~] -> b4,b5\n"  # head awaits __anext__ per element
        "b3[Return] -> b1\n"
        "b4[AugAssign] -> b2\n"  # back edge; body itself never yields
        "b5[Expr] -> b3"
    )


def test_awaits_inside_comprehensions_mark_the_statement():
    got = _describe(
        """
        async def f(self, xs):
            pairs = [await g(x) for x in xs]
            names = {x async for x in aiter(xs)}
            return pairs, names
        """
    )
    assert got == (
        # Comprehensions never split blocks, but an `await` (or `async
        # for`) inside one still yields — both assigns carry the marker.
        "b0[Assign~,Assign~,Return] -> b1\n"
        "b1[-] (exit) -> -"
    )


def test_try_finally_around_await():
    got = _describe(
        """
        async def f(self):
            try:
                await self._run()
            except ValueError:
                log()
            finally:
                await self._close()
        """
    )
    assert got == (
        "b0[Try] -> b3\n"
        "b1[-] (exit) -> -\n"
        "b2[Expr] -> b4\n"  # handler joins into finally
        "b3[Expr~] -> b2,b4\n"  # awaited body may raise into the handler
        "b4[Expr~] -> b5\n"  # the finally itself awaits
        "b5[-] -> b1"
    )


def test_create_task_is_not_a_yield_point_but_gather_is():
    got = _describe(
        """
        async def f(self):
            task = asyncio.create_task(self._run(0))
            results = await asyncio.gather(task, self._run(1))
            return results
        """
    )
    assert got == (
        # create_task schedules without yielding (plain Assign); the
        # awaited gather is the suspension point (Assign~).
        "b0[Assign,Assign~,Return] -> b1\n"
        "b1[-] (exit) -> -"
    )


def test_sync_functions_never_carry_yield_markers():
    got = _describe(
        """
        def f(x):
            with open(x) as fh:
                data = fh.read()
            return data
        """
    )
    assert "~" not in got


def test_nested_def_awaits_do_not_leak_into_the_outer_function():
    got = _describe(
        """
        async def f(self):
            async def inner():
                await self._run()
            return inner
        """
    )
    # inner's await belongs to inner's coroutine: no marker on the
    # enclosing statements.
    assert "~" not in got


def test_rpo_starts_at_entry_and_covers_reachable_blocks():
    cfg = _cfg(
        """
        def f(n):
            while n:
                n -= 1
            return n
        """
    )
    order = cfg.rpo()
    assert order[0] == cfg.entry
    assert set(order) == {b.id for b in cfg.blocks}


class _ShapeishDomain(Domain):
    """Tiny shape lattice: var -> tuple of dims, ints widening to None."""

    def initial(self):
        return {}

    def join(self, a, b):
        out = {}
        for name in a.keys() & b.keys():
            sa, sb = a[name], b[name]
            if len(sa) == len(sb):
                out[name] = tuple(
                    x if x == y else None for x, y in zip(sa, sb)
                )
        return out

    def transfer(self, block, state):
        env = dict(state)
        for stmt in block.stmts:
            if isinstance(stmt, ast.Assign) and isinstance(
                stmt.targets[0], ast.Name
            ):
                # f(x) "rotates" the shape: loop-carried dependence.
                name = stmt.targets[0].id
                prior = env.get(name, (4, 8))
                env[name] = tuple(reversed(prior))
        return env


def test_fixpoint_terminates_on_loop_carried_shape():
    cfg = _cfg(
        """
        def f(flag):
            x = rotate(x)
            while flag:
                x = rotate(x)
            return x
        """
    )
    result = solve(cfg, _ShapeishDomain())
    assert result.converged
    # The loop-carried rotation alternates (4, 8)/(8, 4); the join must
    # widen both dims to unknown instead of oscillating forever.
    loop_head = next(b.id for b in cfg.blocks if b.stmts
                     and isinstance(b.stmts[0], ast.While))
    assert result.in_states[loop_head]["x"] == (None, None)
    assert result.passes <= 64 * len(cfg.blocks)


class _UnboundedDomain(Domain):
    """Deliberately infinite-height domain: a counter that keeps rising."""

    def initial(self):
        return 0

    def join(self, a, b):
        return max(a, b)

    def transfer(self, block, state):
        return state + 1


def test_pass_budget_stops_non_converging_domain():
    cfg = _cfg(
        """
        def f(flag):
            while flag:
                flag = step(flag)
            return flag
        """
    )
    result = solve(cfg, _UnboundedDomain(), max_passes_per_block=8)
    assert not result.converged
    assert result.passes == 8 * len(cfg.rpo())
