"""Tests for activation functions: values, stability, derivatives."""

import numpy as np
import pytest
from hypothesis import given, strategies as st
from hypothesis.extra.numpy import arrays

from repro.nn.activations import (
    log_softmax,
    relu,
    relu_grad,
    sigmoid,
    sigmoid_grad,
    softmax,
    tanh,
    tanh_grad,
)


finite_arrays = arrays(
    np.float64,
    st.integers(1, 20),
    elements=st.floats(-50, 50, allow_nan=False),
)


class TestSigmoid:
    def test_midpoint(self):
        assert sigmoid(np.array([0.0]))[0] == pytest.approx(0.5)

    def test_symmetry(self):
        x = np.linspace(-5, 5, 11)
        assert np.allclose(sigmoid(x) + sigmoid(-x), 1.0)

    def test_extreme_values_stable(self):
        out = sigmoid(np.array([-1e6, 1e6]))
        assert np.all(np.isfinite(out))
        assert out[0] == pytest.approx(0.0)
        assert out[1] == pytest.approx(1.0)

    def test_grad_matches_numeric(self):
        x = np.linspace(-3, 3, 13)
        eps = 1e-6
        numeric = (sigmoid(x + eps) - sigmoid(x - eps)) / (2 * eps)
        assert np.allclose(sigmoid_grad(sigmoid(x)), numeric, atol=1e-8)

    @given(finite_arrays)
    def test_property_range(self, x):
        y = sigmoid(x)
        assert np.all((y >= 0) & (y <= 1))


class TestTanh:
    def test_grad_matches_numeric(self):
        x = np.linspace(-3, 3, 13)
        eps = 1e-6
        numeric = (tanh(x + eps) - tanh(x - eps)) / (2 * eps)
        assert np.allclose(tanh_grad(tanh(x)), numeric, atol=1e-8)


class TestRelu:
    def test_values(self):
        assert np.array_equal(relu(np.array([-2.0, 0.0, 3.0])), [0.0, 0.0, 3.0])

    def test_grad(self):
        y = relu(np.array([-2.0, 3.0]))
        assert np.array_equal(relu_grad(y), [0.0, 1.0])


class TestSoftmax:
    def test_sums_to_one(self):
        x = np.random.default_rng(0).standard_normal((4, 7))
        assert np.allclose(softmax(x).sum(axis=-1), 1.0)

    def test_invariant_to_shift(self):
        x = np.array([[1.0, 2.0, 3.0]])
        assert np.allclose(softmax(x), softmax(x + 100.0))

    def test_extreme_logits_stable(self):
        out = softmax(np.array([[1e4, -1e4, 0.0]]))
        assert np.all(np.isfinite(out))
        assert out[0, 0] == pytest.approx(1.0)

    def test_log_softmax_consistent(self):
        x = np.random.default_rng(1).standard_normal((3, 5))
        assert np.allclose(log_softmax(x), np.log(softmax(x)))

    def test_axis_argument(self):
        x = np.random.default_rng(2).standard_normal((3, 5))
        assert np.allclose(softmax(x, axis=0).sum(axis=0), 1.0)

    @given(finite_arrays)
    def test_property_distribution(self, x):
        y = softmax(x)
        assert np.all(y >= 0)
        assert y.sum() == pytest.approx(1.0, abs=1e-9)
