"""Behavioural tests for the dataflow rules F1 (shape flow), F2 (stage
artifact flow), F3 (parallel capture), F4 (async atomicity), F5
(blocking calls reachable from coroutines) and F6 (orphaned coroutines).

Every analysis gets at least one bad snippet proving it fires and one
good snippet proving it stays silent; F1's good snippets double as
no-false-positive regression cases for the provable-only policy
(symbolic dims are never reported), and F4/F5's good snippets pin the
lock-protected / to_thread / sync-boundary counterparts.
"""

import textwrap

from repro.lint import lint_source
from repro.lint.rules import get_rules


def _lint(src: str, *rules: str):
    return lint_source(textwrap.dedent(src), rules=get_rules(list(rules)))


# ----------------------------------------------------------------------
# F1 — shape flow
# ----------------------------------------------------------------------
def test_f1_fires_on_wrong_trailing_dim():
    findings = _lint(
        """
        import numpy as np
        from repro.nn.layers import Dense

        def go(rng):
            layer = Dense(4, 8, rng)
            x = np.zeros((3, 5))
            return layer.forward(x)
        """,
        "F1",
    )
    assert [f.rule for f in findings] == ["F1"]
    message = findings[0].message
    assert "Dense.forward" in message
    assert "in_dim = 4" in message
    assert "(3, 5)" in message
    assert "np.zeros" in message  # the inferred shape chain is included


def test_f1_fires_on_rank_mismatch_through_reshape():
    findings = _lint(
        """
        import numpy as np
        from repro.nn.lstm import StackedLSTM

        def go(rng):
            net = StackedLSTM(16, 32, 2, rng)
            x = np.zeros((8, 4, 16))
            flat = x.reshape(8, 64)
            return net.forward(flat)
        """,
        "F1",
    )
    assert len(findings) == 1
    assert "rank-3" in findings[0].message
    assert "rank-2" in findings[0].message


def test_f1_fires_on_dtype_mismatch():
    findings = _lint(
        """
        import numpy as np
        from repro.nn.layers import Dense

        def go(rng):
            layer = Dense(4, 8, rng)
            x = np.zeros((3, 4), dtype=np.int64)
            return layer.forward(x)
        """,
        "F1",
    )
    assert len(findings) == 1
    assert "dtype float" in findings[0].message


def test_f1_silent_on_correct_shapes_and_layer_chaining():
    findings = _lint(
        """
        import numpy as np
        from repro.nn.layers import Dense

        def go(rng):
            first = Dense(4, 8, rng)
            second = Dense(8, 2, rng)
            x = np.zeros((3, 4))
            hidden = first.forward(x)
            return second.forward(hidden)
        """,
        "F1",
    )
    assert findings == []


def test_f1_silent_on_symbolic_dims():
    # Distinct symbols are incomparable: never a finding.
    findings = _lint(
        """
        import numpy as np
        from repro.nn.layers import Dense

        def go(rng, in_dim, batch):
            layer = Dense(in_dim, 8, rng)
            x = np.zeros((batch, in_dim))
            return layer.forward(x)
        """,
        "F1",
    )
    assert findings == []


def test_f1_joins_branches_instead_of_guessing():
    # The two branches disagree on the trailing dim; the join widens it
    # to unknown, so no provable violation exists.
    findings = _lint(
        """
        import numpy as np
        from repro.nn.layers import Dense

        def go(rng, flag):
            layer = Dense(4, 8, rng)
            if flag:
                x = np.zeros((3, 4))
            else:
                x = np.zeros((3, 7))
            return layer.forward(x)
        """,
        "F1",
    )
    assert findings == []


def test_f1_catches_wrong_dim_from_self_attribute_layer():
    findings = _lint(
        """
        import numpy as np
        from repro.nn.layers import Dense

        class Head:
            def __init__(self, rng):
                self.proj = Dense(32, 4, rng)

            def apply(self):
                x = np.ones((2, 16))
                return self.proj.forward(x)
        """,
        "F1",
    )
    assert len(findings) == 1
    assert "in_dim = 32" in findings[0].message


def test_f1_fires_on_unbatched_state_in_step_batch():
    # The classic (B, H) vs (H,) mixup: passing a single node's hidden
    # vector where the batched step expects a stacked state matrix.
    findings = _lint(
        """
        import numpy as np
        from repro.nn.lstm import LSTMCell

        def go(rng):
            cell = LSTMCell(2, 16, rng)
            x = np.zeros((8, 2))
            h = np.zeros(16)
            c = np.zeros(16)
            return cell.step_batch(x, h, c)
        """,
        "F1",
    )
    assert findings
    assert all(f.rule == "F1" for f in findings)
    assert "LSTMCell.step_batch" in findings[0].message
    assert "rank-1" in findings[0].message


def test_f1_silent_on_batched_step_and_scorer():
    findings = _lint(
        """
        import numpy as np
        from repro.nn.batched import BatchedScorer
        from repro.nn.lstm import LSTMCell

        def go(rng, regressor, scaler):
            cell = LSTMCell(2, 16, rng)
            x = np.zeros((8, 2))
            h = np.zeros((8, 16))
            c = np.zeros((8, 16))
            h, c = cell.step_batch(x, h, c)
            scorer = BatchedScorer(regressor, scaler, history=5)
            windows = np.zeros((64, 5, 2))
            return scorer.predict_batch(windows)
        """,
        "F1",
    )
    assert findings == []


def test_f1_suppressible_inline():
    findings = _lint(
        """
        import numpy as np
        from repro.nn.layers import Dense

        def go(rng):
            layer = Dense(4, 8, rng)
            x = np.zeros((3, 5))
            return layer.forward(x)  # deshlint: allow[F1] intentional for the test
        """,
        "F1",
    )
    assert findings == []


# ----------------------------------------------------------------------
# F2 — stage artifact flow
# ----------------------------------------------------------------------
_STAGE_PRELUDE = """
from repro.pipeline.stage import Stage
"""

_STAGE_TEMPLATE = """
class {cls}(Stage):
    name = "{name}"
    deps = {deps}
    terminal = {terminal}

    def config_payload(self):
        return {{}}

    def run(self, ctx){returns}:
        {body}

    def save(self, value, directory):
        pass

    def load(self, directory, ctx):
        return None
"""


def _stage(cls, name, deps=(), terminal=False, body="return 1", returns=""):
    return _STAGE_TEMPLATE.format(
        cls=cls,
        name=name,
        deps=repr(tuple(deps)),
        terminal=terminal,
        body=body,
        returns=returns,
    )


def test_f2_fires_on_undeclared_read():
    src = _STAGE_PRELUDE + _stage("AStage", "a", terminal=False) + _stage(
        "BStage", "b", deps=(), terminal=True, body='return ctx.value("a")'
    )
    findings = _lint(src, "F2")
    assert [f.rule for f in findings] == ["F2"]
    assert "without declaring it in deps" in findings[0].message


def test_f2_fires_on_consumed_but_never_produced():
    src = _STAGE_PRELUDE + _stage(
        "AStage", "a", terminal=True, body='return ctx.value("ghost")'
    ) + _stage("BStage", "b", deps=("a",), terminal=True)
    findings = _lint(src, "F2")
    messages = [f.message for f in findings]
    assert any("no stage produces" in m for m in messages)
    assert any("'ghost'" in m for m in messages)


def test_f2_fires_on_produced_but_never_consumed():
    src = _STAGE_PRELUDE + _stage("AStage", "a") + _stage(
        "BStage", "b", terminal=True
    )
    findings = _lint(src, "F2")
    assert len(findings) == 1
    assert "no other stage consumes" in findings[0].message
    assert "'a'" in findings[0].message


def test_f2_fires_on_producer_consumer_type_mismatch():
    src = _STAGE_PRELUDE + _stage(
        "AStage", "a", returns=" -> int", body="return 1"
    ) + _stage(
        "BStage",
        "b",
        deps=("a",),
        terminal=True,
        body='x: str = ctx.value("a")\n        return x',
    )
    findings = _lint(src, "F2")
    assert len(findings) == 1
    assert "reads 'a' as str" in findings[0].message
    assert "returns int" in findings[0].message


def test_f2_fires_on_duplicate_stage_names():
    src = _STAGE_PRELUDE + _stage("AStage", "a", terminal=True) + _stage(
        "A2Stage", "a", terminal=True
    )
    findings = _lint(src, "F2")
    assert any("duplicate stage name 'a'" in f.message for f in findings)


def test_f2_silent_on_consistent_dag_with_fingerprint_only_dep():
    # "b" declares dep "a" without reading it (fingerprint chaining, the
    # Phase3Stage pattern) — deliberately not a finding; Optional and
    # dotted spellings of the same artifact type are not mismatches.
    src = _STAGE_PRELUDE + "from typing import Optional\n" + _stage(
        "AStage", "a", returns=" -> Optional[int]", body="return 1"
    ) + _stage(
        "BStage",
        "b",
        deps=("a",),
        terminal=True,
        body='x: int = ctx.value("a")\n        return x',
    ) + _stage("CStage", "c", deps=("a",), terminal=True)
    findings = _lint(src, "F2")
    assert findings == []


def test_f2_accepts_ctx_inputs_subscript_reads():
    src = _STAGE_PRELUDE + _stage("AStage", "a") + _stage(
        "BStage",
        "b",
        deps=("a",),
        terminal=True,
        body='return ctx.inputs["a"]',
    )
    findings = _lint(src, "F2")
    assert findings == []


# ----------------------------------------------------------------------
# F3 — parallel capture
# ----------------------------------------------------------------------
def test_f3_fires_on_closure_list_append():
    findings = _lint(
        """
        from repro.parallel.pool import ordered_parallel_map

        def go(items):
            results = []

            def worker(item):
                results.append(item * 2)
                return item

            return ordered_parallel_map(worker, items, max_workers=4)
        """,
        "F3",
    )
    assert [f.rule for f in findings] == ["F3"]
    assert "'results'" in findings[0].message
    assert ".append()" in findings[0].message


def test_f3_fires_on_lambda_dict_store():
    findings = _lint(
        """
        from repro.parallel.pool import ordered_parallel_map

        def go(items):
            seen = {}
            return ordered_parallel_map(
                lambda item: seen.update({item: True}), items, max_workers=2
            )
        """,
        "F3",
    )
    assert len(findings) == 1
    assert "'seen'" in findings[0].message


def test_f3_fires_on_shared_array_subscript_store():
    findings = _lint(
        """
        import numpy as np
        from repro.parallel.pool import ordered_parallel_map

        def go(items):
            buf = np.zeros(len(items))

            def worker(pair):
                i, value = pair
                buf[i] = value
                return value

            return ordered_parallel_map(worker, list(enumerate(items)))
        """,
        "F3",
    )
    assert len(findings) == 1
    assert "assigns into" in findings[0].message


def test_f3_fires_on_captured_rng_draw():
    findings = _lint(
        """
        import numpy as np
        from repro.parallel.pool import ordered_parallel_map

        def go(items):
            rng = np.random.default_rng(0)

            def worker(item):
                return item + rng.normal()

            return ordered_parallel_map(worker, items)
        """,
        "F3",
    )
    assert len(findings) == 1
    assert "advances the RNG state" in findings[0].message


def test_f3_fires_through_functools_partial():
    findings = _lint(
        """
        import functools
        from repro.parallel.pool import ordered_parallel_map

        def go(items):
            acc = []

            def worker(scale, item):
                acc.append(item * scale)
                return item

            return ordered_parallel_map(functools.partial(worker, 2), items)
        """,
        "F3",
    )
    assert len(findings) == 1
    assert "'acc'" in findings[0].message


def test_f3_silent_on_pure_worker_and_local_state():
    findings = _lint(
        """
        from repro.parallel.pool import ordered_parallel_map

        def go(items):
            def worker(item):
                out = []
                out.append(item * 2)
                return out

            return ordered_parallel_map(worker, items, max_workers=4)
        """,
        "F3",
    )
    assert findings == []


def test_f3_silent_on_bound_method_worker():
    # The receiver of a bound method is explicit at the call site; the
    # rule only analyzes closures it can see the body of.
    findings = _lint(
        """
        from repro.parallel.pool import ordered_parallel_map

        def go(predictor, shards):
            return ordered_parallel_map(predictor.predict, shards)
        """,
        "F3",
    )
    assert findings == []


# ----------------------------------------------------------------------
# F4 — async atomicity
# ----------------------------------------------------------------------
def test_f4_fires_on_minimal_rmw_across_await():
    findings = _lint(
        """
        import asyncio

        class Counter:
            def __init__(self):
                self.value = 0

            async def bump(self):
                current = self.value
                await asyncio.sleep(0)
                self.value = current + 1
        """,
        "F4",
    )
    assert [f.rule for f in findings] == ["F4"]
    message = findings[0].message
    assert "Counter.bump" in message
    assert "self.value" in message
    # the full interleaving window is reported ...
    assert "read at line 9" in message
    assert "await at line 10" in message
    # ... and doubles as related locations for SARIF
    assert len(findings[0].related) == 2
    assert findings[0].related[0].line == 9


def test_f4_fires_on_check_then_act_mutator_call():
    findings = _lint(
        """
        import asyncio

        class Registry:
            def __init__(self):
                self.items = []

            async def add_once(self, item):
                if item not in self.items:
                    await asyncio.sleep(0)
                    self.items.append(item)
        """,
        "F4",
    )
    assert len(findings) == 1
    assert "self.items" in findings[0].message


def test_f4_fires_when_lock_released_at_the_await():
    # Two critical sections with the await between them do NOT make the
    # window atomic — the lock must span the await.
    findings = _lint(
        """
        import asyncio

        class Counter:
            def __init__(self):
                self.value = 0
                self._lock = asyncio.Lock()

            async def bump(self):
                async with self._lock:
                    current = self.value
                await asyncio.sleep(0)
                async with self._lock:
                    self.value = current + 1
        """,
        "F4",
    )
    assert len(findings) == 1
    assert "no single lock spans the window" in findings[0].message


def test_f4_silent_when_lock_held_across_the_window():
    findings = _lint(
        """
        import asyncio

        class Counter:
            def __init__(self):
                self.value = 0
                self._lock = asyncio.Lock()

            async def bump(self):
                async with self._lock:
                    current = self.value
                    await asyncio.sleep(0)
                    self.value = current + 1
        """,
        "F4",
    )
    assert findings == []


def test_f4_silent_when_write_precedes_the_await():
    # No await inside the read->write window: the sequence is atomic on
    # a single event loop by construction.
    findings = _lint(
        """
        import asyncio

        class Counter:
            def __init__(self):
                self.value = 0

            async def bump(self):
                self.value += 1
                await asyncio.sleep(0)
        """,
        "F4",
    )
    assert findings == []


def test_f4_single_writer_justification_suppresses():
    findings = _lint(
        """
        import asyncio

        class Gate:
            def __init__(self):
                self._event = asyncio.Event()

            async def wait_turn(self):
                while not self._event.is_set():
                    # deshlint: allow[F4] single consumer re-checks after every wait
                    self._event.clear()
                    await self._event.wait()
        """,
        "F4",
    )
    assert findings == []


# ----------------------------------------------------------------------
# F5 — blocking calls reachable from coroutines
# ----------------------------------------------------------------------
def test_f5_fires_on_sleep_behind_two_sync_layers():
    findings = _lint(
        """
        import time

        def _io():
            time.sleep(5)

        def _mid():
            return _io()

        async def serve_forever():
            _mid()
        """,
        "F5",
    )
    assert [f.rule for f in findings] == ["F5"]
    message = findings[0].message
    assert "time.sleep" in message
    # the example call chain names every hop from the coroutine root
    assert "serve_forever -> _mid -> _io" in message
    assert len(findings[0].related) == 3


def test_f5_fires_on_heavy_fit_entry_point():
    findings = _lint(
        """
        class Model:
            def fit(self, x):
                return x

        class Service:
            async def retrain(self, model, data):
                model.fit(data)
        """,
        "F5",
    )
    assert len(findings) == 1
    assert "Model.fit" in findings[0].message
    assert "heavy" in findings[0].message


def test_f5_silent_when_blocking_work_is_behind_to_thread():
    findings = _lint(
        """
        import asyncio
        import time

        def _io():
            time.sleep(5)

        async def serve_forever():
            await asyncio.to_thread(_io)
        """,
        "F5",
    )
    assert findings == []


def test_f5_silent_on_blocking_code_unreachable_from_async():
    findings = _lint(
        """
        import time

        def housekeeping():
            time.sleep(1)

        async def tick():
            return 2
        """,
        "F5",
    )
    assert findings == []


def test_f5_sync_boundary_allowlist_cuts_the_walk():
    # save_service_checkpoint is a reviewed synchronous boundary: its
    # file I/O is deliberate and must not flag.
    findings = _lint(
        """
        def save_service_checkpoint(path, state):
            with open(path, "w") as fh:
                fh.write(str(state))

        async def snapshot():
            return save_service_checkpoint("ckpt.json", {})
        """,
        "F5",
    )
    assert findings == []


# ----------------------------------------------------------------------
# F6 — orphaned coroutines
# ----------------------------------------------------------------------
def test_f6_fires_on_dropped_create_task_handle():
    findings = _lint(
        """
        import asyncio

        class Service:
            async def _run(self):
                await asyncio.sleep(0)

            async def start(self):
                asyncio.create_task(self._run())
        """,
        "F6",
    )
    assert [f.rule for f in findings] == ["F6"]
    assert "create_task" in findings[0].message
    assert "dropped" in findings[0].message


def test_f6_fires_on_unawaited_coroutine_calls():
    findings = _lint(
        """
        import asyncio

        class Service:
            async def _run(self):
                await asyncio.sleep(0)

            async def poke(self):
                self._run()

        async def main():
            asyncio.sleep(1)
        """,
        "F6",
    )
    assert len(findings) == 2
    assert all("never awaited" in f.message for f in findings)


def test_f6_silent_on_held_handles_and_awaited_calls():
    findings = _lint(
        """
        import asyncio

        class Service:
            async def _run(self):
                await asyncio.sleep(0)

            async def start(self):
                self._task = asyncio.create_task(self._run())

            async def poke(self):
                await self._run()

            async def fanout(self):
                await asyncio.gather(self._run(), self._run())
        """,
        "F6",
    )
    assert findings == []
