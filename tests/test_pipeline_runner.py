"""Unit tests for the pipeline runner, fingerprints and artifact store.

These use toy stages (no ML) so DAG validation, fingerprint chaining,
cache hits and corruption recovery are tested in milliseconds.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.config import DeshConfig
from repro.errors import ArtifactError, PipelineError
from repro.pipeline import (
    ArtifactStore,
    PipelineRunner,
    Stage,
    StageContext,
    canonical_json,
    fingerprint_payload,
    fingerprint_records,
)
from repro.simlog.record import LogRecord


class _JsonStage(Stage):
    """Toy stage persisting its value as a JSON list."""

    def __init__(self, name, deps=(), *, payload=None, consumes_source=False):
        self.name = name
        self.deps = tuple(deps)
        self.payload = payload if payload is not None else {"stage": name}
        self.consumes_source = consumes_source
        self.runs = 0

    def config_payload(self):
        return self.payload

    def run(self, ctx):
        raise NotImplementedError(self.name)

    def save(self, value, directory: Path) -> None:
        (directory / "value.json").write_text(json.dumps(value))

    def load(self, directory: Path, ctx):
        return json.loads((directory / "value.json").read_text())


class _Numbers(_JsonStage):
    def __init__(self, **kw):
        super().__init__("numbers", consumes_source=True, **kw)

    def run(self, ctx):
        self.runs += 1
        return [1, 2, 3]


class _Double(_JsonStage):
    def __init__(self, **kw):
        super().__init__("double", deps=("numbers",), **kw)

    def run(self, ctx):
        self.runs += 1
        return [v * 2 for v in ctx.value("numbers")]


class _Total(_JsonStage):
    def __init__(self, **kw):
        super().__init__("total", deps=("double",), **kw)

    def run(self, ctx):
        self.runs += 1
        return [sum(ctx.value("double"))]


class _Constant(_JsonStage):
    """No deps and not a source consumer: immune to data changes."""

    def __init__(self, **kw):
        super().__init__("constant", **kw)

    def run(self, ctx):
        self.runs += 1
        return [42]


def _stages():
    return [_Numbers(), _Double(), _Total(), _Constant()]


def _ctx():
    return StageContext(config=DeshConfig())


class TestDagValidation:
    def test_topological_order(self):
        runner = PipelineRunner(_stages())
        order = runner.order
        assert order.index("numbers") < order.index("double") < order.index(
            "total"
        )
        assert set(order) == {"numbers", "double", "total", "constant"}

    def test_order_is_deterministic(self):
        assert PipelineRunner(_stages()).order == PipelineRunner(_stages()).order

    def test_unknown_dependency_rejected(self):
        bad = _JsonStage("orphan", deps=("missing",))
        with pytest.raises(PipelineError, match="unknown stage"):
            PipelineRunner([bad])

    def test_cycle_rejected(self):
        a = _JsonStage("a", deps=("b",))
        b = _JsonStage("b", deps=("a",))
        with pytest.raises(PipelineError, match="cycle"):
            PipelineRunner([a, b])

    def test_duplicate_names_rejected(self):
        with pytest.raises(PipelineError, match="duplicate"):
            PipelineRunner([_Numbers(), _Numbers()])


class TestFingerprints:
    def test_deterministic(self):
        fps1 = PipelineRunner(_stages()).fingerprints("d1")
        fps2 = PipelineRunner(_stages()).fingerprints("d1")
        assert fps1 == fps2

    def test_canonical_json_is_order_insensitive(self):
        assert canonical_json({"a": 1, "b": 2}) == canonical_json(
            {"b": 2, "a": 1}
        )
        assert fingerprint_payload({"a": 1, "b": 2}) == fingerprint_payload(
            {"b": 2, "a": 1}
        )

    def test_config_change_invalidates_stage_and_descendants(self):
        base = PipelineRunner(_stages()).fingerprints("d1")
        changed = PipelineRunner(
            [
                _Numbers(),
                _Double(payload={"stage": "double", "k": 2}),
                _Total(),
                _Constant(),
            ]
        ).fingerprints("d1")
        assert changed["numbers"] == base["numbers"]
        assert changed["constant"] == base["constant"]
        assert changed["double"] != base["double"]
        assert changed["total"] != base["total"]

    def test_data_change_invalidates_source_descendants_only(self):
        runner = PipelineRunner(_stages())
        base = runner.fingerprints("d1")
        changed = runner.fingerprints("d2")
        assert changed["constant"] == base["constant"]
        for name in ("numbers", "double", "total"):
            assert changed[name] != base[name]

    def test_record_fingerprint_tracks_content(self):
        r1 = [LogRecord(1.0, "c0-0c0s0n0", "kernel", "hello")]
        r2 = [LogRecord(1.0, "c0-0c0s0n0", "kernel", "world")]
        assert fingerprint_records(r1) == fingerprint_records(list(r1))
        assert fingerprint_records(r1) != fingerprint_records(r2)


class TestRunnerExecution:
    def test_run_without_store(self):
        runner = PipelineRunner(_stages())
        result = runner.run(_ctx())
        assert result.value("total") == [12]
        assert result.cache_hits == []
        assert set(result.cache_misses) == {
            "numbers",
            "double",
            "total",
            "constant",
        }
        assert result.total_seconds >= 0.0

    def test_second_run_hits_cache(self, tmp_path):
        store = ArtifactStore(tmp_path)
        first = PipelineRunner(_stages(), store=store).run(
            _ctx(), data_fingerprint="d1"
        )
        stages = _stages()
        second = PipelineRunner(stages, store=store).run(
            _ctx(), data_fingerprint="d1"
        )
        assert first.cache_hits == []
        assert set(second.cache_hits) == {
            "numbers",
            "double",
            "total",
            "constant",
        }
        assert second.value("total") == [12]
        assert all(s.runs == 0 for s in stages)

    def test_plan_reports_cache_state(self, tmp_path):
        store = ArtifactStore(tmp_path)
        runner = PipelineRunner(_stages(), store=store)
        assert all(not p.cached for p in runner.plan("d1"))
        runner.run(_ctx(), data_fingerprint="d1")
        assert all(p.cached for p in runner.plan("d1"))
        # A different data fingerprint leaves only `constant` warm.
        cached = {p.name for p in runner.plan("d2") if p.cached}
        assert cached == {"constant"}

    def test_corrupt_artifact_is_recomputed_and_healed(self, tmp_path):
        store = ArtifactStore(tmp_path)
        runner = PipelineRunner(_stages(), store=store)
        runner.run(_ctx(), data_fingerprint="d1")
        fp = runner.fingerprints("d1")["double"]
        (store.directory("double", fp) / "value.json").write_text("not json{")
        stages = _stages()
        result = PipelineRunner(stages, store=store).run(
            _ctx(), data_fingerprint="d1"
        )
        assert "double" in result.cache_misses
        assert result.value("double") == [2, 4, 6]
        # The re-save healed the artifact for the next run.
        healed = PipelineRunner(_stages(), store=store).run(
            _ctx(), data_fingerprint="d1"
        )
        assert "double" in healed.cache_hits


class TestArtifactStore:
    def test_missing_manifest_is_invisible(self, tmp_path):
        store = ArtifactStore(tmp_path)
        directory = store.directory("stage", "f" * 64)
        directory.mkdir(parents=True)
        (directory / "value.json").write_text("[1]")
        assert not store.has("stage", "f" * 64)
        with pytest.raises(ArtifactError, match="no artifact"):
            store.load("stage", "f" * 64, lambda d: None)

    def test_fingerprint_prefix_collision_detected(self, tmp_path):
        store = ArtifactStore(tmp_path)
        fp_a = "a" * 16 + "1" * 48
        fp_b = "a" * 16 + "2" * 48
        store.save("stage", fp_a, lambda d: None)
        assert store.has("stage", fp_a)
        assert not store.has("stage", fp_b)

    def test_failed_writer_leaves_nothing(self, tmp_path):
        store = ArtifactStore(tmp_path)

        def boom(directory):
            (directory / "partial.json").write_text("[")
            raise RuntimeError("disk on fire")

        with pytest.raises(ArtifactError, match="disk on fire"):
            store.save("stage", "a" * 64, boom)
        assert not store.directory("stage", "a" * 64).exists()
        assert not store.has("stage", "a" * 64)

    def test_invalid_stage_name_rejected(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with pytest.raises(ArtifactError):
            store.directory("", "a" * 64)
        with pytest.raises(ArtifactError):
            store.directory("../escape", "a" * 64)

    def test_entries_lists_manifests(self, tmp_path):
        store = ArtifactStore(tmp_path)
        PipelineRunner(_stages(), store=store).run(
            _ctx(), data_fingerprint="d1"
        )
        entries = list(store.entries())
        assert {e["stage"] for e in entries} == {
            "numbers",
            "double",
            "total",
            "constant",
        }
        assert all(len(e["fingerprint"]) == 64 for e in entries)
