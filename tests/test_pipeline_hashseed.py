"""Stage fingerprints must not depend on PYTHONHASHSEED.

Fingerprints are SHA-256 digests over canonicalized config payloads
chained through the stage DAG; if any serialization step leaked set or
dict-hash iteration order, the cache key would differ between
interpreter runs and every artifact cache would silently miss.  This is
exactly the invariant deshlint rule R3 protects statically — this test
checks it end-to-end across interpreters with different hash seeds.
"""

import json
import subprocess
import sys
from pathlib import Path

import repro

_PROBE = """\
import json
from repro.config import DeshConfig
from repro.pipeline import PipelineRunner, build_desh_stages

runner = PipelineRunner(build_desh_stages(DeshConfig(), train_classifier=True))
print(json.dumps(runner.fingerprints("d" * 64), sort_keys=True))
"""


def _fingerprints_under(hashseed: str) -> dict:
    src_dir = Path(repro.__file__).resolve().parents[1]
    result = subprocess.run(
        [sys.executable, "-c", _PROBE],
        env={
            "PYTHONPATH": str(src_dir),
            "PYTHONHASHSEED": hashseed,
            "PATH": "/usr/bin:/bin",
        },
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stderr
    return json.loads(result.stdout)


def test_stage_fingerprints_identical_across_hash_seeds():
    runs = [_fingerprints_under(seed) for seed in ("0", "1", "2")]
    assert runs[0] == runs[1] == runs[2]
    # Sanity: the probe really produced the full DAG.
    assert len(runs[0]) == 7
    assert all(len(fp) == 64 for fp in runs[0].values())
