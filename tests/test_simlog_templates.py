"""Tests for the message template catalog."""

import numpy as np
import pytest

from repro.errors import LogGenerationError
from repro.parsing.tokenizer import mask_message
from repro.simlog.templates import (
    ERROR,
    SAFE,
    UNKNOWN,
    MessageTemplate,
    TemplateCatalog,
    default_catalog,
)


class TestMessageTemplate:
    def test_field_kinds_extracted_in_order(self):
        t = MessageTemplate("t", "kernel", "a {pid} b {hex32}")
        assert t.field_kinds() == ("pid", "hex32")

    def test_fill_replaces_all_placeholders(self, rng):
        t = MessageTemplate("t", "kernel", "pid={pid} addr={hex32}")
        filled = t.fill(rng)
        assert "{" not in filled and "}" not in filled

    def test_static_text_masks(self):
        t = MessageTemplate("t", "kernel", "pid={pid} fixed")
        assert t.static_text() == "pid=<*> fixed"

    def test_rejects_unknown_field_kind(self):
        with pytest.raises(LogGenerationError):
            MessageTemplate("t", "kernel", "bad {nosuchkind}")

    def test_rejects_bad_label(self):
        with pytest.raises(LogGenerationError):
            MessageTemplate("t", "kernel", "x", label="weird")

    def test_rejects_nonpositive_weight(self):
        with pytest.raises(LogGenerationError):
            MessageTemplate("t", "kernel", "x", weight=0)

    def test_terminal_requires_error_label(self):
        with pytest.raises(LogGenerationError):
            MessageTemplate("t", "kernel", "x", label=SAFE, terminal=True)


class TestDefaultCatalog:
    def test_has_all_three_label_classes(self, catalog):
        assert catalog.by_label(SAFE)
        assert catalog.by_label(UNKNOWN)
        assert catalog.by_label(ERROR)

    def test_substantial_size(self, catalog):
        """The catalog should be large enough to look like real logs."""
        assert len(catalog) >= 70

    def test_has_terminals(self, catalog):
        terminals = catalog.terminals()
        assert any(t.key == "cb_node_unavailable" for t in terminals)

    def test_paper_phrases_present(self, catalog):
        """Key phrases from the paper's Tables 3 and 8 exist."""
        for key in (
            "lustre_error",
            "dvs_verify_fs",
            "kernel_panic",
            "slurm_load_part",
            "mce_logged",
            "wait4boot",
            "oom_invoked",
        ):
            assert key in catalog

    def test_get_unknown_key_raises(self, catalog):
        with pytest.raises(LogGenerationError):
            catalog.get("no_such_template")

    def test_duplicate_keys_rejected(self):
        t = MessageTemplate("dup", "kernel", "x")
        with pytest.raises(LogGenerationError):
            TemplateCatalog([t, t])

    def test_sample_safe_only_returns_safe(self, catalog, rng):
        for _ in range(50):
            assert catalog.sample_safe(rng).label == SAFE

    def test_masking_is_consistent_across_fills(self, catalog):
        """Every fill of one template masks to the same static form.

        This is the invariant the whole parsing pipeline rests on.
        """
        rng = np.random.default_rng(0)
        for t in catalog:
            forms = {mask_message(t.fill(rng)) for _ in range(25)}
            assert len(forms) == 1, f"inconsistent masking for {t.key}: {forms}"

    def test_distinct_templates_do_not_collide(self, catalog):
        rng = np.random.default_rng(1)
        canon = {}
        for t in catalog:
            form = mask_message(t.fill(rng))
            assert form not in canon, f"{t.key} collides with {canon.get(form)}"
            canon[form] = t.key

    def test_static_label_map_covers_catalog(self, catalog):
        mapping = catalog.static_label_map()
        assert len(mapping) == len(catalog)
