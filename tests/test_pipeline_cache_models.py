"""Cache behavior across model-zoo families.

Switching ``DeshConfig.model`` must invalidate exactly the stages that
hold network weights or per-model artifacts — ``phase1``, ``phase2``,
``classifier`` and ``phase3`` — while the model-independent prefix
(``parse``, ``embeddings``, ``chains``) stays cached; and switching
back must restore full warm hits (per-family artifacts coexist in one
store, they do not evict each other).
"""

from __future__ import annotations

import pytest

from repro.config import (
    DeshConfig,
    EmbeddingConfig,
    Phase1Config,
    Phase2Config,
)
from repro.pipeline import DeshPipeline, assemble_model

ALL_STAGES = {
    "parse",
    "embeddings",
    "phase1",
    "chains",
    "phase2",
    "classifier",
    "phase3",
}

#: The exact stale set a model switch must produce.
MODEL_STAGES = {"phase1", "phase2", "classifier", "phase3"}


def _config(model: str) -> DeshConfig:
    return DeshConfig(
        embedding=EmbeddingConfig(dim=12, epochs=1),
        phase1=Phase1Config(hidden_size=16, epochs=1, batch_size=128),
        phase2=Phase2Config(hidden_size=16, epochs=20, learning_rate=0.01),
        seed=7,
        model=model,
    )


@pytest.fixture(scope="module")
def train_records(small_log):
    train, _ = small_log.split(0.3)
    return list(train.records)


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("model-zoo-cache")


@pytest.fixture(scope="module")
def cold_lstm_run(train_records, cache_dir):
    """One cold lstm run that fills the artifact store."""
    return DeshPipeline(_config("lstm"), cache_dir=cache_dir).run(train_records)


def test_model_switch_plans_exact_stale_set(
    train_records, cache_dir, cold_lstm_run
):
    pipe = DeshPipeline(_config("tcn"), cache_dir=cache_dir)
    plan = pipe.runner.plan(pipe.data_fingerprint(train_records))
    assert {p.name for p in plan if not p.cached} == MODEL_STAGES
    assert {p.name for p in plan if p.cached} == ALL_STAGES - MODEL_STAGES


def test_model_switch_reruns_only_model_stages(
    train_records, cache_dir, cold_lstm_run
):
    config = _config("tcn")
    result = DeshPipeline(config, cache_dir=cache_dir).run(train_records)
    assert set(result.cache_misses) == MODEL_STAGES
    assert set(result.cache_hits) == ALL_STAGES - MODEL_STAGES
    model = assemble_model(config, result)
    assert model.phase2.regressor.backbone_name == "tcn"
    assert model.phase1.classifier.backbone_name == "tcn"


def test_repeat_run_of_new_model_is_fully_cached(
    train_records, cache_dir, cold_lstm_run
):
    # test_model_switch_reruns_only_model_stages populated the tcn cells.
    result = DeshPipeline(_config("tcn"), cache_dir=cache_dir).run(train_records)
    assert result.cache_misses == []
    assert set(result.cache_hits) == ALL_STAGES


def test_switching_back_restores_warm_hits(
    train_records, cache_dir, cold_lstm_run
):
    """The tcn runs must not have evicted the lstm artifacts."""
    pipe = DeshPipeline(_config("lstm"), cache_dir=cache_dir)
    plan = pipe.runner.plan(pipe.data_fingerprint(train_records))
    assert all(p.cached for p in plan)


def test_model_params_override_invalidates_model_stages(
    train_records, cache_dir, cold_lstm_run
):
    config = _config("tcn").replace(model_params={"kernel_size": 2})
    pipe = DeshPipeline(config, cache_dir=cache_dir)
    plan = pipe.runner.plan(pipe.data_fingerprint(train_records))
    assert {p.name for p in plan if not p.cached} == MODEL_STAGES
