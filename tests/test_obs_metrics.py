"""Metrics tests: example-based semantics plus the histogram property suite.

The property tests pin the semantics the concurrency story depends on:
merging is associative and commutative *bit-for-bit* (exact Fraction
sums), quantiles are monotone in the rank, and a random split of an
observation stream merges back to exactly the sequential histogram.
"""

import json
import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ObservabilityError
from repro.obs import (
    DEFAULT_MS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    activate_metrics,
    metrics_registry,
    obs_enabled,
    set_metrics_registry,
)

BOUNDS = (0.1, 0.5, 1.0, 5.0)

observations = st.lists(
    st.floats(
        min_value=0.0, max_value=50.0, allow_nan=False, allow_infinity=False
    ),
    max_size=60,
)


def _hist(values, boundaries=BOUNDS):
    h = Histogram(boundaries)
    for v in values:
        h.observe(v)
    return h


def _state(h):
    """The full comparable state of a histogram."""
    return (h.bucket_counts(), h.count, h.sum_exact, h.min, h.max)


# ----------------------------------------------------------------------
# counters / gauges
# ----------------------------------------------------------------------
class TestCounter:
    def test_inc_and_merge(self):
        a, b = Counter(), Counter()
        a.inc()
        a.inc(4)
        b.inc(2)
        assert a.merge(b).value == 7

    def test_negative_increment_rejected(self):
        with pytest.raises(ObservabilityError):
            Counter().inc(-1)

    def test_kind_mismatch_rejected(self):
        with pytest.raises(ObservabilityError):
            Counter().merge(Gauge())


class TestGauge:
    def test_last_write_wins(self):
        g = Gauge()
        assert math.isnan(g.value)
        g.set(1.0)
        g.set(2.5)
        assert g.value == 2.5
        assert g.updates == 2

    def test_merge_prefers_set_other(self):
        mine, other = Gauge(), Gauge()
        mine.set(1.0)
        mine.merge(other)  # other never set: value kept
        assert mine.value == 1.0
        other.set(9.0)
        mine.merge(other)
        assert mine.value == 9.0
        assert mine.updates == 2


# ----------------------------------------------------------------------
# histogram semantics (example-based)
# ----------------------------------------------------------------------
class TestHistogram:
    def test_bucketing_includes_upper_bound(self):
        h = _hist([0.1, 0.10001, 5.0, 6.0])
        assert h.bucket_counts() == [1, 1, 0, 1, 1]

    def test_rejects_non_finite_observations(self):
        h = Histogram(BOUNDS)
        for bad in (float("nan"), float("inf"), -float("inf")):
            with pytest.raises(ObservabilityError):
                h.observe(bad)

    def test_rejects_bad_boundaries(self):
        for bad in ((), (1.0, 1.0), (2.0, 1.0), (0.0, float("inf"))):
            with pytest.raises(ObservabilityError):
                Histogram(bad)

    def test_empty_quantile_is_nan(self):
        assert math.isnan(Histogram(BOUNDS).quantile(0.5))

    def test_quantile_rank_validated(self):
        with pytest.raises(ObservabilityError):
            _hist([1.0]).quantile(1.5)

    def test_single_value_quantiles_collapse(self):
        h = _hist([0.65], DEFAULT_MS_BUCKETS)
        assert h.quantile(0.0) == h.quantile(0.5) == h.quantile(1.0) == 0.65

    def test_merge_boundary_mismatch_rejected(self):
        with pytest.raises(ObservabilityError):
            Histogram(BOUNDS).merge(Histogram((1.0, 2.0)))

    def test_copy_is_independent(self):
        h = _hist([0.2, 0.3])
        c = h.copy()
        c.observe(0.4)
        assert h.count == 2 and c.count == 3


# ----------------------------------------------------------------------
# histogram property suite (seeded via hypothesis's deterministic DB)
# ----------------------------------------------------------------------
@settings(max_examples=60)
@given(observations, observations)
def test_merge_is_commutative(xs, ys):
    ab = _hist(xs).merge(_hist(ys))
    ba = _hist(ys).merge(_hist(xs))
    assert _state(ab) == _state(ba)


@settings(max_examples=60)
@given(observations, observations, observations)
def test_merge_is_associative(xs, ys, zs):
    left = _hist(xs).merge(_hist(ys)).merge(_hist(zs))
    right = _hist(xs).merge(_hist(ys).merge(_hist(zs)))
    assert _state(left) == _state(right)


@settings(max_examples=60)
@given(
    st.lists(
        st.floats(
            min_value=0.0,
            max_value=50.0,
            allow_nan=False,
            allow_infinity=False,
        ),
        min_size=1,
        max_size=60,
    ),
    st.lists(st.floats(0.0, 1.0, allow_nan=False), min_size=2, max_size=8),
)
def test_quantiles_are_monotone_and_clamped(values, ranks):
    h = _hist(values)
    ranks = sorted(ranks)
    estimates = [h.quantile(q) for q in ranks]
    assert all(a <= b for a, b in zip(estimates, estimates[1:]))
    assert all(h.min <= e <= h.max for e in estimates)


@settings(max_examples=60)
@given(observations, st.randoms(use_true_random=False))
def test_random_split_merges_back_exactly(values, rand):
    sequential = _hist(values)
    shards = [Histogram(BOUNDS) for _ in range(4)]
    for v in values:
        shards[rand.randrange(4)].observe(v)
    rand.shuffle(shards)
    merged = Histogram(BOUNDS)
    for shard in shards:
        merged.merge(shard)
    # Conservation: counts, buckets, extrema and the *exact* sum all
    # survive an arbitrary split + merge order, bit-for-bit.
    assert _state(merged) == _state(sequential)


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        r = MetricsRegistry()
        assert r.counter("x") is r.counter("x")
        assert r.names() == ["x"]

    def test_kind_clash_rejected(self):
        r = MetricsRegistry()
        r.counter("x")
        with pytest.raises(ObservabilityError):
            r.gauge("x")

    def test_histogram_boundary_clash_rejected(self):
        r = MetricsRegistry()
        r.histogram("h", BOUNDS)
        assert r.histogram("h") is not None  # no boundaries: no check
        with pytest.raises(ObservabilityError):
            r.histogram("h", (1.0, 2.0))

    def test_merge_folds_every_kind(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(1)
        b.counter("c").inc(2)
        b.gauge("g").set(3.0)
        b.histogram("h", BOUNDS).observe(0.2)
        a.merge(b)
        assert a.counter("c").value == 3
        assert a.gauge("g").value == 3.0
        assert a.histogram("h").count == 1

    def test_json_snapshot_is_sorted_and_parseable(self):
        r = MetricsRegistry()
        r.counter("b.two").inc()
        r.gauge("a.one").set(1.5)
        snap = json.loads(r.to_json())
        assert list(snap) == sorted(snap)
        assert snap["b.two"] == {"type": "counter", "value": 1}

    def test_prometheus_exposition_shape(self):
        r = MetricsRegistry()
        r.counter("ingest.quarantined").inc(3)
        r.histogram("lat.ms", (1.0, 2.0)).observe(1.5)
        text = r.to_prometheus()
        assert "# TYPE repro_ingest_quarantined counter" in text
        assert "repro_ingest_quarantined 3" in text
        assert 'repro_lat_ms_bucket{le="+Inf"} 1' in text
        assert text.endswith("\n")

    def test_activate_metrics_installs_and_gates(self):
        before = metrics_registry()
        registry = MetricsRegistry(active=True)
        with activate_metrics(registry):
            assert metrics_registry() is registry
            assert obs_enabled()
        assert metrics_registry() is before

    def test_set_registry_rejects_non_registries(self):
        with pytest.raises(ObservabilityError):
            set_metrics_registry({})
