"""Tests for the M1-M4 system presets (Table 1)."""

import pytest

from repro.errors import ConfigError
from repro.simlog.faults import FailureClass
from repro.simlog.systems import SYSTEM_PRESETS, generate_system


class TestPresets:
    def test_four_systems(self):
        assert set(SYSTEM_PRESETS) == {"M1", "M2", "M3", "M4"}

    @pytest.mark.parametrize(
        "name,machine,nodes,size",
        [
            ("M1", "Cray XC30", 5600, "373GB"),
            ("M2", "Cray XE6", 6400, "150GB"),
            ("M3", "Cray XC40", 2100, "39GB"),
            ("M4", "Cray XC40/XC30", 1872, "22GB"),
        ],
    )
    def test_table1_provenance(self, name, machine, nodes, size):
        p = SYSTEM_PRESETS[name]
        assert p.machine_type == machine
        assert p.paper_nodes == nodes
        assert p.paper_size == size

    def test_scale_ordering_preserved(self):
        """M2 > M1 > M3 > M4 in node count, like the paper's machines."""
        scaled = {n: p.scaled_nodes for n, p in SYSTEM_PRESETS.items()}
        assert scaled["M2"] > scaled["M1"] > scaled["M3"] >= scaled["M4"]

    def test_m2_mix_favours_hardware_and_fs(self):
        """M2's longer lead times come from more H/W + FS failures."""
        m2 = SYSTEM_PRESETS["M2"].class_mix
        m1 = SYSTEM_PRESETS["M1"].class_mix
        assert m2[FailureClass.HARDWARE] > m1[FailureClass.HARDWARE]
        assert m2[FailureClass.PANIC] < m1[FailureClass.PANIC]

    def test_m4_has_most_near_misses(self):
        """M4's lower precision is modeled via near-miss traffic."""
        ratios = {n: p.near_miss_ratio for n, p in SYSTEM_PRESETS.items()}
        assert ratios["M4"] == max(ratios.values())

    def test_class_mixes_normalized(self):
        for preset in SYSTEM_PRESETS.values():
            assert sum(preset.class_mix.values()) == pytest.approx(1.0)


class TestGenerateSystem:
    def test_unknown_system_raises(self):
        with pytest.raises(ConfigError):
            generate_system("M9")

    def test_case_insensitive(self):
        # Only checks resolution, not a full (expensive) comparison.
        log = generate_system("m4", seed=3)
        assert log.topology.num_nodes == SYSTEM_PRESETS["M4"].scaled_nodes

    def test_deterministic_per_seed(self):
        a = generate_system("M4", seed=11)
        b = generate_system("M4", seed=11)
        assert len(a) == len(b)
        assert a.ground_truth.summary() == b.ground_truth.summary()

    def test_different_seeds_differ(self):
        a = generate_system("M4", seed=11)
        b = generate_system("M4", seed=12)
        assert [r.timestamp for r in a.records[:100]] != [
            r.timestamp for r in b.records[:100]
        ]

    def test_failure_classes_follow_mix(self):
        log = generate_system("M2", seed=5)
        classes = {f.failure_class for f in log.ground_truth.failures}
        # The heavy classes of M2's mix must all appear.
        assert FailureClass.HARDWARE in classes
        assert FailureClass.FILESYSTEM in classes
