"""Golden-trace test: a fixed mini run pins its normalized span tree.

A deterministic workload — hardened ingest of handwritten lines, parser
fit/transform, and a two-stage pipeline run — is traced end to end; with
durations masked, :meth:`Tracer.describe` must reproduce the pinned
rendering byte for byte.  Every attribute in the tree is an integer,
boolean or fixed string, so the expectation is platform-independent.

If an intentional instrumentation change breaks this test, re-pin
``EXPECTED`` with the printed actual value after reviewing the diff.
"""

from pathlib import Path

from repro.config import DeshConfig
from repro.obs import Tracer, activate_tracer
from repro.parsing import LogParser
from repro.pipeline import PipelineRunner
from repro.pipeline.stage import Stage, StageContext

LINES = [
    "2015-01-01T00:00:01.000000 c0-0c0s0n0 kernel: machine check events logged\n",
    "2015-01-01T00:00:02.000000 c0-0c0s0n0 kernel: machine check events logged\n",
    "2015-01-01T00:00:03.000000 c0-0c0s0n1 nscd: nss_ldap reconnected to LDAP server\n",
    "this line is hopeless garbage\n",
    "2015-01-01T00:00:04.000000 c0-0c0s0n1 rca: ec_node_info heartbeat ok seq 1\n",
    "2015-01-01T00:00:05.000000 c0-0c0s0n1 rca: ec_node_info heartbeat ok seq 2\n",
]

EXPECTED = """\
golden.run lines=6
  pipeline.run stages=2
    stage:parse cache_hit=False
      parse.fit phrases=3 records=5
      ingest.transform_lines lines=6 quarantined=1
        parse.transform events=5 skipped=0
    stage:count cache_hit=False
      count.events n=5
  checkpoint.save arrays=0 step=0"""


class ParseStage(Stage):
    """Fits the parser on the mini lines and encodes them."""

    name = "parse"
    deps = ()

    def config_payload(self) -> object:
        """Static payload (the stage has no knobs)."""
        return {}

    def run(self, ctx: StageContext) -> object:
        """Fit + transform the handwritten lines through hardened ingest."""
        parser = LogParser()
        from repro.resilience.ingest import HardenedIngestor

        ingestor = HardenedIngestor()
        parser.fit(ingestor.ingest_lines(LINES))
        ingestor.reset()
        return parser.transform_lines(LINES, ingestor=ingestor)

    def save(self, value: object, directory: Path) -> None:
        """Unused (the golden run has no artifact store)."""

    def load(self, directory: Path, ctx: StageContext) -> object:
        """Unused (the golden run has no artifact store)."""
        raise NotImplementedError


class CountStage(Stage):
    """Counts the parsed events, inside a stage-context child span."""

    name = "count"
    deps = ("parse",)
    terminal = True

    def config_payload(self) -> object:
        """Static payload (the stage has no knobs)."""
        return {}

    def run(self, ctx: StageContext) -> object:
        """Count upstream events under a ``count.events`` span."""
        parsed = ctx.value("parse")
        with ctx.span("count.events", n=len(parsed.events)):
            return len(parsed.events)

    def save(self, value: object, directory: Path) -> None:
        """Unused (the golden run has no artifact store)."""

    def load(self, directory: Path, ctx: StageContext) -> object:
        """Unused (the golden run has no artifact store)."""
        raise NotImplementedError


def _traced_mini_run(tmp_path) -> Tracer:
    tracer = Tracer()
    with activate_tracer(tracer):
        with tracer.span("golden.run", lines=len(LINES)):
            runner = PipelineRunner([ParseStage(), CountStage()])
            runner.run(StageContext(config=DeshConfig()))
            from repro.resilience.checkpoint import CheckpointManager

            CheckpointManager(tmp_path / "ckpt").save(0, {}, {"note": "golden"})
    return tracer


def test_golden_span_tree_is_byte_stable(tmp_path):
    tracer = _traced_mini_run(tmp_path)
    assert tracer.describe(mask_durations=True) == EXPECTED


def test_two_runs_render_identically(tmp_path):
    first = _traced_mini_run(tmp_path / "a").describe()
    second = _traced_mini_run(tmp_path / "b").describe()
    assert first == second


def test_unmasked_rendering_adds_only_durations(tmp_path):
    tracer = _traced_mini_run(tmp_path)
    unmasked = tracer.describe(mask_durations=False)
    stripped = "\n".join(
        line.rsplit(" (", 1)[0] for line in unmasked.splitlines()
    )
    assert stripped == EXPECTED
