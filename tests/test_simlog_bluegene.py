"""Tests for the BlueGene-style structured-log codec (§4.6 genericity)."""

import pytest

from repro.errors import ParseError
from repro.simlog.bluegene import (
    from_bluegene,
    parse_bluegene_line,
    render_bluegene_line,
    severity_for,
    to_bluegene,
)
from repro.simlog.record import LogRecord
from repro.topology import CrayNodeId

NODE = CrayNodeId(2, 1, 0, 8, 3)


class TestSeverityAssignment:
    def test_corrected_errors_are_info(self):
        rec = LogRecord(1.0, NODE, "kernel", "Corrected Memory Errors on Page f00")
        assert severity_for(rec) == "INFO"

    def test_boot_chatter_is_fatal_mismatch(self):
        """The Table-12 mismatch: benign boot messages log as FATAL."""
        rec = LogRecord(1.0, NODE, "bootd", "Wait4Boot")
        assert severity_for(rec) == "FATAL"

    def test_panic_is_fatal(self):
        rec = LogRecord(1.0, NODE, "kernel", "Kernel panic - not syncing")
        assert severity_for(rec) == "FATAL"

    def test_generic_error(self):
        rec = LogRecord(1.0, NODE, "erd", "cb_node_unavailable")
        assert severity_for(rec) == "ERROR"


class TestCodec:
    def test_round_trip_node_record(self):
        rec = LogRecord(1234.5, NODE, "kernel", "some message 42")
        parsed, severity = parse_bluegene_line(render_bluegene_line(rec))
        assert parsed.node == NODE
        assert parsed.timestamp == pytest.approx(1234.5)
        assert parsed.message == "some message 42"
        assert severity in ("INFO", "WARNING", "ERROR", "FATAL")

    def test_round_trip_system_record(self):
        rec = LogRecord(9.0, None, "erd", "system wide message")
        parsed, _ = parse_bluegene_line(render_bluegene_line(rec))
        assert parsed.node is None

    def test_location_code_format(self):
        line = render_bluegene_line(LogRecord(1.0, NODE, "kernel", "x"))
        assert "R02-M1-N0-J08-U3" in line
        assert " RAS " in line

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "not a ras line",
            "1.000000 R00-M0-N0-J00-U0 RAS kernel BOGUS message",  # bad severity
            "1.000000 X00 RAS kernel INFO message",  # bad location
        ],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(ParseError):
            parse_bluegene_line(bad)

    def test_stream_round_trip_on_generated_log(self, small_log):
        subset = list(small_log.records[:400])
        back = list(from_bluegene(to_bluegene(subset)))
        assert [(r.timestamp, r.node, r.message) for r in back] == [
            (r.timestamp, r.node, r.message) for r in subset
        ]


class TestGenericityEndToEnd:
    def test_desh_trains_from_bluegene_format(self, small_log, mini_config):
        """The full pipeline runs unchanged on BlueGene-formatted logs.

        Only (timestamp, component, message) survive the format hop — the
        severity column is discarded — and prediction quality matches the
        native-format model, demonstrating the paper's §4.6 claim that
        the approach "remains unperturbed by the chasms of diverse
        computing infrastructures".
        """
        from repro.core import Desh

        train, test = small_log.split(0.3)
        bg_train = list(from_bluegene(to_bluegene(train.records)))
        model = Desh(mini_config).fit(bg_train, train_classifier=False)
        assert model.num_chains > 0

        bg_test = list(from_bluegene(to_bluegene(test.records)))
        preds = model.predict(bg_test)
        gt = test.ground_truth
        hits = sum(
            1
            for p in preds
            if gt.failure_near(p.node, p.decision_time, lookahead=700.0)
        )
        assert hits >= len(gt.failures) * 0.5

    def test_severity_column_misleads(self, small_log):
        """A severity-trusting consumer is provably misled (Table 12)."""
        info_abnormal = fatal_benign = 0
        for record in small_log.records[:5000]:
            sev = severity_for(record)
            msg = record.message
            if sev == "INFO" and ("Corrected" in msg or "Correctable" in msg):
                info_abnormal += 1  # hardware-error evidence logged as INFO
            if sev == "FATAL" and "Wait4Boot" in msg:
                fatal_benign += 1  # benign boot message logged as FATAL
        assert info_abnormal > 0
        assert fatal_benign > 0
