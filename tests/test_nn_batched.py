"""Tests for the batch-major inference core.

The load-bearing property is *bit-identity*: a window scored inside any
batch, under any chunking, equals the same window scored alone — exact
float equality, not allclose.  The monitor's batched flush and the
phase-3 batched scorer both lean on it.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import Phase3Config
from repro.core.deltas import LeadTimeScaler
from repro.core.phase3 import Phase3Predictor
from repro.errors import NotFittedError, ShapeError
from repro.nn import BatchedScorer
from repro.nn.lstm import LSTMCell, StackedLSTM
from repro.nn.model import SequenceRegressor

VOCAB = 40
HISTORY = 5


def _regressor(seed: int = 3) -> SequenceRegressor:
    model = SequenceRegressor(2, hidden_size=16, num_layers=2, seed=seed)
    model._fitted = True  # random weights: bit-identity is value-free
    return model


def _scorer(model: SequenceRegressor) -> BatchedScorer:
    scaler = LeadTimeScaler(max_lead_seconds=600.0, vocab_size=VOCAB)
    return BatchedScorer(model, scaler, history=HISTORY)


# One shared instance: hypothesis examples must not pay model setup.
_MODEL = _regressor()
_SCORER = _scorer(_MODEL)


def _random_chain(rng: np.random.Generator, length: int):
    gaps = rng.uniform(0.0, 120.0, size=length)
    timestamps = np.cumsum(gaps)
    phrase_ids = rng.integers(0, VOCAB, size=length)
    return timestamps, phrase_ids


class TestKernelBitIdentity:
    @given(
        # Length >= 2 mirrors phase-3's min_chain_events floor: row-bit-
        # independence is guaranteed for batches of >= 2 rows (a 1-row
        # GEMM takes a different BLAS kernel), and no scored unit ever
        # produces fewer than 2 windows.
        lengths=st.lists(st.integers(2, 12), min_size=1, max_size=8),
        chunk=st.integers(2, 64),
        seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=40, deadline=None, derandomize=True)
    def test_batched_equals_sequential(self, lengths, chunk, seed):
        """Ragged units stacked into one chunked batch score bit-equal."""
        rng = np.random.default_rng(seed)
        stacks = []
        for length in lengths:
            ts, ids = _random_chain(rng, length)
            x, _, _ = _SCORER.chain_matrix(ts, ids)
            stacks.append(x)
        stacked = np.concatenate(stacks, axis=0)
        batched = _SCORER.predict_batch(stacked, chunk=chunk)
        offset = 0
        for x in stacks:
            alone = _SCORER.predict_batch(x)
            assert np.array_equal(batched[offset : offset + len(x)], alone)
            offset += len(x)

    @given(
        # B >= 2 for the same single-row-GEMM reason as above: the fused
        # forward projects all of x in one (B*T)-row GEMM, so a B=1
        # step's 1-row projection may round differently.
        batch=st.integers(2, 9),
        steps=st.integers(1, 7),
        seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=40, deadline=None, derandomize=True)
    def test_step_batch_rollout_equals_forward_infer(self, batch, steps, seed):
        """Stepping a batch through time reproduces the fused forward."""
        rng = np.random.default_rng(seed)
        lstm = StackedLSTM(2, 16, 2, np.random.default_rng(7))
        x = rng.random((batch, steps, 2))
        full = lstm.forward_infer(x)
        states = None
        for t in range(steps):
            h, states = lstm.step_batch(x[:, t, :], states)
            assert np.array_equal(h, full[:, t, :])

    def test_cell_step_batch_matches_stacked_first_layer(self):
        rng = np.random.default_rng(0)
        cell = LSTMCell(2, 16, np.random.default_rng(7))
        x = rng.random((4, 2))
        h, c = cell.step_batch(x)
        h2, c2 = cell.step_batch(x, h, c)
        assert h.shape == c.shape == (4, 16)
        assert not np.array_equal(h, h2)
        assert c2.shape == (4, 16)

    def test_predict_infer_matches_training_forward_closely(self):
        """The inference kernel is the same function, modulo 1-2 ulp."""
        rng = np.random.default_rng(1)
        x = rng.random((16, HISTORY, 2))
        np.testing.assert_allclose(
            _MODEL.predict_infer(x), _MODEL.predict(x), rtol=1e-12
        )

    def test_round_trip_preserves_bit_identity(self, tmp_path):
        """Save/load the regressor: batched scoring stays bit-equal."""
        path = tmp_path / "regressor.npz"
        _MODEL.save(path)
        loaded = SequenceRegressor.load(path)
        scorer = _scorer(loaded)
        rng = np.random.default_rng(5)
        ts, ids = _random_chain(rng, 9)
        x, _, _ = _SCORER.chain_matrix(ts, ids)
        assert np.array_equal(
            scorer.predict_batch(x), _SCORER.predict_batch(x)
        )
        stacked = np.concatenate([x, x, x], axis=0)
        batched = scorer.predict_batch(stacked, chunk=4)
        assert np.array_equal(batched[: len(x)], scorer.predict_batch(x))


class TestChainMatrix:
    @given(
        length=st.integers(1, 20),
        seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=40, deadline=None, derandomize=True)
    def test_matches_offline_episode_windows(self, length, seed):
        """The cached encoding is bit-equal to the phase-3 pipeline."""
        predictor = Phase3Predictor(
            _MODEL,
            _SCORER.scaler,
            config=Phase3Config(history_size=HISTORY),
        )
        rng = np.random.default_rng(seed)
        ts, ids = _random_chain(rng, length)
        x, y, pad = _SCORER.chain_matrix(ts, ids)
        x_ref, y_ref, pad_ref = predictor._episode_windows(ts, ids)
        assert pad == pad_ref
        assert np.array_equal(x, x_ref)
        assert np.array_equal(y, y_ref)

    def test_rejects_decreasing_timestamps(self):
        with pytest.raises(ShapeError, match="non-decreasing"):
            _SCORER.chain_matrix(
                np.array([2.0, 1.0]), np.array([0, 1], dtype=np.int64)
            )

    def test_rejects_out_of_vocab_ids(self):
        with pytest.raises(ShapeError, match="vocabulary"):
            _SCORER.chain_matrix(
                np.array([1.0, 2.0]), np.array([0, VOCAB], dtype=np.int64)
            )

    def test_rejects_mismatched_or_empty_chains(self):
        with pytest.raises(ShapeError, match="non-empty"):
            _SCORER.chain_matrix(
                np.array([1.0, 2.0]), np.array([0], dtype=np.int64)
            )
        with pytest.raises(ShapeError, match="non-empty"):
            _SCORER.chain_matrix(np.array([]), np.array([], dtype=np.int64))


class TestChunking:
    def test_chunk_bounds_never_isolate_one_row(self):
        for total in range(0, 40):
            for chunk in range(2, 9):
                bounds = BatchedScorer._chunk_bounds(total, chunk)
                assert sum(end - start for start, end in bounds) == total
                if total >= 2:
                    assert all(end - start >= 2 for start, end in bounds)
                # Contiguous, ordered cover.
                for (_, end), (start, _) in zip(bounds, bounds[1:]):
                    assert end == start

    def test_chunked_equals_unchunked(self):
        rng = np.random.default_rng(2)
        x = rng.random((37, HISTORY, 2))
        whole = _SCORER.predict_batch(x)
        for chunk in (2, 3, 8, 64):
            assert np.array_equal(
                _SCORER.predict_batch(x, chunk=chunk), whole
            )

    def test_chunk_below_two_rejected(self):
        rng = np.random.default_rng(2)
        x = rng.random((4, HISTORY, 2))
        with pytest.raises(ShapeError):
            _SCORER.predict_batch(x, chunk=1)


class TestValidation:
    def test_predict_infer_requires_fit(self):
        model = SequenceRegressor(2, hidden_size=8, num_layers=1, seed=0)
        with pytest.raises(NotFittedError):
            model.predict_infer(np.zeros((1, HISTORY, 2)))

    def test_scorer_requires_positive_history(self):
        with pytest.raises(ShapeError):
            BatchedScorer(_MODEL, _SCORER.scaler, history=0)

    def test_predict_batch_validates_rank(self):
        with pytest.raises(ShapeError):
            _SCORER.predict_batch(np.zeros((HISTORY, 2)))
