"""Tests for loss functions and their gradients."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn.losses import CategoricalCrossEntropy, MeanSquaredError


class TestCategoricalCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        loss_fn = CategoricalCrossEntropy()
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        targets = np.array([0, 1])
        assert loss_fn.loss(logits, targets) == pytest.approx(0.0, abs=1e-6)

    def test_uniform_prediction_log_c(self):
        loss_fn = CategoricalCrossEntropy()
        logits = np.zeros((4, 8))
        targets = np.arange(4)
        assert loss_fn.loss(logits, targets) == pytest.approx(np.log(8))

    def test_matches_manual_computation(self):
        loss_fn = CategoricalCrossEntropy()
        logits = np.array([[1.0, 2.0, 0.5]])
        p = np.exp(logits[0]) / np.exp(logits[0]).sum()
        assert loss_fn.loss(logits, np.array([1])) == pytest.approx(-np.log(p[1]))

    def test_grad_matches_numeric(self):
        rng = np.random.default_rng(0)
        loss_fn = CategoricalCrossEntropy()
        logits = rng.standard_normal((3, 5))
        targets = np.array([0, 3, 2])
        grad = loss_fn.grad(logits, targets)
        eps = 1e-6
        for i in range(3):
            for j in range(5):
                perturbed = logits.copy()
                perturbed[i, j] += eps
                hi = loss_fn.loss(perturbed, targets)
                perturbed[i, j] -= 2 * eps
                lo = loss_fn.loss(perturbed, targets)
                assert grad[i, j] == pytest.approx((hi - lo) / (2 * eps), abs=1e-6)

    def test_grad_rows_sum_to_zero(self):
        """softmax - onehot always sums to zero per row."""
        rng = np.random.default_rng(1)
        loss_fn = CategoricalCrossEntropy()
        grad = loss_fn.grad(rng.standard_normal((4, 6)), np.array([0, 1, 2, 3]))
        assert np.allclose(grad.sum(axis=1), 0.0)

    @pytest.mark.parametrize(
        "logits,targets",
        [
            (np.zeros((3,)), np.zeros(3, dtype=int)),  # 1-D logits
            (np.zeros((3, 4)), np.zeros(2, dtype=int)),  # length mismatch
            (np.zeros((3, 4)), np.zeros(3)),  # float targets
            (np.zeros((3, 4)), np.array([0, 1, 4])),  # class out of range
        ],
    )
    def test_rejects_bad_shapes(self, logits, targets):
        with pytest.raises(ShapeError):
            CategoricalCrossEntropy().loss(logits, targets)


class TestMeanSquaredError:
    def test_zero_for_exact(self):
        mse = MeanSquaredError()
        x = np.ones((3, 2))
        assert mse.loss(x, x) == 0.0

    def test_matches_numpy(self):
        rng = np.random.default_rng(2)
        a, b = rng.standard_normal((4, 3)), rng.standard_normal((4, 3))
        assert MeanSquaredError().loss(a, b) == pytest.approx(np.mean((a - b) ** 2))

    def test_grad_matches_numeric(self):
        rng = np.random.default_rng(3)
        mse = MeanSquaredError()
        pred = rng.standard_normal((2, 3))
        target = rng.standard_normal((2, 3))
        grad = mse.grad(pred, target)
        eps = 1e-6
        for i in range(2):
            for j in range(3):
                p = pred.copy()
                p[i, j] += eps
                hi = mse.loss(p, target)
                p[i, j] -= 2 * eps
                lo = mse.loss(p, target)
                assert grad[i, j] == pytest.approx((hi - lo) / (2 * eps), abs=1e-6)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ShapeError):
            MeanSquaredError().loss(np.ones((2, 2)), np.ones((2, 3)))

    def test_rejects_empty(self):
        with pytest.raises(ShapeError):
            MeanSquaredError().loss(np.empty((0, 2)), np.empty((0, 2)))
