"""Tests for the exception hierarchy."""

import pytest

from repro import errors


ALL_ERRORS = [
    errors.ConfigError,
    errors.TopologyError,
    errors.NodeIdError,
    errors.LogGenerationError,
    errors.ParseError,
    errors.TemplateMinerError,
    errors.VocabularyError,
    errors.LabelingError,
    errors.ShapeError,
    errors.NotFittedError,
    errors.TrainingError,
    errors.ChainExtractionError,
    errors.PredictionError,
    errors.DatasetError,
    errors.SerializationError,
    errors.IngestError,
    errors.CheckpointError,
    errors.ParallelError,
]


@pytest.mark.parametrize("exc", ALL_ERRORS)
def test_all_errors_derive_from_repro_error(exc):
    assert issubclass(exc, errors.ReproError)


@pytest.mark.parametrize("exc", ALL_ERRORS)
def test_errors_are_catchable_as_repro_error(exc):
    with pytest.raises(errors.ReproError):
        raise exc("boom")


def test_node_id_error_is_topology_error():
    assert issubclass(errors.NodeIdError, errors.TopologyError)


def test_config_error_is_value_error():
    """Callers using stdlib idioms still catch config problems."""
    assert issubclass(errors.ConfigError, ValueError)


def test_vocabulary_error_is_key_error():
    assert issubclass(errors.VocabularyError, KeyError)


def test_not_fitted_error_is_runtime_error():
    assert issubclass(errors.NotFittedError, RuntimeError)


@pytest.mark.parametrize(
    "exc", [errors.IngestError, errors.CheckpointError, errors.ParallelError]
)
def test_resilience_errors_are_runtime_errors(exc):
    """Callers using stdlib idioms still catch operational failures."""
    assert issubclass(exc, RuntimeError)


def test_repro_error_does_not_catch_unrelated():
    with pytest.raises(ValueError):
        try:
            raise ValueError("plain")
        except errors.ReproError:  # pragma: no cover - must not trigger
            pytest.fail("ReproError must not catch plain ValueError")
