"""Cache correctness of the staged Desh pipeline.

The core property: a config edit invalidates exactly the edited stage
and its descendants — nothing more, nothing less — and a warm re-run
serves everything else from the artifact store bit-identically.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.config import (
    DeshConfig,
    EmbeddingConfig,
    Phase1Config,
    Phase2Config,
    Phase3Config,
)
from repro.core import Desh
from repro.pipeline import DeshPipeline, assemble_model, fingerprint_records

ALL_STAGES = {
    "parse",
    "embeddings",
    "phase1",
    "chains",
    "phase2",
    "classifier",
    "phase3",
}


@pytest.fixture(scope="module")
def pipe_config() -> DeshConfig:
    return DeshConfig(
        embedding=EmbeddingConfig(dim=12, epochs=1),
        phase1=Phase1Config(hidden_size=16, epochs=1, batch_size=128),
        phase2=Phase2Config(hidden_size=32, epochs=40, learning_rate=0.01),
        phase3=Phase3Config(),
        seed=7,
    )


@pytest.fixture(scope="module")
def train_records(small_log):
    train, _ = small_log.split(0.3)
    return list(train.records)


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("pipeline-cache")


@pytest.fixture(scope="module")
def cold_run(pipe_config, train_records, cache_dir):
    """One cold pipeline run that fills the artifact store."""
    return DeshPipeline(pipe_config, cache_dir=cache_dir).run(train_records)


def _perturb(config: DeshConfig, field: str, sub: dict) -> DeshConfig:
    return dataclasses.replace(
        config, **{field: dataclasses.replace(getattr(config, field), **sub)}
    )


# Each row: (label, config-perturbation, exact set of stale stages).
PERTURBATIONS = [
    (
        "embedding-dim",
        lambda c: _perturb(c, "embedding", {"dim": 8}),
        {"embeddings", "phase1"},
    ),
    (
        "phase1-hidden",
        lambda c: _perturb(c, "phase1", {"hidden_size": 24}),
        {"phase1"},
    ),
    (
        "phase2-lr",
        lambda c: _perturb(c, "phase2", {"learning_rate": 0.02}),
        {"phase2", "phase3"},
    ),
    (
        "phase3-threshold",
        lambda c: _perturb(c, "phase3", {"mse_threshold": 0.5}),
        {"phase3"},
    ),
    (
        "phase2-lookback",  # drives the chain extractor AND the episode gap
        lambda c: _perturb(c, "phase2", {"max_lead_seconds": 1800.0}),
        {"chains", "classifier", "phase2", "phase3"},
    ),
    (
        "seed",
        lambda c: dataclasses.replace(c, seed=c.seed + 1),
        {"embeddings", "phase1", "phase2", "phase3"},
    ),
]


class TestSelectiveInvalidation:
    @pytest.mark.parametrize(
        "label, perturb, stale", PERTURBATIONS, ids=[p[0] for p in PERTURBATIONS]
    )
    def test_config_edit_invalidates_exact_descendants(
        self, label, perturb, stale, pipe_config, train_records, cache_dir, cold_run
    ):
        pipe = DeshPipeline(perturb(pipe_config), cache_dir=cache_dir)
        plan = pipe.runner.plan(pipe.data_fingerprint(train_records))
        assert {p.name for p in plan if not p.cached} == stale
        assert {p.name for p in plan if p.cached} == ALL_STAGES - stale

    def test_unchanged_config_is_fully_cached(
        self, pipe_config, train_records, cache_dir, cold_run
    ):
        pipe = DeshPipeline(pipe_config, cache_dir=cache_dir)
        plan = pipe.runner.plan(pipe.data_fingerprint(train_records))
        assert all(p.cached for p in plan)

    def test_data_change_invalidates_everything(
        self, pipe_config, train_records, cache_dir, cold_run
    ):
        pipe = DeshPipeline(pipe_config, cache_dir=cache_dir)
        plan = pipe.runner.plan(fingerprint_records(train_records[:500]))
        assert not any(p.cached for p in plan)


class TestWarmExecution:
    def test_cold_run_misses_everything(self, cold_run):
        assert set(cold_run.cache_misses) == ALL_STAGES
        assert cold_run.cache_hits == []

    def test_phase2_edit_reruns_only_phase2_and_phase3(
        self, pipe_config, train_records, cache_dir, cold_run
    ):
        """The acceptance criterion: a Phase-2 edit skips parse/phase1/chains."""
        edited = _perturb(pipe_config, "phase2", {"learning_rate": 0.02})
        result = DeshPipeline(edited, cache_dir=cache_dir).run(train_records)
        assert set(result.cache_misses) == {"phase2", "phase3"}
        assert set(result.cache_hits) == ALL_STAGES - {"phase2", "phase3"}
        # The assembled model is complete and usable.
        model = assemble_model(edited, result)
        assert model.num_chains > 0
        assert model.phase2.regressor is not None

    def test_warm_refit_is_bit_identical(
        self, pipe_config, train_records, cache_dir, cold_run, test_split
    ):
        warm = DeshPipeline(pipe_config, cache_dir=cache_dir).run(train_records)
        assert warm.cache_misses == []
        assert set(warm.cache_hits) == ALL_STAGES
        cold_model = assemble_model(pipe_config, cold_run)
        warm_model = assemble_model(pipe_config, warm)
        records = list(test_split.records)
        cold_warn = cold_model.warn(records)
        warm_warn = warm_model.warn(records)
        assert [
            (w.node, w.decision_time, w.lead_seconds, w.mse, w.likely_class)
            for w in cold_warn
        ] == [
            (w.node, w.decision_time, w.lead_seconds, w.mse, w.likely_class)
            for w in warm_warn
        ]

    def test_fit_facade_uses_cache(
        self, pipe_config, train_records, cache_dir, cold_run
    ):
        """``Desh.fit(cache_dir=...)`` rides the same artifact store."""
        model = Desh(pipe_config).fit(train_records, cache_dir=str(cache_dir))
        assert model.num_chains > 0
        assert model.phase1.classifier is not None
