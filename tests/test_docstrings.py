"""Documentation quality gate: every public item carries a docstring."""

import importlib
import inspect
import pkgutil

import pytest

import repro


def iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


MODULES = list(iter_modules())


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), (
        f"module {module.__name__} lacks a docstring"
    )


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_classes_and_functions_documented(module):
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-export; documented at its definition site
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(name)
            continue
        if inspect.isclass(obj):
            for mname, member in vars(obj).items():
                if mname.startswith("_"):
                    continue
                func = member
                if isinstance(member, (staticmethod, classmethod)):
                    func = member.__func__
                if isinstance(member, property):
                    func = member.fget
                if not inspect.isfunction(func):
                    continue
                if not (func.__doc__ and func.__doc__.strip()):
                    undocumented.append(f"{name}.{mname}")
    assert not undocumented, (
        f"{module.__name__}: missing docstrings on {sorted(undocumented)}"
    )
