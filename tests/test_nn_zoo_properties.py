"""Property-based tests for the TCN and attention zoo kernels.

Three invariants, checked under hypothesis:

* **causality** — output at step ``t`` is bitwise invariant to
  perturbing inputs at any step ``> t`` (the dilated convolutions are
  left-padded; the attention mask is strictly lower-triangular and the
  pooling head is a prefix mean);
* **batch independence** — a window scored inside any batch of size
  >= 2 equals the same window scored in a different batch of size >= 2
  bit-for-bit, the same regime ``test_nn_batched.py`` pins for the
  LSTM (all matmuls keep the batch axis stacked, so per-sequence GEMM
  shapes never depend on ``B``);
* **dtype/shape stability** — float64 in, float64 out, with
  :class:`ShapeError` on malformed input.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ShapeError
from repro.nn import AttentionBackbone, TCNBackbone, build_backbone

IN, HID = 3, 6

# Shared instances: hypothesis examples must not pay construction cost.
_BACKBONES = {
    "tcn": build_backbone("tcn", IN, HID, 2, np.random.default_rng(5)),
    "attention": build_backbone("attention", IN, HID, 2, np.random.default_rng(5)),
}

ZOO = sorted(_BACKBONES)


@pytest.mark.parametrize("name", ZOO)
@given(data=st.data())
@settings(max_examples=30, deadline=None, derandomize=True)
def test_causality_future_perturbation_invisible(name, data):
    """Perturbing steps > t leaves outputs at steps <= t bit-identical."""
    bb = _BACKBONES[name]
    T = data.draw(st.integers(2, 10), label="T")
    t = data.draw(st.integers(0, T - 2), label="t")
    seed = data.draw(st.integers(0, 2**31 - 1), label="seed")
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((2, T, IN))
    base = bb.forward_infer(x)
    perturbed = x.copy()
    perturbed[:, t + 1 :, :] += rng.standard_normal((2, T - t - 1, IN))
    out = bb.forward_infer(perturbed)
    assert np.array_equal(base[:, : t + 1, :], out[:, : t + 1, :])
    # Sanity: the perturbation must actually reach later steps.
    assert not np.array_equal(base[:, t + 1 :, :], out[:, t + 1 :, :])


@pytest.mark.parametrize("name", ZOO)
@given(
    # B >= 2 on both sides: single-row GEMMs may take a different BLAS
    # kernel, the same floor test_nn_batched.py documents for the LSTM.
    b1=st.integers(2, 6),
    b2=st.integers(2, 6),
    T=st.integers(2, 9),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=30, deadline=None, derandomize=True)
def test_batch_independence_bitwise(name, b1, b2, T, seed):
    """A row's output never depends on its batch neighbours."""
    bb = _BACKBONES[name]
    rng = np.random.default_rng(seed)
    row = rng.standard_normal((1, T, IN))
    batch_a = np.concatenate([row] + [rng.standard_normal((1, T, IN)) for _ in range(b1 - 1)])
    batch_b = np.concatenate([row] + [rng.standard_normal((1, T, IN)) for _ in range(b2 - 1)])
    out_a = bb.forward_infer(batch_a)[0]
    out_b = bb.forward_infer(batch_b)[0]
    assert np.array_equal(out_a, out_b)


@pytest.mark.parametrize("name", ZOO)
@given(
    B=st.integers(2, 5),
    T=st.integers(1, 8),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=20, deadline=None, derandomize=True)
def test_dtype_and_shape_stability(name, B, T, seed):
    bb = _BACKBONES[name]
    x = np.random.default_rng(seed).standard_normal((B, T, IN)).astype(np.float32)
    out = bb.forward_infer(x)  # float32 input is upcast, not propagated
    assert out.dtype == np.float64
    assert out.shape == (B, T, HID)
    assert np.all(np.isfinite(out))


@pytest.mark.parametrize("name", ZOO)
def test_malformed_input_raises_shape_error(name):
    bb = _BACKBONES[name]
    with pytest.raises(ShapeError):
        bb.forward_infer(np.zeros((2, 4)))  # missing feature axis
    with pytest.raises(ShapeError):
        bb.forward_infer(np.zeros((2, 4, IN + 1)))  # wrong feature width


def test_tcn_receptive_field_covers_dilations():
    bb = TCNBackbone(IN, HID, 3, np.random.default_rng(1), kernel_size=3)
    # Levels at dilation 1, 2, 4 with k=3: 1 + 2*2*(1+2+4) = 29.
    assert bb.receptive_field == 29


def test_attention_rejects_windows_beyond_max_len():
    bb = AttentionBackbone(IN, HID, 1, np.random.default_rng(1), max_len=8)
    with pytest.raises(ShapeError, match="max_len"):
        bb.forward_infer(np.zeros((2, 9, IN)))
