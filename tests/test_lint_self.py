"""Tier-1 self-lint gate: the repo's own source must pass deshlint.

This is the same check CI runs via ``repro lint``: every rule (the
syntactic R1-R5 plus the dataflow F1-F6) over the installed ``repro``
package, with the checked-in baseline applied.  Any new finding turns
the suite red.
"""

import json
from pathlib import Path

import repro
from repro.lint import Baseline, get_rules, lint_paths

REPO_ROOT = Path(__file__).resolve().parents[1]
PACKAGE_DIR = Path(repro.__file__).resolve().parent
BASELINE_PATH = REPO_ROOT / "lint-baseline.json"


def test_repro_package_is_lint_clean():
    baseline = Baseline.load(BASELINE_PATH) if BASELINE_PATH.exists() else None
    report = lint_paths([PACKAGE_DIR], baseline=baseline)
    rendered = "\n".join(f.render() for f in report.findings)
    assert report.ok, f"deshlint found new violations:\n{rendered}"
    assert report.modules > 90  # the walk really covered the package


def test_baseline_carries_no_stale_entries():
    """Every baseline entry must still match a real finding.

    A stale entry means someone fixed a grandfathered violation without
    regenerating the baseline — the budget should shrink with the debt.
    """
    if not BASELINE_PATH.exists():
        return
    baseline = Baseline.load(BASELINE_PATH)
    report = lint_paths([PACKAGE_DIR], baseline=baseline)
    assert len(report.baselined) == len(baseline), (
        "lint-baseline.json has entries no finding consumes; regenerate it "
        "with `repro lint --update-baseline`"
    )


def test_dataflow_rules_clean_with_empty_baseline():
    """F1-F6 hold over the tree without any grandfathered debt.

    The dataflow analyses were introduced with a clean slate: the
    checked-in baseline must stay empty, and running only F1-F6 (no
    baseline at all) must produce zero findings.  If an analysis change
    starts flagging the repo, fix or ``allow[...]``-annotate the site —
    don't grandfather it.
    """
    entries = json.loads(BASELINE_PATH.read_text())["entries"]
    assert entries == [], "lint-baseline.json must stay empty"
    report = lint_paths(
        [PACKAGE_DIR],
        rules=get_rules(["F1", "F2", "F3", "F4", "F5", "F6"]),
    )
    rendered = "\n".join(f.render() for f in report.findings)
    assert not report.findings, f"dataflow rules flag the repo:\n{rendered}"


def test_parallel_jobs_report_matches_serial():
    """``--jobs N`` must be a pure speedup: identical findings, order
    included, to the serial run — the determinism contract of
    ``ordered_parallel_map`` extended to the lint engine itself."""
    serial = lint_paths([PACKAGE_DIR / "serve"], jobs=1)
    parallel = lint_paths([PACKAGE_DIR / "serve"], jobs=4)
    assert [f.to_dict() for f in serial.findings] == [
        f.to_dict() for f in parallel.findings
    ]
    assert serial.modules == parallel.modules
