"""Tier-1 self-lint gate: the repo's own source must pass deshlint.

This is the same check CI runs via ``repro lint``: every rule (the
syntactic R1-R5, the dataflow F1-F6 and the perf P1-P3) over the
installed ``repro`` package, with the checked-in baseline applied.
Any new finding turns the suite red.
"""

import json
import random
import subprocess
import sys
import textwrap
from pathlib import Path

import repro
from repro.lint import Baseline, get_rules, lint_paths
from repro.lint.engine import lint_modules, load_modules

REPO_ROOT = Path(__file__).resolve().parents[1]
PACKAGE_DIR = Path(repro.__file__).resolve().parent
BASELINE_PATH = REPO_ROOT / "lint-baseline.json"


def test_repro_package_is_lint_clean():
    baseline = Baseline.load(BASELINE_PATH) if BASELINE_PATH.exists() else None
    report = lint_paths([PACKAGE_DIR], baseline=baseline)
    rendered = "\n".join(f.render() for f in report.findings)
    assert report.ok, f"deshlint found new violations:\n{rendered}"
    assert report.modules > 90  # the walk really covered the package


def test_baseline_carries_no_stale_entries():
    """Every baseline entry must still match a real finding.

    A stale entry means someone fixed a grandfathered violation without
    regenerating the baseline — the budget should shrink with the debt.
    """
    if not BASELINE_PATH.exists():
        return
    baseline = Baseline.load(BASELINE_PATH)
    report = lint_paths([PACKAGE_DIR], baseline=baseline)
    assert len(report.baselined) == len(baseline), (
        "lint-baseline.json has entries no finding consumes; regenerate it "
        "with `repro lint --update-baseline`"
    )


def test_dataflow_rules_clean_with_empty_baseline():
    """F1-F6 and P1-P3 hold over the tree without grandfathered debt.

    The dataflow and perf analyses were introduced with a clean slate:
    the checked-in baseline must stay empty, and running only F1-F6 +
    P1-P3 (no baseline at all) must produce zero findings.  If an
    analysis change starts flagging the repo, fix or
    ``allow[...]``-annotate the site — don't grandfather it.
    """
    entries = json.loads(BASELINE_PATH.read_text())["entries"]
    assert entries == [], "lint-baseline.json must stay empty"
    report = lint_paths(
        [PACKAGE_DIR],
        rules=get_rules(
            ["F1", "F2", "F3", "F4", "F5", "F6", "P1", "P2", "P3"]
        ),
    )
    rendered = "\n".join(f.render() for f in report.findings)
    assert not report.findings, f"dataflow/perf rules flag the repo:\n{rendered}"


def test_parallel_jobs_report_matches_serial():
    """``--jobs N`` must be a pure speedup: identical findings, order
    included, to the serial run — the determinism contract of
    ``ordered_parallel_map`` extended to the lint engine itself."""
    serial = lint_paths([PACKAGE_DIR / "serve"], jobs=1)
    parallel = lint_paths([PACKAGE_DIR / "serve"], jobs=4)
    assert [f.to_dict() for f in serial.findings] == [
        f.to_dict() for f in parallel.findings
    ]
    assert serial.modules == parallel.modules


def _write_violation_tree(root: Path) -> Path:
    """A small package tree with violations from every rule family."""
    pkg = root / "victim"
    pkg.mkdir()
    (pkg / "__init__.py").write_text('"""Pkg."""\n\n__all__ = []\n')
    (pkg / "rng.py").write_text(
        '"""Doc."""\n\nimport random\n\n__all__ = []\n'
    )
    (pkg / "loops.py").write_text(
        textwrap.dedent(
            '''
            """Doc."""

            import numpy as np

            __all__ = ["go"]


            def go(xs: np.ndarray, n: int) -> float:
                """Sum slowly."""
                total = 0.0
                for x in xs:
                    scale = np.zeros(4)
                    total += float(x) * 2.0 + scale[0]
                return total
            '''
        ).lstrip()
    )
    (pkg / "quad.py").write_text(
        textwrap.dedent(
            '''
            """Doc."""

            __all__ = ["front"]


            def front(items: list) -> list:
                """Prepend everything."""
                out: list = []
                for item in items:
                    out.insert(0, item)
                return out
            '''
        ).lstrip()
    )
    return pkg


def test_jobs_output_byte_identical_across_hash_seeds(tmp_path):
    """Satellite determinism gate: stdout and SARIF are byte-identical
    between ``--jobs 4`` and serial under PYTHONHASHSEED 0, 1 and 2.

    The perf rules walk dicts of reaching definitions and kind maps —
    any hash-order leak shows up as reordered findings or messages the
    moment the hash seed moves, so the whole matrix must collapse to
    one byte string.
    """
    pkg = _write_violation_tree(tmp_path)
    src = Path(repro.__file__).resolve().parents[1]
    outputs = set()
    for seed in ("0", "1", "2"):
        for jobs in ("1", "4"):
            sarif = tmp_path / f"seed{seed}-jobs{jobs}.sarif"
            run = subprocess.run(
                [
                    sys.executable,
                    "-m",
                    "repro.cli",
                    "lint",
                    str(pkg),
                    "--no-baseline",
                    "--jobs",
                    jobs,
                    "--sarif",
                    str(sarif),
                ],
                cwd=tmp_path,
                env={
                    "PYTHONPATH": str(src),
                    "PYTHONHASHSEED": seed,
                    "PATH": "/usr/bin:/bin",
                },
                capture_output=True,
                text=True,
            )
            assert run.returncode == 1, run.stderr
            outputs.add((run.stdout, sarif.read_bytes()))
    assert len(outputs) == 1, "lint output varies with jobs/hash seed"
    stdout = next(iter(outputs))[0]
    for rule in ("R1", "P1", "P2", "P3"):
        assert rule in stdout


def test_report_invariant_under_module_discovery_order(tmp_path):
    """Shuffling the module list must not change the report.

    Project-wide hooks and the final sort see modules in discovery
    order; a rule that accumulates state across modules in a
    order-sensitive way would leak it here.
    """
    pkg = _write_violation_tree(tmp_path)
    modules, errors = load_modules([pkg])
    assert len(modules) >= 4 and not errors
    baseline_report = lint_modules(modules)
    expected = [f.to_dict() for f in baseline_report.findings]
    for seed in (0, 1, 2):
        shuffled = list(modules)
        random.Random(seed).shuffle(shuffled)
        report = lint_modules(shuffled)
        assert [f.to_dict() for f in report.findings] == expected
