"""Tests for parallel mapping and sharding."""

import os

import pytest

from repro.errors import ConfigError, ParallelError
from repro.events import EventSequence, ParsedEvent
from repro.parallel import ordered_parallel_map, shard_sequences
from repro.topology import CrayNodeId


def square(x):
    return x * x


class TestOrderedParallelMap:
    @pytest.mark.parametrize("mode", ["serial", "thread", "process"])
    def test_results_in_order(self, mode):
        items = list(range(37))
        out = ordered_parallel_map(square, items, max_workers=3, mode=mode)
        assert out == [x * x for x in items]

    def test_empty_input(self):
        assert ordered_parallel_map(square, []) == []

    def test_single_item(self):
        assert ordered_parallel_map(square, [4]) == [16]

    def test_modes_agree(self):
        items = list(range(20))
        serial = ordered_parallel_map(square, items, mode="serial")
        threaded = ordered_parallel_map(square, items, mode="thread")
        assert serial == threaded

    def test_explicit_chunk_size(self):
        out = ordered_parallel_map(square, list(range(10)), chunk_size=3)
        assert out == [x * x for x in range(10)]

    def test_rejects_bad_mode(self):
        with pytest.raises(ConfigError):
            ordered_parallel_map(square, [1], mode="gpu")

    def test_rejects_bad_workers(self):
        with pytest.raises(ConfigError):
            ordered_parallel_map(square, [1], max_workers=0)

    def test_rejects_bad_chunk_size(self):
        with pytest.raises(ConfigError):
            ordered_parallel_map(square, [1, 2], chunk_size=0)

    def test_exceptions_propagate(self):
        def boom(x):
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            ordered_parallel_map(boom, [1, 2], mode="thread")

    def test_failure_names_chunk_and_chains_cause(self):
        def boom(x):
            if x == 7:
                raise ValueError("poisoned item")
            return x

        with pytest.raises(ParallelError, match=r"chunk 4/5") as excinfo:
            ordered_parallel_map(
                boom, list(range(10)), max_workers=2, chunk_size=2
            )
        assert isinstance(excinfo.value.__cause__, ValueError)

    def test_failure_cancels_outstanding_chunks(self):
        import threading
        import time

        started = []
        lock = threading.Lock()

        def tracked(x):
            with lock:
                started.append(x)
            if x == 0:
                raise RuntimeError("first chunk dies")
            time.sleep(0.01)
            return x

        # Chunk 0 fails immediately while later chunks are slow, so the
        # queued tail must be cancelled rather than run to completion.
        with pytest.raises(ParallelError):
            ordered_parallel_map(
                tracked, list(range(100)), max_workers=2, chunk_size=1
            )
        assert len(started) < 100


def seq_of_length(node_index, n):
    node = CrayNodeId(0, 0, 0, 0, node_index)
    events = [
        ParsedEvent(timestamp=float(i), phrase_id=0, node=node) for i in range(n)
    ]
    return EventSequence(node, events)


class TestShardSequences:
    def test_all_sequences_assigned_once(self):
        seqs = [seq_of_length(i % 4, 5 + i) for i in range(4)]
        shards = shard_sequences(seqs, 2)
        flat = [s for shard in shards for s in shard]
        assert len(flat) == len(seqs)
        assert {id(s) for s in flat} == {id(s) for s in seqs}

    def test_balanced_loads(self):
        # One big sequence and many small ones.
        seqs = [seq_of_length(0, 100)] + [seq_of_length(i % 4, 10) for i in range(10)]
        shards = shard_sequences(seqs, 2)
        loads = [sum(len(s) for s in shard) for shard in shards]
        assert max(loads) <= 110
        assert min(loads) >= 90

    def test_more_shards_than_items(self):
        shards = shard_sequences([seq_of_length(0, 3)], 4)
        assert sum(bool(s) for s in shards) == 1
        assert len(shards) == 4

    def test_empty_input(self):
        assert shard_sequences([], 3) == [[], [], []]

    def test_deterministic(self):
        seqs = [seq_of_length(i % 4, 5 + 3 * i) for i in range(9)]
        a = shard_sequences(seqs, 3)
        b = shard_sequences(seqs, 3)
        assert [[id(s) for s in shard] for shard in a] == [
            [id(s) for s in shard] for shard in b
        ]

    def test_rejects_zero_shards(self):
        with pytest.raises(ConfigError):
            shard_sequences([], 0)
