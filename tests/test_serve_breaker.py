"""Tests for the per-shard circuit breaker state machine."""

import pytest

from repro.errors import ConfigError
from repro.serve import BreakerConfig, CircuitBreaker


@pytest.fixture
def breaker():
    return CircuitBreaker(
        BreakerConfig(fail_threshold=3, cooldown_items=4, half_open_successes=2)
    )


class TestCircuitBreaker:
    def test_starts_closed_and_allows(self, breaker):
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_opens_after_consecutive_faults(self, breaker):
        breaker.record_fault()
        breaker.record_fault()
        assert breaker.state == "closed"
        breaker.record_fault()
        assert breaker.state == "open"
        assert breaker.opened_total == 1

    def test_success_resets_fault_run(self, breaker):
        breaker.record_fault()
        breaker.record_fault()
        breaker.record_success()
        breaker.record_fault()
        breaker.record_fault()
        assert breaker.state == "closed"  # run was broken by the success

    def test_open_denies_for_cooldown_then_half_opens(self, breaker):
        for _ in range(3):
            breaker.record_fault()
        assert breaker.state == "open"
        denied = [breaker.allow() for _ in range(3)]
        assert denied == [False, False, False]
        assert breaker.allow()  # 4th item: cooldown elapsed, half-open
        assert breaker.state == "half-open"

    def test_half_open_closes_after_successes(self, breaker):
        for _ in range(3):
            breaker.record_fault()
        for _ in range(4):
            breaker.allow()
        assert breaker.state == "half-open"
        breaker.record_success()
        assert breaker.state == "half-open"
        breaker.record_success()
        assert breaker.state == "closed"

    def test_half_open_fault_reopens_immediately(self, breaker):
        for _ in range(3):
            breaker.record_fault()
        for _ in range(4):
            breaker.allow()
        assert breaker.state == "half-open"
        breaker.record_fault()
        assert breaker.state == "open"
        assert breaker.opened_total == 2

    def test_as_dict_shape(self, breaker):
        snapshot = breaker.as_dict()
        assert snapshot["state"] == "closed"
        assert snapshot["opened_total"] == 0
        assert snapshot["cooldown_left"] == 0

    def test_state_dict_round_trip_mid_cooldown(self, breaker):
        for _ in range(3):
            breaker.record_fault()
        breaker.allow()  # one cooldown item consumed
        restored = CircuitBreaker(
            BreakerConfig(
                fail_threshold=3, cooldown_items=4, half_open_successes=2
            )
        )
        restored.load_state_dict(breaker.state_dict())
        assert restored.state == "open"
        # Remaining cooldown must match: 3 more denials, then half-open.
        assert [restored.allow() for _ in range(3)] == [False, False, True]

    def test_load_rejects_bad_version_and_state(self, breaker):
        with pytest.raises(ConfigError):
            breaker.load_state_dict({"version": 2})
        bad = breaker.state_dict()
        bad["state"] = "exploded"
        with pytest.raises(ConfigError):
            breaker.load_state_dict(bad)

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            BreakerConfig(fail_threshold=0)
        with pytest.raises(ConfigError):
            BreakerConfig(cooldown_items=0)
        with pytest.raises(ConfigError):
            BreakerConfig(half_open_successes=0)
