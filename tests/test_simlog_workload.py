"""Tests for the slurm-like workload model."""

import numpy as np
import pytest

from repro.errors import LogGenerationError
from repro.simlog.workload import Job, WorkloadModel
from repro.topology import CrayNodeId


class TestJob:
    def test_duration(self):
        node = (CrayNodeId(0, 0, 0, 0, 0),)
        assert Job(1, node, 10.0, 40.0).duration == 30.0

    def test_rejects_end_before_start(self):
        with pytest.raises(LogGenerationError):
            Job(1, (CrayNodeId(0, 0, 0, 0, 0),), 10.0, 5.0)

    def test_rejects_empty_nodes(self):
        with pytest.raises(LogGenerationError):
            Job(1, (), 0.0, 1.0)


class TestWorkloadModel:
    def test_rejects_bad_params(self):
        with pytest.raises(LogGenerationError):
            WorkloadModel(arrival_rate=0.0)
        with pytest.raises(LogGenerationError):
            WorkloadModel(min_duration=0.0)
        with pytest.raises(LogGenerationError):
            WorkloadModel(mean_duration=10.0, min_duration=20.0)
        with pytest.raises(LogGenerationError):
            WorkloadModel(max_job_nodes=0)

    def test_sample_jobs_within_horizon(self, small_topology, rng):
        jobs = WorkloadModel(arrival_rate=1 / 60.0).sample_jobs(
            rng, small_topology, 3600.0
        )
        assert jobs, "expected some arrivals in an hour"
        assert all(0.0 <= j.start < 3600.0 for j in jobs)

    def test_sample_jobs_sorted_by_start(self, small_topology, rng):
        jobs = WorkloadModel(arrival_rate=1 / 30.0).sample_jobs(
            rng, small_topology, 3600.0
        )
        starts = [j.start for j in jobs]
        assert starts == sorted(starts)

    def test_durations_respect_minimum(self, small_topology, rng):
        model = WorkloadModel(arrival_rate=1 / 30.0, min_duration=120.0)
        jobs = model.sample_jobs(rng, small_topology, 3600.0)
        # (end - start) re-derives the duration, so allow float epsilon.
        assert all(j.duration >= 120.0 - 1e-6 for j in jobs)

    def test_node_counts_bounded(self, small_topology, rng):
        model = WorkloadModel(arrival_rate=1 / 30.0, max_job_nodes=3)
        jobs = model.sample_jobs(rng, small_topology, 3600.0)
        assert all(1 <= len(j.nodes) <= 3 for j in jobs)

    def test_job_ids_unique(self, small_topology, rng):
        jobs = WorkloadModel(arrival_rate=1 / 30.0).sample_jobs(
            rng, small_topology, 3600.0
        )
        ids = [j.job_id for j in jobs]
        assert len(set(ids)) == len(ids)

    def test_rejects_nonpositive_horizon(self, small_topology, rng):
        with pytest.raises(LogGenerationError):
            WorkloadModel().sample_jobs(rng, small_topology, 0.0)

    def test_job_records_emitted_per_node(self, small_topology, catalog, rng):
        model = WorkloadModel()
        jobs = [
            Job(1, tuple(small_topology.sample_nodes(rng, 2)), 100.0, 200.0),
        ]
        records = model.job_records(rng, jobs, catalog, horizon=3600.0)
        # one placement + one completion per node
        assert len(records) == 4
        assert {r.timestamp for r in records} == {100.0, 200.0}

    def test_job_records_skip_completion_past_horizon(
        self, small_topology, catalog, rng
    ):
        model = WorkloadModel()
        jobs = [Job(1, tuple(small_topology.sample_nodes(rng, 1)), 100.0, 5000.0)]
        records = model.job_records(rng, jobs, catalog, horizon=3600.0)
        assert len(records) == 1  # placement only

    def test_deterministic_for_seed(self, small_topology):
        model = WorkloadModel()
        a = model.sample_jobs(np.random.default_rng(5), small_topology, 3600.0)
        b = model.sample_jobs(np.random.default_rng(5), small_topology, 3600.0)
        assert [(j.job_id, j.start, j.end, j.nodes) for j in a] == [
            (j.job_id, j.start, j.end, j.nodes) for j in b
        ]
