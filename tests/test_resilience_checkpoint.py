"""Tests for atomic checkpoints and bit-identical training resume."""

import json

import numpy as np
import pytest

from repro.errors import CheckpointError, ConfigError
from repro.nn import Adam, RMSprop, SequenceRegressor
from repro.nn.losses import MeanSquaredError
from repro.nn.trainer import EarlyStoppingConfig, fit_with_validation
from repro.resilience import CheckpointManager, pack_fit_state, restore_fit_state


@pytest.fixture
def manager(tmp_path):
    return CheckpointManager(tmp_path / "ckpts")


def _arrays(scale=1.0):
    return {
        "w": np.full((3, 2), scale),
        "b": np.arange(4, dtype=np.float64) * scale,
    }


class TestCheckpointManager:
    def test_save_load_round_trip(self, manager):
        manager.save(1, _arrays(), {"epoch": 1, "note": "first"})
        step, arrays, meta = manager.load_latest()
        assert step == 1
        assert meta["note"] == "first"
        np.testing.assert_array_equal(arrays["w"], _arrays()["w"])

    def test_load_latest_empty_returns_none(self, manager):
        assert manager.load_latest() is None

    def test_latest_wins(self, manager):
        manager.save(1, _arrays(1.0), {"epoch": 1})
        manager.save(2, _arrays(2.0), {"epoch": 2})
        step, arrays, _ = manager.load_latest()
        assert step == 2
        assert arrays["w"][0, 0] == 2.0

    def test_keep_prunes_old_payloads(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep=2)
        for step in range(1, 5):
            manager.save(step, _arrays(float(step)), {"epoch": step})
        assert manager.steps() == [3, 4]
        kept = sorted(p.name for p in tmp_path.glob("ckpt-*.npz"))
        assert kept == ["ckpt-00000003.npz", "ckpt-00000004.npz"]

    def test_gc_removes_orphaned_payloads_and_tmp_files(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep=2)
        manager.save(1, _arrays(1.0), {"epoch": 1})
        manager.save(2, _arrays(2.0), {"epoch": 2})
        # Simulate a crash between payload write and manifest update,
        # plus a stale tmp from an interrupted atomic write.
        orphan = tmp_path / "ckpt-00000099.npz"
        orphan.write_bytes(b"orphaned payload")
        stale = tmp_path / "ckpt-00000100.npz.tmp"
        stale.write_bytes(b"half-written")
        removed = manager.gc()
        assert sorted(removed) == ["ckpt-00000099.npz", "ckpt-00000100.npz.tmp"]
        assert not orphan.exists() and not stale.exists()
        # Every live checkpoint survives GC and stays loadable.
        step, arrays, _ = manager.load_latest()
        assert step == 2
        assert arrays["w"][0, 0] == 2.0

    def test_save_runs_gc_automatically(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep=1)
        orphan = tmp_path / "ckpt-00000077.npz"
        tmp_path.mkdir(exist_ok=True)
        orphan.write_bytes(b"leftover")
        manager.save(1, _arrays(), {"epoch": 1})
        assert not orphan.exists()
        assert manager.load_latest()[0] == 1

    def test_gc_on_missing_directory_is_noop(self, tmp_path):
        manager = CheckpointManager(tmp_path / "never-created")
        assert manager.gc() == []

    def test_corrupt_newest_falls_back_to_previous(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep=2)
        manager.save(1, _arrays(1.0), {"epoch": 1})
        manager.save(2, _arrays(2.0), {"epoch": 2})
        # Flip bytes in the newest payload; its checksum no longer matches.
        newest = tmp_path / "ckpt-00000002.npz"
        newest.write_bytes(b"corrupted" + newest.read_bytes()[9:])
        step, arrays, _ = manager.load_latest()
        assert step == 1
        assert arrays["w"][0, 0] == 1.0

    def test_all_corrupt_raises(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep=1)
        manager.save(1, _arrays(), {"epoch": 1})
        payload = tmp_path / "ckpt-00000001.npz"
        payload.write_bytes(b"garbage")
        with pytest.raises(CheckpointError, match="failed verification"):
            manager.load_latest()

    def test_missing_payload_raises_checkpoint_error(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep=1)
        manager.save(1, _arrays(), {"epoch": 1})
        (tmp_path / "ckpt-00000001.npz").unlink()
        with pytest.raises(CheckpointError):
            manager.load_latest()

    def test_unreadable_manifest_raises(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save(1, _arrays(), {"epoch": 1})
        (tmp_path / "MANIFEST.json").write_text("{not json")
        with pytest.raises(CheckpointError, match="manifest"):
            manager.load_latest()

    def test_no_tmp_files_left_behind(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save(1, _arrays(), {"epoch": 1})
        assert not list(tmp_path.glob("*.tmp"))

    def test_manifest_is_json_with_checksums(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save(3, _arrays(), {"epoch": 3})
        manifest = json.loads((tmp_path / "MANIFEST.json").read_text())
        (entry,) = manifest["checkpoints"]
        assert entry["step"] == 3
        assert len(entry["sha256"]) == 64

    def test_rejects_bad_keep(self, tmp_path):
        with pytest.raises(ConfigError):
            CheckpointManager(tmp_path, keep=0)

    def test_rejects_negative_step(self, manager):
        with pytest.raises(CheckpointError):
            manager.save(-1, _arrays(), {})


class TestFitStatePacking:
    def _model_and_opt(self, seed=3):
        model = SequenceRegressor(
            input_dim=2, hidden_size=8, output_dim=2, seed=seed
        )
        return model, Adam(learning_rate=0.01)

    def _data(self, n=64):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(n, 5, 2))
        y = rng.normal(size=(n, 2))
        return x, y

    def test_round_trip_restores_params_and_slots(self):
        model, opt = self._model_and_opt()
        x, y = self._data()
        model.fit(x, y, epochs=2, optimizer=opt, rng=np.random.default_rng(1))
        rng = np.random.default_rng(5)
        arrays, meta = pack_fit_state(model.params(), opt, rng, epoch=2)

        other, opt2 = self._model_and_opt(seed=99)
        other.fit(x, y, epochs=1, optimizer=opt2, rng=np.random.default_rng(2))
        rng2 = np.random.default_rng(77)
        epoch = restore_fit_state(arrays, meta, other.params(), opt2, rng2)
        assert epoch == 2
        for key, arr in model.params().items():
            np.testing.assert_array_equal(arr, other.params()[key])
        assert rng2.bit_generator.state == rng.bit_generator.state
        assert opt2.learning_rate == opt.learning_rate

    def test_missing_param_raises(self):
        model, opt = self._model_and_opt()
        arrays, meta = pack_fit_state(model.params(), opt, None, epoch=1)
        del arrays["param::" + next(iter(model.params()))]
        with pytest.raises(CheckpointError, match="missing parameter"):
            restore_fit_state(arrays, meta, model.params(), opt, None)

    def test_shape_mismatch_raises(self):
        model, opt = self._model_and_opt()
        arrays, meta = pack_fit_state(model.params(), opt, None, epoch=1)
        key = "param::" + next(iter(model.params()))
        arrays[key] = np.zeros((1, 1))
        with pytest.raises(CheckpointError, match="shape mismatch"):
            restore_fit_state(arrays, meta, model.params(), opt, None)


class TestBitIdenticalResume:
    """The acceptance criterion: kill after epoch k, resume, same weights."""

    def _data(self, n=96):
        rng = np.random.default_rng(8)
        x = rng.normal(size=(n, 5, 2))
        y = rng.normal(size=(n, 2))
        return x, y

    def _fresh(self):
        model = SequenceRegressor(input_dim=2, hidden_size=8, output_dim=2, seed=3)
        return model, RMSprop(learning_rate=0.003)

    def test_model_fit_resumes_bit_identically(self, tmp_path):
        x, y = self._data()

        straight, opt = self._fresh()
        straight.fit(x, y, epochs=6, optimizer=opt, checkpoint=None)

        manager = CheckpointManager(tmp_path / "ck")
        killed, opt1 = self._fresh()
        killed.fit(x, y, epochs=3, optimizer=opt1, checkpoint=manager)

        resumed, opt2 = self._fresh()  # fresh weights, fresh optimizer
        resumed.fit(x, y, epochs=6, optimizer=opt2, checkpoint=manager)

        for key, arr in straight.params().items():
            np.testing.assert_array_equal(arr, resumed.params()[key])
        assert resumed.history == straight.history

    def test_trainer_resumes_bit_identically(self, tmp_path):
        x, y = self._data()
        mse = MeanSquaredError()

        def val_loss(model, xv, yv):
            return float(mse.loss(model.predict(xv), yv))

        cfg = EarlyStoppingConfig(patience=50, max_epochs=6, val_fraction=0.2)

        straight, opt = self._fresh()
        full = fit_with_validation(
            straight, x, y, optimizer=opt, val_loss_fn=val_loss, config=cfg, seed=4
        )

        class _Killed(RuntimeError):
            pass

        calls = {"n": 0}

        def killing_val_loss(model, xv, yv):
            calls["n"] += 1
            if calls["n"] > 3:
                raise _Killed("simulated crash mid-run")
            return val_loss(model, xv, yv)

        manager = CheckpointManager(tmp_path / "ck")
        victim, opt1 = self._fresh()
        with pytest.raises(_Killed):
            fit_with_validation(
                victim,
                x,
                y,
                optimizer=opt1,
                val_loss_fn=killing_val_loss,
                config=cfg,
                seed=4,
                checkpoint=manager,
            )
        assert manager.steps()  # at least one epoch checkpointed

        resumed, opt2 = self._fresh()
        out = fit_with_validation(
            resumed,
            x,
            y,
            optimizer=opt2,
            val_loss_fn=val_loss,
            config=cfg,
            seed=4,
            checkpoint=manager,
        )
        for key, arr in straight.params().items():
            np.testing.assert_array_equal(arr, resumed.params()[key])
        assert out.train_losses == full.train_losses
        assert out.val_losses == full.val_losses
        assert out.best_epoch == full.best_epoch

    def test_resumed_early_stop_returns_immediately(self, tmp_path):
        x, y = self._data()
        mse = MeanSquaredError()

        def val_loss(model, xv, yv):
            return float(mse.loss(model.predict(xv), yv))

        # Zero-tolerance early stopping trips quickly.
        cfg = EarlyStoppingConfig(
            patience=1, min_delta=10.0, max_epochs=50, val_fraction=0.2
        )
        manager = CheckpointManager(tmp_path / "ck")
        model, opt = self._fresh()
        first = fit_with_validation(
            model,
            x,
            y,
            optimizer=opt,
            val_loss_fn=val_loss,
            config=cfg,
            seed=4,
            checkpoint=manager,
        )
        assert first.stopped_early

        model2, opt2 = self._fresh()
        again = fit_with_validation(
            model2,
            x,
            y,
            optimizer=opt2,
            val_loss_fn=val_loss,
            config=cfg,
            seed=4,
            checkpoint=manager,
        )
        assert again.stopped_early
        assert again.val_losses == first.val_losses


class TestDeshCheckpointDir:
    def test_fit_with_checkpoint_dir_writes_phase_checkpoints(
        self, small_log, mini_config, tmp_path
    ):
        from repro.core import Desh

        train, _ = small_log.split(0.2)
        ckdir = tmp_path / "ckpts"
        Desh(mini_config).fit(
            list(train.records), train_classifier=False, checkpoint_dir=ckdir
        )
        manifest = ckdir / "phase2" / "MANIFEST.json"
        assert manifest.exists()
        entries = json.loads(manifest.read_text())["checkpoints"]
        assert entries
