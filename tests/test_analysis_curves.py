"""Tests for threshold operating curves, AUC, and the report generator."""

import numpy as np
import pytest

from repro.analysis import (
    Evaluator,
    OperatingPoint,
    system_report,
    threshold_curve,
    trapezoid_auc,
)
from repro.errors import ConfigError


@pytest.fixture(scope="module")
def sequences(trained_model, test_split):
    parsed = trained_model.parse(test_split.records)
    return [s for s in parsed.by_node().values() if s.node is not None]


class TestThresholdCurve:
    def test_points_in_order(self, trained_model, test_split, sequences):
        points = threshold_curve(
            trained_model.predictor,
            sequences,
            test_split.ground_truth,
            thresholds=(0.5, 2.0, 8.0),
        )
        assert [p.threshold for p in points] == [0.5, 2.0, 8.0]

    def test_recall_monotone_in_threshold(
        self, trained_model, test_split, sequences
    ):
        """Loosening the threshold can only flag more chains."""
        points = threshold_curve(
            trained_model.predictor,
            sequences,
            test_split.ground_truth,
            thresholds=(0.5, 2.0, 8.0, 32.0),
        )
        recalls = [p.recall for p in points]
        assert all(a <= b + 1e-9 for a, b in zip(recalls, recalls[1:]))

    def test_fp_rate_monotone_in_threshold(
        self, trained_model, test_split, sequences
    ):
        points = threshold_curve(
            trained_model.predictor,
            sequences,
            test_split.ground_truth,
            thresholds=(0.5, 2.0, 8.0, 32.0),
        )
        fps = [p.fp_rate for p in points]
        assert all(a <= b + 1e-9 for a, b in zip(fps, fps[1:]))

    def test_rejects_empty_or_nonpositive(self, trained_model, test_split, sequences):
        with pytest.raises(ConfigError):
            threshold_curve(
                trained_model.predictor, sequences, test_split.ground_truth, ()
            )
        with pytest.raises(ConfigError):
            threshold_curve(
                trained_model.predictor,
                sequences,
                test_split.ground_truth,
                (0.0,),
            )


class TestTrapezoidAuc:
    def test_perfect_detector(self):
        points = [OperatingPoint(1.0, 100.0, 100.0, 0.0, 60.0)]
        assert trapezoid_auc(points) == pytest.approx(1.0)

    def test_diagonal_detector(self):
        points = [OperatingPoint(1.0, 50.0, 50.0, 50.0, 60.0)]
        assert trapezoid_auc(points) == pytest.approx(0.5)

    def test_real_detector_beats_chance(self, trained_model, test_split, sequences):
        points = threshold_curve(
            trained_model.predictor,
            sequences,
            test_split.ground_truth,
            thresholds=(0.5, 2.0, 8.0),
        )
        assert trapezoid_auc(points) > 0.7

    def test_rejects_empty(self):
        with pytest.raises(ConfigError):
            trapezoid_auc([])


class TestSystemReport:
    def test_report_contains_all_sections(self, trained_model, test_split):
        report = system_report(
            trained_model, test_split.records, test_split.ground_truth
        )
        for heading in (
            "# Desh evaluation report",
            "## Prediction efficiency",
            "## Lead times per failure class",
            "## Recovery feasibility",
            "## Top unknown-phrase failure indicators",
            "## Model inventory",
        ):
            assert heading in report

    def test_report_numbers_consistent(self, trained_model, test_split):
        report = system_report(
            trained_model, test_split.records, test_split.ground_truth
        )
        result = Evaluator(test_split.ground_truth).evaluate(
            trained_model.score(test_split.records)
        )
        assert f"{result.metrics.recall:.2f}%" in report

    def test_custom_title(self, trained_model, test_split):
        report = system_report(
            trained_model,
            test_split.records,
            test_split.ground_truth,
            title="Weekly M9 review",
        )
        assert report.startswith("# Weekly M9 review")
