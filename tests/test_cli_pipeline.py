"""CLI-level tests for pipeline caching: train twice, inspect the DAG."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.config import (
    DeshConfig,
    EmbeddingConfig,
    Phase1Config,
    Phase2Config,
)
from repro.io import write_log


@pytest.fixture()
def small_cli_config(monkeypatch):
    """Shrink the CLI's default config so training is fast."""
    cfg = DeshConfig(
        embedding=EmbeddingConfig(dim=12, epochs=1),
        phase1=Phase1Config(hidden_size=16, epochs=1, batch_size=128),
        phase2=Phase2Config(hidden_size=32, epochs=40, learning_rate=0.01),
        seed=7,
    )
    import repro.cli as cli_mod

    monkeypatch.setattr(cli_mod, "DeshConfig", lambda **kw: cfg)
    return cfg


class TestTrainCacheFlow:
    def test_retrain_hits_cache_and_pipeline_reports_it(
        self, small_log, tmp_path, capsys, small_cli_config
    ):
        log_path = tmp_path / "train.log.gz"
        train, _ = small_log.split(0.3)
        write_log(log_path, train.records)
        model_dir = tmp_path / "model"
        argv = ["train", "--log", str(log_path), "--model-dir", str(model_dir)]

        assert main(argv) == 0
        cold_out = capsys.readouterr().out
        assert "ran" in cold_out and "cached" not in cold_out
        manifest = json.loads((model_dir / "pipeline.json").read_text())
        assert {s["name"] for s in manifest["stages"]} == {
            "parse",
            "embeddings",
            "phase1",
            "chains",
            "phase2",
            "classifier",
            "phase3",
        }
        assert all(not s["cache_hit"] for s in manifest["stages"])
        assert (model_dir / "cache").is_dir()

        # Second identical train: every stage is served from the store.
        assert main(argv) == 0
        warm_out = capsys.readouterr().out
        for stage in ("parse", "embeddings", "phase2"):
            assert stage in warm_out
        assert "ran" not in [
            token
            for line in warm_out.splitlines()
            for token in line.split()
        ]
        manifest = json.loads((model_dir / "pipeline.json").read_text())
        assert all(s["cache_hit"] for s in manifest["stages"])

        # `repro pipeline` renders the DAG with everything cached.
        assert main(["pipeline", "--model-dir", str(model_dir)]) == 0
        dag_out = capsys.readouterr().out
        assert "stage DAG" in dag_out
        assert "7/7 stages cached" in dag_out
        assert "<- parse" in dag_out
        for stage in ("parse", "chains", "phase2", "phase3"):
            assert stage in dag_out

    def test_phase2_edit_retrain_skips_upstream_stages(
        self, small_log, tmp_path, capsys, monkeypatch
    ):
        """`repro train` after a Phase-2-only edit reuses parse/phase1/chains."""
        import dataclasses

        import repro.cli as cli_mod

        base = DeshConfig(
            embedding=EmbeddingConfig(dim=12, epochs=1),
            phase1=Phase1Config(hidden_size=16, epochs=1, batch_size=128),
            phase2=Phase2Config(hidden_size=32, epochs=40, learning_rate=0.01),
            seed=7,
        )
        log_path = tmp_path / "train.log.gz"
        train, _ = small_log.split(0.3)
        write_log(log_path, train.records)
        model_dir = tmp_path / "model"
        argv = ["train", "--log", str(log_path), "--model-dir", str(model_dir)]

        monkeypatch.setattr(cli_mod, "DeshConfig", lambda **kw: base)
        assert main(argv) == 0
        capsys.readouterr()

        edited = dataclasses.replace(
            base, phase2=dataclasses.replace(base.phase2, learning_rate=0.02)
        )
        monkeypatch.setattr(cli_mod, "DeshConfig", lambda **kw: edited)
        assert main(argv) == 0
        capsys.readouterr()
        manifest = json.loads((model_dir / "pipeline.json").read_text())
        status = {s["name"]: s["cache_hit"] for s in manifest["stages"]}
        assert status["parse"] and status["embeddings"]
        assert status["phase1"] and status["chains"] and status["classifier"]
        assert not status["phase2"] and not status["phase3"]

    def test_no_cache_flag_skips_store(
        self, small_log, tmp_path, capsys, small_cli_config
    ):
        log_path = tmp_path / "train.log.gz"
        train, _ = small_log.split(0.3)
        write_log(log_path, train.records[:6000])
        model_dir = tmp_path / "model"
        assert (
            main(
                [
                    "train",
                    "--log",
                    str(log_path),
                    "--model-dir",
                    str(model_dir),
                    "--no-cache",
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert not (model_dir / "cache").exists()
        manifest = json.loads((model_dir / "pipeline.json").read_text())
        assert manifest["cache_dir"] is None
        # The DAG view still works, reporting the absence of a store.
        assert main(["pipeline", "--model-dir", str(model_dir)]) == 0
        out = capsys.readouterr().out
        assert "no-cache" in out or "no artifact store" in out

    def test_pipeline_requires_manifest(self, tmp_path, capsys):
        assert main(["pipeline", "--model-dir", str(tmp_path)]) == 2
        assert "pipeline.json" in capsys.readouterr().err
