"""Concurrency tests: per-worker metrics merge exactly; F3 stays clean.

The supported fan-out pattern is *share nothing, merge after*: each
``ordered_parallel_map`` worker records into its own registry (returned
as part of its result — never mutated through a closure, which deshlint
F3 forbids) and the shards are merged afterwards.  Exact Fraction sums
make the merged result equal the sequential run bit-for-bit, in any
merge order.
"""

import numpy as np

from repro.obs import Histogram, MetricsRegistry
from repro.parallel import ordered_parallel_map

BOUNDS = (0.1, 0.5, 1.0, 5.0, 25.0)

_RNG = np.random.default_rng(1234)
LATENCIES = [
    [float(v) for v in _RNG.gamma(2.0, 0.4, size=n)]
    for n in _RNG.integers(1, 40, size=24)
]


def _score_batch(batch):
    """One worker: record a batch into a fresh, private registry."""
    registry = MetricsRegistry()
    hist = registry.histogram("prediction_ms", BOUNDS)
    for value in batch:
        hist.observe(value)
    registry.counter("episodes").inc(len(batch))
    return registry


def _sequential():
    registry = MetricsRegistry()
    hist = registry.histogram("prediction_ms", BOUNDS)
    for batch in LATENCIES:
        for value in batch:
            hist.observe(value)
        registry.counter("episodes").inc(len(batch))
    return registry


def _hist_state(h: Histogram):
    return (h.bucket_counts(), h.count, h.sum_exact, h.min, h.max)


def test_parallel_worker_registries_merge_to_sequential_exactly():
    sequential = _sequential()
    for workers in (2, 3, 8):
        shards = ordered_parallel_map(
            _score_batch, LATENCIES, max_workers=workers, chunk_size=2
        )
        merged = MetricsRegistry()
        for shard in shards:
            merged.merge(shard)
        assert _hist_state(merged.histogram("prediction_ms", BOUNDS)) == (
            _hist_state(sequential.histogram("prediction_ms", BOUNDS))
        )
        assert (
            merged.counter("episodes").value
            == sequential.counter("episodes").value
        )


def test_merge_order_does_not_matter():
    shards = ordered_parallel_map(_score_batch, LATENCIES, max_workers=4)
    forward, backward = MetricsRegistry(), MetricsRegistry()
    for shard in shards:
        forward.merge(shard)
    for shard in reversed(shards):
        backward.merge(shard)
    assert _hist_state(forward.histogram("prediction_ms", BOUNDS)) == (
        _hist_state(backward.histogram("prediction_ms", BOUNDS))
    )


def test_single_shared_histogram_is_thread_safe():
    # Locked observe: even the *unsupported* shared-histogram pattern
    # loses no observations under thread fan-out.
    hist = Histogram(BOUNDS)

    def observe_batch(batch):
        for value in batch:
            hist.observe(value)
        return len(batch)

    counts = ordered_parallel_map(
        observe_batch, LATENCIES, max_workers=8, chunk_size=1
    )
    assert hist.count == sum(counts)


def test_obs_module_is_f3_clean():
    """deshlint's parallel-capture rule finds nothing in repro.obs."""
    import repro.obs
    from repro.lint import get_rules, lint_paths

    report = lint_paths(
        [repro.obs.__path__[0]], rules=get_rules(["F3"])
    )
    assert report.findings == []
