"""Tests for the incremental model update extension."""

import pytest


class TestIncrementalUpdate:
    @pytest.fixture
    def fresh_model(self, small_log, mini_config):
        """A model trained only on the first 30%, rebuilt per test
        (update mutates the model in place)."""
        from repro.core import Desh

        train, _ = small_log.split(0.3)
        return Desh(mini_config).fit(list(train.records), train_classifier=False)

    def test_update_learns_new_chains(self, fresh_model, small_log):
        _, test = small_log.split(0.3)
        # Feed the first half of the test window as "newly observed" data.
        mid = [
            r
            for r in test.records
            if r.timestamp < small_log.config.horizon * 0.6
        ]
        before = fresh_model.num_chains
        added = fresh_model.update(mid, epochs=10)
        assert added > 0
        assert fresh_model.num_chains == before + added
        assert fresh_model.phase2.num_chains == fresh_model.num_chains

    def test_update_without_failures_is_noop(self, fresh_model, small_log):
        quiet = [
            r
            for r in small_log.records[:300]
            if "cb_node_unavailable" not in r.message
            and "shutdown in progress" not in r.message
        ]
        before = fresh_model.num_chains
        assert fresh_model.update(quiet, epochs=5) == 0
        assert fresh_model.num_chains == before

    def test_update_does_not_break_prediction(self, fresh_model, small_log):
        _, test = small_log.split(0.3)
        mid_cut = small_log.config.horizon * 0.6
        mid = [r for r in test.records if r.timestamp < mid_cut]
        late = [r for r in test.records if r.timestamp >= mid_cut]
        fresh_model.update(mid, epochs=10)
        verdicts = fresh_model.score(late)
        assert verdicts
        assert any(v.flagged for v in verdicts)

    def test_update_improves_or_holds_recall_on_new_window(
        self, fresh_model, small_log
    ):
        """After absorbing the mid window, late-window recall must not
        collapse (warm-started training keeps the old chains)."""
        from repro.analysis import Evaluator
        from repro.simlog.generator import GroundTruth

        _, test = small_log.split(0.3)
        mid_cut = small_log.config.horizon * 0.6
        late = [r for r in test.records if r.timestamp >= mid_cut]
        late_truth = GroundTruth(
            failures=[
                f
                for f in test.ground_truth.failures
                if f.terminal_time >= mid_cut
            ],
            near_misses=[
                m for m in test.ground_truth.near_misses if m.end_time >= mid_cut
            ],
        )
        before = Evaluator(late_truth).evaluate(fresh_model.score(late))
        mid = [r for r in test.records if r.timestamp < mid_cut]
        fresh_model.update(mid, epochs=20)
        after = Evaluator(late_truth).evaluate(fresh_model.score(late))
        assert after.metrics.recall >= before.metrics.recall - 15.0
