"""End-to-end tests for the Desh facade and alerts."""

import pytest

from repro.core import Desh, FailureWarning
from repro.core.phase3 import FailurePrediction
from repro.errors import TrainingError
from repro.topology import CrayNodeId


class TestDeshFit:
    def test_model_has_phrases_and_chains(self, trained_model):
        assert trained_model.num_phrases > 20
        assert trained_model.num_chains > 0

    def test_fit_empty_raises(self, mini_config):
        with pytest.raises(TrainingError):
            Desh(mini_config).fit([])

    def test_fit_without_failures_raises(self, small_log, mini_config):
        """Training data with no failure chains must fail loudly."""
        quiet = [
            r
            for r in small_log.records
            if "cb_node_unavailable" not in r.message
            and "shutdown in progress" not in r.message
        ][:400]
        with pytest.raises(TrainingError):
            Desh(mini_config).fit(quiet)


class TestDeshPredict:
    def test_score_returns_verdicts(self, trained_model, test_split):
        verdicts = trained_model.score(test_split.records)
        assert verdicts
        assert any(v.flagged for v in verdicts)

    def test_predict_returns_only_flagged(self, trained_model, test_split):
        preds = trained_model.predict(test_split.records)
        verdicts = trained_model.score(test_split.records)
        assert len(preds) == sum(v.flagged for v in verdicts)

    def test_predictions_find_real_failures(self, trained_model, test_split):
        """At least half the test failures must be predicted (mini config)."""
        preds = trained_model.predict(test_split.records)
        gt = test_split.ground_truth
        hits = sum(
            1
            for p in preds
            if gt.failure_near(p.node, p.decision_time, lookahead=700.0)
        )
        assert hits >= len(gt.failures) * 0.5

    def test_warnings_render_messages(self, trained_model, test_split):
        warnings = trained_model.warn(test_split.records)
        assert warnings
        for w in warnings[:5]:
            msg = w.message()
            assert "is expected to fail" in msg
            assert str(w.node) in msg

    def test_parse_uses_trained_vocabulary(self, trained_model, test_split):
        parsed = trained_model.parse(test_split.records)
        assert len(parsed) > 0


class TestFailureWarning:
    def test_message_format(self):
        w = FailureWarning(CrayNodeId(1, 0, 2, 5, 3), 0.0, 150.0, 0.1)
        assert w.message() == (
            "In 2.5 minutes, node c1-0c2s5n3 located at cabinet c1-0, "
            "chassis 2, blade 5, node 3 is expected to fail."
        )

    def test_lead_minutes(self):
        w = FailureWarning(CrayNodeId(0, 0, 0, 0, 0), 0.0, 90.0, 0.0)
        assert w.lead_minutes == pytest.approx(1.5)

    def test_system_level_warning(self):
        w = FailureWarning(None, 0.0, 60.0, 0.0)
        assert "system-level" in w.message()

    def test_from_prediction(self):
        p = FailurePrediction(
            node=CrayNodeId(0, 0, 0, 0, 0),
            decision_time=10.0,
            lead_seconds=120.0,
            mse=0.2,
        )
        w = FailureWarning.from_prediction(p)
        assert w.node == p.node
        assert w.lead_seconds == 120.0

    def test_str_is_message(self):
        w = FailureWarning(CrayNodeId(0, 0, 0, 0, 0), 0.0, 60.0, 0.0)
        assert str(w) == w.message()
