"""Section-2/3.1 claim: semantically related phrases cluster in vector space.

"In RNNs semantically similar words can be close together in the vector
space" (Section 2); the skip-gram embeddings build that structure from
the 8-left/3-right context windows.  Phrases of one failure-chain
template systematically co-occur, so their vectors should be closer to
each other than to phrases from unrelated chains.
"""

import itertools

import numpy as np
import pytest

from repro.core.classify import classify_by_keywords
from repro.simlog.faults import FailureClass


@pytest.fixture(scope="module")
def chain_groups(trained_model):
    """Phrase-id groups per failure class, from the extracted chains."""
    vocab = trained_model.parser.vocab
    groups: dict[FailureClass, set[int]] = {}
    for chain in trained_model.phase1.chains:
        phrases = [vocab.text_of(int(i)) for i in chain.phrase_ids()]
        cls = classify_by_keywords(phrases)
        if cls is None:
            continue
        # Exclude the shared terminal phrase (it co-occurs with everything).
        groups.setdefault(cls, set()).update(
            int(i) for i, e in zip(chain.phrase_ids(), chain.events) if not e.terminal
        )
    return {c: ids for c, ids in groups.items() if len(ids) >= 3}


def mean_similarity(embedder, pairs):
    values = [embedder.similarity(a, b) for a, b in pairs]
    return float(np.mean(values)) if values else 0.0


class TestEmbeddingSemantics:
    def test_within_class_beats_across_class(self, trained_model, chain_groups):
        """Avg similarity within a failure class's phrases exceeds the
        avg similarity across unrelated classes."""
        assert len(chain_groups) >= 2, "need at least two populated classes"
        embedder = trained_model.phase1.embedder
        within_pairs = []
        for ids in chain_groups.values():
            within_pairs.extend(itertools.combinations(sorted(ids), 2))
        across_pairs = []
        classes = list(chain_groups)
        for ca, cb in itertools.combinations(classes, 2):
            only_a = chain_groups[ca] - chain_groups[cb]
            only_b = chain_groups[cb] - chain_groups[ca]
            across_pairs.extend(itertools.product(sorted(only_a), sorted(only_b)))
        within = mean_similarity(embedder, within_pairs)
        across = mean_similarity(embedder, across_pairs)
        assert within > across, (
            f"within-class similarity {within:.3f} must exceed "
            f"across-class {across:.3f}"
        )

    def test_most_similar_returns_valid_ids(self, trained_model):
        embedder = trained_model.phase1.embedder
        neighbours = embedder.most_similar(0, top=5)
        assert len(neighbours) == 5
        for pid, sim in neighbours:
            assert 0 <= pid < trained_model.num_phrases
            assert -1.0 - 1e-9 <= sim <= 1.0 + 1e-9
