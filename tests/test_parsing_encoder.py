"""Tests for the phrase vocabulary."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import SerializationError, VocabularyError
from repro.parsing.encoder import PhraseVocabulary


class TestPhraseVocabulary:
    def test_add_returns_dense_ids(self):
        v = PhraseVocabulary()
        assert v.add("a") == 0
        assert v.add("b") == 1
        assert v.add("a") == 0  # re-add returns same id

    def test_round_trip(self):
        v = PhraseVocabulary()
        v.update(["x", "y", "z"])
        for text in ("x", "y", "z"):
            assert v.text_of(v.id_of(text)) == text

    def test_len_and_contains(self):
        v = PhraseVocabulary()
        v.update(["a", "b", "a"])
        assert len(v) == 2
        assert "a" in v and "c" not in v

    def test_counts_accumulate(self):
        v = PhraseVocabulary()
        v.update(["a", "a", "b"])
        assert v.count_of(v.id_of("a")) == 2
        assert v.count_of(v.id_of("b")) == 1

    def test_add_with_count(self):
        v = PhraseVocabulary()
        pid = v.add("a", count=10)
        assert v.count_of(pid) == 10

    def test_frequencies_sum_to_one(self):
        v = PhraseVocabulary()
        v.update(["a", "a", "b", "c"])
        freq = v.frequencies()
        assert freq.sum() == pytest.approx(1.0)
        assert freq[v.id_of("a")] == pytest.approx(0.5)

    def test_frequencies_empty_raises(self):
        with pytest.raises(VocabularyError):
            PhraseVocabulary().frequencies()

    def test_unknown_phrase_raises(self):
        with pytest.raises(VocabularyError):
            PhraseVocabulary().id_of("nope")

    def test_unknown_id_raises(self):
        with pytest.raises(VocabularyError):
            PhraseVocabulary().text_of(0)

    def test_get_id_default(self):
        v = PhraseVocabulary()
        assert v.get_id("nope") == -1
        assert v.get_id("nope", default=99) == 99

    def test_empty_phrase_rejected(self):
        with pytest.raises(VocabularyError):
            PhraseVocabulary().add("")

    def test_negative_count_rejected(self):
        with pytest.raises(VocabularyError):
            PhraseVocabulary().add("a", count=-1)

    def test_iteration_order_is_id_order(self):
        v = PhraseVocabulary()
        v.update(["z", "a", "m"])
        assert list(v) == ["z", "a", "m"]

    @given(st.lists(st.text(min_size=1, max_size=8), min_size=1, max_size=30))
    def test_property_ids_consistent(self, phrases):
        v = PhraseVocabulary()
        v.update(phrases)
        for p in phrases:
            assert v.text_of(v.id_of(p)) == p


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path):
        v = PhraseVocabulary()
        v.update(["alpha beta", "gamma <*>", "alpha beta"])
        path = tmp_path / "vocab.json"
        v.save(path)
        loaded = PhraseVocabulary.load(path)
        assert len(loaded) == len(v)
        assert loaded.id_of("gamma <*>") == v.id_of("gamma <*>")
        assert np.array_equal(loaded.counts(), v.counts())

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(SerializationError):
            PhraseVocabulary.load(tmp_path / "missing.json")

    def test_load_malformed_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(SerializationError):
            PhraseVocabulary.load(path)

    def test_from_dict_validates(self):
        with pytest.raises(SerializationError):
            PhraseVocabulary.from_dict({"phrases": ["a"], "counts": [1, 2]})
        with pytest.raises(SerializationError):
            PhraseVocabulary.from_dict({"phrases": "x", "counts": []})
