"""Tests for lead-time stats, sensitivity, unknown analysis, cost, report."""

import numpy as np
import pytest

from repro.analysis.cost import CostSample, measure_prediction_cost
from repro.analysis.evaluation import Evaluator
from repro.analysis.leadtime import LeadTimeStats, lead_time_overall, lead_times_by_class
from repro.analysis.report import render_series, render_table
from repro.analysis.unknown import UnknownPhraseStats, unknown_phrase_analysis, sequence_examples
from repro.core.chains import Episode, FailureChain
from repro.errors import ShapeError
from repro.events import EventSequence, Label, ParsedEvent
from repro.parsing.encoder import PhraseVocabulary
from repro.simlog.faults import FailureClass
from repro.topology import CrayNodeId

NODE = CrayNodeId(0, 0, 0, 0, 0)


class TestLeadTimeStats:
    def test_from_values(self):
        s = LeadTimeStats.from_values([60.0, 120.0])
        assert s.mean == 90.0
        assert s.count == 2
        assert s.mean_minutes == pytest.approx(1.5)

    def test_empty(self):
        s = LeadTimeStats.from_values([])
        assert s.mean == 0.0 and s.count == 0

    def test_std(self):
        s = LeadTimeStats.from_values([10.0, 20.0])
        assert s.std == pytest.approx(5.0)


class TestUnknownPhraseAnalysis:
    def make_data(self):
        vocab = PhraseVocabulary()
        for text in ("lustre err", "oom", "panic", "terminal"):
            vocab.add(text)
        # phrase 0 appears 4x total, 2x inside chains; phrase 1 appears
        # 2x, never in a chain.
        def ev(t, pid, label=Label.UNKNOWN, terminal=False):
            return ParsedEvent(
                timestamp=t, phrase_id=pid, node=NODE, label=label, terminal=terminal
            )

        events = [
            ev(0, 0),
            ev(10, 0),
            ev(20, 1),
            ev(100, 0),
            ev(110, 3, Label.ERROR, True),
            ev(200, 0),
            ev(210, 3, Label.ERROR, True),
            ev(300, 1),
        ]
        seqs = [EventSequence(NODE, events)]
        chains = [
            FailureChain(NODE, (events[3], events[4])),
            FailureChain(NODE, (events[5], events[6])),
        ]
        labels = [Label.UNKNOWN, Label.UNKNOWN, Label.UNKNOWN, Label.ERROR]
        return seqs, chains, vocab, labels

    def test_contribution_percentages(self):
        seqs, chains, vocab, labels = self.make_data()
        stats = unknown_phrase_analysis(seqs, chains, vocab, labels)
        by_id = {s.phrase_id: s for s in stats}
        assert by_id[0].total_occurrences == 4
        assert by_id[0].chain_occurrences == 2
        assert by_id[0].contribution_pct == pytest.approx(50.0)
        assert by_id[1].contribution_pct == 0.0

    def test_sorted_by_contribution(self):
        seqs, chains, vocab, labels = self.make_data()
        stats = unknown_phrase_analysis(seqs, chains, vocab, labels)
        pcts = [s.contribution_pct for s in stats]
        assert pcts == sorted(pcts, reverse=True)

    def test_error_phrases_excluded(self):
        seqs, chains, vocab, labels = self.make_data()
        stats = unknown_phrase_analysis(seqs, chains, vocab, labels)
        assert all(s.phrase_id != 3 for s in stats)

    def test_zero_occurrence_pct(self):
        s = UnknownPhraseStats(0, "x", 0, 0)
        assert s.contribution_pct == 0.0

    def test_sequence_examples_share_phrases(self):
        seqs, chains, vocab, labels = self.make_data()
        episodes = [
            Episode(
                NODE,
                (
                    ParsedEvent(timestamp=400, phrase_id=0, node=NODE),
                    ParsedEvent(timestamp=410, phrase_id=1, node=NODE),
                ),
            )
        ]
        pairs = sequence_examples(chains, episodes, vocab)
        assert pairs
        failure_phrases, survivor_phrases = pairs[0]
        assert set(failure_phrases) & set(survivor_phrases)


class TestCost:
    def test_samples_cover_grid(self):
        samples = measure_prediction_cost(
            vocab_size=20,
            steps_range=(1, 2),
            histories=(5,),
            hidden_size=8,
            embed_dim=8,
            repeats=3,
        )
        assert len(samples) == 2
        assert all(isinstance(s, CostSample) for s in samples)

    def test_positive_latency(self):
        samples = measure_prediction_cost(
            vocab_size=20, steps_range=(1,), histories=(5,), repeats=3
        )
        assert samples[0].millis_per_prediction > 0

    def test_rejects_zero_repeats(self):
        with pytest.raises(ShapeError):
            measure_prediction_cost(repeats=0)


class TestReport:
    def test_render_table_aligned(self):
        out = render_table(["name", "val"], [["a", 1.0], ["bb", 22.5]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert "22.50" in lines[3]

    def test_render_table_title(self):
        out = render_table(["x"], [[1]], title="Table 1")
        assert out.splitlines()[0] == "Table 1"

    def test_render_table_rejects_ragged(self):
        with pytest.raises(ShapeError):
            render_table(["a", "b"], [[1]])

    def test_render_table_rejects_empty_headers(self):
        with pytest.raises(ShapeError):
            render_table([], [])

    def test_render_series(self):
        out = render_series("lead", [1, 2], [10.0, 20.0], unit="s")
        assert out == "lead: 1=10.00s 2=20.00s"

    def test_render_series_rejects_mismatch(self):
        with pytest.raises(ShapeError):
            render_series("x", [1], [1.0, 2.0])


class TestLeadTimesFromModel:
    """Lead-time aggregation over the session-scoped trained model."""

    def test_by_class_and_overall(self, trained_model, test_split):
        res = Evaluator(test_split.ground_truth).evaluate(
            trained_model.score(test_split.records)
        )
        overall = lead_time_overall(res)
        assert overall.count > 0
        by_class = lead_times_by_class(res)
        total = sum(s.count for s in by_class.values())
        assert total == overall.count
        assert set(by_class) == set(FailureClass)
