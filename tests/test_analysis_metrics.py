"""Tests for confusion counts and Table-6 metric formulas."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.metrics import ConfusionCounts, PredictionMetrics
from repro.errors import ShapeError


class TestConfusionCounts:
    def test_total(self):
        assert ConfusionCounts(1, 2, 3, 4).total == 10

    def test_addition(self):
        a = ConfusionCounts(1, 2, 3, 4)
        b = ConfusionCounts(10, 20, 30, 40)
        c = a + b
        assert (c.tp, c.fp, c.fn, c.tn) == (11, 22, 33, 44)

    def test_rejects_negative(self):
        with pytest.raises(ShapeError):
            ConfusionCounts(tp=-1)

    def test_rejects_float(self):
        with pytest.raises(ShapeError):
            ConfusionCounts(tp=1.5)  # type: ignore[arg-type]


class TestTable6Formulas:
    """Exact checks of every formula in Table 6."""

    counts = ConfusionCounts(tp=70, fp=10, fn=15, tn=105)

    def test_recall(self):
        assert self.counts.metrics().recall == pytest.approx(100 * 70 / 85)

    def test_precision(self):
        assert self.counts.metrics().precision == pytest.approx(100 * 70 / 80)

    def test_accuracy(self):
        assert self.counts.metrics().accuracy == pytest.approx(100 * 175 / 200)

    def test_f1(self):
        m = self.counts.metrics()
        expected = 2 * m.recall * m.precision / (m.recall + m.precision)
        assert m.f1 == pytest.approx(expected)

    def test_fp_rate(self):
        assert self.counts.metrics().fp_rate == pytest.approx(100 * 10 / 115)

    def test_fn_rate_is_complement_of_recall(self):
        m = self.counts.metrics()
        assert m.fn_rate == pytest.approx(100.0 - m.recall)

    def test_perfect_predictor(self):
        m = ConfusionCounts(tp=50, tn=50).metrics()
        assert m.recall == m.precision == m.accuracy == m.f1 == 100.0
        assert m.fp_rate == m.fn_rate == 0.0

    def test_zero_denominators_give_zero(self):
        m = ConfusionCounts().metrics()
        assert m.recall == m.precision == m.accuracy == m.f1 == 0.0

    def test_as_dict_keys(self):
        d = self.counts.metrics().as_dict()
        assert set(d) == {"recall", "precision", "accuracy", "f1", "fp_rate", "fn_rate"}

    @given(
        st.integers(0, 500),
        st.integers(0, 500),
        st.integers(0, 500),
        st.integers(0, 500),
    )
    def test_property_ranges(self, tp, fp, fn, tn):
        m = ConfusionCounts(tp, fp, fn, tn).metrics()
        for value in m.as_dict().values():
            assert 0.0 <= value <= 100.0

    @given(st.integers(1, 500), st.integers(0, 500))
    def test_property_recall_fn_complement(self, tp, fn):
        m = ConfusionCounts(tp=tp, fn=fn).metrics()
        assert m.recall + m.fn_rate == pytest.approx(100.0)

    def test_from_counts_equals_metrics(self):
        assert (
            PredictionMetrics.from_counts(self.counts) == self.counts.metrics()
        )
