"""Tests for the end-to-end log parser."""

import pytest

from repro.errors import NotFittedError
from repro.events import Label
from repro.parsing import LogParser
from repro.parsing.tokenizer import mask_message
from repro.simlog.record import LogRecord
from repro.topology import CrayNodeId


class TestFitTransform:
    def test_all_records_encoded(self, small_log, fitted_parser):
        result = fitted_parser.transform(small_log.records)
        assert len(result) == len(small_log.records)
        assert result.skipped == 0

    def test_phrases_match_catalog_size(self, small_log, fitted_parser):
        """Mining must find (at most) one phrase per catalog template."""
        assert fitted_parser.num_phrases <= len(small_log.catalog)
        assert fitted_parser.num_phrases > 30

    def test_labels_match_ground_truth(self, small_log, fitted_parser, rng):
        """Parser labels agree with the catalog's intrinsic labels."""
        for template in small_log.catalog:
            canon = mask_message(template.fill(rng))
            pid = fitted_parser.vocab.get_id(canon)
            if pid >= 0:
                assert fitted_parser.phrase_label(pid) == template.label

    def test_terminal_ids_detected(self, fitted_parser):
        terminals = fitted_parser.terminal_ids()
        assert terminals, "terminal phrases must be detected"
        for pid in terminals:
            assert fitted_parser.phrase_label(pid) == Label.ERROR

    def test_events_sorted(self, small_log, fitted_parser):
        result = fitted_parser.transform(small_log.records)
        times = [e.timestamp for e in result.events]
        assert times == sorted(times)

    def test_by_node_partitions(self, small_log, fitted_parser):
        result = fitted_parser.transform(small_log.records)
        by_node = result.by_node()
        assert sum(len(s) for s in by_node.values()) == len(result)
        for node, seq in by_node.items():
            assert all(e.node == node for e in seq)

    def test_unknown_message_skipped(self, fitted_parser):
        record = LogRecord(
            1.0,
            CrayNodeId(0, 0, 0, 0, 0),
            "kernel",
            "entirely novel message shape never mined before xyz",
        )
        result = fitted_parser.transform([record])
        assert result.skipped == 1
        assert len(result) == 0

    def test_encode_before_fit_raises(self):
        parser = LogParser()
        with pytest.raises(NotFittedError):
            parser.encode(LogRecord(0.0, None, "kernel", "x"))

    def test_phrases_with_label(self, fitted_parser):
        safe = fitted_parser.phrases_with_label(Label.SAFE)
        err = fitted_parser.phrases_with_label(Label.ERROR)
        assert safe and err
        assert not set(safe) & set(err)

    def test_phrases_with_bad_label_raises(self, fitted_parser):
        with pytest.raises(NotFittedError):
            fitted_parser.phrases_with_label("bogus")

    def test_phrase_label_out_of_range(self, fitted_parser):
        with pytest.raises(NotFittedError):
            fitted_parser.phrase_label(10_000)

    def test_fit_transform_equivalent(self, small_log):
        parser = LogParser()
        result = parser.fit_transform(list(small_log.records[:500]))
        assert len(result) == 500

    def test_node_events_filter(self, small_log, fitted_parser):
        result = fitted_parser.transform(small_log.records)
        node = small_log.ground_truth.failures[0].node
        seq = result.node_events(node)
        assert all(e.node == node for e in seq)

    def test_transform_is_deterministic(self, small_log, fitted_parser):
        a = fitted_parser.transform(small_log.records[:200])
        b = fitted_parser.transform(small_log.records[:200])
        assert [e.phrase_id for e in a.events] == [e.phrase_id for e in b.events]


class TestFromVocabulary:
    def test_reconstruction_matches_original(self, small_log, fitted_parser):
        """A parser rebuilt from the vocabulary encodes identically."""
        rebuilt = LogParser.from_vocabulary(fitted_parser.vocab)
        assert rebuilt.num_phrases == fitted_parser.num_phrases
        a = fitted_parser.transform(small_log.records[:500])
        b = rebuilt.transform(small_log.records[:500])
        assert [e.phrase_id for e in a.events] == [e.phrase_id for e in b.events]
        assert [e.label for e in a.events] == [e.label for e in b.events]

    def test_terminal_flags_preserved(self, fitted_parser):
        rebuilt = LogParser.from_vocabulary(fitted_parser.vocab)
        assert rebuilt.terminal_ids() == fitted_parser.terminal_ids()
