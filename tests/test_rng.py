"""Tests for deterministic RNG stream management."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigError
from repro.rng import RngFactory, derive_seed, generator


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a", "b") == derive_seed(42, "a", "b")

    def test_different_paths_differ(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_different_roots_differ(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_path_order_matters(self):
        assert derive_seed(42, "a", "b") != derive_seed(42, "b", "a")

    def test_nonnegative_63_bit(self):
        for seed in (0, 1, 2**62):
            child = derive_seed(seed, "x")
            assert 0 <= child < 2**63

    @given(st.integers(min_value=0, max_value=2**62), st.text(max_size=20))
    def test_property_stable(self, root, label):
        assert derive_seed(root, label) == derive_seed(root, label)


class TestRngFactory:
    def test_same_path_same_stream(self):
        f1, f2 = RngFactory(99), RngFactory(99)
        a = f1.get("x").integers(0, 1000, 16)
        b = f2.get("x").integers(0, 1000, 16)
        assert np.array_equal(a, b)

    def test_different_paths_independent(self):
        f = RngFactory(99)
        a = f.get("x").integers(0, 1000, 16)
        b = f.get("y").integers(0, 1000, 16)
        assert not np.array_equal(a, b)

    def test_get_returns_fresh_generator(self):
        f = RngFactory(5)
        g1 = f.get("s")
        g1.integers(0, 10, 100)  # advance
        g2 = f.get("s")
        assert np.array_equal(
            g2.integers(0, 1000, 8), RngFactory(5).get("s").integers(0, 1000, 8)
        )

    def test_stream_yields_distinct_generators(self):
        f = RngFactory(7)
        it = f.stream("workers")
        g0, g1 = next(it), next(it)
        assert not np.array_equal(g0.integers(0, 1000, 8), g1.integers(0, 1000, 8))

    def test_seed_for_matches_derive_seed(self):
        f = RngFactory(11)
        assert f.seed_for("a", "b") == derive_seed(11, "a", "b")

    def test_rejects_non_int_seed(self):
        with pytest.raises(ConfigError):
            RngFactory("nope")  # type: ignore[arg-type]

    def test_repr_contains_seed(self):
        assert "123" in repr(RngFactory(123))


def test_generator_seeded():
    assert np.array_equal(
        generator(3).integers(0, 100, 8), generator(3).integers(0, 100, 8)
    )
