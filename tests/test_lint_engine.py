"""Engine-level deshlint tests: suppressions, baseline, discovery, CLI."""

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.errors import LintError
from repro.lint import (
    Baseline,
    Finding,
    get_rules,
    lint_paths,
    lint_source,
    load_modules,
    parse_suppressions,
)

pytestmark = pytest.mark.lint


# ----------------------------------------------------------------------
# Inline suppressions
# ----------------------------------------------------------------------
class TestSuppressions:
    def test_trailing_allow_suppresses_own_line(self):
        findings = lint_source(
            "import random  # deshlint: allow[R1] docs example only\n",
            rules=get_rules(["R1"]),
        )
        assert findings == []

    def test_comment_line_covers_next_code_line(self):
        findings = lint_source(
            textwrap.dedent(
                """
                # deshlint: allow[R1] legacy shim kept for comparison
                import random
                """
            ),
            rules=get_rules(["R1"]),
        )
        assert findings == []

    def test_allow_skips_intervening_comment_lines(self):
        # A multi-line justification block: the allow comment must reach
        # past further comment lines to the first *code* line.
        findings = lint_source(
            textwrap.dedent(
                """
                try:
                    work()
                # deshlint: allow[R4] wrapping arbitrary callback failures
                # (second line of the justification)
                except Exception:
                    pass
                """
            ),
            rules=get_rules(["R4"]),
        )
        assert findings == []

    def test_allow_without_reason_is_rejected_and_reported(self):
        findings = lint_source(
            "import random  # deshlint: allow[R1]\n",
            rules=get_rules(["R1"]),
        )
        rules = {f.rule for f in findings}
        assert "R1" in rules  # suppression did not take effect
        assert "SUP" in rules  # and the malformed allow is itself flagged

    def test_allow_for_other_rule_does_not_suppress(self):
        findings = lint_source(
            "import random  # deshlint: allow[R3] wrong rule id\n",
            rules=get_rules(["R1"]),
        )
        assert {f.rule for f in findings} == {"R1"}

    def test_allow_multiple_rules_in_one_comment(self):
        index = parse_suppressions(
            "x = 1  # deshlint: allow[R1, R4] shared justification\n"
        )
        assert index.covers(1, "R1")
        assert index.covers(1, "R4")
        assert not index.covers(1, "R2")


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------
class TestBaseline:
    def _finding(self, snippet, line=3):
        return Finding(
            path="pkg/mod.py",
            line=line,
            col=1,
            rule="R1",
            message="msg",
            snippet=snippet,
        )

    def test_round_trip(self, tmp_path):
        f = self._finding("import random")
        baseline = Baseline.from_findings([f])
        path = tmp_path / "baseline.json"
        baseline.save(path, findings=[f])
        loaded = Baseline.load(path)
        fresh, grandfathered = loaded.filter([f])
        assert fresh == []
        assert grandfathered == [f]

    def test_key_tracks_line_drift(self):
        # Same content on a different line is still grandfathered.
        baseline = Baseline.from_findings([self._finding("import random", line=3)])
        moved = self._finding("import random", line=40)
        fresh, grandfathered = baseline.filter([moved])
        assert fresh == []
        assert grandfathered == [moved]

    def test_count_budget_blocks_duplicates(self):
        baseline = Baseline.from_findings([self._finding("import random")])
        dupes = [self._finding("import random") for _ in range(2)]
        fresh, grandfathered = baseline.filter(dupes)
        assert len(grandfathered) == 1
        assert len(fresh) == 1

    def test_new_finding_is_fresh(self):
        baseline = Baseline.from_findings([self._finding("import random")])
        other = self._finding("from random import shuffle")
        fresh, _ = baseline.filter([other])
        assert fresh == [other]

    def test_load_rejects_malformed(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(LintError):
            Baseline.load(path)
        path.write_text('{"version": 99, "entries": []}')
        with pytest.raises(LintError):
            Baseline.load(path)


# ----------------------------------------------------------------------
# Discovery / driver
# ----------------------------------------------------------------------
class TestDriver:
    def test_syntax_error_becomes_finding(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def oops(:\n")
        modules, errors = load_modules([tmp_path])
        assert modules == []
        assert len(errors) == 1
        assert errors[0].rule == "SYNTAX"

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(LintError):
            lint_paths([tmp_path / "nope"])

    def test_unknown_rule_id_raises(self):
        with pytest.raises(LintError):
            get_rules(["R99"])

    def test_directory_walk_skips_pycache(self, tmp_path):
        (tmp_path / "ok.py").write_text('"""Doc."""\n')
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "stale.py").write_text("import random\n")
        report = lint_paths([tmp_path], rules=get_rules(["R1"]))
        assert report.modules == 1
        assert report.findings == []

    def test_findings_sorted_by_location(self, tmp_path):
        (tmp_path / "b.py").write_text("import random\n")
        (tmp_path / "a.py").write_text("import numpy as np\nnp.random.seed(0)\n")
        report = lint_paths([tmp_path], rules=get_rules(["R1"]))
        paths = [Path(f.path).name for f in report.findings]
        assert paths == sorted(paths)


# ----------------------------------------------------------------------
# CLI flow: bad file -> exit 1; --update-baseline -> exit 0
# ----------------------------------------------------------------------
class TestCliLint:
    def _run(self, *args, cwd):
        src = Path(__file__).resolve().parents[1] / "src"
        return subprocess.run(
            [sys.executable, "-m", "repro.cli", "lint", *args],
            cwd=cwd,
            env={"PYTHONPATH": str(src), "PATH": "/usr/bin:/bin"},
            capture_output=True,
            text=True,
        )

    def test_bad_file_fails_then_baseline_rescues(self, tmp_path):
        bad = tmp_path / "offender.py"
        bad.write_text('"""Doc."""\n\nimport random\n')

        first = self._run(str(bad), "--no-baseline", cwd=tmp_path)
        assert first.returncode == 1
        assert "R1" in first.stdout

        json_run = self._run(str(bad), "--no-baseline", "--json", cwd=tmp_path)
        payload = json.loads(json_run.stdout)
        assert payload["ok"] is False
        assert payload["findings"][0]["rule"] == "R1"

        update = self._run(str(bad), "--update-baseline", cwd=tmp_path)
        assert update.returncode == 0
        assert (tmp_path / "lint-baseline.json").exists()

        second = self._run(str(bad), cwd=tmp_path)
        assert second.returncode == 0
        assert "baselined" in second.stdout

    def test_sarif_export(self, tmp_path):
        bad = tmp_path / "offender.py"
        bad.write_text('"""Doc."""\n\nimport random\n')
        sarif_path = tmp_path / "out.sarif"

        run = self._run(
            str(bad), "--no-baseline", "--sarif", str(sarif_path), cwd=tmp_path
        )
        assert run.returncode == 1
        log = json.loads(sarif_path.read_text())
        assert log["version"] == "2.1.0"
        driver = log["runs"][0]["tool"]["driver"]
        assert driver["name"] == "deshlint"
        rule_ids = {r["id"] for r in driver["rules"]}
        assert {"R1", "F1", "F2", "F3"} <= rule_ids  # what ran, not what fired
        rule_meta = {r["id"]: r for r in driver["rules"]}
        assert rule_meta["R1"]["defaultConfiguration"]["level"] == "warning"
        assert rule_meta["P1"]["defaultConfiguration"]["level"] == "note"
        assert rule_meta["R1"]["helpUri"].endswith("#rule-r1")
        results = log["runs"][0]["results"]
        assert results[0]["ruleId"] == "R1"
        # Syntactic findings annotate at their category default.
        assert results[0]["level"] == "warning"
        region = results[0]["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == 3
        assert "deshlintKey/v1" in results[0]["partialFingerprints"]

    def test_sarif_related_locations_for_dataflow_findings(self, tmp_path):
        """F4's interleaving window renders as SARIF relatedLocations.

        Multi-site dataflow findings must annotate every hop (read,
        await) in code scanning, not just the write that fires.
        """
        bad = tmp_path / "racer.py"
        bad.write_text(
            textwrap.dedent(
                '''
                """Doc."""

                import asyncio


                class Counter:
                    def __init__(self):
                        self.value = 0

                    async def bump(self):
                        current = self.value
                        await asyncio.sleep(0)
                        self.value = current + 1
                '''
            )
        )
        from repro.lint.sarif import sarif_log

        rules = get_rules(["F4"])
        report = lint_paths([bad], rules=rules)
        assert len(report.findings) == 1
        assert len(report.findings[0].related) == 2

        log = sarif_log(report, rules, root=tmp_path)
        result = log["runs"][0]["results"][0]
        assert result["ruleId"] == "F4"
        related = result["relatedLocations"]
        assert len(related) == 2
        first, second = related
        assert "interleaving window opens" in first["message"]["text"]
        assert "yields to the event loop" in second["message"]["text"]
        # the read site (line 12) and the await site (line 13)
        assert first["physicalLocation"]["region"]["startLine"] == 12
        assert second["physicalLocation"]["region"]["startLine"] == 13
        assert (
            first["physicalLocation"]["artifactLocation"]["uri"] == "racer.py"
        )
        # related sites ride through --json output too
        assert report.findings[0].to_dict()["related"][0]["line"] == 12

    def test_rules_listing_grouped_by_category(self, tmp_path):
        run = self._run("--rules", cwd=tmp_path)
        assert run.returncode == 0
        out = run.stdout
        assert out.index("syntactic:") < out.index("dataflow:")
        for rule_id in ("R1", "R5", "F1", "F3"):
            assert f"\n  {rule_id} " in out
        # F-rules listed under the dataflow heading, not before it.
        assert out.index("dataflow:") < out.index("\n  F1 ")


# ----------------------------------------------------------------------
# Registry invariants: ids, categories, duplicate rejection
# ----------------------------------------------------------------------
class TestRegistry:
    def test_duplicate_rule_id_rejected_at_registration(self):
        from repro.lint.rules import Rule, register

        with pytest.raises(LintError, match="duplicate rule id"):
            @register
            class Clone(Rule):  # noqa: F811 - the point of the test
                id = "R1"
                summary = "imposter"

    def test_unknown_category_rejected_at_registration(self):
        from repro.lint.rules import Rule, register

        with pytest.raises(LintError, match="unknown category"):
            @register
            class Miscategorized(Rule):
                id = "X1"
                summary = "bad category"
                category = "vibes"

    def test_get_rules_rejects_repeated_ids(self):
        with pytest.raises(LintError, match="more than once"):
            get_rules(["R1", "R1"])

    def test_rules_by_category_covers_every_rule(self):
        from repro.lint import all_rules, rules_by_category

        grouped = rules_by_category()
        assert list(grouped) == ["syntactic", "dataflow", "perf"]
        flattened = {r.id for rules in grouped.values() for r in rules}
        assert flattened == {r.id for r in all_rules()}
        assert {r.id for r in grouped["dataflow"]} == {
            "F1", "F2", "F3", "F4", "F5", "F6",
        }
        assert {r.id for r in grouped["perf"]} == {"P1", "P2", "P3"}
