"""Tests for the log-record raw-line codec."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ParseError
from repro.simlog.record import EPOCH, LogRecord, parse_line, render_line
from repro.topology import CrayNodeId


def test_render_contains_all_fields():
    rec = LogRecord(1.5, CrayNodeId(1, 0, 1, 1, 0), "kernel", "hello world")
    line = render_line(rec)
    assert "c1-0c1s1n0" in line
    assert "kernel:" in line
    assert line.endswith("hello world")


def test_round_trip_node_record():
    rec = LogRecord(3600.123456, CrayNodeId(0, 0, 1, 2, 3), "slurmd", "msg text 42")
    assert parse_line(render_line(rec)) == rec


def test_round_trip_system_record():
    rec = LogRecord(10.0, None, "erd", "system message", source="smw1")
    parsed = parse_line(render_line(rec))
    assert parsed.node is None
    assert parsed.source == "smw1"
    assert parsed.message == "system message"


@given(
    st.floats(min_value=0, max_value=10**7).map(lambda t: round(t, 6)),
    st.text(
        alphabet=st.characters(whitelist_categories=["Lu", "Ll", "Nd"], whitelist_characters=" ._-"),
        min_size=1,
        max_size=60,
    ).filter(lambda s: s.strip() == s and s.strip() != ""),
)
def test_property_round_trip(timestamp, message):
    rec = LogRecord(timestamp, CrayNodeId(1, 0, 0, 0, 0), "kernel", message)
    parsed = parse_line(render_line(rec))
    assert parsed.timestamp == pytest.approx(rec.timestamp, abs=1e-6)
    assert parsed.message == message


@pytest.mark.parametrize(
    "bad",
    [
        "",
        "not a log line",
        "2015-01-01T00:00:00 c0-0c0s0n0 kernel: missing microseconds",
        "2015-01-01T00:00:00.000000 c0-0c0s0n0 nofacility",
    ],
)
def test_parse_rejects_malformed(bad):
    with pytest.raises(ParseError):
        parse_line(bad)


def test_parse_rejects_pre_epoch():
    with pytest.raises(ParseError):
        parse_line("2014-12-31T23:59:59.000000 c0-0c0s0n0 kernel: too early")


def test_record_rejects_negative_timestamp():
    with pytest.raises(ParseError):
        LogRecord(-1.0, None, "kernel", "x")


def test_record_rejects_multiline_message():
    with pytest.raises(ParseError):
        LogRecord(0.0, None, "kernel", "a\nb")


def test_record_rejects_empty_facility():
    with pytest.raises(ParseError):
        LogRecord(0.0, None, "", "x")


def test_shifted():
    rec = LogRecord(10.0, None, "kernel", "x")
    assert rec.shifted(5.0).timestamp == 15.0
    assert rec.timestamp == 10.0  # original untouched


def test_wallclock_matches_epoch():
    rec = LogRecord(0.0, None, "kernel", "x")
    assert rec.wallclock() == EPOCH


def test_source_text_prefers_node():
    rec = LogRecord(0.0, CrayNodeId(0, 0, 0, 0, 0), "kernel", "x", source="ignored")
    assert rec.source_text == "c0-0c0s0n0"
