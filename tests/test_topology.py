"""Tests for Cray node ids and cluster topology."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import NodeIdError, TopologyError
from repro.topology import ClusterTopology, CrayNodeId, parse_node_id


node_ids = st.builds(
    CrayNodeId,
    col=st.integers(0, 99),
    row=st.integers(0, 9),
    chassis=st.integers(0, 2),
    slot=st.integers(0, 15),
    node=st.integers(0, 3),
)


class TestCrayNodeId:
    def test_paper_example_parses(self):
        """c1-0c1s1n0 is the example in the paper's Table 2."""
        n = parse_node_id("c1-0c1s1n0")
        assert (n.col, n.row, n.chassis, n.slot, n.node) == (1, 0, 1, 1, 0)

    def test_str_round_trip(self):
        n = CrayNodeId(3, 1, 2, 15, 3)
        assert CrayNodeId.parse(str(n)) == n

    @given(node_ids)
    def test_property_round_trip(self, n):
        assert CrayNodeId.parse(str(n)) == n

    @pytest.mark.parametrize(
        "bad",
        ["", "c1-0c1s1", "x1-0c1s1n0", "c1_0c1s1n0", "c1-0c1s1n0extra", "c-1-0c1s1n0"],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(NodeIdError):
            CrayNodeId.parse(bad)

    def test_rejects_negative_fields(self):
        with pytest.raises(NodeIdError):
            CrayNodeId(-1, 0, 0, 0, 0)

    def test_cabinet_and_blade_keys(self):
        n = CrayNodeId(2, 1, 0, 5, 3)
        assert n.cabinet == (2, 1)
        assert n.blade == (2, 1, 0, 5)

    def test_same_blade_implies_same_cabinet(self):
        a = CrayNodeId(1, 0, 2, 3, 0)
        b = CrayNodeId(1, 0, 2, 3, 1)
        assert a.same_blade(b) and a.same_cabinet(b)

    def test_same_cabinet_not_same_blade(self):
        a = CrayNodeId(1, 0, 2, 3, 0)
        b = CrayNodeId(1, 0, 1, 3, 0)
        assert a.same_cabinet(b) and not a.same_blade(b)

    def test_ordering_is_physical(self):
        assert CrayNodeId(0, 0, 0, 0, 1) < CrayNodeId(0, 0, 0, 1, 0)
        assert CrayNodeId(0, 0, 0, 0, 0) < CrayNodeId(1, 0, 0, 0, 0)

    def test_location_phrase_contains_all_parts(self):
        phrase = CrayNodeId(1, 0, 2, 5, 3).location_phrase()
        for fragment in ("c1-0", "chassis 2", "blade 5", "node 3"):
            assert fragment in phrase

    def test_hashable(self):
        assert len({CrayNodeId(0, 0, 0, 0, 0), CrayNodeId(0, 0, 0, 0, 0)}) == 1


class TestClusterTopology:
    def test_num_nodes(self, small_topology):
        assert small_topology.num_nodes == 2 * 1 * 2 * 2 * 2

    def test_nodes_enumeration_count(self, small_topology):
        assert len(list(small_topology.nodes())) == small_topology.num_nodes

    def test_nodes_are_unique(self, small_topology):
        nodes = list(small_topology.nodes())
        assert len(set(nodes)) == len(nodes)

    def test_node_at_index_round_trip(self, small_topology):
        for i in range(small_topology.num_nodes):
            assert small_topology.index_of(small_topology.node_at(i)) == i

    @given(st.integers(0, 15))
    def test_property_round_trip(self, i):
        topo = ClusterTopology(2, 1, 2, 2, 2)
        assert topo.index_of(topo.node_at(i)) == i

    def test_node_at_out_of_range(self, small_topology):
        with pytest.raises(TopologyError):
            small_topology.node_at(small_topology.num_nodes)
        with pytest.raises(TopologyError):
            small_topology.node_at(-1)

    def test_index_of_foreign_node(self, small_topology):
        with pytest.raises(TopologyError):
            small_topology.index_of(CrayNodeId(99, 0, 0, 0, 0))

    def test_blade_mates(self, small_topology):
        node = small_topology.node_at(0)
        mates = small_topology.blade_mates(node)
        assert len(mates) == small_topology.nodes_per_blade - 1
        assert all(node.same_blade(m) for m in mates)
        assert node not in mates

    def test_cabinet_mates(self, small_topology):
        node = small_topology.node_at(0)
        mates = small_topology.cabinet_mates(node)
        assert len(mates) == small_topology.nodes_per_cabinet - 1
        assert all(node.same_cabinet(m) for m in mates)

    def test_sample_nodes_without_replacement(self, small_topology, rng):
        nodes = small_topology.sample_nodes(rng, small_topology.num_nodes)
        assert len(set(nodes)) == small_topology.num_nodes

    def test_sample_too_many_raises(self, small_topology, rng):
        with pytest.raises(TopologyError):
            small_topology.sample_nodes(rng, small_topology.num_nodes + 1)

    def test_sample_with_replacement_allows_more(self, small_topology, rng):
        nodes = small_topology.sample_nodes(
            rng, small_topology.num_nodes + 5, replace=True
        )
        assert len(nodes) == small_topology.num_nodes + 5

    def test_with_at_least(self):
        topo = ClusterTopology.with_at_least(100)
        assert topo.num_nodes >= 100

    def test_with_at_least_custom_geometry(self):
        topo = ClusterTopology.with_at_least(
            10, chassis_per_cabinet=1, slots_per_chassis=2, nodes_per_blade=2
        )
        assert topo.num_nodes >= 10
        assert topo.chassis_per_cabinet == 1

    def test_with_at_least_rejects_nonpositive(self):
        with pytest.raises(TopologyError):
            ClusterTopology.with_at_least(0)

    def test_rejects_nonpositive_dimensions(self):
        with pytest.raises(TopologyError):
            ClusterTopology(cabinet_cols=0)

    def test_node_list_matches_nodes(self, small_topology):
        assert list(small_topology.nodes()) == list(small_topology.node_list())
