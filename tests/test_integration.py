"""Cross-module integration tests: the full pipeline, end to end.

Uses the session-scoped `trained_model` / `test_split` fixtures (the
small 16-node cluster) plus a handful of scenario tests that stress the
integration seams: file round-trips feeding training, parallel scoring
equivalence, and ground-truth-based metric sanity.
"""

import numpy as np
import pytest

from repro.analysis import Evaluator, lead_time_overall
from repro.core import Desh
from repro.io import read_records, write_log
from repro.parallel import ordered_parallel_map, shard_sequences


class TestEndToEndMetrics:
    @pytest.fixture(scope="class")
    def result(self, trained_model, test_split):
        verdicts = trained_model.score(test_split.records)
        return Evaluator(test_split.ground_truth).evaluate(verdicts)

    def test_recall_reasonable(self, result):
        assert result.metrics.recall >= 60.0

    def test_precision_reasonable(self, result):
        assert result.metrics.precision >= 60.0

    def test_lead_times_positive(self, result):
        leads = result.lead_times()
        assert len(leads) > 0
        assert np.all(leads >= 0)

    def test_lead_times_bounded_by_horizon(self, result, trained_model):
        max_lead = trained_model.config.phase2.max_lead_seconds
        assert np.all(result.lead_times() <= max_lead)

    def test_counts_cover_all_episodes(self, result, trained_model, test_split):
        verdicts = trained_model.score(test_split.records)
        c = result.counts
        assert c.tp + c.fp + c.fn + c.tn >= len(verdicts)

    def test_all_test_failures_accounted(self, result, test_split):
        c = result.counts
        assert c.tp + c.fn == len(test_split.ground_truth.failures)


class TestFileRoundTripTraining:
    def test_training_from_file_equals_in_memory(
        self, small_log, mini_config, tmp_path, trained_model, test_split
    ):
        """Writing the log to disk and re-reading must not change results."""
        train, _ = small_log.split(0.3)
        path = tmp_path / "train.log.gz"
        write_log(path, train.records)
        reread = list(read_records(path))
        model2 = Desh(mini_config).fit(reread, train_classifier=False)
        preds1 = trained_model.predict(test_split.records)
        preds2 = model2.predict(test_split.records)
        assert len(preds1) == len(preds2)
        assert {(str(p.node), round(p.decision_time, 3)) for p in preds1} == {
            (str(p.node), round(p.decision_time, 3)) for p in preds2
        }


class TestParallelScoring:
    def test_sharded_scoring_matches_serial(self, trained_model, test_split):
        """Per-node inference distributed over shards must agree exactly."""
        parsed = trained_model.parse(test_split.records)
        sequences = [
            s for s in parsed.by_node().values() if s.node is not None
        ]
        serial = trained_model.predictor.predict_sequences(sequences)

        shards = shard_sequences(sequences, 4)
        chunks = ordered_parallel_map(
            trained_model.predictor.predict_sequences, shards, max_workers=4
        )
        parallel = [v for chunk in chunks for v in chunk]

        key = lambda v: (str(v.node), v.episode.start_time)
        assert sorted(
            [(key(v), v.flagged, round(v.mse, 9)) for v in serial]
        ) == sorted([(key(v), v.flagged, round(v.mse, 9)) for v in parallel])


class TestDeterminism:
    def test_repeated_fit_identical_predictions(
        self, small_log, mini_config, trained_model, test_split
    ):
        train, _ = small_log.split(0.3)
        model2 = Desh(mini_config).fit(list(train.records), train_classifier=False)
        a = trained_model.predict(test_split.records)
        b = model2.predict(test_split.records)
        assert [(str(p.node), p.decision_time, p.lead_seconds) for p in a] == [
            (str(p.node), p.decision_time, p.lead_seconds) for p in b
        ]


class TestObservations:
    def test_observation4_per_class_variance(self, trained_model, test_split):
        """Per-class lead-time std is below the overall std (Observation 4)."""
        from repro.analysis import lead_times_by_class

        result = Evaluator(test_split.ground_truth).evaluate(
            trained_model.score(test_split.records)
        )
        overall = lead_time_overall(result)
        class_stds = [
            s.std
            for s in lead_times_by_class(result).values()
            if s.count >= 3
        ]
        assert class_stds, "need at least one populated class"
        assert np.mean(class_stds) < overall.std * 1.25

    def test_maintenance_not_predicted_as_failure(
        self, trained_model, test_split
    ):
        """Mass shutdowns are service events, not anomalous failures."""
        preds = trained_model.predict(test_split.records)
        for maint in test_split.ground_truth.maintenance:
            for p in preds:
                if p.node in maint.nodes:
                    # A prediction close to the maintenance start would be
                    # a maintenance false positive.
                    assert not (
                        maint.start_time - 30.0
                        <= p.predicted_failure_time
                        <= maint.start_time + 60.0
                    ), f"maintenance shutdown predicted as failure: {p}"
