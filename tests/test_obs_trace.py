"""Tests for the tracing half of the observability layer."""

import json
import threading

import pytest

from repro.errors import ObservabilityError
from repro.obs import (
    NullTracer,
    Tracer,
    activate_tracer,
    current_tracer,
    obs_enabled,
    set_tracer,
)


class TestSpans:
    def test_nesting_follows_dynamic_scope(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child"):
                with tracer.span("grandchild"):
                    pass
            with tracer.span("sibling"):
                pass
        spans = {s.name: s for s in tracer.spans()}
        assert spans["root"].parent_id is None
        assert spans["child"].parent_id == spans["root"].span_id
        assert spans["grandchild"].parent_id == spans["child"].span_id
        assert spans["sibling"].parent_id == spans["root"].span_id

    def test_ids_are_sequential_creation_order(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        with tracer.span("c"):
            pass
        assert [s.span_id for s in tracer.spans()] == [0, 1, 2]

    def test_durations_recorded_on_exit(self):
        tracer = Tracer()
        handle = tracer.span("work")
        assert not handle.span.finished
        with handle:
            pass
        assert handle.span.finished
        assert handle.span.duration >= 0.0

    def test_attributes_via_kwargs_and_set(self):
        tracer = Tracer()
        with tracer.span("s", a=1) as span:
            span.set(b="two", c=3.5)
        recorded = tracer.spans()[0]
        assert recorded.attributes == {"a": 1, "b": "two", "c": 3.5}

    def test_error_name_recorded_and_exception_propagates(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("nope")
        span = tracer.spans()[0]
        assert span.error == "ValueError"
        assert span.finished

    def test_worker_threads_get_their_own_stacks(self):
        tracer = Tracer()

        def worker():
            with tracer.span("worker"):
                pass

        with tracer.span("main"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        spans = {s.name: s for s in tracer.spans()}
        # The worker had no active span on *its* stack: it is a root,
        # not a child of "main".
        assert spans["worker"].parent_id is None


class TestDescribe:
    def test_masked_describe_is_stable(self):
        def run():
            tracer = Tracer()
            with tracer.span("root", n=2):
                with tracer.span("leaf", ok=True):
                    pass
            return tracer.describe()

        first, second = run(), run()
        assert first == second
        assert first == "root n=2\n  leaf ok=True"

    def test_unmasked_describe_includes_durations(self):
        tracer = Tracer()
        with tracer.span("t"):
            pass
        assert "ms)" in tracer.describe(mask_durations=False)

    def test_float_attributes_render_compactly(self):
        tracer = Tracer()
        with tracer.span("s", ratio=0.3333333333333):
            pass
        assert tracer.describe() == "s ratio=0.333333"


class TestExport:
    def test_jsonl_round_trip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("root", n=1):
            with tracer.span("leaf"):
                pass
        path = tmp_path / "spans.jsonl"
        assert tracer.export_jsonl(path) == 2
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["name"] for r in rows] == ["root", "leaf"]
        assert rows[0]["attributes"] == {"n": 1}
        assert rows[1]["parent_id"] == rows[0]["span_id"]
        assert all(r["duration"] >= 0 for r in rows)

    def test_null_tracer_refuses_export(self, tmp_path):
        with pytest.raises(ObservabilityError):
            NullTracer().export_jsonl(tmp_path / "nope.jsonl")


class TestProcessTracer:
    def test_default_is_null_and_disabled(self):
        tracer = current_tracer()
        assert isinstance(tracer, NullTracer)
        assert not tracer.enabled
        assert not obs_enabled()

    def test_null_span_is_shared_noop(self):
        tracer = NullTracer()
        handle = tracer.span("anything", big=list(range(5)))
        assert handle is tracer.span("other")
        with handle as h:
            assert h.set(x=1) is h
        assert tracer.spans() == []
        assert tracer.describe() == ""

    def test_activate_tracer_installs_and_restores(self):
        before = current_tracer()
        tracer = Tracer()
        with activate_tracer(tracer):
            assert current_tracer() is tracer
            assert obs_enabled()
        assert current_tracer() is before

    def test_set_tracer_rejects_non_tracers(self):
        with pytest.raises(ObservabilityError):
            set_tracer(object())
