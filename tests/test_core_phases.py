"""Tests for phase-1, phase-2 and phase-3 trainers on controlled data."""

import numpy as np
import pytest

from repro.config import Phase1Config, Phase2Config, Phase3Config, EmbeddingConfig
from repro.core.chains import ChainExtractor, Episode, FailureChain
from repro.core.deltas import LeadTimeScaler
from repro.core.phase1 import Phase1Trainer
from repro.core.phase2 import Phase2Result, Phase2Trainer, pad_vectors
from repro.core.phase3 import Phase3Predictor
from repro.errors import TrainingError
from repro.events import Label, ParsedEvent
from repro.parsing import LogParser
from repro.topology import CrayNodeId

NODE = CrayNodeId(0, 0, 0, 0, 0)


def make_chain(node, terminal_time, ids=(1, 2, 3, 9), lead=100.0):
    """A synthetic failure chain with evenly spread events."""
    n = len(ids)
    events = []
    for i, pid in enumerate(ids):
        t = terminal_time - lead * (1 - i / (n - 1))
        is_last = i == n - 1
        events.append(
            ParsedEvent(
                timestamp=t,
                phrase_id=pid,
                node=node,
                label=Label.ERROR if is_last else Label.UNKNOWN,
                terminal=is_last,
            )
        )
    return FailureChain(node, tuple(events))


@pytest.fixture(scope="module")
def many_chains():
    """30 instances of one chain shape with varying leads and times."""
    rng = np.random.default_rng(0)
    chains = []
    for k in range(30):
        lead = float(rng.normal(100.0, 10.0))
        chains.append(make_chain(NODE, 1000.0 * (k + 1), lead=max(lead, 40.0)))
    return chains


@pytest.fixture(scope="module")
def phase2_result(many_chains) -> Phase2Result:
    trainer = Phase2Trainer(
        vocab_size=12,
        config=Phase2Config(epochs=150, learning_rate=0.01, hidden_size=32),
        seed=3,
    )
    return trainer.train(many_chains)


class TestPadVectors:
    def test_no_padding_needed(self):
        v = np.ones((5, 2))
        assert pad_vectors(v, 5) is v

    def test_pads_with_first_row(self):
        v = np.array([[1.0, 2.0], [3.0, 4.0]])
        padded = pad_vectors(v, 4)
        assert padded.shape == (4, 2)
        assert np.array_equal(padded[0], [1.0, 2.0])
        assert np.array_equal(padded[1], [1.0, 2.0])
        assert np.array_equal(padded[2:], v)

    def test_rejects_1d(self):
        with pytest.raises(TrainingError):
            pad_vectors(np.ones(3), 5)


class TestPhase2Trainer:
    def test_rejects_empty_chains(self):
        with pytest.raises(TrainingError):
            Phase2Trainer(vocab_size=12).train([])

    def test_window_count_with_padding(self, many_chains):
        trainer = Phase2Trainer(
            vocab_size=12, config=Phase2Config(augment_copies=0)
        )
        x, y = trainer.build_windows(many_chains[:1])
        # One window per real event (left-padded by history).
        assert len(x) == len(many_chains[0])

    def test_augmentation_multiplies_windows(self, many_chains):
        clean = Phase2Trainer(vocab_size=12, config=Phase2Config(augment_copies=0))
        aug = Phase2Trainer(vocab_size=12, config=Phase2Config(augment_copies=2))
        x0, _ = clean.build_windows(many_chains[:3])
        x2, _ = aug.build_windows(many_chains[:3])
        assert len(x2) == 3 * len(x0)

    def test_training_reduces_loss(self, phase2_result):
        assert phase2_result.losses[-1] < phase2_result.losses[0] / 5

    def test_result_counts(self, phase2_result, many_chains):
        assert phase2_result.num_chains == len(many_chains)
        assert phase2_result.num_windows > 0

    def test_learns_chain_structure(self, phase2_result, many_chains):
        """Predicting within a training chain yields low paper-unit MSE."""
        trainer = Phase2Trainer(
            vocab_size=12, config=Phase2Config(augment_copies=0), seed=3
        )
        x, y = trainer.build_windows(many_chains[:5])
        pred = phase2_result.regressor.predict(x)
        mses = phase2_result.scaler.mse_paper_units(pred, y)
        assert np.median(mses) < 1.0


class TestPhase3Predictor:
    @pytest.fixture(scope="class")
    def predictor(self, phase2_result):
        return Phase3Predictor(
            phase2_result.regressor,
            phase2_result.scaler,
            config=Phase3Config(mse_threshold=2.0),
            episode_gap=600.0,
        )

    def chain_episode(self, lead=100.0, ids=(1, 2, 3, 9)):
        chain = make_chain(NODE, 5000.0, ids=ids, lead=lead)
        return Episode(NODE, chain.events)

    def test_true_chain_flagged(self, predictor):
        verdict = predictor.score_episode(self.chain_episode())
        assert verdict.flagged
        assert verdict.lead_seconds > 0

    def test_flag_reports_node(self, predictor):
        verdict = predictor.score_episode(self.chain_episode())
        assert verdict.node == NODE

    def test_garbage_not_flagged(self, predictor):
        """A sequence unlike any trained chain must not be flagged.

        (With a single trained chain shape, a lone window can land close
        by chance; the confirmation rule requires a *second* match, which
        garbage lacks.)
        """
        ids = (6, 10, 6, 10, 6)
        events = tuple(
            ParsedEvent(timestamp=5000.0 + 150.0 * i, phrase_id=ids[i], node=NODE)
            for i in range(5)
        )
        verdict = predictor.score_episode(Episode(NODE, events))
        assert not verdict.flagged

    def test_short_episode_skipped(self, predictor):
        ep = Episode(
            NODE, (ParsedEvent(timestamp=1.0, phrase_id=1, node=NODE),)
        )
        verdict = predictor.score_episode(ep)
        assert not verdict.flagged
        assert verdict.mse == float("inf")

    def test_leading_contamination_tolerated(self, predictor):
        """An unrelated leading event must not mask the chain (suffix skip)."""
        chain = make_chain(NODE, 5000.0, lead=100.0)
        noise = ParsedEvent(timestamp=4850.0, phrase_id=7, node=NODE)
        ep = Episode(NODE, (noise, *chain.events))
        assert predictor.score_episode(ep).flagged

    def test_later_flag_position_shortens_lead(self, phase2_result):
        ep = self.chain_episode()
        leads = []
        for fpos in (0, 2):
            pred = Phase3Predictor(
                phase2_result.regressor,
                phase2_result.scaler,
                config=Phase3Config(mse_threshold=2.0, flag_position=fpos),
            )
            verdict = pred.score_episode(ep)
            if verdict.flagged:
                leads.append(verdict.lead_seconds)
        assert len(leads) == 2
        assert leads[0] >= leads[1]

    def test_predict_sequences_and_predictions(self, predictor, phase2_result):
        from repro.events import EventSequence

        chain = make_chain(NODE, 5000.0, lead=100.0)
        seq = EventSequence(NODE, chain.events)
        verdicts = predictor.predict_sequences([seq])
        assert len(verdicts) == 1
        preds = predictor.predictions(verdicts)
        assert len(preds) == 1
        assert preds[0].node == NODE
        assert preds[0].predicted_failure_time == pytest.approx(
            preds[0].decision_time + preds[0].lead_seconds
        )

    def test_score_partial_on_prefix(self, predictor):
        """Online scoring of a growing chain prefix matches eventually."""
        chain = make_chain(NODE, 5000.0, lead=100.0)
        flagged, mse, lead = predictor.score_partial(chain.events[:3])
        assert np.isfinite(mse)
        assert lead >= 0.0

    def test_score_partial_too_short(self, predictor):
        chain = make_chain(NODE, 5000.0)
        flagged, mse, lead = predictor.score_partial(chain.events[:1])
        assert not flagged
        assert mse == float("inf")


class TestPhase1Trainer:
    @pytest.fixture(scope="class")
    def parsed_small(self, small_log):
        parser = LogParser()
        parsed = parser.fit_transform(list(small_log.records))
        return parser, parsed

    def test_trains_and_extracts_chains(self, parsed_small):
        parser, parsed = parsed_small
        trainer = Phase1Trainer(
            parser,
            config=Phase1Config(hidden_size=16, epochs=1, batch_size=128),
            embedding_config=EmbeddingConfig(dim=8, epochs=1),
            seed=0,
        )
        result = trainer.train(parsed, train_classifier=True)
        assert result.chains, "must extract failure chains"
        assert result.embedder.vectors.shape[0] >= parser.num_phrases
        assert result.classifier is not None
        assert result.losses

    def test_skip_classifier(self, parsed_small):
        parser, parsed = parsed_small
        trainer = Phase1Trainer(
            parser, embedding_config=EmbeddingConfig(dim=8, epochs=1), seed=0
        )
        result = trainer.train(parsed, train_classifier=False)
        assert result.classifier is None
        assert result.chains

    def test_chains_have_no_safe_events(self, parsed_small):
        parser, parsed = parsed_small
        trainer = Phase1Trainer(
            parser, embedding_config=EmbeddingConfig(dim=8, epochs=1), seed=0
        )
        result = trainer.train(parsed, train_classifier=False)
        for chain in result.chains:
            assert all(e.label != Label.SAFE for e in chain.events)

    def test_empty_input_raises(self, parsed_small):
        parser, _ = parsed_small
        from repro.parsing.pipeline import ParseResult

        with pytest.raises(TrainingError):
            Phase1Trainer(parser).train(ParseResult(events=[]))
