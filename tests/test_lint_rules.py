"""Per-rule deshlint tests: each rule catches a seeded bad snippet and
passes the matching good snippet."""

import textwrap

import pytest

from repro.lint import get_rules, lint_source


def run_rule(rule_id, source):
    """Lint a dedented snippet with exactly one rule; return findings."""
    return lint_source(
        textwrap.dedent(source), rules=get_rules([rule_id])
    )


def rules_hit(findings):
    return {f.rule for f in findings}


pytestmark = pytest.mark.lint


# ----------------------------------------------------------------------
# R1 — RNG discipline
# ----------------------------------------------------------------------
class TestR1RngDiscipline:
    def test_flags_stdlib_random_import(self):
        findings = run_rule("R1", "import random\n")
        assert rules_hit(findings) == {"R1"}

    def test_flags_from_random_import(self):
        findings = run_rule("R1", "from random import shuffle\n")
        assert rules_hit(findings) == {"R1"}

    def test_flags_module_level_numpy_sampler(self):
        findings = run_rule(
            "R1",
            """
            import numpy as np
            x = np.random.randint(0, 10)
            """,
        )
        assert rules_hit(findings) == {"R1"}
        assert "randint" in findings[0].message

    def test_flags_np_random_seed(self):
        findings = run_rule(
            "R1",
            """
            import numpy as np
            np.random.seed(0)
            """,
        )
        assert len(findings) == 1

    def test_flags_from_numpy_random_sampler_import(self):
        findings = run_rule("R1", "from numpy.random import rand\n")
        assert len(findings) == 1

    def test_flags_sampler_passed_as_callback(self):
        findings = run_rule(
            "R1",
            """
            import numpy as np
            f = np.random.shuffle
            """,
        )
        assert len(findings) == 1

    def test_allows_default_rng_and_generator(self):
        findings = run_rule(
            "R1",
            """
            import numpy as np

            def draw(rng: np.random.Generator, seed: int):
                rng = np.random.default_rng(seed)
                ss = np.random.SeedSequence([seed])
                return rng.integers(0, 10)
            """,
        )
        assert findings == []

    def test_respects_import_alias(self):
        findings = run_rule(
            "R1",
            """
            import numpy
            numpy.random.uniform(0, 1)
            """,
        )
        assert len(findings) == 1


# ----------------------------------------------------------------------
# R2 — stage purity
# ----------------------------------------------------------------------
class TestR2StagePurity:
    def test_flags_wall_clock_in_run(self):
        findings = run_rule(
            "R2",
            """
            import time

            class MyStage(Stage):
                def run(self, ctx):
                    return time.time()
            """,
        )
        assert rules_hit(findings) == {"R2"}
        assert "time.time" in findings[0].message

    def test_flags_forbidden_call_reachable_through_helpers(self):
        findings = run_rule(
            "R2",
            """
            import os

            def helper():
                return deeper()

            def deeper():
                return os.environ["HOME"]

            class MyStage(Stage):
                def run(self, ctx):
                    return helper()
            """,
        )
        assert len(findings) == 1
        assert "os.environ" in findings[0].message
        assert "helper" in findings[0].message  # chain is reported

    def test_flags_datetime_now_via_alias(self):
        findings = run_rule(
            "R2",
            """
            import datetime as _dt

            class MyStage(Stage):
                def run(self, ctx):
                    return _dt.datetime.now()
            """,
        )
        assert len(findings) == 1

    def test_flags_context_mutation(self):
        findings = run_rule(
            "R2",
            """
            class MyStage(Stage):
                def run(self, ctx):
                    ctx.inputs["extra"] = 1
                    ctx.records.append(None)
                    return 0
            """,
        )
        assert len(findings) == 2
        assert all("read-only" in f.message for f in findings)

    def test_unreachable_impurity_not_flagged(self):
        findings = run_rule(
            "R2",
            """
            import time

            def unrelated():
                return time.time()

            class MyStage(Stage):
                def run(self, ctx):
                    return ctx.value("parse")
            """,
        )
        assert findings == []

    def test_pure_stage_passes(self):
        findings = run_rule(
            "R2",
            """
            class MyStage(Stage):
                def run(self, ctx):
                    parsed = ctx.value("parse")
                    return [x for x in parsed]
            """,
        )
        assert findings == []

    def test_transitive_stage_subclass_is_entry_point(self):
        findings = run_rule(
            "R2",
            """
            import os

            class BaseStage(Stage):
                pass

            class Leaf(BaseStage):
                def run(self, ctx):
                    return os.urandom(8)
            """,
        )
        assert len(findings) == 1

    def test_unresolvable_method_call_overapproximates(self):
        findings = run_rule(
            "R2",
            """
            import time

            class Helper:
                def stamp(self):
                    return time.time()

            class MyStage(Stage):
                def run(self, ctx):
                    obj = ctx.value("x")
                    return obj.stamp()
            """,
        )
        assert len(findings) == 1


# ----------------------------------------------------------------------
# R3 — determinism hygiene
# ----------------------------------------------------------------------
class TestR3SetOrder:
    def test_flags_for_loop_over_set_literal(self):
        findings = run_rule(
            "R3",
            """
            for x in {"a", "b"}:
                print(x)
            """,
        )
        assert rules_hit(findings) == {"R3"}

    def test_flags_list_of_set(self):
        findings = run_rule("R3", "xs = list(set([3, 1, 2]))\n")
        assert len(findings) == 1

    def test_flags_comprehension_over_set_call(self):
        findings = run_rule("R3", "ys = [x for x in set(items)]\n")
        assert len(findings) == 1

    def test_flags_join_of_set(self):
        findings = run_rule("R3", "s = ','.join({\"a\", \"b\"})\n")
        assert len(findings) == 1

    def test_flags_set_union_iteration(self):
        findings = run_rule(
            "R3",
            """
            for x in set(a).union(b):
                print(x)
            """,
        )
        assert len(findings) == 1

    def test_sorted_set_passes(self):
        findings = run_rule(
            "R3",
            """
            for x in sorted(set(items)):
                print(x)
            xs = sorted({"a", "b"})
            """,
        )
        assert findings == []

    def test_order_insensitive_reductions_pass(self):
        findings = run_rule(
            "R3",
            """
            n = len(set(items))
            total = sum({1, 2, 3})
            present = "a" in {"a", "b"}
            """,
        )
        assert findings == []


# ----------------------------------------------------------------------
# R4 — exception hygiene
# ----------------------------------------------------------------------
class TestR4ExceptionHygiene:
    def test_flags_bare_except(self):
        findings = run_rule(
            "R4",
            """
            try:
                work()
            except:
                pass
            """,
        )
        assert len(findings) == 1
        assert "bare" in findings[0].message

    def test_flags_broad_swallow(self):
        findings = run_rule(
            "R4",
            """
            try:
                work()
            except Exception:
                pass
            """,
        )
        assert len(findings) == 1
        assert "swallows" in findings[0].message

    def test_flags_broad_reraise_with_softer_message(self):
        findings = run_rule(
            "R4",
            """
            try:
                work()
            except Exception as exc:
                raise CustomError("wrapped") from exc
            """,
        )
        assert len(findings) == 1
        assert "allow[R4]" in findings[0].message

    def test_flags_raise_of_builtin(self):
        findings = run_rule("R4", "raise ValueError('nope')\n")
        assert len(findings) == 1
        assert "repro.errors" in findings[0].message

    def test_narrow_catch_and_custom_raise_pass(self):
        findings = run_rule(
            "R4",
            """
            class CustomError(RuntimeError):
                pass

            try:
                work()
            except (OSError, ValueError):
                raise CustomError("typed")
            """,
        )
        assert findings == []

    def test_reraise_bare_passes_when_narrow(self):
        findings = run_rule(
            "R4",
            """
            try:
                work()
            except KeyError:
                raise
            """,
        )
        assert findings == []

    def test_allows_notimplemented_and_stopiteration(self):
        findings = run_rule(
            "R4",
            """
            def todo():
                raise NotImplementedError
            """,
        )
        assert findings == []


# ----------------------------------------------------------------------
# R5 — public API consistency
# ----------------------------------------------------------------------
class TestR5PublicApi:
    def test_flags_missing_module_docstring(self):
        findings = run_rule("R5", "X = 1\n")
        assert any("module has no docstring" in f.message for f in findings)

    def test_flags_public_def_missing_from_all(self):
        findings = run_rule(
            "R5",
            '''
            """Doc."""
            __all__ = ["f"]

            def f():
                """Doc."""

            def g():
                """Doc."""
            ''',
        )
        assert any("'g' is missing from __all__" in f.message for f in findings)

    def test_flags_phantom_all_entry(self):
        findings = run_rule(
            "R5",
            '''
            """Doc."""
            __all__ = ["ghost"]
            ''',
        )
        assert any("not defined" in f.message for f in findings)

    def test_flags_duplicate_all_entry(self):
        findings = run_rule(
            "R5",
            '''
            """Doc."""
            __all__ = ["f", "f"]

            def f():
                """Doc."""
            ''',
        )
        assert any("twice" in f.message for f in findings)

    def test_flags_missing_docstrings(self):
        findings = run_rule(
            "R5",
            '''
            """Doc."""
            __all__ = ["f", "C"]

            def f():
                pass

            class C:
                """Doc."""

                def method(self):
                    pass
            ''',
        )
        messages = [f.message for f in findings]
        assert any("function f has no docstring" in m for m in messages)
        assert any("C.method has no docstring" in m for m in messages)

    def test_flags_public_defs_without_all(self):
        findings = run_rule(
            '''R5''',
            '''
            """Doc."""

            def f():
                """Doc."""
            ''',
        )
        assert any("no __all__" in f.message for f in findings)

    def test_consistent_module_passes(self):
        findings = run_rule(
            "R5",
            '''
            """Doc."""
            __all__ = ["f", "C"]

            def f():
                """Doc."""

            def _private():
                pass

            class C:
                """Doc."""

                def method(self):
                    """Doc."""

                def _internal(self):
                    pass
            ''',
        )
        assert findings == []
