"""Tests for the DeepLog, n-gram and severity baselines."""

import numpy as np
import pytest

from repro.baselines.deeplog import DeepLogConfig, DeepLogDetector
from repro.baselines.ngram import NGramConfig, NGramDetector
from repro.baselines.severity import SeverityDetector
from repro.core.chains import Episode
from repro.errors import ConfigError, NotFittedError, TrainingError
from repro.events import EventSequence, Label, ParsedEvent
from repro.topology import CrayNodeId

NODE = CrayNodeId(0, 0, 0, 0, 0)


@pytest.fixture(scope="module")
def normal_sequences():
    """Highly regular 'normal execution' sequences over vocab 10."""
    return [np.array(([0, 1, 2, 3, 4] * 30), dtype=np.int64) for _ in range(4)]


def make_episode(ids, gap=10.0, labels=None):
    events = []
    for i, pid in enumerate(ids):
        label = labels[i] if labels else Label.UNKNOWN
        events.append(
            ParsedEvent(timestamp=100.0 + gap * i, phrase_id=pid, node=NODE, label=label)
        )
    return Episode(NODE, tuple(events))


class TestDeepLog:
    @pytest.fixture(scope="class")
    def detector(self, normal_sequences):
        cfg = DeepLogConfig(
            history=5, top_g=2, hidden_size=16, embed_dim=8, epochs=8
        )
        return DeepLogDetector(10, config=cfg, seed=0).fit(normal_sequences)

    def test_normal_sequence_clean(self, detector):
        seq = np.array([0, 1, 2, 3, 4] * 4)
        assert not detector.entry_anomalies(seq).any()

    def test_injected_key_detected(self, detector):
        seq = np.array([0, 1, 2, 3, 4] * 3 + [9])
        mask = detector.entry_anomalies(seq)
        assert mask[-1]

    def test_short_sequence_never_anomalous(self, detector):
        assert not detector.entry_anomalies(np.array([9, 9])).any()

    def test_episode_verdict_flagged(self, detector):
        ep = make_episode([0, 1, 2, 3, 4, 9, 0, 1])
        verdict = detector.score_episode(ep)
        assert verdict.flagged
        assert verdict.lead_seconds > 0

    def test_normal_episode_not_flagged(self, detector):
        ep = make_episode([0, 1, 2, 3, 4, 0, 1, 2])
        assert not detector.score_episode(ep).flagged

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            DeepLogDetector(10).entry_anomalies(np.arange(10))

    def test_fit_rejects_empty(self):
        with pytest.raises(TrainingError):
            DeepLogDetector(10).fit([np.array([1, 2])])

    def test_rejects_bad_top_g(self):
        with pytest.raises(TrainingError):
            DeepLogDetector(10, config=DeepLogConfig(top_g=99))

    def test_predict_sequences_interface(self, detector):
        events = [
            ParsedEvent(timestamp=10.0 * i, phrase_id=pid, node=NODE)
            for i, pid in enumerate([0, 1, 2, 3, 4, 9])
        ]
        verdicts = detector.predict_sequences([EventSequence(NODE, events)])
        assert len(verdicts) == 1


class TestNGram:
    @pytest.fixture(scope="class")
    def detector(self, normal_sequences):
        return NGramDetector(config=NGramConfig(order=3, top_g=1)).fit(
            normal_sequences
        )

    def test_learns_transitions(self, detector):
        assert detector.top_candidates([0, 1, 2]) == [3]

    def test_backoff_to_shorter_context(self, detector):
        # Context (9, 9, 2) unseen; backs off to (2,) -> 3.
        assert 3 in detector.top_candidates([9, 9, 2])

    def test_backoff_to_unigram(self, detector):
        # Entirely unseen context: falls back to most frequent keys.
        cands = detector.top_candidates([9, 9, 9])
        assert cands and all(0 <= c <= 4 for c in cands)

    def test_normal_clean(self, detector):
        mask = detector.entry_anomalies(np.array([0, 1, 2, 3, 4] * 3))
        assert not mask.any()

    def test_anomaly_detected(self, detector):
        mask = detector.entry_anomalies(np.array([0, 1, 2, 9]))
        assert mask[-1]

    def test_episode_flagging(self, detector):
        assert detector.score_episode(make_episode([0, 1, 2, 9])).flagged
        assert not detector.score_episode(make_episode([0, 1, 2, 3])).flagged

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            NGramDetector().top_candidates([1])

    def test_fit_empty_raises(self):
        with pytest.raises(TrainingError):
            NGramDetector().fit([])

    def test_rejects_bad_config(self):
        with pytest.raises(TrainingError):
            NGramDetector(config=NGramConfig(order=0))


class TestSeverity:
    def test_flags_on_error_label(self):
        ep = make_episode(
            [1, 2, 3], labels=[Label.UNKNOWN, Label.ERROR, Label.UNKNOWN]
        )
        verdict = SeverityDetector().score_episode(ep)
        assert verdict.flagged
        assert verdict.decision_index == 1

    def test_quiet_without_error(self):
        ep = make_episode([1, 2, 3])
        assert not SeverityDetector().score_episode(ep).flagged

    def test_min_error_events(self):
        ep = make_episode(
            [1, 2, 3], labels=[Label.ERROR, Label.UNKNOWN, Label.UNKNOWN]
        )
        assert not SeverityDetector(min_error_events=2).score_episode(ep).flagged

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigError):
            SeverityDetector(min_error_events=0)

    def test_high_recall_poor_precision_on_real_data(
        self, trained_model, test_split
    ):
        """Observation 6: the severity strawman flags near-misses too."""
        from repro.analysis.evaluation import Evaluator

        parsed = trained_model.parse(test_split.records)
        seqs = [s for s in parsed.by_node().values() if s.node is not None]
        verdicts = SeverityDetector().predict_sequences(seqs)
        res = Evaluator(test_split.ground_truth).evaluate(verdicts)
        assert res.metrics.recall > 80.0
        # Near-miss chains carry Error phrases, so FP rate must be high.
        assert res.metrics.fp_rate > 25.0
