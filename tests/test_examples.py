"""Smoke tests for the example scripts.

Full example runs train real models (minutes); these tests verify the
scripts are importable (no syntax/rename drift against the library) and
that the live-monitor's streaming logic works against the session model.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize(
    "name",
    [
        "quickstart",
        "live_monitor",
        "unknown_phrase_report",
        "baseline_comparison",
        "train_four_systems",
        "cascade_quarantine",
        "generate_report",
    ],
)
def test_example_imports(name):
    module = load_example(name)
    assert hasattr(module, "main")


class TestLiveMonitor:
    def test_streaming_monitor_raises_warnings(self, trained_model, test_split):
        module = load_example("live_monitor")
        monitor = module.LiveMonitor(trained_model)
        warnings = []
        for record in test_split.records:
            w = monitor.feed(record)
            if w is not None:
                warnings.append(w)
        assert warnings, "the monitor must raise at least one warning"
        # One alert per node episode: no duplicate spam for one episode.
        gt = test_split.ground_truth
        confirmed = sum(
            1
            for w in warnings
            if gt.failure_near(w.node, w.decision_time, lookahead=700.0)
        )
        assert confirmed >= len(gt.failures) * 0.3

    def test_monitor_ignores_safe_records(self, trained_model, small_log):
        module = load_example("live_monitor")
        monitor = module.LiveMonitor(trained_model)
        safe = [
            r
            for r in small_log.records[:200]
            if "Wait4Boot" in r.message or "session opened" in r.message
        ]
        for record in safe:
            assert monitor.feed(record) is None
