"""Tests for skip-gram embeddings with negative sampling."""

import numpy as np
import pytest

from repro.config import EmbeddingConfig
from repro.errors import NotFittedError, ShapeError, TrainingError
from repro.nn.embeddings import SkipGramEmbedder


@pytest.fixture(scope="module")
def trained_embedder():
    """Embeddings over sequences with a strong co-occurrence structure.

    Phrases {0,1,2} always appear together, as do {3,4,5}; the two groups
    never mix.
    """
    rng = np.random.default_rng(0)
    seqs = []
    for _ in range(60):
        group = rng.integers(0, 2)
        base = 0 if group == 0 else 3
        seqs.append(base + rng.integers(0, 3, size=30))
    cfg = EmbeddingConfig(dim=16, epochs=4, window_left=3, window_right=2)
    emb = SkipGramEmbedder(6, cfg)
    emb.fit(seqs, np.random.default_rng(1))
    return emb


class TestBuildPairs:
    def test_window_asymmetry(self):
        cfg = EmbeddingConfig(window_left=2, window_right=1)
        emb = SkipGramEmbedder(10, cfg)
        centers, contexts = emb.build_pairs([np.array([0, 1, 2, 3])])
        pairs = set(zip(centers.tolist(), contexts.tolist()))
        # Left window 2: (2,0) is a pair; right window 1: (2,3) is a pair,
        # but (0,2) (distance-2 right context) must not be.
        assert (2, 0) in pairs
        assert (2, 3) in pairs
        assert (0, 2) not in pairs

    def test_empty_for_trivial_sequences(self):
        emb = SkipGramEmbedder(10)
        centers, contexts = emb.build_pairs([np.array([5])])
        assert len(centers) == 0

    def test_rejects_out_of_range_ids(self):
        emb = SkipGramEmbedder(4)
        with pytest.raises(ShapeError):
            emb.build_pairs([np.array([0, 9])])

    def test_rejects_2d_sequence(self):
        emb = SkipGramEmbedder(4)
        with pytest.raises(ShapeError):
            emb.build_pairs([np.ones((2, 2), dtype=int)])


class TestTraining:
    def test_vectors_shape(self, trained_embedder):
        assert trained_embedder.vectors.shape == (6, 16)

    def test_cooccurring_phrases_are_closer(self, trained_embedder):
        """Semantic closeness (Section 2): in-group similarity must beat
        cross-group similarity."""
        emb = trained_embedder
        within = np.mean(
            [emb.similarity(0, 1), emb.similarity(1, 2), emb.similarity(3, 4)]
        )
        across = np.mean(
            [emb.similarity(0, 3), emb.similarity(1, 4), emb.similarity(2, 5)]
        )
        assert within > across + 0.2

    def test_most_similar_prefers_group(self, trained_embedder):
        top = [i for i, _ in trained_embedder.most_similar(0, top=2)]
        assert set(top) <= {1, 2}

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            SkipGramEmbedder(4).vectors

    def test_fit_on_short_sequences_raises(self):
        emb = SkipGramEmbedder(4)
        with pytest.raises(TrainingError):
            emb.fit([np.array([1])], np.random.default_rng(0))

    def test_rejects_small_vocab(self):
        with pytest.raises(ShapeError):
            SkipGramEmbedder(1)

    def test_rejects_bad_counts_shape(self):
        emb = SkipGramEmbedder(4)
        with pytest.raises(ShapeError):
            emb.fit(
                [np.array([0, 1, 2, 3])],
                np.random.default_rng(0),
                counts=np.ones(5),
            )

    def test_deterministic_per_seed(self):
        seqs = [np.array([0, 1, 2, 3, 0, 1, 2, 3])]
        cfg = EmbeddingConfig(dim=4, epochs=1)
        a = SkipGramEmbedder(4, cfg).fit(seqs, np.random.default_rng(5)).vectors
        b = SkipGramEmbedder(4, cfg).fit(seqs, np.random.default_rng(5)).vectors
        assert np.allclose(a, b)

    def test_similarity_bounds(self, trained_embedder):
        for a in range(6):
            for b in range(6):
                s = trained_embedder.similarity(a, b)
                assert -1.0 - 1e-9 <= s <= 1.0 + 1e-9

    def test_self_similarity_is_one(self, trained_embedder):
        assert trained_embedder.similarity(2, 2) == pytest.approx(1.0)
