"""Tests for spatial-correlation analysis and cascade injection."""

import numpy as np
import pytest

from repro.analysis.spatial import SpatialCorrelation, spatial_correlation
from repro.errors import ConfigError, LogGenerationError
from repro.simlog import GeneratorConfig, LogGenerator
from repro.simlog.faults import FailureClass
from repro.simlog.generator import FailureEvent
from repro.topology import ClusterTopology, CrayNodeId


def failure(node, t):
    return FailureEvent(node, FailureClass.MCE, "mce", t - 100.0, t)


class TestSpatialCorrelation:
    def test_correlated_pairs_detected(self, small_topology):
        a = small_topology.node_at(0)
        b = small_topology.cabinet_mates(a)[0]
        c = CrayNodeId(1, 0, 0, 0, 0)  # other cabinet
        failures = [failure(a, 1000.0), failure(b, 1100.0), failure(c, 5000.0)]
        corr = spatial_correlation(failures, small_topology, window_seconds=300.0)
        assert corr.close_pairs == 1
        assert corr.same_cabinet_pairs == 1
        assert corr.correlation_ratio > 1.0

    def test_distant_pairs_ignored(self, small_topology):
        a = small_topology.node_at(0)
        b = small_topology.cabinet_mates(a)[0]
        failures = [failure(a, 1000.0), failure(b, 9000.0)]
        corr = spatial_correlation(failures, small_topology)
        assert corr.close_pairs == 0
        assert corr.observed_rate == 0.0

    def test_same_node_pairs_excluded(self, small_topology):
        a = small_topology.node_at(0)
        failures = [failure(a, 1000.0), failure(a, 1100.0)]
        corr = spatial_correlation(failures, small_topology)
        assert corr.close_pairs == 0

    def test_expected_rate_from_topology(self, small_topology):
        corr = spatial_correlation([], small_topology)
        n = small_topology.num_nodes
        per_cab = small_topology.nodes_per_cabinet
        assert corr.expected_same_cabinet_rate == pytest.approx(
            (per_cab - 1) / (n - 1)
        )

    def test_rejects_bad_window(self, small_topology):
        with pytest.raises(ConfigError):
            spatial_correlation([], small_topology, window_seconds=0.0)

    def test_empty_is_neutral(self, small_topology):
        corr = spatial_correlation([], small_topology)
        assert corr.correlation_ratio == 0.0


class TestCascadeInjection:
    def test_rejects_bad_cascade_prob(self):
        with pytest.raises(LogGenerationError):
            GeneratorConfig(cascade_prob=1.0)

    def test_cascades_raise_cabinet_correlation(self):
        """cascade_prob > 0 must produce measurably correlated failures."""
        topo = ClusterTopology(
            cabinet_cols=4, cabinet_rows=1, chassis_per_cabinet=2,
            slots_per_chassis=2, nodes_per_blade=2,
        )
        gen = LogGenerator(topo)
        base = dict(horizon=12 * 3600.0, failure_count=60, near_miss_ratio=0.0,
                    maintenance_count=0)
        quiet = gen.generate(
            GeneratorConfig(cascade_prob=0.0, **base), np.random.default_rng(3)
        )
        stormy = gen.generate(
            GeneratorConfig(cascade_prob=0.6, **base), np.random.default_rng(3)
        )
        corr_q = spatial_correlation(quiet.ground_truth.failures, topo)
        corr_s = spatial_correlation(stormy.ground_truth.failures, topo)
        assert len(stormy.ground_truth.failures) > len(quiet.ground_truth.failures)
        assert corr_s.correlation_ratio > max(corr_q.correlation_ratio, 1.0)

    def test_cascade_failures_carry_records(self):
        """Cascaded failures get full chains in the log, like primaries."""
        topo = ClusterTopology(2, 1, 2, 2, 2)
        gen = LogGenerator(topo)
        log = gen.generate(
            GeneratorConfig(
                horizon=12 * 3600.0,
                failure_count=20,
                near_miss_ratio=0.0,
                maintenance_count=0,
                cascade_prob=0.5,
            ),
            np.random.default_rng(4),
        )
        terminal_keys = {
            (r.node, round(r.timestamp, 6))
            for r in log.records
            if "cb_node_unavailable" in r.message
        }
        for f in log.ground_truth.failures:
            assert (f.node, round(f.terminal_time, 6)) in terminal_keys
