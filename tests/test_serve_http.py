"""Tests for the asyncio HTTP front-end over the prediction service."""

import asyncio
import json

import pytest

from repro.serve import HttpServer, PredictionService, ServeConfig
from repro.simlog.record import render_line


@pytest.fixture
def lines(test_split):
    return [render_line(r) for r in test_split.records]


async def _request(port, raw: bytes) -> tuple[int, dict, bytes]:
    """One raw HTTP/1.1 request; returns (status, headers, body)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(raw)
    await writer.drain()
    head = await reader.readuntil(b"\r\n\r\n")
    head_lines = head.decode("latin-1").split("\r\n")
    status = int(head_lines[0].split(" ")[1])
    headers = {}
    for line in head_lines[1:]:
        if ":" in line:
            key, _, value = line.partition(":")
            headers[key.strip().lower()] = value.strip()
    body = b""
    if "content-length" in headers:
        body = await reader.readexactly(int(headers["content-length"]))
    writer.close()
    return status, headers, body


def _get(path: str) -> bytes:
    return (
        f"GET {path} HTTP/1.1\r\nHost: t\r\n\r\n"
    ).encode()


def _post(path: str, body: bytes) -> bytes:
    head = (
        f"POST {path} HTTP/1.1\r\nHost: t\r\n"
        f"Content-Length: {len(body)}\r\n\r\n"
    ).encode()
    return head + body


class _Harness:
    """A started service + HTTP server with helpers, torn down cleanly."""

    def __init__(self, model, config=None, **service_kwargs):
        self.service = PredictionService(
            model,
            config
            or ServeConfig(num_shards=2, drain_timeout=2.0),
            **service_kwargs,
        )
        self.server = HttpServer(self.service, port=0)

    async def __aenter__(self):
        await self.service.start(restore=False)
        await self.server.start()
        return self

    async def __aexit__(self, *exc):
        await self.server.stop()
        await self.service.stop(checkpoint=False)

    async def request(self, raw: bytes):
        return await _request(self.server.port, raw)


class TestEndpoints:
    def test_ingest_then_health_alerts_predict_metrics(
        self, trained_model, lines
    ):
        async def run():
            async with _Harness(trained_model) as h:
                body = "\n".join(lines[:800]).encode()
                status, _, out = await h.request(_post("/ingest", body))
                ingest = json.loads(out)
                assert status == 200
                assert ingest["accepted"] == 800

                for _ in range(200):
                    if not any(s.queue.depth for s in h.service._shards):
                        break
                    await asyncio.sleep(0.01)

                status, _, out = await h.request(_get("/health"))
                health = json.loads(out)
                assert status == 200
                assert health["num_shards"] == 2
                assert (
                    sum(s["lines_processed"] for s in health["shards"]) == 800
                )

                status, _, out = await h.request(_get("/alerts?since=0"))
                alerts = json.loads(out)["alerts"]
                assert status == 200 and alerts

                node = alerts[0]["node"]
                status, _, out = await h.request(
                    _get(f"/predict/{node}?deadline_ms=2000")
                )
                assert status == 200
                answer = json.loads(out)
                assert answer["node"] == node

                status, headers, out = await h.request(_get("/metrics"))
                assert status == 200
                assert "text/plain" in headers["content-type"]
                assert b"serve" in out

        asyncio.run(run())

    def test_ingest_returns_429_with_retry_after_when_shedding(
        self, trained_model, lines
    ):
        async def run():
            config = ServeConfig(
                num_shards=1,
                queue_depth=1,
                backpressure_wait=0.01,
                drain_timeout=0.1,
            )
            async with _Harness(
                trained_model, config, fault_hook=lambda s, i: 3600.0
            ) as h:
                statuses = []
                retry_after = None
                for i in range(0, 40, 10):
                    body = "\n".join(lines[i : i + 10]).encode()
                    status, headers, _ = await h.request(
                        _post("/ingest", body)
                    )
                    statuses.append(status)
                    if status == 429:
                        retry_after = headers.get("retry-after")
                return statuses, retry_after

        statuses, retry_after = asyncio.run(run())
        assert 429 in statuses
        assert retry_after is not None and float(retry_after) > 0

    def test_unknown_route_404_and_wrong_method_405(self, trained_model):
        async def run():
            async with _Harness(trained_model) as h:
                s404, _, _ = await h.request(_get("/bogus"))
                s405, _, _ = await h.request(_post("/health", b""))
                s405b, _, _ = await h.request(_get("/ingest"))
                return s404, s405, s405b

        assert asyncio.run(run()) == (404, 405, 405)

    def test_malformed_request_line_400(self, trained_model):
        async def run():
            async with _Harness(trained_model) as h:
                status, _, _ = await h.request(b"NONSENSE\r\n\r\n")
                return status

        assert asyncio.run(run()) == 400

    def test_oversized_body_413(self, trained_model):
        from repro.serve.server import MAX_BODY_BYTES

        async def run():
            async with _Harness(trained_model) as h:
                head = (
                    "POST /ingest HTTP/1.1\r\nHost: t\r\n"
                    f"Content-Length: {MAX_BODY_BYTES + 1}\r\n\r\n"
                ).encode()
                status, _, _ = await h.request(head)
                return status

        assert asyncio.run(run()) == 413

    def test_unknown_node_404(self, trained_model):
        async def run():
            async with _Harness(trained_model) as h:
                status, _, _ = await h.request(_get("/nodes/garbage!!"))
                return status

        assert asyncio.run(run()) == 404

    def test_bad_query_parameter_400(self, trained_model):
        async def run():
            async with _Harness(trained_model) as h:
                status, _, _ = await h.request(_get("/alerts?since=xyz"))
                return status

        assert asyncio.run(run()) == 400


class TestAlertStreaming:
    def test_sse_stream_replays_and_follows_live_alerts(
        self, trained_model, lines
    ):
        async def run():
            async with _Harness(trained_model) as h:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", h.server.port
                )
                writer.write(
                    b"GET /alerts?stream=1 HTTP/1.1\r\nHost: t\r\n"
                    b"Accept: text/event-stream\r\n\r\n"
                )
                await writer.drain()
                head = await reader.readuntil(b"\r\n\r\n")
                assert b"text/event-stream" in head
                await h.service.ingest_lines(lines[:800])
                event = await asyncio.wait_for(
                    reader.readuntil(b"\n\n"), 10.0
                )
                text = event.decode()
                assert "event: alert" in text
                data = json.loads(
                    next(
                        line[6:]
                        for line in text.splitlines()
                        if line.startswith("data: ")
                    )
                )
                assert data["node"]
                writer.close()

        asyncio.run(run())
