"""Tests for rolling-origin evaluation and parallel scoring."""

import pytest

from repro.analysis import Evaluator, rolling_origin_evaluation
from repro.errors import ConfigError


class TestRollingOrigin:
    @pytest.fixture(scope="class")
    def folds(self, small_log, mini_config):
        return rolling_origin_evaluation(
            small_log,
            mini_config,
            origins=(0.3, 0.5),
            test_window_fraction=0.3,
        )

    def test_one_result_per_trainable_origin(self, folds):
        assert len(folds) == 2

    def test_windows_do_not_leak(self, folds):
        for fold in folds:
            assert fold.train_end < fold.test_end

    def test_folds_have_failures(self, folds):
        for fold in folds:
            assert fold.num_train_failures > 0
            assert fold.num_test_failures > 0

    def test_later_origin_more_training_failures(self, folds):
        assert folds[1].num_train_failures > folds[0].num_train_failures

    def test_metrics_reasonable_on_every_fold(self, folds):
        """Single-split performance is not a fluke of the cut point."""
        for fold in folds:
            assert fold.metrics.recall >= 50.0
            assert fold.metrics.precision >= 50.0

    def test_rejects_bad_origins(self, small_log, mini_config):
        with pytest.raises(ConfigError):
            rolling_origin_evaluation(small_log, mini_config, origins=())
        with pytest.raises(ConfigError):
            rolling_origin_evaluation(small_log, mini_config, origins=(1.5,))

    def test_rejects_bad_window(self, small_log, mini_config):
        with pytest.raises(ConfigError):
            rolling_origin_evaluation(
                small_log, mini_config, test_window_fraction=0.0
            )


class TestParallelScore:
    def test_parallel_equals_serial(self, trained_model, test_split):
        serial = trained_model.score(test_split.records)
        parallel = trained_model.score(test_split.records, workers=4)
        key = lambda v: (str(v.node), v.episode.start_time)
        assert sorted((key(v), v.flagged, round(v.mse, 9)) for v in serial) == sorted(
            (key(v), v.flagged, round(v.mse, 9)) for v in parallel
        )


class TestMonitorClassAttribution:
    def test_online_warnings_carry_class(self, trained_model, test_split):
        from repro.core import StreamingMonitor
        from repro.simlog.faults import FailureClass

        monitor = StreamingMonitor(trained_model)
        warnings = list(monitor.run(test_split.records))
        assert warnings
        class_names = {c.value for c in FailureClass}
        attributed = [w for w in warnings if w.likely_class is not None]
        assert attributed, "warnings should carry a likely failure class"
        assert all(w.likely_class in class_names for w in attributed)

    def test_class_appears_in_message(self, trained_model, test_split):
        from repro.core import StreamingMonitor

        monitor = StreamingMonitor(trained_model)
        for warning in monitor.run(test_split.records):
            if warning.likely_class:
                assert f"likely {warning.likely_class}" in warning.message()
                break
        else:
            pytest.fail("no class-attributed warning raised")
