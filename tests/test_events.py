"""Tests for the shared event containers."""

import numpy as np
import pytest

from repro.errors import ChainExtractionError
from repro.events import EventSequence, Label, ParsedEvent, group_by_node
from repro.topology import CrayNodeId

NODE = CrayNodeId(0, 0, 0, 0, 0)
OTHER = CrayNodeId(0, 0, 0, 0, 1)


def ev(t, pid=0, node=NODE, label=Label.UNKNOWN, terminal=False):
    return ParsedEvent(
        timestamp=t, phrase_id=pid, node=node, label=label, terminal=terminal
    )


class TestParsedEvent:
    def test_rejects_bad_label(self):
        with pytest.raises(ChainExtractionError):
            ParsedEvent(timestamp=0.0, phrase_id=0, label="bogus")

    def test_rejects_negative_phrase_id(self):
        with pytest.raises(ChainExtractionError):
            ParsedEvent(timestamp=0.0, phrase_id=-1)

    def test_ordering_by_time_then_phrase(self):
        a = ev(1.0, pid=5)
        b = ev(2.0, pid=1)
        c = ev(1.0, pid=2)
        assert sorted([b, a, c]) == [c, a, b]

    def test_default_label_is_unknown(self):
        assert ParsedEvent(timestamp=0.0, phrase_id=0).label == Label.UNKNOWN


class TestEventSequence:
    def test_sorts_on_construction(self):
        seq = EventSequence(NODE, [ev(5.0), ev(1.0), ev(3.0)])
        assert [e.timestamp for e in seq] == [1.0, 3.0, 5.0]

    def test_rejects_foreign_node_events(self):
        with pytest.raises(ChainExtractionError):
            EventSequence(NODE, [ev(0.0, node=OTHER)])

    def test_phrase_ids_array(self):
        seq = EventSequence(NODE, [ev(0.0, pid=3), ev(1.0, pid=7)])
        ids = seq.phrase_ids()
        assert ids.dtype == np.int64
        assert ids.tolist() == [3, 7]

    def test_arrays_are_cached(self):
        seq = EventSequence(NODE, [ev(0.0), ev(1.0)])
        assert seq.phrase_ids() is seq.phrase_ids()
        assert seq.timestamps() is seq.timestamps()

    def test_without_safe(self):
        seq = EventSequence(
            NODE, [ev(0.0, label=Label.SAFE), ev(1.0), ev(2.0, label=Label.ERROR)]
        )
        filtered = seq.without_safe()
        assert len(filtered) == 2
        assert all(e.label != Label.SAFE for e in filtered)

    def test_terminals_indices(self):
        seq = EventSequence(
            NODE,
            [ev(0.0), ev(1.0, label=Label.ERROR, terminal=True), ev(2.0)],
        )
        assert seq.terminals() == [1]

    def test_indexing(self):
        seq = EventSequence(NODE, [ev(0.0, pid=1), ev(1.0, pid=2)])
        assert seq[1].phrase_id == 2

    def test_len(self):
        assert len(EventSequence(NODE, [])) == 0


class TestGroupByNode:
    def test_partitions(self):
        events = [ev(0.0), ev(1.0, node=OTHER), ev(2.0), ev(3.0, node=None)]
        groups = group_by_node(events)
        assert set(groups) == {NODE, OTHER, None}
        assert len(groups[NODE]) == 2
        assert len(groups[OTHER]) == 1
        assert len(groups[None]) == 1

    def test_empty(self):
        assert group_by_node([]) == {}

    def test_groups_are_sorted(self):
        events = [ev(5.0), ev(1.0)]
        groups = group_by_node(events)
        assert [e.timestamp for e in groups[NODE]] == [1.0, 5.0]
