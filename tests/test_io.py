"""Tests for log-file IO and dataset management."""

import pytest

from repro.errors import DatasetError, ParseError, SerializationError
from repro.io import (
    chronological_split,
    iter_lines,
    load_ground_truth,
    read_records,
    save_ground_truth,
    write_log,
)
from repro.simlog.record import LogRecord
from repro.topology import CrayNodeId

NODE = CrayNodeId(0, 0, 0, 0, 0)


@pytest.fixture
def records():
    return [
        LogRecord(float(i * 10), NODE, "kernel", f"message number {i}")
        for i in range(20)
    ]


class TestLogFile:
    def test_write_read_round_trip(self, records, tmp_path):
        path = tmp_path / "log.txt"
        count = write_log(path, records)
        assert count == 20
        loaded = list(read_records(path))
        assert loaded == records

    def test_gzip_round_trip(self, records, tmp_path):
        path = tmp_path / "log.txt.gz"
        write_log(path, records)
        assert list(read_records(path)) == records
        # really compressed: gzip magic bytes
        assert path.read_bytes()[:2] == b"\x1f\x8b"

    def test_iter_lines_skips_blank(self, tmp_path):
        path = tmp_path / "log.txt"
        path.write_text("line one\n\nline two\n")
        assert list(iter_lines(path)) == ["line one", "line two"]

    def test_iter_lines_skips_whitespace_only(self, tmp_path):
        path = tmp_path / "log.txt"
        path.write_text("line one\n   \n\t\t\nline two\n \t \n")
        assert list(iter_lines(path)) == ["line one", "line two"]

    def test_iter_lines_survives_invalid_utf8(self, records, tmp_path):
        from repro.simlog.record import render_line

        path = tmp_path / "log.txt"
        good = render_line(records[0])
        path.write_bytes(
            good.encode() + b"\n\xff\xfe broken \x80 bytes\n" + good.encode() + b"\n"
        )
        lines = list(iter_lines(path))
        assert len(lines) == 3
        assert lines[0] == lines[2] == good
        # invalid bytes decoded with replacement, not raised
        assert "�" in lines[1]

    def test_invalid_utf8_quarantined_not_fatal(self, records, tmp_path):
        from repro.resilience import HardenedIngestor
        from repro.simlog.record import render_line

        path = tmp_path / "log.txt"
        payload = b"".join(
            render_line(r).encode() + b"\n" for r in records[:5]
        )
        path.write_bytes(payload + b"\xc3\x28 mangled\n" + payload[:0])
        ingestor = HardenedIngestor()
        loaded = list(read_records(path, ingestor=ingestor))
        assert loaded == records[:5]
        assert ingestor.stats.quarantined == 1
        assert ingestor.dead_letters[0].reason

    def test_strict_mode_raises_with_location(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("garbage line\n")
        with pytest.raises(ParseError, match="bad.txt:1"):
            list(read_records(path))

    def test_lenient_mode_skips(self, records, tmp_path):
        path = tmp_path / "mixed.txt"
        from repro.simlog.record import render_line

        path.write_text("garbage\n" + render_line(records[0]) + "\n")
        loaded = list(read_records(path, strict=False))
        assert loaded == [records[0]]

    def test_round_trip_generated_log(self, small_log, tmp_path):
        path = tmp_path / "system.log"
        subset = list(small_log.records[:300])
        write_log(path, subset)
        assert list(read_records(path)) == subset


class TestChronologicalSplit:
    def test_split_by_time_not_count(self):
        # 9 early records, 1 late: a 50% time split puts 9 in train.
        recs = [LogRecord(float(i), NODE, "k", "m") for i in range(9)]
        recs.append(LogRecord(1000.0, NODE, "k", "m"))
        train, test = chronological_split(recs, 0.5)
        assert len(train) == 9
        assert len(test) == 1

    def test_no_overlap(self, records):
        train, test = chronological_split(records, 0.3)
        assert len(train) + len(test) == len(records)
        assert max(r.timestamp for r in train) < min(r.timestamp for r in test)

    def test_unsorted_input_handled(self, records):
        shuffled = list(reversed(records))
        train, test = chronological_split(shuffled, 0.3)
        assert max(r.timestamp for r in train) < min(r.timestamp for r in test)

    def test_rejects_empty(self):
        with pytest.raises(DatasetError):
            chronological_split([], 0.3)

    def test_rejects_bad_fraction(self, records):
        with pytest.raises(DatasetError):
            chronological_split(records, 1.0)


class TestGroundTruthPersistence:
    def test_round_trip(self, small_log, tmp_path):
        path = tmp_path / "gt.json"
        save_ground_truth(path, small_log.ground_truth)
        loaded = load_ground_truth(path)
        original = small_log.ground_truth
        assert loaded.summary() == original.summary()
        assert loaded.failures[0] == original.failures[0]
        assert loaded.near_misses[0] == original.near_misses[0]
        assert loaded.maintenance[0].nodes == original.maintenance[0].nodes

    def test_load_missing_raises(self, tmp_path):
        with pytest.raises(SerializationError):
            load_ground_truth(tmp_path / "missing.json")

    def test_load_malformed_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"failures": [{"bogus": 1}]}')
        with pytest.raises(SerializationError):
            load_ground_truth(path)

    def test_loaded_failures_sorted(self, small_log, tmp_path):
        path = tmp_path / "gt.json"
        save_ground_truth(path, small_log.ground_truth)
        loaded = load_ground_truth(path)
        times = [f.terminal_time for f in loaded.failures]
        assert times == sorted(times)
