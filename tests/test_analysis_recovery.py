"""Tests for the recovery-action feasibility analysis (Section 4.6)."""

import pytest

from repro.analysis.evaluation import EpisodeKind, Evaluator, ScoredEpisode
from repro.analysis.recovery import (
    PAPER_ACTIONS,
    RecoveryAction,
    recovery_feasibility,
)
from repro.errors import ConfigError


class TestRecoveryAction:
    def test_paper_actions_present(self):
        names = [a.name for a in PAPER_ACTIONS]
        assert any("migration" in n for n in names)
        assert any("cloning" in n for n in names)

    def test_paper_costs_ordered(self):
        """Quarantine < migration < cloning < checkpoint (Section 4.6)."""
        costs = [a.required_seconds for a in PAPER_ACTIONS]
        assert costs == sorted(costs)

    def test_rejects_nonpositive_cost(self):
        with pytest.raises(ConfigError):
            RecoveryAction("x", 0.0)


class TestFeasibility:
    def test_fractions_on_real_results(self, trained_model, test_split):
        result = Evaluator(test_split.ground_truth).evaluate(
            trained_model.score(test_split.records)
        )
        rows = recovery_feasibility(result)
        assert len(rows) == len(PAPER_ACTIONS)
        fractions = [r.fraction for r in rows]
        # Monotone: cheaper actions are feasible at least as often.
        assert all(a >= b - 1e-9 for a, b in zip(fractions, fractions[1:]))
        # Quarantining (5s) must be feasible for the vast majority.
        assert rows[0].fraction > 0.8

    def test_percent_and_counts(self, trained_model, test_split):
        result = Evaluator(test_split.ground_truth).evaluate(
            trained_model.score(test_split.records)
        )
        row = recovery_feasibility(result)[0]
        assert row.percent == pytest.approx(100.0 * row.feasible / row.total)

    def test_empty_result(self):
        from repro.analysis.evaluation import EvaluationResult
        from repro.analysis.metrics import ConfusionCounts

        empty = EvaluationResult(
            scored=[], uncovered_failures=[], counts=ConfusionCounts()
        )
        rows = recovery_feasibility(empty)
        assert all(r.fraction == 0.0 for r in rows)

    def test_custom_actions(self, trained_model, test_split):
        result = Evaluator(test_split.ground_truth).evaluate(
            trained_model.score(test_split.records)
        )
        rows = recovery_feasibility(
            result, actions=(RecoveryAction("instant", 0.001),)
        )
        assert rows[0].fraction >= 0.99
