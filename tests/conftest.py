"""Shared fixtures.

The expensive artifacts (a generated log, a fitted parser, a trained
mini Desh model) are session-scoped so the whole suite pays for them
once.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import (
    DeshConfig,
    EmbeddingConfig,
    Phase1Config,
    Phase2Config,
    Phase3Config,
)
from repro.core import Desh
from repro.parsing import LogParser
from repro.simlog import (
    GeneratorConfig,
    LogGenerator,
    default_catalog,
    default_fault_model,
)
from repro.topology import ClusterTopology


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def small_topology() -> ClusterTopology:
    return ClusterTopology(
        cabinet_cols=2,
        cabinet_rows=1,
        chassis_per_cabinet=2,
        slots_per_chassis=2,
        nodes_per_blade=2,
    )


@pytest.fixture(scope="session")
def catalog():
    return default_catalog()


@pytest.fixture(scope="session")
def fault_model():
    return default_fault_model()


@pytest.fixture(scope="session")
def small_log(small_topology):
    """A small but complete generated log with all event kinds."""
    generator = LogGenerator(small_topology)
    config = GeneratorConfig(
        horizon=10 * 3600.0,
        failure_count=80,
        near_miss_ratio=0.5,
        maintenance_count=1,
        background_rate=1 / 180.0,
    )
    return generator.generate(config, np.random.default_rng(42))


@pytest.fixture(scope="session")
def fitted_parser(small_log) -> LogParser:
    parser = LogParser()
    parser.fit(small_log.records)
    return parser


@pytest.fixture(scope="session")
def mini_config() -> DeshConfig:
    """Small, fast configuration for end-to-end tests."""
    return DeshConfig(
        embedding=EmbeddingConfig(dim=12, epochs=1),
        phase1=Phase1Config(hidden_size=16, epochs=1, batch_size=128),
        phase2=Phase2Config(hidden_size=32, epochs=300, learning_rate=0.01),
        phase3=Phase3Config(),
        seed=7,
    )


@pytest.fixture(scope="session")
def trained_model(small_log, mini_config):
    """A trained Desh model over the small log's training split."""
    train, _ = small_log.split(0.3)
    return Desh(mini_config).fit(list(train.records), train_classifier=False)


@pytest.fixture(scope="session")
def test_split(small_log):
    _, test = small_log.split(0.3)
    return test
