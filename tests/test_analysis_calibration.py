"""Tests for automatic threshold calibration."""

import pytest

from repro.analysis import calibrate_threshold
from repro.analysis.calibration import DEFAULT_GRID
from repro.errors import ConfigError


@pytest.fixture(scope="module")
def validation_slice(trained_model, small_log):
    """The tail of the training window as a calibration slice."""
    train, _ = small_log.split(0.3)
    cut = small_log.config.horizon * 0.15
    records = [r for r in train.records if r.timestamp >= cut]
    parsed = trained_model.parse(records)
    sequences = [s for s in parsed.by_node().values() if s.node is not None]
    from repro.simlog.generator import GroundTruth

    truth = GroundTruth(
        failures=[
            f for f in train.ground_truth.failures if f.terminal_time >= cut
        ],
        near_misses=[
            m for m in train.ground_truth.near_misses if m.end_time >= cut
        ],
    )
    return sequences, truth


class TestCalibrateThreshold:
    def test_chooses_grid_value(self, trained_model, validation_slice):
        sequences, truth = validation_slice
        result = calibrate_threshold(
            trained_model.predictor, sequences, truth
        )
        assert result.threshold in DEFAULT_GRID
        assert len(result.points) == len(DEFAULT_GRID)

    def test_chosen_point_accessible(self, trained_model, validation_slice):
        sequences, truth = validation_slice
        result = calibrate_threshold(trained_model.predictor, sequences, truth)
        assert result.chosen_point.threshold == result.threshold

    def test_f1_choice_is_maximal(self, trained_model, validation_slice):
        sequences, truth = validation_slice
        result = calibrate_threshold(trained_model.predictor, sequences, truth)

        def f1(p):
            if p.recall + p.precision == 0:
                return 0.0
            return 2 * p.recall * p.precision / (p.recall + p.precision)

        best = max(f1(p) for p in result.points)
        assert f1(result.chosen_point) == pytest.approx(best)

    def test_fp_constrained_choice(self, trained_model, validation_slice):
        sequences, truth = validation_slice
        result = calibrate_threshold(
            trained_model.predictor, sequences, truth, max_fp_rate=10.0
        )
        assert result.chosen_point.fp_rate <= 10.0
        # Loosest qualifying threshold: every looser grid value violates.
        looser = [
            p for p in result.points if p.threshold > result.threshold
        ]
        assert all(p.fp_rate > 10.0 for p in looser)

    def test_impossible_fp_target_falls_back_tightest(
        self, trained_model, validation_slice
    ):
        sequences, truth = validation_slice
        result = calibrate_threshold(
            trained_model.predictor, sequences, truth, max_fp_rate=-1.0
        )
        assert result.threshold == min(DEFAULT_GRID)

    def test_rejects_empty_grid(self, trained_model, validation_slice):
        sequences, truth = validation_slice
        with pytest.raises(ConfigError):
            calibrate_threshold(
                trained_model.predictor, sequences, truth, grid=()
            )

    def test_calibrated_threshold_near_default(
        self, trained_model, validation_slice
    ):
        """The shipped default (2.0) must be in the calibrated ballpark —
        this is the codified version of the manual calibration recorded
        in DESIGN.md §2."""
        sequences, truth = validation_slice
        result = calibrate_threshold(trained_model.predictor, sequences, truth)
        assert 0.5 <= result.threshold <= 8.0
