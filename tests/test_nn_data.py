"""Tests for windowing and batching utilities."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ShapeError
from repro.nn.data import (
    batch_iterator,
    multi_step_targets,
    sliding_windows,
    sliding_windows_continuous,
    windows_from_sequences,
)


class TestSlidingWindows:
    def test_basic(self):
        x, y = sliding_windows(np.arange(6), history=3, steps=1)
        assert x.shape == (3, 3)
        assert np.array_equal(x[0], [0, 1, 2])
        assert np.array_equal(y[:, 0], [3, 4, 5])

    def test_multi_step(self):
        x, y = sliding_windows(np.arange(8), history=3, steps=2)
        assert y.shape == (4, 2)
        assert np.array_equal(y[0], [3, 4])

    def test_short_sequence_empty(self):
        x, y = sliding_windows(np.arange(3), history=3, steps=1)
        assert len(x) == 0 and len(y) == 0

    def test_exact_length_one_window(self):
        x, y = sliding_windows(np.arange(4), history=3, steps=1)
        assert len(x) == 1

    def test_rejects_2d(self):
        with pytest.raises(ShapeError):
            sliding_windows(np.ones((3, 2)), 2)

    def test_rejects_bad_params(self):
        with pytest.raises(ShapeError):
            sliding_windows(np.arange(5), history=0)

    @given(
        st.integers(1, 40).flatmap(
            lambda n: st.tuples(
                st.just(np.arange(n)), st.integers(1, 6), st.integers(1, 4)
            )
        )
    )
    def test_property_window_count(self, args):
        seq, history, steps = args
        x, y = sliding_windows(seq, history, steps)
        expected = max(0, len(seq) - history - steps + 1)
        assert len(x) == expected == len(y)

    @given(st.integers(5, 30), st.integers(1, 4))
    def test_property_windows_are_contiguous(self, n, history):
        seq = np.arange(n)
        x, y = sliding_windows(seq, history, 1)
        for i in range(len(x)):
            assert np.array_equal(x[i], seq[i : i + history])
            assert y[i, 0] == seq[i + history]


class TestSlidingWindowsContinuous:
    def test_shapes(self):
        seq = np.arange(20, dtype=float).reshape(10, 2)
        x, y = sliding_windows_continuous(seq, history=4, steps=1)
        assert x.shape == (6, 4, 2)
        assert y.shape == (6, 1, 2)

    def test_values(self):
        seq = np.arange(10, dtype=float).reshape(5, 2)
        x, y = sliding_windows_continuous(seq, history=2, steps=1)
        assert np.array_equal(x[0], seq[:2])
        assert np.array_equal(y[0, 0], seq[2])

    def test_rejects_1d(self):
        with pytest.raises(ShapeError):
            sliding_windows_continuous(np.arange(5), 2)


class TestMultiStepTargets:
    def test_split(self):
        y = np.arange(6).reshape(3, 2)
        cols = multi_step_targets(y, 2)
        assert len(cols) == 2
        assert np.array_equal(cols[0], [0, 2, 4])

    def test_rejects_wrong_width(self):
        with pytest.raises(ShapeError):
            multi_step_targets(np.ones((3, 2)), 3)


class TestWindowsFromSequences:
    def test_never_crosses_boundaries(self):
        """Windows must not mix events of different nodes."""
        a = np.zeros(10, dtype=int)
        b = np.ones(10, dtype=int)
        x, _ = windows_from_sequences([a, b], history=4, steps=1)
        for w in x:
            assert len(np.unique(w)) == 1

    def test_pools_all_sequences(self):
        x, _ = windows_from_sequences(
            [np.arange(10), np.arange(8)], history=3, steps=1
        )
        assert len(x) == (10 - 3) + (8 - 3)

    def test_skips_short_sequences(self):
        x, _ = windows_from_sequences([np.arange(10), np.arange(2)], history=3)
        assert len(x) == 7

    def test_all_short_returns_empty(self):
        x, y = windows_from_sequences([np.arange(2)], history=5)
        assert len(x) == 0

    def test_continuous_sequences(self):
        seqs = [np.ones((10, 2)), np.zeros((6, 2))]
        x, y = windows_from_sequences(seqs, history=3, steps=1)
        assert x.shape[1:] == (3, 2)

    def test_rejects_empty_list(self):
        with pytest.raises(ShapeError):
            windows_from_sequences([], history=3)

    def test_rejects_mixed_dims(self):
        with pytest.raises(ShapeError):
            windows_from_sequences([np.arange(5), np.ones((5, 2))], history=2)


class TestBatchIterator:
    def test_covers_all_indices(self):
        seen = np.concatenate(list(batch_iterator(10, 3)))
        assert sorted(seen.tolist()) == list(range(10))

    def test_unshuffled_is_ordered(self):
        batches = list(batch_iterator(6, 2))
        assert np.array_equal(np.concatenate(batches), np.arange(6))

    def test_shuffled_differs_but_covers(self, rng):
        seen = np.concatenate(list(batch_iterator(100, 10, rng)))
        assert sorted(seen.tolist()) == list(range(100))
        assert not np.array_equal(seen, np.arange(100))

    def test_shuffle_deterministic_per_seed(self):
        a = np.concatenate(list(batch_iterator(50, 7, np.random.default_rng(3))))
        b = np.concatenate(list(batch_iterator(50, 7, np.random.default_rng(3))))
        assert np.array_equal(a, b)

    def test_last_batch_may_be_short(self):
        sizes = [len(b) for b in batch_iterator(10, 4)]
        assert sizes == [4, 4, 2]

    def test_zero_items(self):
        assert list(batch_iterator(0, 4)) == []

    def test_rejects_bad_params(self):
        with pytest.raises(ShapeError):
            list(batch_iterator(-1, 4))
        with pytest.raises(ShapeError):
            list(batch_iterator(4, 0))
