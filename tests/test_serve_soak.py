"""Chaos-soak acceptance tests: the service's robustness contract.

Marked ``soak`` (deselect with ``-m 'not soak'``); CI runs them as a
dedicated short smoke-soak job with a hard per-job timeout.
"""

import pytest

from repro.serve import (
    AVAILABILITY_SLO,
    RECOVERY_SLO_SECONDS,
    ServeConfig,
    run_soak,
)
from repro.serve.soak import SoakReport
from repro.errors import ServeError
from repro.resilience import FaultProfile
from repro.simlog.record import render_line


@pytest.fixture(scope="module")
def soak_lines(test_split):
    return [render_line(r) for r in test_split.records][:2500]


@pytest.mark.soak
class TestCrashSoak:
    """Worker-crash injection: restarts, replay, bit-identity, SLO."""

    @pytest.fixture(scope="class")
    def report(self, trained_model, soak_lines):
        return run_soak(
            trained_model,
            soak_lines,
            "service-crash",
            seed=3,
            predict_every=8,
        )

    def test_no_unhandled_exceptions(self, report):
        assert report.unhandled_errors == []

    def test_crashes_were_injected_and_every_worker_restarted(self, report):
        assert report.crashes_injected > 0
        assert report.worker_restarts == report.crashes_injected
        assert report.workers_given_up == 0

    def test_load_is_shed_not_lost(self, report):
        assert report.lost == 0
        assert report.availability >= AVAILABILITY_SLO
        assert report.accepted == report.lines_sent - report.deduped

    def test_predictions_bit_identical_to_fault_free_run(self, report):
        assert report.bit_identical is True

    def test_recovery_under_slo(self, report):
        # Back-to-back crashes on the same item collapse into one
        # measured recovery interval, so the count is bounded by (not
        # necessarily equal to) the injected crash count.
        assert 1 <= len(report.recovery_times) <= report.crashes_injected
        assert report.max_recovery_seconds <= RECOVERY_SLO_SECONDS

    def test_report_serializes(self, report):
        out = report.as_dict()
        assert out["profile"] == "service-crash"
        assert out["bit_identical"] is True
        assert len(report.predict_latencies) > 0


@pytest.mark.soak
class TestStormSoak:
    """Crashes + stalls + bursts + line damage: shed, never error."""

    @pytest.fixture(scope="class")
    def report(self, trained_model, soak_lines):
        return run_soak(trained_model, soak_lines, "service-storm", seed=5)

    def test_no_unhandled_exceptions_and_nothing_lost(self, report):
        assert report.unhandled_errors == []
        assert report.lost == 0
        assert report.workers_given_up == 0

    def test_line_faults_preclude_bit_identity_assertion(self, report):
        assert report.bit_identical is None

    def test_service_faults_were_exercised(self, report):
        assert (
            report.stalls_injected + report.bursts_injected
            + report.crashes_injected
        ) > 0


class TestSoakHarness:
    def test_unknown_profile_rejected(self, trained_model):
        with pytest.raises(ServeError, match="unknown fault profile"):
            run_soak(trained_model, ["x"], "no-such-profile")

    def test_custom_profile_and_config(self, trained_model, soak_lines):
        report = run_soak(
            trained_model,
            soak_lines[:300],
            FaultProfile(crash_rate=0.3),
            seed=1,
            config=ServeConfig(
                num_shards=2,
                queue_depth=32,
                dedup_window=10_000,
            ),
            batch_size=32,
        )
        assert report.profile == "custom"
        assert report.crashes_injected > 0
        assert report.bit_identical is True
        assert report.unhandled_errors == []

    def test_null_report_properties(self):
        report = SoakReport(profile="none")
        assert report.availability == 1.0
        assert report.max_recovery_seconds == 0.0
