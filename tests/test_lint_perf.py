"""The deshlint perf family: P1-P3 rules, hotness profiles, ranking.

Each rule gets bad snippets that must fire and good snippets that must
stay silent — the perf rules are proof-based (reaching definitions +
provable kinds), so silence on anything unprovable is part of the
contract.  The profile half is covered by unit tests over
``HotnessProfile``/``apply_profile`` plus a golden end-to-end ranked
report driven through the CLI with a fixed trace fixture.
"""

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

import repro
from repro.lint import get_rules
from repro.lint.engine import lint_source, load_modules
from repro.lint.perf import (
    HotnessProfile,
    apply_profile,
    infer_kinds,
)
from repro.lint.perf.profile import LEVEL_ORDER

SRC_ROOT = Path(repro.__file__).resolve().parents[1]


def _lint(source: str, rules):
    return lint_source(
        textwrap.dedent(source), rules=get_rules(rules)
    )


def _doc(body: str) -> str:
    """Wrap a function body in a R5-quiet module."""
    return '"""Doc."""\n\nimport numpy as np\n\n__all__ = []\n\n' + body


class TestP1Vectorize:
    def test_element_loop_over_annotated_ndarray_fires(self):
        findings = _lint(
            '''
            """Doc."""

            import numpy as np

            __all__ = []


            def go(xs: np.ndarray) -> float:
                """Sum."""
                total = 0.0
                for x in xs:
                    total += float(x) * 2.0
                return total
            ''',
            ["P1"],
        )
        assert [f.rule for f in findings] == ["P1"]
        assert "element-by-element" in findings[0].message

    def test_enumerate_and_range_len_iteration_fire(self):
        for header, elem in (
            ("for i, x in enumerate(xs):", "x"),
            ("for i in range(len(xs)):", "xs[i]"),
        ):
            findings = _lint(
                f'''
                """Doc."""

                import numpy as np

                __all__ = []


                def go(xs: np.ndarray) -> list:
                    """Collect."""
                    out = []
                    {header}
                        out.append({elem} * 2.0)
                    return out
                ''',
                ["P1"],
            )
            assert [f.rule for f in findings] == ["P1"], header

    def test_scalar_ufunc_on_loop_slice_fires(self):
        findings = _lint(
            '''
            """Doc."""

            import numpy as np

            __all__ = []


            def go(m: np.ndarray) -> float:
                """Row sums."""
                total = 0.0
                for i in range(len(m)):
                    total += np.sum(m[i])
                return total
            ''',
            ["P1"],
        )
        assert [f.rule for f in findings] == ["P1"]
        assert "numpy.sum" in findings[0].message

    def test_growth_by_concatenation_fires(self):
        findings = _lint(
            '''
            """Doc."""

            import numpy as np

            __all__ = []


            def go(chunks: list) -> np.ndarray:
                """Accumulate."""
                acc = np.zeros(0)
                for chunk in chunks:
                    acc = np.append(acc, chunk)
                return acc
            ''',
            ["P1"],
        )
        assert [f.rule for f in findings] == ["P1"]
        assert "quadratic" in findings[0].message

    def test_loop_carried_recurrence_is_silent(self):
        """An unbatchable recurrence (h feeds the next step) must not fire."""
        findings = _lint(
            '''
            """Doc."""

            import numpy as np

            __all__ = []


            def go(x: np.ndarray, w: np.ndarray, u: np.ndarray) -> np.ndarray:
                """LSTM-ish unroll."""
                h = np.zeros(4)
                for t in range(len(x)):
                    h = np.tanh(x[t] @ w + h @ u)
                return h
            ''',
            ["P1"],
        )
        assert findings == []

    def test_constant_size_sliding_window_is_silent(self):
        """``concatenate`` over a *slice* of the target is not growth."""
        findings = _lint(
            '''
            """Doc."""

            import numpy as np

            __all__ = []


            def go(window: np.ndarray, steps: int) -> np.ndarray:
                """Autoregressive slide."""
                for _ in range(steps):
                    nxt = window[:, -1]
                    window = np.concatenate([window[:, 1:], nxt[:, None]], axis=1)
                return window
            ''',
            ["P1"],
        )
        assert findings == []

    def test_plain_list_iteration_is_silent(self):
        findings = _lint(
            '''
            """Doc."""

            __all__ = []


            def go(xs: list) -> float:
                """Sum a list (no ndarray in sight)."""
                total = 0.0
                for x in xs:
                    total += x * 2.0
                return total
            ''',
            ["P1"],
        )
        assert findings == []


class TestP2Hoist:
    def test_invariant_numpy_alloc_fires_with_operand_chain(self):
        findings = _lint(
            '''
            """Doc."""

            import numpy as np

            __all__ = []


            def go(xs: list, n: int) -> list:
                """Scale."""
                out = []
                for x in xs:
                    scratch = np.zeros(n)
                    out.append(x + scratch[0])
                return out
            ''',
            ["P2"],
        )
        assert [f.rule for f in findings] == ["P2"]
        assert "numpy.zeros" in findings[0].message
        assert "n (parameter)" in findings[0].message

    def test_invariant_dict_build_fires(self):
        findings = _lint(
            '''
            """Doc."""

            __all__ = []


            def go(xs: list, mode: str) -> list:
                """Tag."""
                out = []
                for x in xs:
                    opts = {"mode": mode, "strict": True}
                    out.append((x, opts))
                return out
            ''',
            ["P2"],
        )
        assert [f.rule for f in findings] == ["P2"]

    def test_ungated_fstring_logging_fires(self):
        findings = _lint(
            '''
            """Doc."""

            import logging

            __all__ = []

            log = logging.getLogger(__name__)


            def go(xs: list, run_id: str) -> None:
                """Chatter."""
                for x in xs:
                    log.debug(f"processing run {run_id}")
            ''',
            ["P2"],
        )
        assert [f.rule for f in findings] == ["P2"]
        assert "format" in findings[0].message

    def test_varying_alloc_and_mutated_buffer_are_silent(self):
        findings = _lint(
            '''
            """Doc."""

            import numpy as np

            __all__ = []


            def go(xs: list) -> list:
                """Per-item buffers."""
                out = []
                for i, x in enumerate(xs):
                    sized = np.zeros(i + 1)
                    scratch = np.zeros(4)
                    scratch[0] = x
                    out.append(sized.sum() + scratch.sum())
                return out
            ''',
            ["P2"],
        )
        assert findings == []

    def test_gated_and_lazy_logging_are_silent(self):
        findings = _lint(
            '''
            """Doc."""

            import logging

            __all__ = []

            log = logging.getLogger(__name__)


            def go(xs: list, run_id: str, verbose: bool) -> None:
                """Quiet chatter."""
                for x in xs:
                    log.debug("processing %s in run %s", x, run_id)
                    if verbose:
                        log.info(f"still on run {run_id}")
            ''',
            ["P2"],
        )
        assert findings == []


class TestP3Quadratic:
    def test_insert_front_fires(self):
        findings = _lint(
            '''
            """Doc."""

            __all__ = []


            def go(items: list) -> list:
                """Reverse the hard way."""
                out: list = []
                for item in items:
                    out.insert(0, item)
                return out
            ''',
            ["P3"],
        )
        assert [f.rule for f in findings] == ["P3"]
        assert "insert(0" in findings[0].message

    def test_membership_against_local_list_in_loop_fires(self):
        findings = _lint(
            '''
            """Doc."""

            __all__ = []


            def go(items: list) -> list:
                """Dedup quadratically."""
                seen: list = []
                out = []
                for item in items:
                    if item in seen:
                        continue
                    seen.append(item)
                    out.append(item)
                return out
            ''',
            ["P3"],
        )
        assert [f.rule for f in findings] == ["P3"]
        assert "set" in findings[0].message

    def test_str_accumulation_fires(self):
        findings = _lint(
            '''
            """Doc."""

            __all__ = []


            def go(parts: list) -> str:
                """Join the slow way."""
                text = ""
                for part in parts:
                    text += str(part)
                return text
            ''',
            ["P3"],
        )
        assert [f.rule for f in findings] == ["P3"]
        assert "join" in findings[0].message

    def test_ndarray_reassignment_accumulation_fires(self):
        findings = _lint(
            '''
            """Doc."""

            import numpy as np

            __all__ = []


            def go(rows: list, n: int) -> np.ndarray:
                """Accumulate full copies."""
                acc = np.zeros(n)
                for row in rows:
                    acc = acc + row
                return acc
            ''',
            ["P3"],
        )
        assert [f.rule for f in findings] == ["P3"]

    def test_set_membership_and_str_join_are_silent(self):
        findings = _lint(
            '''
            """Doc."""

            __all__ = []


            def go(items: list) -> str:
                """Dedup and join properly."""
                seen = set()
                parts: list = []
                for item in items:
                    if item in seen:
                        continue
                    seen.add(item)
                    parts.append(str(item))
                return "".join(parts)
            ''',
            ["P3"],
        )
        assert findings == []


class TestKindInference:
    def test_conflicting_kinds_drop_the_name(self):
        import ast

        from repro.lint.names import build_import_map

        tree = ast.parse(
            textwrap.dedent(
                '''
                def go():
                    x = []
                    x = ""
                    y = []
                '''
            )
        )
        fn = tree.body[0]
        kinds = infer_kinds(fn, build_import_map(tree, "snippet"))
        assert "x" not in kinds
        assert kinds["y"] == "list"

    def test_self_referential_rebind_keeps_kind(self):
        import ast

        from repro.lint.names import build_import_map

        tree = ast.parse(
            textwrap.dedent(
                '''
                def go(p):
                    s = ""
                    s = s + p
                    return s
                '''
            )
        )
        fn = tree.body[0]
        kinds = infer_kinds(fn, build_import_map(tree, "snippet"))
        assert kinds["s"] == "str"


class TestCfgLoopAnnotations:
    def test_blocks_carry_enclosing_loop_heads(self):
        import ast

        from repro.lint.flow.cfg import build_cfg

        tree = ast.parse(
            textwrap.dedent(
                '''
                def go(xs):
                    total = 0
                    for x in xs:
                        for y in x:
                            total += y
                    return total
                '''
            )
        )
        cfg = build_cfg(tree.body[0])
        depths = sorted({len(b.loops) for b in cfg.blocks})
        assert depths == [0, 1, 2]
        heads = [b for b in cfg.blocks if b.loops and b.loops[-1] == b.id]
        assert len(heads) == 2
        outer, inner = sorted(heads, key=lambda b: len(b.loops))
        # The inner loop's context lists the outer head first.
        inner_body = [b for b in cfg.blocks if len(b.loops) == 2]
        assert all(b.loops == (outer.id, inner.id) for b in inner_body)


class TestHotnessProfile:
    def test_load_merges_trace_jsonl_and_metrics_json(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        trace.write_text(
            '{"name": "phase3.prediction_ms", "duration": 0.5}\n'
            '{"name": "phase3.prediction_ms", "duration": 0.25}\n'
            '{"name": "unknown.span", "duration": 1.0}\n'
        )
        metrics = tmp_path / "metrics.json"
        metrics.write_text(
            json.dumps(
                {
                    "nn.classifier.epoch_ms": {
                        "type": "histogram",
                        "count": 3,
                        "sum": 1200.0,
                    },
                    "serve.requests": {"type": "counter", "value": 9},
                }
            )
        )
        profile = HotnessProfile.load([trace, metrics])
        assert profile.entries["phase3.prediction_ms"] == pytest.approx(750.0)
        assert profile.entries["nn.classifier.epoch_ms"] == pytest.approx(
            1200.0
        )
        assert "serve.requests" not in profile.entries
        ms, critical = profile.hotness(
            "repro.core.phase3.Phase3Predictor._score_episode"
        )
        assert ms == pytest.approx(750.0)
        assert critical
        # nn.model sits under both the predict and fit owner tables.
        ms, critical = profile.hotness("repro.nn.model.fit")
        assert ms == pytest.approx(1950.0)
        assert critical
        assert profile.hotness("repro.simlog.render") == (0.0, False)

    def test_apply_profile_ranks_and_escalates(self, tmp_path):
        hot = tmp_path / "repro"
        (hot / "core").mkdir(parents=True)
        for init in (hot / "__init__.py", hot / "core" / "__init__.py"):
            init.write_text('"""Pkg."""\n\n__all__ = []\n')
        (hot / "core" / "phase3.py").write_text(
            _doc(
                textwrap.dedent(
                    '''
                    def score(mses: np.ndarray, threshold: float) -> list:
                        """Filter."""
                        out = []
                        for m in mses:
                            out.append(m <= threshold)
                        return out
                    '''
                )
            )
        )
        (hot / "cold.py").write_text(
            _doc(
                textwrap.dedent(
                    '''
                    def fmt(parts: list) -> str:
                        """Concat."""
                        text = ""
                        for p in parts:
                            text += str(p)
                        return text
                    '''
                )
            )
        )
        modules, errors = load_modules([hot])
        assert not errors
        from repro.lint.engine import lint_modules

        report = lint_modules(modules, rules=get_rules(["P1", "P3"]))
        assert len(report.findings) == 2
        profile = HotnessProfile(
            {"phase3.prediction_ms": 750.0}
        )
        ranked = apply_profile(report.findings, modules, profile)
        assert ranked[0].qualified == "repro.core.phase3.score"
        assert ranked[0].finding.level == "error"
        assert ranked[0].finding.hotness_ms == pytest.approx(750.0)
        assert ranked[1].finding.level == "note"
        assert ranked[1].finding.hotness_ms == 0.0
        assert LEVEL_ORDER[ranked[0].finding.level] > LEVEL_ORDER["note"]


class TestGoldenRankedReport:
    def test_cli_ranked_report_is_pinned(self, tmp_path):
        """End-to-end golden: fixed tree + fixed profile -> fixed report."""
        # The shadow tree sits one level down so the subprocess (whose
        # sys.path[0] is the cwd) still imports the real repro package.
        pkg = tmp_path / "tree" / "repro"
        (pkg / "core").mkdir(parents=True)
        for init in (pkg / "__init__.py", pkg / "core" / "__init__.py"):
            init.write_text('"""Pkg."""\n\n__all__ = []\n')
        hot_path = pkg / "core" / "phase3.py"
        hot_path.write_text(
            '"""Doc."""\n'
            "\n"
            "import numpy as np\n"
            "\n"
            '__all__ = ["score"]\n'
            "\n"
            "\n"
            "def score(mses: np.ndarray, n: int) -> list:\n"
            '    """Filter."""\n'
            "    out = []\n"
            "    for m in mses:\n"
            "        scale = np.zeros(n)\n"
            "        out.append(float(m) + scale[0])\n"
            "    return out\n"
        )
        cold_path = pkg / "fmt.py"
        cold_path.write_text(
            '"""Doc."""\n'
            "\n"
            '__all__ = ["cat"]\n'
            "\n"
            "\n"
            "def cat(parts: list) -> str:\n"
            '    """Concat."""\n'
            '    text = ""\n'
            "    for p in parts:\n"
            "        text += str(p)\n"
            "    return text\n"
        )
        trace = tmp_path / "trace.jsonl"
        trace.write_text(
            '{"name": "phase3.prediction_ms", "duration": 0.75}\n'
            '{"name": "parse.fit", "duration": 0.2}\n'
        )
        run = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "lint",
                str(pkg),
                "--no-baseline",
                "--profile",
                str(trace),
            ],
            cwd=tmp_path,
            env={
                "PYTHONPATH": str(SRC_ROOT),
                "PYTHONHASHSEED": "0",
                "PATH": "/usr/bin:/bin",
            },
            capture_output=True,
            text=True,
        )
        assert run.returncode == 1, run.stderr
        expected = (
            f"error       750.0ms  {hot_path}:11:5: P1 loop iterates "
            "ndarray 'mses' element-by-element applying per-element "
            "operations in Python; replace with whole-array numpy ops "
            "(arange/masks/ufuncs)\n"
            f"error       750.0ms  {hot_path}:12:9: P2 loop-invariant "
            "numpy.zeros allocation rebuilt every iteration (assigned "
            "to 'scale'); hoist it above the loop — invariant "
            "operands: n (parameter)\n"
            f"note          0.0ms  {cold_path}:10:9: P3 string "
            "accumulation 'text' += ... in a loop copies the "
            "accumulated prefix every iteration (quadratic); collect "
            "parts in a list and ''.join once\n"
            "deshlint: 4 modules, 3 finding(s), 950.0ms profiled\n"
        )
        assert run.stdout == expected

    def test_min_level_error_gates_on_hot_findings_only(self, tmp_path):
        """Cold perf findings pass ``--min-level error``; hot ones fail."""
        pkg = tmp_path / "tree" / "repro"
        pkg.mkdir(parents=True)
        (pkg / "__init__.py").write_text('"""Pkg."""\n\n__all__ = []\n')
        (pkg / "fmt.py").write_text(
            _doc(
                textwrap.dedent(
                    '''
                    def cat(parts: list) -> str:
                        """Concat."""
                        text = ""
                        for p in parts:
                            text += str(p)
                        return text
                    '''
                )
            )
        )
        trace = tmp_path / "trace.jsonl"
        trace.write_text('{"name": "phase3.prediction_ms", "duration": 1.0}\n')
        base_cmd = [
            sys.executable,
            "-m",
            "repro.cli",
            "lint",
            str(pkg),
            "--no-baseline",
            "--profile",
            str(trace),
        ]
        env = {
            "PYTHONPATH": str(SRC_ROOT),
            "PATH": "/usr/bin:/bin",
        }
        gated = subprocess.run(
            base_cmd + ["--min-level", "error"],
            cwd=tmp_path,
            env=env,
            capture_output=True,
            text=True,
        )
        assert gated.returncode == 0, gated.stdout
        strict = subprocess.run(
            base_cmd,
            cwd=tmp_path,
            env=env,
            capture_output=True,
            text=True,
        )
        assert strict.returncode == 1
