"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main, save_model, load_predictor
from repro.config import DeshConfig
from repro.io import load_ground_truth, read_records, write_log


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_args(self):
        args = build_parser().parse_args(
            ["generate", "--system", "M2", "--seed", "5", "--out", "x.log"]
        )
        assert args.system == "M2"
        assert args.seed == 5

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bogus"])


class TestGenerateCommand:
    def test_writes_log_and_ground_truth(self, tmp_path):
        out = tmp_path / "m4.log.gz"
        gt = tmp_path / "m4.json"
        code = main(
            [
                "generate",
                "--system",
                "M4",
                "--seed",
                "3",
                "--out",
                str(out),
                "--ground-truth",
                str(gt),
            ]
        )
        assert code == 0
        records = list(read_records(out))
        assert records
        truth = load_ground_truth(gt)
        assert truth.failures


class TestModelPersistence:
    def test_save_and_load_predictor(self, trained_model, tmp_path):
        save_model(trained_model, tmp_path / "model")
        assert (tmp_path / "model" / "phase2.npz").exists()
        assert (tmp_path / "model" / "vocab.json").exists()
        meta = json.loads((tmp_path / "model" / "meta.json").read_text())
        assert meta["vocab_size"] == trained_model.phase2.scaler.vocab_size

        parser, predictor = load_predictor(tmp_path / "model", DeshConfig())
        assert predictor.scaler.max_lead_seconds == (
            trained_model.phase2.scaler.max_lead_seconds
        )

    def test_loaded_predictor_matches_original(
        self, trained_model, test_split, tmp_path
    ):
        """Verdicts from the persisted model agree with the live one."""
        save_model(trained_model, tmp_path / "model")
        _, predictor = load_predictor(tmp_path / "model", trained_model.config)
        parsed = trained_model.parse(test_split.records)
        sequences = [
            s for s in parsed.by_node().values() if s.node is not None
        ]
        live = trained_model.predictor.predict_sequences(sequences)
        loaded = predictor.predict_sequences(sequences)
        assert [(v.flagged, round(v.mse, 9)) for v in live] == [
            (v.flagged, round(v.mse, 9)) for v in loaded
        ]


class TestTrainPredictRoundTrip:
    def test_train_then_predict(self, small_log, tmp_path, capsys, monkeypatch):
        """The CLI train/predict flow runs end to end on a real file."""
        log_path = tmp_path / "train.log.gz"
        train, test = small_log.split(0.3)
        write_log(log_path, train.records)
        test_path = tmp_path / "test.log.gz"
        write_log(test_path, test.records)

        # Speed: shrink the default config for the CLI invocation.
        from repro import config as config_mod
        from repro.config import (
            DeshConfig,
            EmbeddingConfig,
            Phase1Config,
            Phase2Config,
        )

        small_cfg = DeshConfig(
            embedding=EmbeddingConfig(dim=12, epochs=1),
            phase1=Phase1Config(hidden_size=16, epochs=1, batch_size=128),
            phase2=Phase2Config(hidden_size=32, epochs=120, learning_rate=0.01),
            seed=7,
        )
        import repro.cli as cli_mod

        monkeypatch.setattr(cli_mod, "DeshConfig", lambda **kw: small_cfg)

        assert (
            main(
                [
                    "train",
                    "--log",
                    str(log_path),
                    "--model-dir",
                    str(tmp_path / "model"),
                ]
            )
            == 0
        )
        assert (
            main(
                [
                    "predict",
                    "--log",
                    str(test_path),
                    "--model-dir",
                    str(tmp_path / "model"),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "is expected to fail" in out

    def test_train_rejects_bad_fraction(self, small_log, tmp_path):
        log_path = tmp_path / "t.log"
        write_log(log_path, small_log.records[:100])
        code = main(
            [
                "train",
                "--log",
                str(log_path),
                "--fraction",
                "2.0",
                "--model-dir",
                str(tmp_path / "m"),
            ]
        )
        assert code == 2


class TestTraceCommand:
    def test_unknown_subcommand_exits_nonzero(self, capsys):
        assert main(["trace", "bogus"]) == 2
        err = capsys.readouterr().err
        assert "unknown subcommand" in err
        assert "bogus" in err

    def test_missing_subcommand_exits_nonzero(self, capsys):
        assert main(["trace"]) == 2
        assert "needs a subcommand" in capsys.readouterr().err

    def test_observability_commands_do_not_nest(self, capsys):
        assert main(["trace", "metrics", "generate"]) == 2
        assert "cannot nest" in capsys.readouterr().err
        assert main(["metrics", "trace", "generate"]) == 2
        assert "cannot nest" in capsys.readouterr().err

    def test_export_path_collision_exits_nonzero(self, tmp_path, capsys):
        out = tmp_path / "same.json"
        code = main(
            [
                "trace",
                "--trace-out",
                str(out),
                "--metrics-out",
                str(out),
                "generate",
                "--out",
                str(tmp_path / "x.log"),
            ]
        )
        assert code == 2
        assert "collide" in capsys.readouterr().err
        assert not out.exists()  # nothing ran, nothing written

    def test_export_path_must_not_be_a_directory(self, tmp_path, capsys):
        code = main(
            [
                "trace",
                "--trace-out",
                str(tmp_path),
                "generate",
                "--out",
                str(tmp_path / "x.log"),
            ]
        )
        assert code == 2
        assert "existing directory" in capsys.readouterr().err

    def test_traced_generate_prints_span_tree(self, tmp_path, capsys):
        spans_path = tmp_path / "spans.jsonl"
        code = main(
            [
                "trace",
                "--trace-out",
                str(spans_path),
                "generate",
                "--system",
                "M1",
                "--seed",
                "1",
                "--out",
                str(tmp_path / "m1.log.gz"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "repro.generate" in out
        assert "ms)" in out
        rows = [
            json.loads(line)
            for line in spans_path.read_text().splitlines()
        ]
        assert rows[0]["name"] == "repro.generate"


class TestMetricsCommand:
    def test_unknown_subcommand_exits_nonzero(self, capsys):
        assert main(["metrics", "bogus"]) == 2
        assert "unknown subcommand" in capsys.readouterr().err

    def test_metrics_json_snapshot_printed(self, tmp_path, capsys):
        code = main(
            [
                "metrics",
                "generate",
                "--system",
                "M1",
                "--seed",
                "1",
                "--out",
                str(tmp_path / "m1.log.gz"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        # generate records no metrics: the snapshot is an empty object
        assert out.rstrip().endswith("{}")

    def test_metrics_prom_export_to_file(
        self, small_log, tmp_path, capsys, monkeypatch
    ):
        log_path = tmp_path / "t.log"
        write_log(log_path, small_log.records[: len(small_log.records) // 2])
        snap_path = tmp_path / "metrics.prom"
        # Build a model quickly, then measure predict (the instrumented
        # ingest/parse/phase3 path) through the metrics wrapper.
        from repro.config import (
            DeshConfig,
            EmbeddingConfig,
            Phase1Config,
            Phase2Config,
        )

        small_cfg = DeshConfig(
            embedding=EmbeddingConfig(dim=12, epochs=1),
            phase1=Phase1Config(hidden_size=16, epochs=1, batch_size=128),
            phase2=Phase2Config(hidden_size=16, epochs=20, learning_rate=0.01),
            seed=7,
        )
        import repro.cli as cli_mod

        monkeypatch.setattr(cli_mod, "DeshConfig", lambda **kw: small_cfg)
        assert (
            main(
                [
                    "train",
                    "--log",
                    str(log_path),
                    "--no-cache",
                    "--model-dir",
                    str(tmp_path / "model"),
                ]
            )
            == 0
        )
        code = main(
            [
                "metrics",
                "--format",
                "prom",
                "--out",
                str(snap_path),
                "predict",
                "--log",
                str(log_path),
                "--model-dir",
                str(tmp_path / "model"),
            ]
        )
        assert code == 0
        text = snap_path.read_text()
        assert "# TYPE repro_phase3_episodes counter" in text
        assert "# TYPE repro_phase3_prediction_ms histogram" in text
        assert "wrote metrics snapshot" in capsys.readouterr().err
