"""Tests for static/dynamic masking (Table 2 semantics)."""

import pytest
from hypothesis import given, strategies as st

from repro.parsing.tokenizer import MASK, mask_message, tokenize


class TestMaskingRules:
    @pytest.mark.parametrize(
        "message,expected",
        [
            ("error code 0x5f3a21", f"error code {MASK}"),
            ("pid 2816 exited", f"pid {MASK} exited"),
            ("from 10.128.3.44 port 22", f"from {MASK} port {MASK}"),
            ("target snx1103-OST0004 ready", f"target {MASK} ready"),
            ("peer nid00123 down", f"peer {MASK} down"),
            ("device af:1f.3 reset", f"device {MASK} reset"),
            ("mount /lus/snx3 failed", f"mount {MASK} failed"),
            ("quiesce 20141216t162520 done", f"quiesce {MASK} done"),
            ("page f00abc123 corrected", f"page {MASK} corrected"),
        ],
    )
    def test_each_dynamic_kind(self, message, expected):
        assert mask_message(message) == expected

    def test_words_with_digits_inside_survive(self):
        """Identifiers like ipogif0 / MC0 are static, not dynamic."""
        assert mask_message("ipogif0: transmit ok") == "ipogif0: transmit ok"
        assert mask_message("EDAC MC0: ready") == "EDAC MC0: ready"

    def test_plain_text_unchanged(self):
        assert mask_message("Kernel panic - not syncing") == (
            "Kernel panic - not syncing"
        )

    def test_short_hex_words_survive(self):
        """English words over the hex alphabet must not be masked."""
        assert mask_message("dead beef face cafe") == "dead beef face cafe"

    def test_whitespace_normalized(self):
        assert mask_message("a   b\t c") == "a b c"

    def test_composite_before_decimal(self):
        """An IP must become one mask, not four masked octets."""
        assert mask_message("ip 10.128.1.2") == f"ip {MASK}"

    def test_idempotent(self):
        msg = "hwerr[2816]: error 0x5f00 at /lus/snx3"
        once = mask_message(msg)
        assert mask_message(once) == once

    @given(st.integers(0, 2**32 - 1), st.integers(100, 65535))
    def test_property_numbers_always_masked(self, a, b):
        assert mask_message(f"val {a} pid {b}") == f"val {MASK} pid {MASK}"


class TestTokenize:
    def test_tokens_are_masked(self):
        assert tokenize("code 0xff done") == ["code", MASK, "done"]

    def test_single_word(self):
        assert tokenize("cb_node_unavailable") == ["cb_node_unavailable"]

    def test_alignment_across_occurrences(self):
        a = tokenize("Killed process 123 (aprun)")
        b = tokenize("Killed process 99999 (aprun)")
        assert a == b
