"""Tests for the sharded PredictionService: ingest, predict, resume."""

import asyncio
import json

import pytest

from repro.core.phase3 import PartialScore
from repro.errors import ConfigError, PredictionError, ServeError
from repro.serve import PredictionService, ServeConfig
from repro.serve.breaker import BreakerConfig
from repro.simlog.record import render_line


@pytest.fixture
def lines(test_split):
    return [render_line(r) for r in test_split.records]


def _config(**overrides):
    base = dict(
        num_shards=2,
        queue_depth=64,
        backpressure_wait=0.02,
        drain_timeout=2.0,
        dedup_window=100_000,
    )
    base.update(overrides)
    return ServeConfig(**base)


def _monitor_states(service):
    return json.dumps(
        [shard.monitor.state_dict() for shard in service._shards],
        sort_keys=True,
    )


class TestIngest:
    def test_ingest_processes_lines_and_raises_alerts(
        self, trained_model, lines
    ):
        async def run():
            service = PredictionService(trained_model, _config())
            await service.start(restore=False)
            result = await service.ingest_lines(lines[:800])
            await service.stop(checkpoint=False)
            return service, result

        service, result = asyncio.run(run())
        assert result.accepted == 800
        assert result.shed == 0
        health = service.health()
        assert sum(s["lines_processed"] for s in health["shards"]) == 800
        assert health["alert_seq"] > 0
        assert service.alerts_since(0)

    def test_duplicate_lines_are_deduped(self, trained_model, lines):
        async def run():
            service = PredictionService(trained_model, _config())
            await service.start(restore=False)
            first = await service.ingest_lines(lines[:50])
            again = await service.ingest_lines(lines[:50])
            await service.stop(checkpoint=False)
            return first, again

        first, again = asyncio.run(run())
        assert first.deduped == 0
        assert again.deduped == 50
        assert again.accepted == 0

    def test_backpressure_then_shed_with_retry_after(
        self, trained_model, lines
    ):
        async def run():
            # A forever-stalling hook wedges the worker mid-item, so the
            # tiny queue fills and further batches must shed.
            config = _config(
                num_shards=1,
                queue_depth=2,
                backpressure_wait=0.01,
                drain_timeout=0.1,
            )
            service = PredictionService(
                trained_model, config, fault_hook=lambda s, i: 3600.0
            )
            await service.start(restore=False)
            results = [
                await service.ingest_lines(lines[i : i + 10])
                for i in range(0, 40, 10)
            ]
            await service.stop(checkpoint=False)
            return results

        results = asyncio.run(run())
        shed = [r for r in results if r.shed]
        assert shed, "full queue never shed load"
        assert all(r.retry_after is not None for r in shed)
        assert all(r.shed_lines for r in shed)

    def test_shed_lines_are_retryable_not_deduped(self, trained_model, lines):
        async def run():
            config = _config(
                num_shards=1,
                queue_depth=1,
                backpressure_wait=0.01,
                drain_timeout=0.1,
            )
            service = PredictionService(
                trained_model, config, fault_hook=lambda s, i: 3600.0
            )
            await service.start(restore=False)
            # The first batch wedges the stalled worker and pins the
            # depth-1 queue full, so the second batch must shed.
            filler = await service.ingest_lines(lines[:10])
            shed = await service.ingest_lines(lines[10:40])
            retry = await service.ingest_lines(shed.shed_lines)
            duplicate = await service.ingest_lines(lines[:10])
            await service.stop(checkpoint=False)
            return filler, shed, retry, duplicate

        filler, shed, retry, duplicate = asyncio.run(run())
        assert filler.accepted == 10
        assert shed.shed == 30 and shed.shed_lines
        # Shed lines were never recorded in the dedup window: the retry
        # is treated as a fresh admission attempt, not a duplicate...
        assert retry.deduped == 0
        assert retry.shed == 30
        # ...while re-sending *admitted* lines is deduplicated.
        assert duplicate.deduped == 10

    def test_sealed_service_sheds_everything(self, trained_model, lines):
        async def run():
            service = PredictionService(trained_model, _config())
            await service.start(restore=False)
            await service.stop(checkpoint=False)
            return await service.ingest_lines(lines[:10])

        result = asyncio.run(run())
        assert result.shed == 10
        assert result.accepted == 0
        assert result.retry_after is not None

    def test_concurrent_ingest_of_same_line_admits_it_once(
        self, trained_model, lines
    ):
        # Regression for the dedup check-then-act race: the window
        # membership test used to run before the backpressure await
        # while record() ran after it, so two concurrent batches
        # carrying the same line could both pass the check and both be
        # admitted.  reserve() now stages the digest before any await.
        async def run():
            config = _config(
                num_shards=1, queue_depth=2, backpressure_wait=1.0
            )
            service = PredictionService(trained_model, config)
            service._accepting = True  # ingest path without live workers
            queue = service._shards[0].queue
            # Fill the queue so both ingests block in offer_wait with
            # their dedup decision already made.
            assert queue.offer(("lines", [lines[1]]))
            assert queue.offer(("lines", [lines[2]]))
            first = asyncio.create_task(service.ingest_lines([lines[0]]))
            second = asyncio.create_task(service.ingest_lines([lines[0]]))
            await asyncio.sleep(0.05)
            queue.commit()  # open space for *both* waiters
            queue.commit()
            return await asyncio.gather(first, second)

        first, second = asyncio.run(run())
        assert first.accepted + second.accepted == 1
        assert first.deduped + second.deduped == 1
        assert first.shed + second.shed == 0


class TestPredict:
    def test_predict_over_live_service(self, trained_model, lines):
        async def run():
            service = PredictionService(trained_model, _config())
            await service.start(restore=False)
            await service.ingest_lines(lines[:800])
            # Ingest returns at enqueue time; wait for the workers to
            # drain so the monitors have open episodes to predict on.
            for _ in range(500):
                if not any(s.queue.depth for s in service._shards):
                    break
                await asyncio.sleep(0.01)
            nodes = []
            for shard in service._shards:
                nodes.extend(str(n) for n in shard.monitor.pending_nodes())
            answer = await service.predict(nodes[0], deadline_seconds=5.0)
            await service.stop(checkpoint=False)
            return answer

        answer = asyncio.run(run())
        assert answer["degraded"] is False
        assert answer["open_events"] > 0
        assert answer["lead_seconds"] >= 0.0

    def test_predict_deadline_expires_to_degraded_answer(
        self, trained_model, lines
    ):
        async def run():
            config = _config(
                num_shards=1, queue_depth=8, drain_timeout=0.1
            )
            service = PredictionService(
                trained_model, config, fault_hook=lambda s, i: 3600.0
            )
            await service.start(restore=False)
            await service.ingest_lines(lines[:5])
            answer = await service.predict(
                "c0-0c0s0n0", deadline_seconds=0.05
            )
            await service.stop(checkpoint=False)
            return answer

        answer = asyncio.run(run())
        assert answer["degraded"] is True
        assert answer["reason"] == "deadline-expired"

    def test_predict_with_open_breaker_degrades(self, trained_model):
        async def run():
            config = _config(num_shards=1)
            service = PredictionService(trained_model, config)
            shard = service._shards[0]
            for _ in range(shard.breaker.config.fail_threshold):
                shard.breaker.record_fault()
            assert shard.breaker.state == "open"
            await service.start(restore=False)
            answer = await service.predict("c0-0c0s0n0", deadline_seconds=2.0)
            await service.stop(checkpoint=False)
            return answer

        answer = asyncio.run(run())
        assert answer["degraded"] is True
        assert answer["reason"] == "breaker-open"

    def test_predict_bad_node_id_degrades(self, trained_model):
        async def run():
            service = PredictionService(trained_model, _config())
            await service.start(restore=False)
            answer = await service.predict("not-a-node", deadline_seconds=2.0)
            await service.stop(checkpoint=False)
            return answer

        answer = asyncio.run(run())
        assert answer["degraded"] is True
        assert answer["reason"] == "bad-node-id"

    def test_predict_rejects_nonpositive_deadline(self, trained_model):
        async def run():
            service = PredictionService(trained_model, _config())
            await service.start(restore=False)
            try:
                with pytest.raises(ConfigError):
                    await service.predict("c0-0c0s0n0", deadline_seconds=0.0)
            finally:
                await service.stop(checkpoint=False)

        asyncio.run(run())


class TestBreakerIntegration:
    def test_scoring_faults_trip_breaker_into_degraded_mode(
        self, trained_model, lines, monkeypatch
    ):
        def explode(units):
            # A failed batched forward is attributed per unit, exactly
            # like Phase3Predictor's fallback path.
            error = PredictionError("poisoned scorer")
            return [
                PartialScore(False, float("inf"), 0.0, error=error)
                for _ in units
            ]

        monkeypatch.setattr(
            trained_model.predictor, "score_partial_batch", explode
        )

        async def run():
            config = _config(
                num_shards=1,
                breaker=BreakerConfig(
                    fail_threshold=3, cooldown_items=1000,
                    half_open_successes=1,
                ),
            )
            service = PredictionService(trained_model, config)
            await service.start(restore=False)
            for i in range(0, 400, 40):
                await service.ingest_lines(lines[i : i + 40])
            await service.stop(checkpoint=False)
            return service

        service = asyncio.run(run())
        shard = service._shards[0]
        assert shard.breaker.state == "open"
        monitor = shard.monitor
        assert monitor.degraded_skips > 0
        assert monitor.status == "degraded"
        # Once open, the monitor was routed through forced degraded mode:
        # skips keep counting but scoring attempts stop growing.
        assert monitor.degraded_skips > monitor.scores_attempted


class TestCheckpointResume:
    def test_resume_is_bit_identical_to_uninterrupted_run(
        self, trained_model, lines, tmp_path
    ):
        config = _config(checkpoint_dir=str(tmp_path / "ckpt"))

        async def interrupted():
            service = PredictionService(trained_model, config)
            await service.start(restore=False)
            for i in range(0, 400, 100):
                await service.ingest_lines(lines[i : i + 100])
            path = await service.stop(checkpoint=True)
            assert path is not None
            resumed = PredictionService(trained_model, config)
            assert await resumed.start(restore=True) is True
            for i in range(400, 800, 100):
                await resumed.ingest_lines(lines[i : i + 100])
            await resumed.stop(checkpoint=False)
            return resumed

        async def uninterrupted():
            service = PredictionService(trained_model, config)
            await service.start(restore=False)
            for i in range(0, 800, 100):
                await service.ingest_lines(lines[i : i + 100])
            await service.stop(checkpoint=False)
            return service

        resumed = asyncio.run(interrupted())
        straight = asyncio.run(uninterrupted())
        assert _monitor_states(resumed) == _monitor_states(straight)
        assert resumed.dedup.state_dict() == straight.dedup.state_dict()

    def test_restore_rejects_shard_count_mismatch(
        self, trained_model, lines, tmp_path
    ):
        ckpt = str(tmp_path / "ckpt")

        async def run():
            service = PredictionService(
                trained_model, _config(checkpoint_dir=ckpt)
            )
            await service.start(restore=False)
            await service.ingest_lines(lines[:50])
            await service.stop(checkpoint=True)
            other = PredictionService(
                trained_model, _config(num_shards=4, checkpoint_dir=ckpt)
            )
            with pytest.raises(ServeError, match="shard"):
                await other.start(restore=True)

        asyncio.run(run())

    def test_start_without_checkpoint_restores_nothing(self, trained_model):
        async def run():
            service = PredictionService(trained_model, _config())
            restored = await service.start(restore=True)
            await service.stop(checkpoint=False)
            return restored

        assert asyncio.run(run()) is False


class TestLifecycleAndIntrospection:
    def test_worker_crash_is_restarted_and_item_replayed(
        self, trained_model, lines
    ):
        crashes = {"left": 2}

        def hook(_shard, _item):
            if crashes["left"] > 0:
                crashes["left"] -= 1
                from repro.errors import InjectedFaultError

                raise InjectedFaultError("injected")
            return None

        async def run():
            config = _config(num_shards=1)
            service = PredictionService(trained_model, config, fault_hook=hook)
            await service.start(restore=False)
            result = await service.ingest_lines(lines[:100])
            await service.stop(checkpoint=False)
            return service, result

        service, result = asyncio.run(run())
        assert result.accepted == 100
        assert service.supervisor.total_restarts == 2
        # The crashed item was replayed, not lost: all lines processed.
        assert service._shards[0].lines_processed == 100
        assert service.supervisor.recovery_times()

    def test_subscribers_get_alerts_and_shutdown_sentinel(
        self, trained_model, lines
    ):
        async def run():
            service = PredictionService(trained_model, _config())
            await service.start(restore=False)
            queue = service.subscribe()
            await service.ingest_lines(lines[:800])
            alert = await asyncio.wait_for(queue.get(), 10.0)
            await service.stop(checkpoint=False)
            # Shutdown drains remaining alerts, then posts the sentinel.
            while True:
                item = await asyncio.wait_for(queue.get(), 1.0)
                if item is None:
                    break
            return alert

        alert = asyncio.run(run())
        assert alert["node"]
        assert alert["seq"] >= 1

    def test_alerts_since_filters_by_sequence(self, trained_model, lines):
        async def run():
            service = PredictionService(trained_model, _config())
            await service.start(restore=False)
            await service.ingest_lines(lines[:800])
            await service.stop(checkpoint=False)
            return service

        service = asyncio.run(run())
        alerts = service.alerts_since(0)
        assert len(alerts) >= 2
        later = service.alerts_since(alerts[0]["seq"])
        assert len(later) == len(alerts) - 1

    def test_node_status_and_invalid_id(self, trained_model, lines):
        async def run():
            service = PredictionService(trained_model, _config())
            await service.start(restore=False)
            await service.ingest_lines(lines[:800])
            await service.stop(checkpoint=False)
            return service

        service = asyncio.run(run())
        assert service.node_status("zzz not a node") is None
        nodes = service._shards[0].monitor.pending_nodes()
        if nodes:
            status = service.node_status(str(nodes[0]))
            assert status["open_events"] > 0
            assert status["shard"] == 0

    def test_stop_drains_every_queue_before_cancelling_workers(
        self, trained_model, lines
    ):
        # Shutdown ordering contract: stop() closes the queues, joins
        # each one, and only then cancels the workers — so no worker is
        # ever cancelled while holding an uncommitted peek.  Observable
        # as: every admitted item is committed by the time stop()
        # returns, with nothing left queued.
        async def run():
            service = PredictionService(trained_model, _config())
            await service.start(restore=False)
            result = await service.ingest_lines(lines[:400])
            await service.stop(checkpoint=False)
            return service, result

        service, result = asyncio.run(run())
        assert result.accepted == 400
        for shard in service._shards:
            assert shard.queue.depth == 0
            assert shard.queue.committed == shard.queue.offered
        processed = sum(
            s["lines_processed"] for s in service.health()["shards"]
        )
        assert processed == 400

    def test_double_start_rejected(self, trained_model):
        async def run():
            service = PredictionService(trained_model, _config())
            await service.start(restore=False)
            try:
                with pytest.raises(ServeError):
                    await service.start(restore=False)
            finally:
                await service.stop(checkpoint=False)

        asyncio.run(run())

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            ServeConfig(num_shards=0)
        with pytest.raises(ConfigError):
            ServeConfig(queue_depth=0)
        with pytest.raises(ConfigError):
            ServeConfig(drain_batch_items=0)
        with pytest.raises(ConfigError):
            ServeConfig(backpressure_wait=-1.0)
        with pytest.raises(ConfigError):
            ServeConfig(dedup_window=-1)
        with pytest.raises(ConfigError):
            ServeConfig(alert_buffer=0)
        with pytest.raises(ConfigError):
            ServeConfig(checkpoint_keep=0)
