"""Tests for perplexity and top-k accuracy."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn.metrics import perplexity, topk_accuracy


class TestPerplexity:
    def test_uniform_equals_vocab_size(self):
        logits = np.zeros((10, 7))
        targets = np.arange(10) % 7
        assert perplexity(logits, targets) == pytest.approx(7.0)

    def test_perfect_prediction_is_one(self):
        logits = np.full((4, 5), -100.0)
        targets = np.array([0, 1, 2, 3])
        logits[np.arange(4), targets] = 100.0
        assert perplexity(logits, targets) == pytest.approx(1.0)

    def test_worse_model_higher_perplexity(self):
        rng = np.random.default_rng(0)
        targets = rng.integers(0, 5, 50)
        sharp = np.full((50, 5), -3.0)
        sharp[np.arange(50), targets] = 3.0
        blunt = np.zeros((50, 5))
        assert perplexity(sharp, targets) < perplexity(blunt, targets)

    @pytest.mark.parametrize(
        "logits,targets",
        [
            (np.zeros((3,)), np.zeros(3, dtype=int)),
            (np.zeros((3, 4)), np.zeros(2, dtype=int)),
            (np.zeros((3, 4)), np.zeros(3)),
            (np.zeros((0, 4)), np.zeros(0, dtype=int)),
            (np.zeros((3, 4)), np.array([0, 1, 9])),
        ],
    )
    def test_rejects_bad_inputs(self, logits, targets):
        with pytest.raises(ShapeError):
            perplexity(logits, targets)


class TestTopkAccuracy:
    def test_top1_equals_argmax_accuracy(self):
        rng = np.random.default_rng(1)
        logits = rng.standard_normal((30, 6))
        targets = rng.integers(0, 6, 30)
        top1 = topk_accuracy(logits, targets, 1)
        manual = float((np.argmax(logits, axis=1) == targets).mean())
        assert top1 == pytest.approx(manual)

    def test_full_k_is_one(self):
        rng = np.random.default_rng(2)
        logits = rng.standard_normal((10, 4))
        targets = rng.integers(0, 4, 10)
        assert topk_accuracy(logits, targets, 4) == 1.0

    def test_monotone_in_k(self):
        rng = np.random.default_rng(3)
        logits = rng.standard_normal((50, 8))
        targets = rng.integers(0, 8, 50)
        accs = [topk_accuracy(logits, targets, k) for k in range(1, 9)]
        assert all(a <= b + 1e-12 for a, b in zip(accs, accs[1:]))

    def test_rejects_bad_k(self):
        with pytest.raises(ShapeError):
            topk_accuracy(np.zeros((3, 4)), np.zeros(3, dtype=int), 0)
        with pytest.raises(ShapeError):
            topk_accuracy(np.zeros((3, 4)), np.zeros(3, dtype=int), 5)

    def test_rejects_empty(self):
        with pytest.raises(ShapeError):
            topk_accuracy(np.zeros((0, 4)), np.zeros(0, dtype=int), 1)
