"""Tests for the Drain-style template miner."""

import pytest

from repro.errors import TemplateMinerError
from repro.parsing.miner import MinedTemplate, TemplateMiner
from repro.parsing.tokenizer import MASK


class TestMinedTemplate:
    def test_similarity_identical(self):
        t = MinedTemplate(0, ["a", "b", "c"])
        assert t.similarity(["a", "b", "c"]) == 1.0

    def test_similarity_length_mismatch_is_zero(self):
        t = MinedTemplate(0, ["a", "b"])
        assert t.similarity(["a", "b", "c"]) == 0.0

    def test_mask_matches_anything(self):
        t = MinedTemplate(0, ["a", MASK, "c"])
        assert t.similarity(["a", "zzz", "c"]) == 1.0

    def test_absorb_generalizes(self):
        t = MinedTemplate(0, ["a", "b", "c"], count=1)
        t.absorb(["a", "x", "c"])
        assert t.tokens == ["a", MASK, "c"]
        assert t.count == 2

    def test_absorb_rejects_length_mismatch(self):
        t = MinedTemplate(0, ["a", "b"])
        with pytest.raises(TemplateMinerError):
            t.absorb(["a"])


class TestTemplateMiner:
    def test_identical_messages_one_template(self):
        miner = TemplateMiner()
        a = miner.add_message("Kernel panic - not syncing")
        b = miner.add_message("Kernel panic - not syncing")
        assert a is b
        assert len(miner) == 1
        assert b.count == 2

    def test_masked_variants_group(self):
        """Messages differing only in dynamic fields share one template."""
        miner = TemplateMiner()
        a = miner.add_message("Killed process 123 (aprun)")
        b = miner.add_message("Killed process 9999 (aprun)")
        assert a is b

    def test_different_lengths_never_group(self):
        miner = TemplateMiner()
        a = miner.add_message("one two three")
        b = miner.add_message("one two")
        assert a is not b

    def test_dissimilar_messages_split(self):
        miner = TemplateMiner(sim_threshold=0.6)
        a = miner.add_message("alpha beta gamma delta")
        b = miner.add_message("alpha zzz yyy xxx")
        assert a is not b

    def test_similar_tail_generalizes(self):
        miner = TemplateMiner(sim_threshold=0.5)
        a = miner.add_message("connect to host alpha failed now")
        b = miner.add_message("connect to host beta failed now")
        assert a is b
        assert MASK in a.tokens

    def test_match_does_not_mutate(self):
        miner = TemplateMiner()
        miner.add_message("stable message text")
        before = len(miner)
        found = miner.match("stable message text")
        assert found is not None
        assert len(miner) == before

    def test_match_unknown_returns_none(self):
        miner = TemplateMiner()
        miner.add_message("known message")
        assert miner.match("completely different number of tokens here") is None

    def test_template_ids_are_dense(self):
        miner = TemplateMiner()
        miner.fit(["a b c", "d e f", "g h i"])
        assert [t.template_id for t in miner.templates] == [0, 1, 2]

    def test_get_by_id(self):
        miner = TemplateMiner()
        t = miner.add_message("x y z")
        assert miner.get(t.template_id) is t

    def test_get_unknown_id_raises(self):
        with pytest.raises(TemplateMinerError):
            TemplateMiner().get(0)

    def test_empty_message_raises(self):
        with pytest.raises(TemplateMinerError):
            TemplateMiner().add_message("   ")

    def test_numeric_first_token_uses_wildcard_branch(self):
        """Unmasked high-cardinality tokens must not explode the tree."""
        miner = TemplateMiner(max_children=4)
        for i in range(20):
            miner.add_message(f"x{i}y same same same")
        # All 20 distinct leading tokens; tree must survive and match.
        assert miner.match("x3y same same same") is not None

    def test_fit_returns_self(self):
        miner = TemplateMiner()
        assert miner.fit(["a b"]) is miner

    @pytest.mark.parametrize(
        "kwargs",
        [{"depth": 0}, {"sim_threshold": 0.0}, {"sim_threshold": 1.5}, {"max_children": 0}],
    )
    def test_rejects_bad_params(self, kwargs):
        with pytest.raises(TemplateMinerError):
            TemplateMiner(**kwargs)

    def test_mines_full_catalog(self, catalog, rng):
        """Every catalog template becomes exactly one mined template."""
        miner = TemplateMiner()
        for t in catalog:
            for _ in range(3):
                miner.add_message(t.fill(rng))
        assert len(miner) == len(catalog)
