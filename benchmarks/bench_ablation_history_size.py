"""Ablation — history size (a Section 4.1 claim).

"Another reason for Desh's performance is the history window size is 5
to 8 in Desh.  More history improves accuracy consuming more time.
Reducing the history size to 3 brings down the accuracy by 10% to 14%."

The bench trains the phase-1 next-phrase classifier with history 8 and
history 3 on identical data and compares accuracies, asserting the drop
the paper reports (allowing a generous band — the exact drop depends on
the log mix).
"""

from __future__ import annotations

import numpy as np

from repro.analysis import render_table
from repro.nn.data import windows_from_sequences
from repro.nn.model import SequenceClassifier
from repro.nn.optimizers import SGD


def _train_with_history(sequences, vocab_size, history: int, epochs: int = 40):
    x, y = windows_from_sequences(sequences, history, 3)
    model = SequenceClassifier(
        vocab_size, embed_dim=32, hidden_size=64, num_layers=2, steps=3, seed=3
    )
    model.fit(
        x,
        y,
        epochs=epochs,
        batch_size=128,
        optimizer=SGD(1.0, momentum=0.9),
        rng=np.random.default_rng(4),
    )
    return model.accuracy(x, y)


def test_ablation_history_size(benchmark, capsys, m3_run):
    parsed = m3_run.model.parser.transform(m3_run.train.records)
    sequences = [
        s.phrase_ids() for s in parsed.by_node().values() if s.node is not None
    ]
    vocab_size = m3_run.model.num_phrases

    acc8 = _train_with_history(sequences, vocab_size, history=8)
    acc3 = _train_with_history(sequences, vocab_size, history=3)
    drop = 100.0 * (acc8 - acc3)

    with capsys.disabled():
        print()
        print(
            render_table(
                ["history", "3-step accuracy"],
                [[8, f"{100 * acc8:.1f}%"], [3, f"{100 * acc3:.1f}%"]],
                title=(
                    "Ablation — history size "
                    f"(paper: 8 -> 3 drops accuracy 10-14%; measured drop {drop:.1f}%)"
                ),
            )
        )

    # Paper's shape: a shorter history costs accuracy, materially.
    assert acc8 > acc3, f"history 8 ({acc8}) must beat history 3 ({acc3})"
    assert drop >= 4.0, f"expected a material accuracy drop, got {drop:.1f}%"

    # Benchmark the marginal cost of the longer unroll (Figure 10's
    # companion claim: more history, more time).
    model = SequenceClassifier(
        vocab_size, embed_dim=32, hidden_size=64, num_layers=2, steps=3, seed=0
    )
    model._fitted = True
    window = np.zeros((64, 8), dtype=np.int64)

    benchmark(lambda: model.predict_logits(window))
