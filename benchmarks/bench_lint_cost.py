"""Lint cost benchmark: a full-repo deshlint pass must stay cheap.

The self-lint gate runs in tier-1 CI on every push, so its wall time is
part of the edit-test loop.  Budget: one full pass over ``src/repro``
(~100 modules, all five rules, suppressions + baseline applied) in
under 5 seconds.  The R2 reachability pass is the only super-linear
piece — it builds a whole-project call graph — so the bench also prints
its share to catch a complexity regression early.
"""

from __future__ import annotations

import time
from pathlib import Path

import repro
from repro.lint import get_rules, lint_paths

BUDGET_SECONDS = 5.0
PACKAGE_DIR = Path(repro.__file__).resolve().parent


def _timed_lint(rules=None) -> "tuple[float, int]":
    start = time.perf_counter()
    report = lint_paths([PACKAGE_DIR], rules=rules)
    return time.perf_counter() - start, report.modules


def test_full_repo_lint_under_budget(capsys):
    # Warm-up pass so interpreter/bytecode costs don't pollute the number.
    _timed_lint()

    full_seconds, modules = _timed_lint()
    r2_seconds, _ = _timed_lint(rules=get_rules(["R2"]))
    local_seconds, _ = _timed_lint(rules=get_rules(["R1", "R3", "R4", "R5"]))

    with capsys.disabled():
        print()
        print(f"full lint (R1-R5)   {full_seconds:6.2f}s  ({modules} modules)")
        print(f"  R2 reachability   {r2_seconds:6.2f}s")
        print(f"  module-local      {local_seconds:6.2f}s")
        print(f"budget              {BUDGET_SECONDS:6.2f}s")

    assert modules > 90
    assert full_seconds < BUDGET_SECONDS, (
        f"full-repo lint took {full_seconds:.2f}s, budget is "
        f"{BUDGET_SECONDS:.1f}s"
    )
