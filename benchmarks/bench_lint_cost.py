"""Lint cost benchmark: a full-repo deshlint pass must stay cheap.

The self-lint gate runs in tier-1 CI on every push, so its wall time is
part of the edit-test loop.  Budget: one full pass over ``src/repro``
(~120 modules, all syntactic *and* dataflow rules, suppressions +
baseline applied) in under 15 seconds.  The super-linear pieces are
timed separately to catch complexity regressions early:

* the R2 reachability pass builds a whole-project call graph;
* the F1-F3 dataflow pass builds a CFG per function and iterates the
  shape domain to a fixpoint;
* the F4-F6 async pass adds the lockset fixpoint per coroutine plus a
  second call-graph walk rooted at every async def (F5).
"""

from __future__ import annotations

import time
from pathlib import Path

import repro
from repro.lint import all_rules, get_rules, lint_paths

BUDGET_SECONDS = 15.0
PACKAGE_DIR = Path(repro.__file__).resolve().parent

#: Rule ids by analysis family, kept in sync with Rule.category.
SYNTACTIC = ["R1", "R2", "R3", "R4", "R5"]
DATAFLOW = ["F1", "F2", "F3", "F4", "F5", "F6"]
#: The deshrace trio: the async-aware subset of the dataflow family.
ASYNC_RULES = ["F4", "F5", "F6"]


def _timed_lint(rules=None) -> "tuple[float, int]":
    start = time.perf_counter()
    report = lint_paths([PACKAGE_DIR], rules=rules)
    return time.perf_counter() - start, report.modules


def test_rule_family_constants_match_registry():
    by_category = {"syntactic": SYNTACTIC, "dataflow": DATAFLOW}
    registered = {}
    for rule in all_rules():
        registered.setdefault(rule.category, []).append(rule.id)
    assert registered == by_category
    assert set(ASYNC_RULES) <= set(DATAFLOW)


def test_full_repo_lint_under_budget(capsys):
    # Warm-up pass so interpreter/bytecode costs don't pollute the number.
    _timed_lint()

    full_seconds, modules = _timed_lint()
    syntactic_seconds, _ = _timed_lint(rules=get_rules(SYNTACTIC))
    dataflow_seconds, _ = _timed_lint(rules=get_rules(DATAFLOW))
    r2_seconds, _ = _timed_lint(rules=get_rules(["R2"]))
    f1_seconds, _ = _timed_lint(rules=get_rules(["F1"]))
    async_seconds, _ = _timed_lint(rules=get_rules(ASYNC_RULES))

    with capsys.disabled():
        print()
        print(f"full lint (R1-R5, F1-F6) {full_seconds:6.2f}s  ({modules} modules)")
        print(f"  syntactic (R1-R5)      {syntactic_seconds:6.2f}s")
        print(f"    R2 reachability      {r2_seconds:6.2f}s")
        print(f"  dataflow (F1-F6)       {dataflow_seconds:6.2f}s")
        print(f"    F1 shape fixpoint    {f1_seconds:6.2f}s")
        print(f"    F4-F6 async passes   {async_seconds:6.2f}s")
        print(f"budget                   {BUDGET_SECONDS:6.2f}s")

    assert modules > 90
    assert full_seconds < BUDGET_SECONDS, (
        f"full-repo lint took {full_seconds:.2f}s, budget is "
        f"{BUDGET_SECONDS:.1f}s"
    )
    # The dataflow pass must not dwarf the syntactic pass: it runs per
    # function, so a superlinear regression shows up here first.
    assert dataflow_seconds < BUDGET_SECONDS
    # The async trio alone must stay well inside the budget: F5 walks
    # the call graph once per coroutine root, which is the newest
    # superlinear surface.
    assert async_seconds < BUDGET_SECONDS
