"""Lint cost benchmark: a full-repo deshlint pass must stay cheap.

The self-lint gate runs in tier-1 CI on every push, so its wall time is
part of the edit-test loop.  Budget: one full pass over ``src/repro``
(~130 modules, syntactic *and* dataflow *and* perf rules, suppressions
+ baseline applied) in under 15 seconds.  The super-linear pieces are
timed separately to catch complexity regressions early:

* the R2 reachability pass builds a whole-project call graph;
* the F1-F3 dataflow pass builds a CFG per function and iterates the
  shape domain to a fixpoint;
* the F4-F6 async pass adds the lockset fixpoint per coroutine plus a
  second call-graph walk rooted at every async def (F5);
* the P1-P3 perf pass solves reaching definitions per function and
  replays them per statement for loop-invariance proofs.

Every registered rule is also timed *individually* over a single
pre-parsed module set, so a budget failure names the rules actually
responsible instead of just the family.
"""

from __future__ import annotations

import time
from pathlib import Path

import repro
from repro.lint import all_rules, get_rules, lint_paths
from repro.lint.engine import lint_modules, load_modules

BUDGET_SECONDS = 15.0
PACKAGE_DIR = Path(repro.__file__).resolve().parent

#: Rule ids by analysis family, kept in sync with Rule.category.
SYNTACTIC = ["R1", "R2", "R3", "R4", "R5"]
DATAFLOW = ["F1", "F2", "F3", "F4", "F5", "F6"]
PERF = ["P1", "P2", "P3"]
#: The deshrace trio: the async-aware subset of the dataflow family.
ASYNC_RULES = ["F4", "F5", "F6"]


def _timed_lint(rules=None) -> "tuple[float, int]":
    start = time.perf_counter()
    report = lint_paths([PACKAGE_DIR], rules=rules)
    return time.perf_counter() - start, report.modules


def _per_rule_seconds(modules) -> "dict[str, float]":
    """Wall seconds per registered rule over pre-parsed *modules*.

    Parsing is paid once up front (``load_modules``), so these numbers
    isolate each rule's analysis cost — the thing a complexity
    regression actually changes.
    """
    seconds: "dict[str, float]" = {}
    for rule in all_rules():
        start = time.perf_counter()
        lint_modules(modules, rules=get_rules([rule.id]))
        seconds[rule.id] = time.perf_counter() - start
    return seconds


def test_rule_family_constants_match_registry():
    by_category = {
        "syntactic": SYNTACTIC,
        "dataflow": DATAFLOW,
        "perf": PERF,
    }
    registered = {}
    for rule in all_rules():
        registered.setdefault(rule.category, []).append(rule.id)
    assert registered == by_category
    assert set(ASYNC_RULES) <= set(DATAFLOW)


def test_full_repo_lint_under_budget(capsys):
    # Warm-up pass so interpreter/bytecode costs don't pollute the number.
    _timed_lint()

    full_seconds, modules = _timed_lint()
    syntactic_seconds, _ = _timed_lint(rules=get_rules(SYNTACTIC))
    dataflow_seconds, _ = _timed_lint(rules=get_rules(DATAFLOW))
    perf_seconds, _ = _timed_lint(rules=get_rules(PERF))
    async_seconds, _ = _timed_lint(rules=get_rules(ASYNC_RULES))

    parsed, _errors = load_modules([PACKAGE_DIR])
    per_rule = _per_rule_seconds(parsed)
    slowest = sorted(per_rule, key=per_rule.get, reverse=True)

    with capsys.disabled():
        print()
        print(
            f"full lint (R/F/P)        {full_seconds:6.2f}s  "
            f"({modules} modules)"
        )
        print(f"  syntactic (R1-R5)      {syntactic_seconds:6.2f}s")
        print(f"  dataflow (F1-F6)       {dataflow_seconds:6.2f}s")
        print(f"    F4-F6 async passes   {async_seconds:6.2f}s")
        print(f"  perf (P1-P3)           {perf_seconds:6.2f}s")
        print("  per rule (parse excluded):")
        for rule_id in slowest:
            print(f"    {rule_id:<4}                 {per_rule[rule_id]:6.2f}s")
        print(f"budget                   {BUDGET_SECONDS:6.2f}s")

    top3 = ", ".join(
        f"{rule_id}={per_rule[rule_id]:.2f}s" for rule_id in slowest[:3]
    )
    assert modules > 90
    assert full_seconds < BUDGET_SECONDS, (
        f"full-repo lint took {full_seconds:.2f}s, budget is "
        f"{BUDGET_SECONDS:.1f}s; slowest rules: {top3}"
    )
    # No family may dwarf the budget on its own: each pass runs per
    # function, so a superlinear regression shows up here first — the
    # assertion message names the individual rules responsible.
    assert dataflow_seconds < BUDGET_SECONDS, f"slowest rules: {top3}"
    assert async_seconds < BUDGET_SECONDS, f"slowest rules: {top3}"
    assert perf_seconds < BUDGET_SECONDS, f"slowest rules: {top3}"
