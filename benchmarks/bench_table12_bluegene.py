"""Table 12 — severity keywords do not determine abnormality.

The paper's Table 12 shows BlueGene/L messages whose logged severity
("Info", "fatal") contradicts their actual normal/abnormal role, which
is why Desh ignores severity levels ("We do not consider the log
severity levels even if present", Section 3.1).  The bench verifies the
same property holds in our label catalog: the presence of severity-like
keywords in a phrase neither implies nor precludes the Error label.
"""

from __future__ import annotations

import re

from repro.analysis import render_table
from repro.events import Label
from repro.parsing.labeling import default_labeler


SEVERITY_RE = re.compile(r"error|warn|fatal|critical", re.IGNORECASE)


def test_table12_severity_vs_label(benchmark, capsys, m3_run):
    parser = m3_run.model.parser
    labeler = default_labeler()

    contradiction_a = []  # severity keyword present, NOT labeled Error
    contradiction_b = []  # labeled Error, no severity keyword at all
    for pid in range(parser.num_phrases):
        phrase = parser.vocab.text_of(pid)
        label = parser.phrase_label(pid)
        has_kw = bool(SEVERITY_RE.search(phrase))
        if has_kw and label != Label.ERROR:
            contradiction_a.append((phrase, label))
        if label == Label.ERROR and not has_kw:
            contradiction_b.append((phrase, label))

    rows = []
    for phrase, label in contradiction_a[:4]:
        rows.append([phrase[:48], "severity keyword", label])
    for phrase, label in contradiction_b[:4]:
        rows.append([phrase[:48], "no severity keyword", label])
    with capsys.disabled():
        print()
        print(
            render_table(
                ["Log phrase", "surface severity", "actual label"],
                rows,
                title="Table 12 (analog) — severity keywords vs actual labels",
            )
        )
        print(
            f"{len(contradiction_a)} phrases carry severity keywords but are "
            f"not failure indicators; {len(contradiction_b)} failure "
            f"indicators carry no severity keyword."
        )

    # Observation 6 / Table 12: both contradiction classes are non-empty,
    # i.e. a severity-keyword classifier cannot reproduce the labels.
    assert contradiction_a, "some severity-tagged phrases must be benign/unknown"
    assert contradiction_b, "some failure indicators must lack severity tags"

    # Literal Table-12 reproduction: render records in BlueGene RAS format
    # and show the severity column contradicting the actual role.
    from repro.simlog.bluegene import render_bluegene_line, severity_for

    samples = []
    for record in m3_run.train.records:
        sev = severity_for(record)
        if sev == "INFO" and "Corrected" in record.message:
            samples.append((render_bluegene_line(record), "Abnormal (chain evidence)"))
        if sev == "FATAL" and "Wait4Boot" in record.message:
            samples.append((render_bluegene_line(record), "Normal (boot chatter)"))
        if len(samples) >= 4:
            break
    with capsys.disabled():
        print("\nBlueGene-format rendering (Table 12 literal):")
        for line, role in samples:
            print(f"  {line[:86]}  <- {role}")
    assert any("INFO" in line for line, _ in samples)

    phrases = [parser.vocab.text_of(pid) for pid in range(parser.num_phrases)] * 30

    benchmark(lambda: labeler.label_many(phrases))
