"""Extension — rolling-origin robustness of the single-split evaluation.

The paper reports one chronological 30/70 split per system.  This bench
slides the training origin forward on M4 (the smallest preset) and
checks that the headline metrics are not an artifact of where the cut
fell: every fold must stay within a sane band, and later origins (more
training failures) must not degrade recall catastrophically.
"""

from __future__ import annotations

from repro import DeshConfig, generate_system
from repro.analysis import render_table, rolling_origin_evaluation


def test_ext_rolling_origin(benchmark, capsys):
    log = generate_system("M4", seed=2018)
    folds = rolling_origin_evaluation(
        log,
        DeshConfig(),
        origins=(0.3, 0.5),
        test_window_fraction=0.3,
    )

    rows = [
        [
            f"{fold.train_end / 3600:.1f}h",
            f"{fold.test_end / 3600:.1f}h",
            fold.num_train_failures,
            fold.num_test_failures,
            f"{fold.metrics.recall:.1f}",
            f"{fold.metrics.precision:.1f}",
            f"{fold.avg_lead_seconds:.0f}s",
        ]
        for fold in folds
    ]
    with capsys.disabled():
        print()
        print(
            render_table(
                ["train end", "test end", "train fails", "test fails", "recall%", "prec%", "lead"],
                rows,
                title="Extension — rolling-origin evaluation on M4",
            )
        )

    assert len(folds) == 2
    for fold in folds:
        assert fold.metrics.recall >= 60.0, f"fold collapsed: {fold}"
        assert fold.metrics.precision >= 60.0, f"fold collapsed: {fold}"

    # Benchmark the fold slicing machinery (not the training).
    from repro.analysis.crossval import _slice_truth

    benchmark(lambda: _slice_truth(log.ground_truth, 0.0, log.config.horizon / 2))
