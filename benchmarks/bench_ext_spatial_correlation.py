"""Extension — cabinet-level spatial correlation of failures.

Section 4.3 cites Gupta et al. (DSN'15): "node failure correlation is
higher within the same cabinet than a blade".  With cascade injection
enabled, the generator reproduces that structure, the spatial analysis
recovers it, and Desh's *predicted* failures inherit the correlation —
i.e. the predictions carry enough location fidelity to support
cabinet-level quarantine policies.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import render_table, spatial_correlation
from repro.simlog import GeneratorConfig, LogGenerator
from repro.topology import ClusterTopology


def test_ext_spatial_correlation(benchmark, capsys):
    topo = ClusterTopology(
        cabinet_cols=4,
        cabinet_rows=1,
        chassis_per_cabinet=2,
        slots_per_chassis=2,
        nodes_per_blade=2,
    )
    gen = LogGenerator(topo)
    base = dict(
        horizon=12 * 3600.0,
        failure_count=60,
        near_miss_ratio=0.0,
        maintenance_count=0,
    )
    rows = []
    ratios = {}
    for prob in (0.0, 0.3, 0.6):
        log = gen.generate(
            GeneratorConfig(cascade_prob=prob, **base), np.random.default_rng(17)
        )
        corr = spatial_correlation(log.ground_truth.failures, topo)
        ratios[prob] = corr.correlation_ratio
        rows.append(
            [
                f"{prob:.1f}",
                len(log.ground_truth.failures),
                corr.close_pairs,
                corr.same_cabinet_pairs,
                f"{corr.expected_same_cabinet_rate:.2f}",
                f"{corr.correlation_ratio:.2f}",
            ]
        )
    with capsys.disabled():
        print()
        print(
            render_table(
                [
                    "cascade p",
                    "failures",
                    "close pairs",
                    "same cabinet",
                    "expected rate",
                    "corr ratio",
                ],
                rows,
                title="Extension — cabinet-level failure correlation "
                "(Gupta et al. DSN'15 via Section 4.3)",
            )
        )

    # Shape: cascades raise the correlation ratio monotonically, and the
    # cascading configurations sit clearly above independence (ratio 1).
    assert ratios[0.6] > ratios[0.3] >= ratios[0.0]
    assert ratios[0.6] > 1.5

    failures = gen.generate(
        GeneratorConfig(cascade_prob=0.6, **base), np.random.default_rng(18)
    ).ground_truth.failures

    benchmark(lambda: spatial_correlation(failures, topo))
