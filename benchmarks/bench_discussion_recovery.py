"""Section 4.6 ("Discussion") — are the predicted lead times sufficient?

The paper argues its ~minutes-scale warnings suffice for the proactive
mitigations in the literature: job quarantine, process-level live
migration (13-24s), DINO node cloning (90s), lazy checkpointing.  This
bench computes, per action, the fraction of correctly predicted failures
whose lead time actually covers the action, and asserts the paper's
conclusion: the cheap mitigations are almost always feasible.
"""

from __future__ import annotations

from repro.analysis import recovery_feasibility, render_table


def test_discussion_recovery_feasibility(benchmark, capsys, system_runs):
    rows = []
    all_fracs: dict[str, list[float]] = {}
    for name, run in system_runs.items():
        for fr in recovery_feasibility(run.result):
            all_fracs.setdefault(fr.action.name, []).append(fr.fraction)
            rows.append(
                [
                    name,
                    fr.action.name,
                    f"{fr.action.required_seconds:.0f}s",
                    f"{fr.feasible}/{fr.total}",
                    f"{fr.percent:.0f}%",
                ]
            )
    with capsys.disabled():
        print()
        print(
            render_table(
                ["Sys", "proactive action", "needs", "feasible", "coverage"],
                rows,
                title="Section 4.6 — recovery actions covered by predicted lead times",
            )
        )

    # Paper's conclusion: quarantine + live migration are covered for the
    # overwhelming majority of predicted failures on every system.
    for name, fracs in all_fracs.items():
        if "quarantine" in name:
            assert min(fracs) > 0.85, f"{name}: {fracs}"
        if "migration" in name:
            assert min(fracs) > 0.6, f"{name}: {fracs}"

    run = system_runs["M3"]

    benchmark(lambda: recovery_feasibility(run.result))
