"""Figure 8 — lead time vs false-positive-rate sensitivity.

Paper shape: pushing flags earlier buys longer lead times at the cost of
a rising FP rate ("FP 18-30% -> 105-196s lead; beyond 4 minutes the FP
rate climbs to 39-44%").  The sweep varies the flag position (how many
anomalous events must be seen before flagging) and the MSE threshold;
the curve must be monotone: longer average lead comes with an FP rate
at least as high.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import render_table, sensitivity_sweep


def test_fig8_sensitivity(benchmark, capsys, m3_run):
    sequences = m3_run.sequences
    predictor = m3_run.model.predictor

    points = sensitivity_sweep(
        predictor,
        sequences,
        m3_run.test.ground_truth,
        flag_positions=(0, 1, 2, 3),
        mse_thresholds=(2.0, 5.0),
    )

    rows = [
        [
            p.flag_position,
            p.mse_threshold,
            f"{p.avg_lead_seconds:.1f}",
            f"{p.fp_rate:.1f}",
            f"{p.recall:.1f}",
        ]
        for p in points
    ]
    with capsys.disabled():
        print()
        print(
            render_table(
                ["flag pos", "threshold", "avg lead (s)", "FP rate%", "recall%"],
                rows,
                title="Figure 8 — lead time vs FP rate "
                "(earlier flags: longer leads, more FPs)",
            )
        )

    # Within each threshold, earlier flag positions give >= lead time.
    for threshold in (2.0, 5.0):
        series = [p for p in points if p.mse_threshold == threshold]
        series.sort(key=lambda p: p.flag_position)
        leads = [p.avg_lead_seconds for p in series]
        assert all(
            a >= b - 1e-9 for a, b in zip(leads, leads[1:])
        ), f"lead must shrink with later flags: {leads}"
    # Loosening the threshold (2.0 -> 5.0) must not reduce the FP rate
    # at the most aggressive flag position.
    fp_tight = next(p for p in points if p.mse_threshold == 2.0 and p.flag_position == 0)
    fp_loose = next(p for p in points if p.mse_threshold == 5.0 and p.flag_position == 0)
    assert fp_loose.fp_rate >= fp_tight.fp_rate - 1e-9

    benchmark(
        lambda: sensitivity_sweep(
            predictor,
            sequences,
            m3_run.test.ground_truth,
            flag_positions=(1,),
            mse_thresholds=(2.0,),
        )
    )
