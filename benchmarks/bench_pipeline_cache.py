"""Pipeline cache benchmark: cold train vs warm Phase-2-only re-train.

Measures the payoff of the staged artifact store on the M3 system:

* **cold** — empty store, every stage (parse, embeddings, phase-1 LSTM,
  chain extraction, phase-2 regressor, classifier, phase-3 spec) runs;
* **warm re-train** — same config, everything served from cache;
* **phase-2 edit** — only the phase-2/phase-3 stages re-run; the parse,
  embedding, phase-1 and chain artifacts are reused from disk.

The acceptance bar: a warm Phase-2-only re-train must be at least 3x
faster than the cold train, since parsing, the embeddings and the
phase-1 LSTM all cache-hit.

The bench uses one fixed config for *all* runs (cold, warm and edited),
so the reported ratios compare identical per-stage workloads; it trims
the phase-2 epoch count from the paper default of 400 so the phase-1
vs phase-2 cost split mirrors the paper's full-size systems, where the
per-node phrase LSTM dominates training.
"""

from __future__ import annotations

import dataclasses
import time

from repro import Desh, DeshConfig, generate_system
from repro.config import Phase2Config
from repro.pipeline import DeshPipeline

SEED = 2018
BENCH_CONFIG = DeshConfig(phase2=Phase2Config(epochs=120))


def _timed_run(config: DeshConfig, records, cache_dir):
    pipeline = DeshPipeline(config, train_classifier=True, cache_dir=cache_dir)
    start = time.perf_counter()
    result = pipeline.run(records)
    return time.perf_counter() - start, result


def test_pipeline_cache_speedup(benchmark, capsys, tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("pipeline-cache")
    log = generate_system("M3", seed=SEED)
    train, test = log.split(0.3)
    records = list(train.records)
    config = BENCH_CONFIG

    cold_seconds, cold = _timed_run(config, records, cache_dir)
    warm_seconds, warm = _timed_run(config, records, cache_dir)

    edited = dataclasses.replace(
        config,
        phase2=dataclasses.replace(config.phase2, learning_rate=0.002),
    )
    phase2_seconds, phase2_run = _timed_run(edited, records, cache_dir)

    with capsys.disabled():
        print()
        print(f"cold train          {cold_seconds:8.2f}s  "
              f"(misses: {', '.join(cold.cache_misses)})")
        print(f"warm re-train       {warm_seconds:8.2f}s  "
              f"({len(warm.cache_hits)}/7 stages cached, "
              f"{cold_seconds / max(warm_seconds, 1e-9):.0f}x)")
        print(f"phase-2-only edit   {phase2_seconds:8.2f}s  "
              f"(re-ran: {', '.join(phase2_run.cache_misses)}, "
              f"{cold_seconds / max(phase2_seconds, 1e-9):.1f}x)")

    # Cold fills the store; warm serves everything from it.
    assert set(cold.cache_misses) == {
        "parse", "embeddings", "phase1", "chains",
        "phase2", "classifier", "phase3",
    }
    assert warm.cache_misses == []
    # A Phase-2 edit re-runs exactly phase2 + phase3.
    assert set(phase2_run.cache_misses) == {"phase2", "phase3"}
    # Acceptance bar: warm Phase-2-only re-train >= 3x faster than cold.
    assert phase2_seconds * 3.0 <= cold_seconds, (
        f"phase-2-only re-train {phase2_seconds:.2f}s not 3x faster "
        f"than cold {cold_seconds:.2f}s"
    )
    assert warm_seconds * 3.0 <= cold_seconds

    # The cached model still predicts: sanity-check the assembled model.
    model = Desh(config).fit(records, cache_dir=str(cache_dir))
    verdicts = model.score(list(test.records)[:20000])
    assert verdicts, "cached model produced no episode verdicts"

    benchmark(lambda: DeshPipeline(config, cache_dir=cache_dir).run(records))
