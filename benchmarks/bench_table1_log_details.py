"""Table 1 — log details of the four studied systems.

Reproduces the Table 1 inventory (duration, size, scale, machine type)
for the paper's machines alongside our scaled substitutes, and
benchmarks synthetic-log generation throughput.
"""

from __future__ import annotations

import numpy as np

from repro import generate_system
from repro.analysis import render_table
from repro.simlog.record import render_line
from repro.simlog.systems import SYSTEM_PRESETS


def test_table1_log_details(benchmark, capsys):
    logs = {name: generate_system(name, seed=1) for name in SYSTEM_PRESETS}

    rows = []
    for name, preset in SYSTEM_PRESETS.items():
        log = logs[name]
        size_mb = sum(len(render_line(r)) + 1 for r in log.records) / 1e6
        rows.append(
            [
                name,
                preset.paper_duration,
                preset.paper_size,
                preset.paper_nodes,
                preset.machine_type,
                f"{log.config.horizon / 3600:.0f}h",
                f"{size_mb:.2f}MB",
                preset.scaled_nodes,
                len(log.records),
            ]
        )
    with capsys.disabled():
        print()
        print(
            render_table(
                [
                    "Sys",
                    "paper dur",
                    "paper size",
                    "paper nodes",
                    "type",
                    "sim dur",
                    "sim size",
                    "sim nodes",
                    "records",
                ],
                rows,
                title="Table 1 — log details (paper vs scaled reproduction)",
            )
        )

    # Scale orderings of the paper must survive the scaling.
    scaled = {r[0]: r[7] for r in rows}
    assert scaled["M2"] > scaled["M1"] > scaled["M3"] >= scaled["M4"]

    benchmark(lambda: generate_system("M4", seed=2))
