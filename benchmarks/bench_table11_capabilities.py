"""Table 11 — Desh vs DeepLog capability matrix.

Rather than quoting the paper's checklist, this bench *verifies* each
capability against the implementations: Desh yields lead times, node
locations and sequence-level anomalies; the DeepLog baseline detects
per-entry anomalies with no lead-time model.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import render_table
from repro.baselines import DeepLogDetector
from repro.core.alerts import FailureWarning


def test_table11_capabilities(benchmark, capsys, m3_run):
    model = m3_run.model
    predictions = model.predict(m3_run.test.records)
    assert predictions

    # Desh: lead times + exact component location from the node id.
    desh_has_lead = all(p.lead_seconds >= 0.0 for p in predictions)
    sample_warning = FailureWarning.from_prediction(predictions[0])
    desh_has_location = "cabinet" in sample_warning.message()
    # Desh: sequence-level anomaly — verdicts carry whole episodes.
    verdicts = model.score(m3_run.test.records)
    desh_sequence_level = all(len(v.episode) >= 1 for v in verdicts)

    # DeepLog baseline: per-entry anomalies, no lead-time model.
    train_parsed = model.parser.transform(m3_run.train.records)
    id_sequences = [
        s.phrase_ids() for s in train_parsed.by_node().values() if s.node is not None
    ]
    deeplog = DeepLogDetector(model.num_phrases, seed=1).fit(id_sequences)
    mask = deeplog.entry_anomalies(id_sequences[0])
    deeplog_per_entry = mask.dtype == np.bool_ and mask.shape == id_sequences[0].shape
    deeplog_has_lead_model = hasattr(deeplog, "scaler")  # it does not

    rows = [
        ["No source-code access", "yes", "yes"],
        ["Lead-time prediction", "yes" if desh_has_lead else "no", "no"],
        ["Component location", "yes" if desh_has_location else "no", "no"],
        ["Sequence-level anomaly", "yes" if desh_sequence_level else "no", "no (per-entry)"],
        ["Injected failures needed", "no", "no (here); yes (paper)"],
        ["Node-failure prediction", "yes", "lifted via episodes"],
    ]
    with capsys.disabled():
        print()
        print(
            render_table(
                ["Feature", "Desh", "DeepLog"],
                rows,
                title="Table 11 — capability matrix (verified on implementations)",
            )
        )

    assert desh_has_lead and desh_has_location and desh_sequence_level
    assert deeplog_per_entry and not deeplog_has_lead_model

    benchmark(lambda: deeplog.entry_anomalies(id_sequences[0]))
