"""Table 8 + Figure 9 — unknown-phrase contribution to node failures.

Paper shape: contribution percentages spread widely (8-60%); filesystem
phrases (LustreError, DVS) rank high, corrected-hardware phrases rank
low, and no Unknown phrase is a certain failure indicator (< 100%).
"""

from __future__ import annotations

from repro.analysis import render_table, unknown_phrase_analysis


def test_table8_fig9_unknown_phrases(benchmark, capsys, m3_run):
    model = m3_run.model
    stats = unknown_phrase_analysis(
        model.phase1.sequences,
        model.phase1.chains,
        model.parser.vocab,
        model.parser.labels_by_id(),
    )
    assert stats, "no unknown phrases analyzed"

    rows = [
        [s.phrase[:52], s.total_occurrences, s.chain_occurrences, f"{s.contribution_pct:.0f}"]
        for s in stats[:12]
    ]
    with capsys.disabled():
        print()
        print(
            render_table(
                ["Unknown phrase", "seen", "in chains", "%"],
                rows,
                title="Table 8 / Figure 9 — unknown-phrase contribution to failures",
            )
        )

    pcts = [s.contribution_pct for s in stats]
    # Shape: a wide spread — some phrases contribute heavily, others never.
    assert max(pcts) >= 40.0
    assert min(pcts) == 0.0
    # No Unknown phrase is a *certain* indicator (Observation 5):
    # ambient occurrences outside chains keep every percentage below 100.
    assert all(p < 100.0 for p in pcts)

    benchmark(
        lambda: unknown_phrase_analysis(
            model.phase1.sequences,
            model.phase1.chains,
            model.parser.vocab,
            model.parser.labels_by_id(),
        )
    )
