"""Figure 7 — average lead times per system, with Observation 4.

Paper shape: every system obtains a substantial average lead time, M2's
is the highest (more Hardware/FileSystem failures, fewer panics), and
— Observation 4 — the lead-time standard deviation *within a failure
class* is lower than the deviation *across a whole system*.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import lead_time_overall, lead_times_by_class, render_table


def test_fig7_leadtime_systems(benchmark, capsys, system_runs):
    rows = []
    system_stats = {}
    for name, run in system_runs.items():
        stats = lead_time_overall(run.result)
        system_stats[name] = stats
        rows.append(
            [name, f"{stats.mean:.1f}", f"{stats.std:.1f}", stats.count]
        )
    with capsys.disabled():
        print()
        print(
            render_table(
                ["System", "avg lead (s)", "std", "n"],
                rows,
                title="Figure 7 — avg lead times of systems "
                "(paper: M2 highest; all systems substantial)",
            )
        )

    # Every system warns at least one minute ahead on average.
    for name, stats in system_stats.items():
        assert stats.mean > 60.0, f"{name} lead too short: {stats.mean}"
    # The paper attributes M2's longer leads to its failure *mix* (more
    # H/W + FileSystem, fewer panics).  Assert that mechanism directly:
    # M2's mix-expected lead (class weights x Table-7 class leads) is the
    # highest of the four systems ...
    from repro.simlog.faults import PAPER_LEAD_TIMES
    from repro.simlog.systems import SYSTEM_PRESETS

    expected = {
        name: sum(
            w * PAPER_LEAD_TIMES[cls]
            for cls, w in SYSTEM_PRESETS[name].class_mix.items()
        )
        for name in system_stats
    }
    assert max(expected, key=expected.get) == "M2", expected
    # ... and the measured lead does not contradict it: M2 stays within
    # run-to-run noise of the best system.
    best = max(s.mean for s in system_stats.values())
    assert system_stats["M2"].mean >= 0.7 * best, (
        f"M2 lead {system_stats['M2'].mean:.0f}s vs best {best:.0f}s"
    )

    # Observation 4: mean per-class std < per-system std, per system.
    for name, run in system_runs.items():
        by_class = [
            s.std for s in lead_times_by_class(run.result).values() if s.count >= 3
        ]
        if by_class:
            assert np.mean(by_class) < system_stats[name].std * 1.25, (
                f"{name}: per-class stds {by_class} vs system {system_stats[name].std}"
            )

    run = system_runs["M3"]

    benchmark(lambda: lead_time_overall(run.result))
