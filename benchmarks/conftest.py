"""Shared fixtures for the benchmark harness.

Training all four systems is expensive, so one session-scoped fixture
(`system_runs`) does it once; every table/figure bench reads from it.
The printed output of each bench reproduces the corresponding rows or
series of the paper's tables and figures.
"""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro import Desh, DeshConfig, generate_system
from repro.analysis import Evaluator
from repro.analysis.evaluation import EvaluationResult
from repro.core.desh import DeshModel
from repro.simlog.generator import GeneratedLog

SEED = 2018
SYSTEMS = ("M1", "M2", "M3", "M4")


@dataclass
class SystemRun:
    """Everything one evaluated system produces."""

    name: str
    log: GeneratedLog
    train: GeneratedLog
    test: GeneratedLog
    model: DeshModel
    result: EvaluationResult

    @property
    def sequences(self):
        parsed = self.model.parse(self.test.records)
        return [s for s in parsed.by_node().values() if s.node is not None]


def run_system(name: str, *, train_classifier: bool = False) -> SystemRun:
    log = generate_system(name, seed=SEED)
    train, test = log.split(0.3)
    model = Desh(DeshConfig()).fit(
        list(train.records), train_classifier=train_classifier
    )
    result = Evaluator(test.ground_truth).evaluate(model.score(test.records))
    return SystemRun(
        name=name, log=log, train=train, test=test, model=model, result=result
    )


@pytest.fixture(scope="session")
def system_runs() -> dict[str, SystemRun]:
    """Fully evaluated M1-M4 runs (trains once per session)."""
    return {name: run_system(name) for name in SYSTEMS}


@pytest.fixture(scope="session")
def m3_run(system_runs) -> SystemRun:
    return system_runs["M3"]
