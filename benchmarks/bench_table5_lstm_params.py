"""Table 5 — LSTM parameter specifications per phase.

Echoes the configured parameters of each phase (they must match the
paper's Table 5) and verifies them against the actual network shapes of
a trained model.  Benchmarks a phase-1-sized forward pass.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import render_table
from repro.config import DeshConfig
from repro.nn.model import SequenceClassifier


def test_table5_lstm_params(benchmark, capsys, m3_run):
    cfg = DeshConfig()
    rows = [
        [
            "Phase-1",
            "(P1, P2, ..)",
            "(P11, P15, ..)",
            cfg.phase1.hidden_layers,
            cfg.phase1.prediction_steps,
            cfg.phase1.history_size,
            "SGD, categorical crossentropy",
        ],
        [
            "Phase-2",
            "(dT1, P1), ..",
            "(dT11, P11), ..",
            cfg.phase2.hidden_layers,
            cfg.phase2.prediction_steps,
            cfg.phase2.history_size,
            "MSE, RMSprop",
        ],
        [
            "Phase-3",
            "(dT4, P4), ..",
            "(dT15, P15), ..",
            cfg.phase2.hidden_layers,
            cfg.phase2.prediction_steps,
            cfg.phase3.history_size,
            "MSE, RMSprop",
        ],
    ]
    with capsys.disabled():
        print()
        print(
            render_table(
                ["#", "Input", "Output", "#HL", "Steps", "#HS", "Loss, Optimizer"],
                rows,
                title="Table 5 — LSTM parameter specifications",
            )
        )

    # Paper values, asserted exactly.
    assert (cfg.phase1.hidden_layers, cfg.phase1.prediction_steps, cfg.phase1.history_size) == (2, 3, 8)
    assert (cfg.phase2.hidden_layers, cfg.phase2.prediction_steps, cfg.phase2.history_size) == (2, 1, 5)
    assert cfg.phase3.history_size == 5

    # Verify the trained phase-2 model really has two LSTM layers and a
    # 2-state input (dT, phrase id).
    regressor = m3_run.model.phase2.regressor
    assert regressor.num_layers == 2
    assert regressor.input_dim == 2

    model = SequenceClassifier(
        80, embed_dim=32, hidden_size=64, num_layers=2, steps=3, seed=0
    )
    model._fitted = True
    window = np.zeros((64, 8), dtype=np.int64)

    benchmark(lambda: model.predict_logits(window))
