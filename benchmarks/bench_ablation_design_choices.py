"""Ablations — the reproduction's own design choices (DESIGN.md §2).

Three knobs this implementation adds around the paper's core method are
ablated here on one system, so their contribution is measurable rather
than asserted:

* **noise augmentation** (phase-2 corrupted copies) — robustness to
  ambient anomalies interleaved with chains;
* **confirmation windows** (episode flagged only on >= 2 window matches)
  — clutter suppression without shortening lead times;
* **suffix skipping** (drop leading contaminants before scoring).
"""

from __future__ import annotations

from dataclasses import replace

from repro.analysis import Evaluator, lead_time_overall, render_table
from repro.config import Phase2Config, Phase3Config
from repro.core.phase2 import Phase2Trainer
from repro.core.phase3 import Phase3Predictor


def _evaluate(run, predictor):
    verdicts = predictor.predict_sequences(run.sequences)
    return Evaluator(run.test.ground_truth).evaluate(verdicts)


def test_ablation_design_choices(benchmark, capsys, m3_run):
    base_cfg = m3_run.model.config
    rows = []

    # Full system (reference).
    ref = _evaluate(m3_run, m3_run.model.predictor)
    rows.append(
        [
            "full system",
            f"{ref.metrics.recall:.1f}",
            f"{ref.metrics.fp_rate:.1f}",
            f"{lead_time_overall(ref).mean:.0f}s",
        ]
    )

    # (a) no confirmation: a single matching window flags.
    p3 = Phase3Predictor(
        m3_run.model.phase2.regressor,
        m3_run.model.phase2.scaler,
        config=replace(base_cfg.phase3, confirmation_windows=1),
        episode_gap=base_cfg.phase2.max_lead_seconds,
    )
    no_confirm = _evaluate(m3_run, p3)
    rows.append(
        [
            "no confirmation",
            f"{no_confirm.metrics.recall:.1f}",
            f"{no_confirm.metrics.fp_rate:.1f}",
            f"{lead_time_overall(no_confirm).mean:.0f}s",
        ]
    )

    # (b) no suffix skipping.
    p3 = Phase3Predictor(
        m3_run.model.phase2.regressor,
        m3_run.model.phase2.scaler,
        config=replace(base_cfg.phase3, max_suffix_skip=0),
        episode_gap=base_cfg.phase2.max_lead_seconds,
    )
    no_skip = _evaluate(m3_run, p3)
    rows.append(
        [
            "no suffix skip",
            f"{no_skip.metrics.recall:.1f}",
            f"{no_skip.metrics.fp_rate:.1f}",
            f"{lead_time_overall(no_skip).mean:.0f}s",
        ]
    )

    # (c) no noise augmentation: retrain phase 2 without corrupted copies.
    clean_cfg = replace(base_cfg.phase2, augment_copies=0)
    clean_p2 = Phase2Trainer(
        vocab_size=m3_run.model.num_phrases, config=clean_cfg, seed=base_cfg.seed
    ).train(m3_run.model.phase1.chains)
    p3 = Phase3Predictor(
        clean_p2.regressor,
        clean_p2.scaler,
        config=base_cfg.phase3,
        episode_gap=base_cfg.phase2.max_lead_seconds,
    )
    no_aug = _evaluate(m3_run, p3)
    rows.append(
        [
            "no augmentation",
            f"{no_aug.metrics.recall:.1f}",
            f"{no_aug.metrics.fp_rate:.1f}",
            f"{lead_time_overall(no_aug).mean:.0f}s",
        ]
    )

    with capsys.disabled():
        print()
        print(
            render_table(
                ["variant", "recall%", "FP rate%", "avg lead"],
                rows,
                title="Ablation — contribution of the reproduction's design choices",
            )
        )

    # Confirmation exists to suppress false positives: dropping it must
    # not *reduce* the FP rate.
    assert no_confirm.metrics.fp_rate >= ref.metrics.fp_rate - 1e-9
    # Suffix skipping exists to recover contaminated chains: dropping it
    # must not raise recall.
    assert no_skip.metrics.recall <= ref.metrics.recall + 1e-9

    predictor = m3_run.model.predictor
    sequences = m3_run.sequences

    benchmark(lambda: predictor.predict_sequences(sequences[:4]))
