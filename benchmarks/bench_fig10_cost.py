"""Figure 10 — prediction cost vs steps, for history sizes 5 and 8.

Paper shape: per-prediction time grows with the number of prediction
steps, the history-8 curve sits at or above the history-5 curve, and a
3-step / history-8 prediction lands in the sub-millisecond-to-few-ms
regime (the paper reports ~0.65 ms on its Intel platform; absolute
numbers depend on the host).

``test_fig10_batch_throughput`` extends the figure past the paper: the
per-prediction cost of the batch-major inference core as a function of
batch size, against the pre-refactor sequential engine (one training
forward per window — the paper's deployment mode).  The measured curve
is recorded in ``BENCH_fig10.json`` at the repo root.

``test_fig10_window_filter_vectorized`` pins the deshlint-P1 dogfood
fix on the same measured path: phase 3's per-window flag filter (the
loop the profile attributes to ``phase3.prediction_ms``) against its
vectorized replacement, recorded in ``BENCH_p1_dogfood.json``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.analysis import (
    measure_batch_throughput,
    measure_prediction_cost,
    render_series,
    render_table,
)
from repro.core.phase3 import _passing_windows
from repro.nn.model import SequenceClassifier

BATCH_SIZES = (1, 8, 64, 256)
BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_fig10.json"
DOGFOOD_JSON = (
    Path(__file__).resolve().parent.parent / "BENCH_p1_dogfood.json"
)


def test_fig10_cost(benchmark, capsys):
    samples = measure_prediction_cost(
        vocab_size=80,
        steps_range=(1, 2, 3),
        histories=(5, 8),
        repeats=100,
        seed=0,
    )

    by_history: dict[int, list] = {5: [], 8: []}
    for s in samples:
        by_history[s.history].append(s)
    for h in by_history:
        by_history[h].sort(key=lambda s: s.steps)

    with capsys.disabled():
        print()
        for h in (8, 5):
            print(
                render_series(
                    f"history {h}",
                    [s.steps for s in by_history[h]],
                    [s.millis_per_prediction for s in by_history[h]],
                    unit="ms",
                )
            )

    # Shape: each extra autoregressive step adds a full forward pass, so
    # the per-prediction time grows strictly with the step count.
    for h in (5, 8):
        times = [s.millis_per_prediction for s in by_history[h]]
        assert times[0] < times[1] < times[2], f"history {h}: {times}"
    # Longer history costs more: the 8-long unroll beats the 5-long one.
    total5 = sum(s.millis_per_prediction for s in by_history[5])
    total8 = sum(s.millis_per_prediction for s in by_history[8])
    assert total8 > total5, f"history 8 ({total8}) vs 5 ({total5})"
    # 3-step history-8 prediction is in the paper's millisecond regime.
    worst = by_history[8][-1].millis_per_prediction
    assert worst < 50.0, f"per-prediction time implausibly slow: {worst}ms"

    model = SequenceClassifier(
        80, embed_dim=32, hidden_size=64, num_layers=2, steps=1, seed=0
    )
    model._fitted = True
    window = np.zeros((1, 8), dtype=np.int64)

    benchmark(lambda: model.predict_autoregressive(window, 3))


def test_fig10_batch_throughput(benchmark, capsys):
    """Predictions/sec vs batch size for the batch-major scoring core."""
    samples = measure_batch_throughput(
        batch_sizes=BATCH_SIZES, windows=256, passes=7, seed=0
    )
    sequential = next(s for s in samples if s.engine == "sequential")
    batched = {s.batch_size: s for s in samples if s.engine == "batched"}

    with capsys.disabled():
        print()
        print(
            render_series(
                "batched core",
                list(BATCH_SIZES),
                [batched[b].millis_per_prediction for b in BATCH_SIZES],
                unit="ms",
            )
        )
        print(
            f"  sequential engine (B=1): "
            f"{sequential.millis_per_prediction:.4f} ms/pred "
            f"({sequential.predictions_per_sec:.0f} pred/s)"
        )

    speedup = {
        b: sequential.millis_per_prediction / batched[b].millis_per_prediction
        for b in BATCH_SIZES
    }
    payload = {
        "figure": "fig10-batch-throughput",
        "preset": "M1 (history=5, input_dim=2, hidden=64, layers=2)",
        "sequential_b1": {
            "millis_per_prediction": sequential.millis_per_prediction,
            "predictions_per_sec": sequential.predictions_per_sec,
        },
        "batched": {
            str(b): {
                "millis_per_prediction": batched[b].millis_per_prediction,
                "predictions_per_sec": batched[b].predictions_per_sec,
                "speedup_vs_sequential_b1": speedup[b],
            }
            for b in BATCH_SIZES
        },
        "speedup_b256_vs_sequential_b1": speedup[256],
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    # Larger batches amortize per-call overhead into one fused GEMM:
    # the curve must be monotone cheaper through the paper-shaped sizes.
    assert (
        batched[8].millis_per_prediction < batched[1].millis_per_prediction
    ), speedup
    assert (
        batched[64].millis_per_prediction < batched[8].millis_per_prediction
    ), speedup
    # The headline acceptance: an order of magnitude over the engine the
    # monitor and serving shards used before the batch-major refactor.
    assert speedup[256] >= 10.0, f"b256 speedup {speedup[256]:.2f}x < 10x"

    benchmark(lambda: measure_batch_throughput(
        batch_sizes=(64,), windows=64, passes=1, seed=0
    ))


def _legacy_passing_windows(
    mses, *, history, pad_len, n_real, flag_position, threshold
):
    """The per-window Python loop ``_passing_windows`` replaced.

    Kept verbatim (modulo extraction) as the benchmark baseline: this
    is the body deshlint P1 flagged on the ``phase3.prediction_ms``
    path once ``mses`` carried its ndarray annotation.
    """
    passing = []
    for w, mse in enumerate(mses):
        real_idx = w + history - pad_len
        if real_idx < flag_position or real_idx >= n_real:
            continue
        if mse <= threshold:
            passing.append((real_idx, float(mse)))
    return passing


def test_fig10_window_filter_vectorized(benchmark, capsys):
    """The P1 dogfood fix: vectorized flag filter beats the old loop."""
    rng = np.random.default_rng(0)
    kwargs = dict(
        history=5, pad_len=5, n_real=512, flag_position=3, threshold=0.5
    )
    mses = rng.uniform(0.0, 2.0, size=512)
    repeats = 2000

    legacy = _legacy_passing_windows(mses, **kwargs)
    hits = _passing_windows(mses, **kwargs)
    # Same windows pass, in the same order — the fix changes cost only.
    assert [w for w, _ in legacy] == [
        int(w) + kwargs["history"] - kwargs["pad_len"] for w in hits
    ]

    start = time.perf_counter()
    for _ in range(repeats):
        _legacy_passing_windows(mses, **kwargs)
    loop_us = (time.perf_counter() - start) / repeats * 1e6
    start = time.perf_counter()
    for _ in range(repeats):
        _passing_windows(mses, **kwargs)
    vec_us = (time.perf_counter() - start) / repeats * 1e6
    speedup = loop_us / vec_us

    with capsys.disabled():
        print()
        print(
            f"  window filter (512 windows): loop {loop_us:8.1f}us  "
            f"vectorized {vec_us:8.1f}us  ({speedup:.1f}x)"
        )

    DOGFOOD_JSON.write_text(
        json.dumps(
            {
                "figure": "p1-dogfood-window-filter",
                "windows": 512,
                "loop_us_per_episode": round(loop_us, 2),
                "vectorized_us_per_episode": round(vec_us, 2),
                "speedup": round(speedup, 2),
            },
            indent=2,
        )
        + "\n"
    )

    # The measured claim behind the checked-in numbers: the vectorized
    # filter must clearly beat the per-window loop it replaced.
    assert speedup >= 3.0, f"vectorized filter only {speedup:.2f}x faster"

    benchmark(lambda: _passing_windows(mses, **kwargs))
