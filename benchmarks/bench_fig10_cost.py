"""Figure 10 — prediction cost vs steps, for history sizes 5 and 8.

Paper shape: per-prediction time grows with the number of prediction
steps, the history-8 curve sits at or above the history-5 curve, and a
3-step / history-8 prediction lands in the sub-millisecond-to-few-ms
regime (the paper reports ~0.65 ms on its Intel platform; absolute
numbers depend on the host).
"""

from __future__ import annotations

import numpy as np

from repro.analysis import measure_prediction_cost, render_series, render_table
from repro.nn.model import SequenceClassifier


def test_fig10_cost(benchmark, capsys):
    samples = measure_prediction_cost(
        vocab_size=80,
        steps_range=(1, 2, 3),
        histories=(5, 8),
        repeats=100,
        seed=0,
    )

    by_history: dict[int, list] = {5: [], 8: []}
    for s in samples:
        by_history[s.history].append(s)
    for h in by_history:
        by_history[h].sort(key=lambda s: s.steps)

    with capsys.disabled():
        print()
        for h in (8, 5):
            print(
                render_series(
                    f"history {h}",
                    [s.steps for s in by_history[h]],
                    [s.millis_per_prediction for s in by_history[h]],
                    unit="ms",
                )
            )

    # Shape: each extra autoregressive step adds a full forward pass, so
    # the per-prediction time grows strictly with the step count.
    for h in (5, 8):
        times = [s.millis_per_prediction for s in by_history[h]]
        assert times[0] < times[1] < times[2], f"history {h}: {times}"
    # Longer history costs more: the 8-long unroll beats the 5-long one.
    total5 = sum(s.millis_per_prediction for s in by_history[5])
    total8 = sum(s.millis_per_prediction for s in by_history[8])
    assert total8 > total5, f"history 8 ({total8}) vs 5 ({total5})"
    # 3-step history-8 prediction is in the paper's millisecond regime.
    worst = by_history[8][-1].millis_per_prediction
    assert worst < 50.0, f"per-prediction time implausibly slow: {worst}ms"

    model = SequenceClassifier(
        80, embed_dim=32, hidden_size=64, num_layers=2, steps=1, seed=0
    )
    model._fitted = True
    window = np.zeros((1, 8), dtype=np.int64)

    benchmark(lambda: model.predict_autoregressive(window, 3))
