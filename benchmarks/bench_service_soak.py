"""Service soak — throughput, tail latency and recovery SLOs under chaos.

The serving layer's robustness contract (DESIGN §13): under injected
worker crashes the service sheds load instead of erroring, every crashed
shard worker is restarted, and post-restart predictions are bit-identical
to a fault-free run.  This bench drives a sustained ingest against the
sharded :class:`~repro.serve.PredictionService` through the chaos-soak
harness and prints the operational numbers an SLO review would ask for:

* sustained ingest throughput (accepted lines/s, end to end);
* p50/p99 ingest batch latency and p50/p99 on-demand predict latency;
* worst recovery time after an injected worker kill, against the
  documented ``RECOVERY_SLO_SECONDS`` budget;
* the availability ratio (everything not errored: accepted + deduped +
  shed-and-retried), against ``AVAILABILITY_SLO``.

Shape to hold: zero unhandled exceptions and zero lost lines on both
profiles, bit-identity on the crash-only profile, and recovery inside
the SLO budget.
"""

from __future__ import annotations

import pytest

from repro.analysis import render_table
from repro.serve import (
    AVAILABILITY_SLO,
    RECOVERY_SLO_SECONDS,
    ServeConfig,
    run_soak,
)
from repro.simlog.record import render_line

PROFILES = ("service-crash", "service-storm")
MAX_LINES = 4000


def _percentile(samples: list, q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def _ms(seconds: float) -> str:
    return f"{seconds * 1e3:.1f}"


@pytest.mark.soak
def test_service_soak(benchmark, capsys, m3_run):
    lines = [render_line(r) for r in m3_run.test.records][:MAX_LINES]
    config = ServeConfig(num_shards=2, queue_depth=64)
    reports = {
        name: run_soak(
            m3_run.model,
            lines,
            name,
            seed=2018,
            config=config,
            predict_every=16,
        )
        for name in PROFILES
    }

    rows = []
    for name, report in reports.items():
        throughput = (
            report.accepted / report.elapsed_seconds
            if report.elapsed_seconds > 0
            else 0.0
        )
        rows.append(
            [
                name,
                f"{throughput:.0f}",
                _ms(_percentile(report.ingest_latencies, 0.50)),
                _ms(_percentile(report.ingest_latencies, 0.99)),
                _ms(_percentile(report.predict_latencies, 0.50)),
                _ms(_percentile(report.predict_latencies, 0.99)),
                f"{report.crashes_injected}/{report.worker_restarts}",
                f"{report.max_recovery_seconds:.3f}",
                f"{report.availability:.3f}",
                {True: "yes", False: "NO", None: "n/a"}[report.bit_identical],
            ]
        )
    with capsys.disabled():
        print()
        print(
            render_table(
                [
                    "Profile",
                    "Lines/s",
                    "Ing p50ms",
                    "Ing p99ms",
                    "Pred p50ms",
                    "Pred p99ms",
                    "Crash/Rst",
                    "MaxRec s",
                    "Avail",
                    "BitIdent",
                ],
                rows,
                title=(
                    "Service chaos soak — throughput, tail latency, "
                    "recovery (M3)"
                ),
            )
        )

    for name, report in reports.items():
        assert report.unhandled_errors == [], f"{name}: unhandled errors"
        assert report.lost == 0, f"{name}: lines lost silently"
        assert report.workers_given_up == 0, f"{name}: worker gave up"
        assert report.availability >= AVAILABILITY_SLO, (
            f"{name}: availability {report.availability:.3f} below SLO"
        )
        assert report.max_recovery_seconds <= RECOVERY_SLO_SECONDS, (
            f"{name}: recovery {report.max_recovery_seconds:.2f}s over "
            f"{RECOVERY_SLO_SECONDS:.1f}s SLO"
        )
    assert reports["service-crash"].bit_identical is True

    def crash_soak_smoke():
        return run_soak(
            m3_run.model,
            lines[:800],
            "service-crash",
            seed=7,
            config=config,
        )

    benchmark.pedantic(crash_soak_smoke, rounds=1, iterations=1)
