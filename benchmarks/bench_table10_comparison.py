"""Table 10 — Desh against prior solutions on identical data.

The paper's Table 10 compares methods from the literature on their own
benchmarks; here all comparators run on the *same* synthetic system, so
the ordering is directly measurable.  Shape to hold: Desh's F1 beats
every baseline's; the severity strawman pays a far higher FP rate for
its recall (Observation 6); and only Desh reports learned lead times.
"""

from __future__ import annotations

from repro.analysis import Evaluator, lead_time_overall, render_table
from repro.baselines import DeepLogDetector, NGramDetector, SeverityDetector


def test_table10_comparison(benchmark, capsys, m3_run):
    model = m3_run.model
    train_parsed = model.parser.transform(m3_run.train.records)
    id_sequences = [
        s.phrase_ids() for s in train_parsed.by_node().values() if s.node is not None
    ]
    deeplog = DeepLogDetector(model.num_phrases, seed=1).fit(id_sequences)
    ngram = NGramDetector().fit(id_sequences)
    severity = SeverityDetector()

    sequences = m3_run.sequences
    evaluator = Evaluator(m3_run.test.ground_truth)

    results = {}
    for name, verdicts in (
        ("Desh", model.predictor.predict_sequences(sequences)),
        ("DeepLog", deeplog.predict_sequences(sequences)),
        ("N-gram", ngram.predict_sequences(sequences)),
        ("Severity", severity.predict_sequences(sequences)),
    ):
        results[name] = evaluator.evaluate(verdicts)

    rows = []
    for name, result in results.items():
        m = result.metrics
        lead = lead_time_overall(result)
        rows.append(
            [
                name,
                f"{m.recall:.1f}",
                f"{m.precision:.1f}",
                f"{m.f1:.1f}",
                f"{m.fp_rate:.1f}",
                f"{lead.mean:.0f}",
                "learned dT" if name == "Desh" else "retrospective",
            ]
        )
    with capsys.disabled():
        print()
        print(
            render_table(
                ["Method", "Recall%", "Prec%", "F1%", "FP%", "lead(s)", "lead source"],
                rows,
                title="Table 10 — method comparison on system M3",
            )
        )

    desh_m = results["Desh"].metrics
    for name in ("DeepLog", "N-gram", "Severity"):
        assert desh_m.f1 >= results[name].metrics.f1, (
            f"Desh F1 {desh_m.f1:.1f} must beat {name} "
            f"{results[name].metrics.f1:.1f}"
        )
    # Observation 6: severity tags flag every near-miss too.
    assert results["Severity"].metrics.fp_rate > desh_m.fp_rate + 10.0

    benchmark(lambda: severity.predict_sequences(sequences))
