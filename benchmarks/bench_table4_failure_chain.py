"""Table 4 — an example failure chain with cumulative delta times.

Reproduces the Table 4 presentation for a chain extracted from real
generated data: phrase, label, and the cumulative dT to the terminal
message (dT = 0 at the terminal).  Benchmarks chain extraction over the
full training split.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import render_table
from repro.core.chains import ChainExtractor
from repro.core.deltas import chain_to_deltas


def test_table4_failure_chain(benchmark, capsys, m3_run):
    model = m3_run.model
    chains = model.phase1.chains
    assert chains, "phase 1 must extract chains"

    # Pick a reasonably long chain for display.
    chain = max(chains, key=len)
    deltas = chain_to_deltas(chain.timestamps())
    vocab = model.parser.vocab
    rows = []
    for event, dt in zip(chain.events, deltas):
        rows.append(
            [
                f"{event.timestamp:.3f}",
                vocab.text_of(event.phrase_id)[:46],
                event.label[0].upper(),
                f"dT={dt:07.3f}",
            ]
        )
    with capsys.disabled():
        print()
        print(
            render_table(
                ["timestamp", "phrase", "L", "phrase vector"],
                rows,
                title=f"Table 4 — failure chain on node {chain.node}",
            )
        )

    # Table-4 semantics: dT decreasing to exactly 0 at the terminal.
    assert deltas[-1] == 0.0
    assert np.all(np.diff(deltas) <= 0)
    assert chain.events[-1].terminal

    parsed = model.parser.transform(m3_run.train.records)
    sequences = [s for s in parsed.by_node().values() if s.node is not None]
    extractor = ChainExtractor(lookback=600.0)

    out = benchmark(lambda: extractor.extract(sequences))
    assert len(out) == len(chains)
