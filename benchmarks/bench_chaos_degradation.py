"""Chaos degradation — metric loss under injected feed faults.

The paper evaluates on clean archived logs; a deployed Desh reads a live
syslog feed that arrives corrupted, truncated, duplicated and mildly out
of order.  This bench sweeps the built-in fault profiles over one
trained system and prints the recall / FP-rate deltas between the clean
run and the chaos-injected, hardened-ingest run.

Shape to hold: the hardened front-end keeps degradation *bounded* — the
moderate profile (5% corruption + reordering, the acceptance profile)
loses at most 10pp of recall, and every injected line is accounted for
by the quarantine/dedup/blank statistics (no silent losses).  The chaos
injection + re-ingest path itself is benchmarked.
"""

from __future__ import annotations

import pytest

from repro.analysis import render_table
from repro.resilience import (
    FAULT_PROFILES,
    ChaosInjector,
    HardenedIngestor,
    chaos_evaluation,
)

PROFILES = ("mild", "moderate", "severe")


@pytest.mark.chaos
def test_chaos_degradation(benchmark, capsys, m3_run):
    records = list(m3_run.test.records)
    reports = {
        name: chaos_evaluation(
            m3_run.model,
            records,
            m3_run.test.ground_truth,
            FAULT_PROFILES[name],
            seed=0,
        )
        for name in PROFILES
    }

    rows = []
    for name, report in reports.items():
        c, f = report.clean_metrics, report.chaotic_metrics
        rows.append(
            [
                name,
                f"{c.recall:.1f}",
                f"{f.recall:.1f}",
                f"{report.recall_delta:+.1f}",
                f"{report.fp_rate_delta:+.1f}",
                str(report.ingest_stats.quarantined),
                str(report.ingest_stats.duplicates_dropped),
            ]
        )
    with capsys.disabled():
        print()
        print(
            render_table(
                [
                    "Profile",
                    "Recall%",
                    "Chaos%",
                    "dRecall",
                    "dFP",
                    "Quar.",
                    "Dedup",
                ],
                rows,
                title="Chaos degradation — clean vs fault-injected feed (M3)",
            )
        )

    for name, report in reports.items():
        assert report.lines_accounted, f"{name}: lines lost silently"
    # Acceptance bound: the moderate profile loses at most 10pp recall.
    assert reports["moderate"].recall_delta <= 10.0, (
        f"moderate profile lost {reports['moderate'].recall_delta:.1f}pp recall"
    )

    profile = FAULT_PROFILES["moderate"]

    def inject_and_ingest():
        injector = ChaosInjector(profile, seed=1)
        ingestor = HardenedIngestor()
        return sum(1 for _ in ingestor.ingest_lines(injector.inject_records(records)))

    benchmark(inject_and_ingest)
