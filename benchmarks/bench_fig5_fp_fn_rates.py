"""Figure 5 — false-positive and false-negative rates per system.

Paper values: FP rates 16.66-25%, FN rates 12.5-14.89%.  Shape to hold:
FP rates stay moderate (< 30%) and FN rates low (< 25%) on every system;
the evaluator join is benchmarked.
"""

from __future__ import annotations

from repro.analysis import Evaluator, render_table


def test_fig5_fp_fn_rates(benchmark, capsys, system_runs, m3_run):
    rows = []
    for name, run in system_runs.items():
        m = run.result.metrics
        rows.append([name, f"{m.fp_rate:.2f}", f"{m.fn_rate:.2f}"])
    with capsys.disabled():
        print()
        print(
            render_table(
                ["System", "FP Rate%", "FN Rate%"],
                rows,
                title="Figure 5 — FP and FN rates "
                "(paper: FP 16.66-25, FN 12.5-14.89)",
            )
        )

    for name, run in system_runs.items():
        m = run.result.metrics
        assert m.fp_rate < 30.0, f"{name} FP rate too high: {m.fp_rate}"
        assert m.fn_rate < 25.0, f"{name} FN rate too high: {m.fn_rate}"

    verdicts = m3_run.model.score(m3_run.test.records)
    evaluator = Evaluator(m3_run.test.ground_truth)

    benchmark(lambda: evaluator.evaluate(verdicts))
