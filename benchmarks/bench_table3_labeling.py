"""Table 3 — Safe / Unknown / Error phrase labeling.

Reproduces the three-way categorization over the mined phrase inventory
of a real generated system and benchmarks labeling throughput.
"""

from __future__ import annotations

from collections import Counter

from repro.analysis import render_table
from repro.events import Label
from repro.parsing.labeling import default_labeler


def test_table3_labeling(benchmark, capsys, m3_run):
    parser = m3_run.model.parser
    labels = parser.labels_by_id()
    vocab = parser.vocab

    by_label: dict[str, list[str]] = {l: [] for l in Label.ALL}
    for pid, label in enumerate(labels):
        by_label[label].append(vocab.text_of(pid))

    rows = []
    for i in range(5):
        rows.append(
            [
                by_label[Label.SAFE][i][:30] if i < len(by_label[Label.SAFE]) else "",
                by_label[Label.UNKNOWN][i][:34] if i < len(by_label[Label.UNKNOWN]) else "",
                by_label[Label.ERROR][i][:30] if i < len(by_label[Label.ERROR]) else "",
            ]
        )
    counts = Counter(labels)
    with capsys.disabled():
        print()
        print(
            render_table(
                ["Safe", "Unknown", "Error"],
                rows,
                title="Table 3 — phrase labeling (sample rows)",
            )
        )
        print(
            f"totals: safe={counts[Label.SAFE]} unknown={counts[Label.UNKNOWN]} "
            f"error={counts[Label.ERROR]}"
        )

    # All three categories must be populated, Unknown being the largest
    # (the default for ambiguous phrases).
    assert all(counts[l] > 0 for l in Label.ALL)
    assert counts[Label.UNKNOWN] >= counts[Label.ERROR]

    labeler = default_labeler()
    phrases = [vocab.text_of(pid) for pid in range(len(vocab))] * 50

    benchmark(lambda: labeler.label_many(phrases))
