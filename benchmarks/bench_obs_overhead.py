"""Observability overhead on the phase-3 scoring hot path.

Three configurations score the same synthetic episode workload:

* **off** — the process defaults (NullTracer, inactive registry): the
  always-on counters are the only instrumentation cost, so this must
  sit within noise (~0%) of the hot path's intrinsic cost;
* **metrics** — an active registry: adds the gated per-prediction
  latency histogram;
* **traced** — an enabled tracer *and* active registry (what
  ``repro trace`` installs): spans plus timed metrics, budgeted at
  <= 5% slowdown.

Methodology: min-of-N over interleaved rounds.  The minimum is robust
to scheduler noise (anything that makes a round slower is interference,
never the instrumentation being cheaper than it is), and interleaving
keeps cache/frequency drift from biasing one configuration.
"""

from __future__ import annotations

import time

import numpy as np

from repro.config import Phase3Config
from repro.core.chains import Episode
from repro.core.deltas import LeadTimeScaler
from repro.core.phase3 import Phase3Predictor
from repro.events import ParsedEvent
from repro.nn.model import SequenceRegressor
from repro.obs import (
    MetricsRegistry,
    Tracer,
    activate_metrics,
    activate_tracer,
)
from repro.topology import CrayNodeId

ROUNDS = 7
VOCAB = 40


def _workload(num_episodes: int = 12, events_per_episode: int = 12):
    """Deterministic episodes plus a predictor with untrained weights.

    Untrained weights score exactly like trained ones cost-wise — the
    forward pass does not depend on the parameter values.
    """
    rng = np.random.default_rng(7)
    scaler = LeadTimeScaler(max_lead_seconds=600.0, vocab_size=VOCAB)
    regressor = SequenceRegressor(2, hidden_size=32, num_layers=2, seed=7)
    regressor._fitted = True
    predictor = Phase3Predictor(
        regressor, scaler, config=Phase3Config(), episode_gap=600.0
    )
    episodes = []
    for e in range(num_episodes):
        node = CrayNodeId(0, 0, 0, e % 4, e % 2)
        start = 1000.0 * e
        events = [
            ParsedEvent(
                timestamp=start + 10.0 * i + float(rng.uniform(0, 5)),
                phrase_id=int(rng.integers(0, VOCAB)),
                node=node,
            )
            for i in range(events_per_episode)
        ]
        episodes.append(Episode(node, tuple(sorted(events))))
    return predictor, episodes


def _time_once(predictor, episodes) -> float:
    start = time.perf_counter()
    for episode in episodes:
        predictor.score_episode(episode)
    return time.perf_counter() - start


def _min_of_rounds(predictor, episodes) -> dict[str, float]:
    """Best (minimum) time per configuration over interleaved rounds."""
    best = {"off": float("inf"), "metrics": float("inf"), "traced": float("inf")}
    for _ in range(ROUNDS):
        best["off"] = min(best["off"], _time_once(predictor, episodes))

        with activate_metrics(MetricsRegistry(active=True)):
            best["metrics"] = min(
                best["metrics"], _time_once(predictor, episodes)
            )

        tracer = Tracer()
        with activate_tracer(tracer), activate_metrics(
            MetricsRegistry(active=True)
        ):
            with tracer.span("bench.round"):
                best["traced"] = min(
                    best["traced"], _time_once(predictor, episodes)
                )
    return best


def test_obs_overhead(benchmark, capsys):
    predictor, episodes = _workload()
    _time_once(predictor, episodes)  # warm-up: imports, allocator, caches
    best = _min_of_rounds(predictor, episodes)

    off = best["off"]
    overhead = {k: (v / off - 1.0) * 100.0 for k, v in best.items()}
    with capsys.disabled():
        print()
        for name in ("off", "metrics", "traced"):
            print(
                f"  {name:<8} {best[name] * 1e3:8.2f} ms "
                f"({overhead[name]:+6.2f}% vs off)"
            )

    # Disabled instrumentation must be free to within timing noise, and
    # the full tracer within its 5% budget.  The budgets get slack on
    # top (noise floor of a shared 1-CPU CI box); the printed numbers
    # are the real measurement.
    assert best["metrics"] <= off * 1.10, (
        f"active-registry overhead too high: {overhead['metrics']:+.2f}%"
    )
    assert best["traced"] <= off * 1.10, (
        f"traced overhead above budget: {overhead['traced']:+.2f}%"
    )

    benchmark(lambda: _time_once(predictor, episodes))
