"""Table 6 — prediction-efficiency metric formulas.

Prints every Table-6 formula evaluated on a real system's confusion
counts, cross-checks them against independent computations, and
benchmarks metric evaluation.
"""

from __future__ import annotations

import pytest

from repro.analysis import ConfusionCounts, render_table


def test_table6_metrics(benchmark, capsys, m3_run):
    c = m3_run.result.counts
    m = c.metrics()
    rows = [
        ["Recall", "TP/(TP+FN)", f"{m.recall:.2f}%"],
        ["Precision", "TP/(TP+FP)", f"{m.precision:.2f}%"],
        ["Accuracy", "(TP+TN)/(TP+FP+FN+TN)", f"{m.accuracy:.2f}%"],
        ["F1 Score", "2*(R*P)/(R+P)", f"{m.f1:.2f}%"],
        ["FP Rate", "FP/(FP+TN)", f"{m.fp_rate:.2f}%"],
        ["FN Rate", "FN/(TP+FN) = 1-Recall", f"{m.fn_rate:.2f}%"],
    ]
    with capsys.disabled():
        print()
        print(
            render_table(
                ["Metric", "Formula (Table 6)", "M3 value"],
                rows,
                title=f"Table 6 — metrics over counts TP={c.tp} FP={c.fp} FN={c.fn} TN={c.tn}",
            )
        )

    # Independent recomputation of each formula.
    assert m.recall == pytest.approx(100 * c.tp / (c.tp + c.fn))
    assert m.precision == pytest.approx(100 * c.tp / (c.tp + c.fp))
    assert m.accuracy == pytest.approx(100 * (c.tp + c.tn) / c.total)
    assert m.f1 == pytest.approx(
        2 * m.recall * m.precision / (m.recall + m.precision)
    )
    assert m.fp_rate == pytest.approx(100 * c.fp / (c.fp + c.tn))
    assert m.fn_rate == pytest.approx(100 - m.recall)

    counts = [ConfusionCounts(tp=i, fp=i // 2, fn=i // 3, tn=2 * i) for i in range(1, 200)]

    benchmark(lambda: [cc.metrics() for cc in counts])
