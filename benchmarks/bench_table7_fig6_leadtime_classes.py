"""Table 7 + Figure 6 — lead times per failure class.

Paper values (avg lead seconds): Job 81.52, MCE 160.29, FS 119.32,
Traps 115.74, H/W 124.29, Panic 58.87 — with low per-class standard
deviations (Figure 6).  Shape to hold: Panic has the shortest lead,
MCE among the longest, and per-class deviations stay low.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import lead_times_by_class, render_table
from repro.simlog.faults import PAPER_LEAD_TIMES, FailureClass


def test_table7_fig6_leadtime_classes(benchmark, capsys, system_runs):
    # Pool true positives across systems for stable per-class statistics.
    per_class: dict[FailureClass, list[float]] = {c: [] for c in FailureClass}
    for run in system_runs.values():
        for cls, stats in lead_times_by_class(run.result).items():
            if stats.count:
                per_class[cls].extend(
                    s.lead_seconds
                    for s in run.result.true_positives()
                    if s.failure_class is cls
                )

    rows = []
    measured: dict[FailureClass, float] = {}
    for cls in FailureClass:
        values = np.array(per_class[cls])
        mean = float(values.mean()) if values.size else 0.0
        std = float(values.std()) if values.size else 0.0
        measured[cls] = mean
        rows.append(
            [
                cls.value,
                f"{PAPER_LEAD_TIMES[cls]:.2f}",
                f"{mean:.2f}",
                f"{std:.2f}",
                int(values.size),
            ]
        )
    with capsys.disabled():
        print()
        print(
            render_table(
                ["Class", "paper lead(s)", "measured lead(s)", "std", "n"],
                rows,
                title="Table 7 / Figure 6 — avg lead times per failure class",
            )
        )

    populated = {c: v for c, v in measured.items() if per_class[c]}
    # Shape: kernel panics give the least warning...
    assert min(populated, key=populated.get) is FailureClass.PANIC
    # ... and MCE chains are among the two longest-lead classes.
    top2 = sorted(populated, key=populated.get, reverse=True)[:2]
    assert FailureClass.MCE in top2

    run = system_runs["M3"]

    benchmark(lambda: lead_times_by_class(run.result))
