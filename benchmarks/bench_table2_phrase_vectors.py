"""Table 2 — phrase static/dynamic separation.

Reproduces the Table 2 examples: each raw message is segregated into its
constant subphrase and discarded variable component.  Benchmarks the
masking throughput over a generated log (the phase-1 hot path).
"""

from __future__ import annotations

import numpy as np

from repro.analysis import render_table
from repro.parsing.tokenizer import mask_message
from repro.simlog.templates import default_catalog


def test_table2_phrase_vectors(benchmark, capsys):
    catalog = default_catalog()
    rng = np.random.default_rng(0)

    # The four message families shown in Table 2.
    keys = ("lnet_quiesce", "sysctl_apply", "hwerr_aer_tlp", "hwerr_ssid_rsp")
    rows = []
    for key in keys:
        raw = catalog.get(key).fill(rng)
        static = mask_message(raw)
        rows.append([raw[:52], static[:52]])
    with capsys.disabled():
        print()
        print(
            render_table(
                ["raw phrase (dynamic fields in place)", "static component"],
                rows,
                title="Table 2 — phrase vectors: static/dynamic separation",
            )
        )

    # Invariant of the whole pipeline: masking is occurrence-independent.
    for key in keys:
        tpl = catalog.get(key)
        masks = {mask_message(tpl.fill(rng)) for _ in range(10)}
        assert len(masks) == 1

    messages = [catalog.get(k).fill(rng) for k in catalog.keys() for _ in range(25)]

    def mask_all():
        return [mask_message(m) for m in messages]

    out = benchmark(mask_all)
    assert len(out) == len(messages)
