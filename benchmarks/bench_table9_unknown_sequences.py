"""Table 9 — the same phrases in failing and non-failing sequences.

Paper shape (Observation 5): sequences that led to node failures and
sequences that recovered *share phrases* — the phrase alone does not
determine the outcome.  The bench extracts such pairs from real
generated data and asserts the overlap exists.
"""

from __future__ import annotations

from repro.analysis import render_table, sequence_examples
from repro.core.chains import segment_episodes


def test_table9_unknown_sequences(benchmark, capsys, m3_run):
    model = m3_run.model
    non_failure = [
        ep
        for seq in model.phase1.sequences
        for ep in segment_episodes(seq, gap=600.0, min_events=2)
        if not ep.ends_in_terminal
    ]
    assert non_failure, "training data must contain non-failure episodes"

    pairs = sequence_examples(
        model.phase1.chains, non_failure, model.parser.vocab, max_pairs=4
    )
    assert pairs, "there must exist failure / non-failure pairs sharing phrases"

    rows = []
    for failure, survivor in pairs[:2]:
        for i in range(max(len(failure), len(survivor))):
            rows.append(
                [
                    failure[i][:42] if i < len(failure) else "",
                    survivor[i][:42] if i < len(survivor) else "",
                ]
            )
        rows.append(["-" * 20, "-" * 20])
    with capsys.disabled():
        print()
        print(
            render_table(
                ["Failure sequence", "Not a failure"],
                rows,
                title="Table 9 — unknown phrases with and without node failures",
            )
        )

    # Observation 5: every reported pair shares at least one phrase.
    for failure, survivor in pairs:
        assert set(failure) & set(survivor)

    benchmark(
        lambda: sequence_examples(
            model.phase1.chains, non_failure, model.parser.vocab, max_pairs=4
        )
    )
