"""Figure 4 — recall / precision / accuracy / F1 per system.

Paper values: recall 85.1-87.5%, precision 84-95.2%, accuracy
83.6-97.5%, F1 85.1-91.9% across M1-M4.  The bench prints our four
series and asserts the paper's qualitative shape: all metrics high
(>= 75%), and the per-entry phase-3 scoring is benchmarked on M3.
"""

from __future__ import annotations

from repro.analysis import render_table


def test_fig4_prediction_rates(benchmark, capsys, system_runs, m3_run):
    rows = []
    for name, run in system_runs.items():
        m = run.result.metrics
        rows.append(
            [name, f"{m.recall:.1f}", f"{m.precision:.1f}", f"{m.accuracy:.1f}", f"{m.f1:.1f}"]
        )
    with capsys.disabled():
        print()
        print(
            render_table(
                ["System", "Recall%", "Precision%", "Accuracy%", "F1%"],
                rows,
                title="Figure 4 — prediction rates "
                "(paper: recall 85.1-87.5, precision 84-95.2, acc 83.6-97.5, F1 85.1-91.9)",
            )
        )

    for name, run in system_runs.items():
        m = run.result.metrics
        assert m.recall >= 75.0, f"{name} recall too low: {m.recall}"
        assert m.precision >= 75.0, f"{name} precision too low: {m.precision}"
        assert m.accuracy >= 80.0, f"{name} accuracy too low: {m.accuracy}"
        assert m.f1 >= 78.0, f"{name} F1 too low: {m.f1}"

    sequences = m3_run.sequences
    predictor = m3_run.model.predictor

    benchmark(lambda: predictor.predict_sequences(sequences))
