"""Skip-gram word embeddings with negative sampling (Section 3.1).

"These encoded phrases are then vectorized using word embeddings ... We
use the traditional skip-gram model [34] ... Window sizes of 8 and 3 are
used, respectively, to consider the number of phrases left and right of
a specific target phrase."

The trainer follows Mikolov et al.'s SGNS formulation: for a (center,
context) pair maximize ``log sigma(v_c . u_o)`` plus ``k`` negative
samples drawn from the unigram distribution raised to 3/4.  The whole
update is vectorized over a batch of pairs with fancy indexing and
``np.add.at`` scatter-accumulation; no Python loop touches individual
pairs.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..config import EmbeddingConfig
from ..errors import NotFittedError, ShapeError, TrainingError
from .activations import sigmoid

__all__ = ["SkipGramEmbedder"]


class SkipGramEmbedder:
    """Skip-gram with negative sampling over phrase-id sequences."""

    def __init__(
        self,
        vocab_size: int,
        config: EmbeddingConfig | None = None,
    ) -> None:
        if vocab_size < 2:
            raise ShapeError(f"vocab_size must be >= 2, got {vocab_size}")
        self.vocab_size = vocab_size
        self.config = config if config is not None else EmbeddingConfig()
        self._in: np.ndarray | None = None  # center ("input") vectors
        self._out: np.ndarray | None = None  # context ("output") vectors

    # ------------------------------------------------------------------
    # pair extraction
    # ------------------------------------------------------------------
    def build_pairs(
        self, sequences: Sequence[np.ndarray]
    ) -> tuple[np.ndarray, np.ndarray]:
        """(center, context) id pairs with the asymmetric 8-left/3-right window."""
        left, right = self.config.window_left, self.config.window_right
        centers, contexts = [], []
        for seq in sequences:
            seq = np.asarray(seq)
            if seq.ndim != 1:
                raise ShapeError(f"sequences must be 1-D, got shape {seq.shape}")
            if seq.size and (seq.min() < 0 or seq.max() >= self.vocab_size):
                raise ShapeError("phrase id out of vocabulary range")
            n = len(seq)
            if n < 2:
                continue
            for offset in range(1, left + 1):
                # context `offset` positions to the LEFT of the center
                centers.append(seq[offset:])
                contexts.append(seq[:-offset])
            for offset in range(1, right + 1):
                # context `offset` positions to the RIGHT of the center
                if offset < n:
                    centers.append(seq[:-offset])
                    contexts.append(seq[offset:])
        if not centers:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        return (
            np.concatenate(centers).astype(np.int64),
            np.concatenate(contexts).astype(np.int64),
        )

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def fit(
        self,
        sequences: Sequence[np.ndarray],
        rng: np.random.Generator,
        counts: np.ndarray | None = None,
    ) -> "SkipGramEmbedder":
        """Train embeddings on per-node phrase-id sequences.

        Parameters
        ----------
        sequences:
            1-D int arrays of phrase ids (one per node).
        rng:
            Random generator (initialization, shuffling, negatives).
        counts:
            Optional phrase occurrence counts for the negative-sampling
            table; derived from the sequences when omitted.
        """
        cfg = self.config
        dim = cfg.dim
        centers, contexts = self.build_pairs(sequences)
        if len(centers) == 0:
            raise TrainingError("no skip-gram pairs; sequences too short")

        if counts is None:
            counts = np.bincount(
                np.concatenate([np.asarray(s) for s in sequences]),
                minlength=self.vocab_size,
            )
        counts = np.asarray(counts, dtype=np.float64)
        if counts.shape != (self.vocab_size,):
            raise ShapeError(
                f"counts must be ({self.vocab_size},), got {counts.shape}"
            )
        # Unigram^(3/4) negative-sampling distribution (Mikolov et al.).
        neg_probs = np.power(np.maximum(counts, 1.0), 0.75)
        neg_probs /= neg_probs.sum()

        w_in = (rng.random((self.vocab_size, dim)) - 0.5) / dim
        w_out = np.zeros((self.vocab_size, dim))

        n_pairs = len(centers)
        total_batches = max(1, cfg.epochs * -(-n_pairs // cfg.batch_size))
        batch_no = 0
        for _ in range(cfg.epochs):
            order = rng.permutation(n_pairs)
            for start in range(0, n_pairs, cfg.batch_size):
                lr = max(
                    cfg.min_learning_rate,
                    cfg.learning_rate * (1.0 - batch_no / total_batches),
                )
                batch_no += 1
                idx = order[start : start + cfg.batch_size]
                self._sgns_step(
                    w_in, w_out, centers[idx], contexts[idx], neg_probs, rng, lr
                )

        self._in = w_in
        self._out = w_out
        return self

    def _sgns_step(
        self,
        w_in: np.ndarray,
        w_out: np.ndarray,
        c_ids: np.ndarray,
        o_ids: np.ndarray,
        neg_probs: np.ndarray,
        rng: np.random.Generator,
        lr: float,
    ) -> None:
        """One vectorized SGNS update over a batch of pairs."""
        k = self.config.negatives
        b = len(c_ids)
        v_c = w_in[c_ids]  # (B, D)
        u_o = w_out[o_ids]  # (B, D)

        # Positive samples: label 1.
        score_pos = sigmoid(np.einsum("bd,bd->b", v_c, u_o))
        g_pos = score_pos - 1.0  # dL/dscore
        d_vc = g_pos[:, None] * u_o
        d_uo = g_pos[:, None] * v_c

        # Negative samples: label 0, k per pair.
        n_ids = rng.choice(self.vocab_size, size=(b, k), p=neg_probs)
        u_n = w_out[n_ids]  # (B, K, D)
        score_neg = sigmoid(np.einsum("bd,bkd->bk", v_c, u_n))
        d_vc += np.einsum("bk,bkd->bd", score_neg, u_n)
        d_un = score_neg[:, :, None] * v_c[:, None, :]  # (B, K, D)

        # Scatter-accumulate: duplicate ids within a batch must sum.
        np.add.at(w_in, c_ids, -lr * d_vc)
        np.add.at(w_out, o_ids, -lr * d_uo)
        np.add.at(w_out, n_ids.reshape(-1), -lr * d_un.reshape(-1, v_c.shape[1]))

    # ------------------------------------------------------------------
    # state round-tripping (pipeline artifacts, full-model persistence)
    # ------------------------------------------------------------------
    def state_arrays(self) -> dict[str, np.ndarray]:
        """The trained parameter arrays (inverse of :meth:`from_state`)."""
        if self._in is None or self._out is None:
            raise NotFittedError("SkipGramEmbedder.fit has not run")
        return {"w_in": self._in, "w_out": self._out}

    @classmethod
    def from_state(
        cls,
        w_in: np.ndarray,
        w_out: np.ndarray,
        config: EmbeddingConfig | None = None,
    ) -> "SkipGramEmbedder":
        """Rebuild a fitted embedder from its parameter arrays."""
        w_in = np.asarray(w_in, dtype=np.float64)
        w_out = np.asarray(w_out, dtype=np.float64)
        if w_in.ndim != 2 or w_in.shape != w_out.shape:
            raise ShapeError(
                f"w_in/w_out must be matching 2-D arrays, got "
                f"{w_in.shape} and {w_out.shape}"
            )
        embedder = cls(w_in.shape[0], config)
        embedder._in = w_in
        embedder._out = w_out
        return embedder

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    @property
    def vectors(self) -> np.ndarray:
        """The trained center vectors, shape ``(vocab_size, dim)``."""
        if self._in is None:
            raise NotFittedError("SkipGramEmbedder.fit has not run")
        return self._in

    def _centered(self) -> np.ndarray:
        """Vectors with the vocabulary-mean direction removed.

        SGNS vectors share a large common component (all words co-occur
        with everything in small vocabularies); centering removes it so
        cosine similarity reflects the *relative* co-occurrence structure.
        """
        v = self.vectors
        return v - v.mean(axis=0, keepdims=True)

    def similarity(self, a: int, b: int) -> float:
        """Centered cosine similarity between two phrase vectors."""
        v = self._centered()
        va, vb = v[a], v[b]
        denom = float(np.linalg.norm(va) * np.linalg.norm(vb))
        if denom == 0.0:
            return 0.0
        return float(va @ vb / denom)

    def most_similar(self, phrase_id: int, top: int = 5) -> list[tuple[int, float]]:
        """The *top* nearest phrases by centered cosine (excluding self)."""
        v = self._centered()
        norms = np.linalg.norm(v, axis=1)
        norms[norms == 0] = 1.0
        sims = (v @ v[phrase_id]) / (norms * max(norms[phrase_id], 1e-12))
        order = np.argsort(-sims)
        out = [(int(i), float(sims[i])) for i in order if i != phrase_id]
        return out[:top]
