"""Sequence models: the trainable units behind Desh's three phases.

* :class:`SequenceClassifier` — embedding + sequence backbone + one
  softmax head per prediction step.  Phase 1 instantiates it with
  history 8 and 3 steps (Table 5); the DeepLog baseline reuses it with
  1 step.
* :class:`SequenceRegressor` — sequence backbone + linear head over
  continuous ``(dT, phrase)`` vectors with MSE loss; phases 2-3.

The backbone — the ``(B, T, D) -> (B, T, H)`` core whose last position
summarizes the window — is pluggable via the model zoo
(:mod:`repro.nn.registry`): the paper's stacked LSTM by default, or the
``tcn`` / ``attention`` families by name.  Both models expose ``fit`` /
prediction methods and ``save`` / ``load`` npz round-tripping; saved
files record the backbone family and rebuild it through the registry.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Mapping, Sequence

import numpy as np

from ..errors import NotFittedError, SerializationError, ShapeError, TrainingError
from ..obs import current_tracer, metrics_registry
from .data import batch_iterator
from .layers import Dense, Embedding
from .losses import CategoricalCrossEntropy, MeanSquaredError
from .optimizers import RMSprop, SGD, _OptimizerBase, clip_gradients
from .registry import build_backbone

__all__ = ["SequenceClassifier", "SequenceRegressor"]


def _merge_params(*sources: Mapping[str, np.ndarray]) -> dict[str, np.ndarray]:
    out: dict[str, np.ndarray] = {}
    for prefix, mapping in enumerate(sources):
        for name, arr in mapping.items():
            out[f"m{prefix}.{name}"] = arr
    return out


def _observe_epoch(
    prefix: str, epoch: int, loss: float, elapsed_ms: float
) -> None:
    """Record one completed training epoch into the metrics registry.

    Per-epoch granularity keeps this cheap enough to run unconditionally
    (a handful of dict lookups per epoch, not per batch).
    """
    registry = metrics_registry()
    registry.gauge(f"{prefix}.epoch").set(float(epoch))
    registry.gauge(f"{prefix}.epoch_loss").set(float(loss))
    registry.histogram(f"{prefix}.epoch_ms").observe(elapsed_ms)


def _resume_fit(model, checkpoint, opt, rng) -> int:
    """Restore params/optimizer/rng/history from the newest checkpoint.

    Returns the number of already-completed epochs (0 when the manager
    holds no checkpoint yet).
    """
    from ..resilience.checkpoint import restore_fit_state

    resumed = checkpoint.load_latest()
    if resumed is None:
        return 0
    _, arrays, meta = resumed
    epoch = restore_fit_state(arrays, meta, model.params(), opt, rng)
    model.history = [float(v) for v in meta.get("history", [])]
    return epoch


def _checkpoint_fit(model, checkpoint, opt, rng, epoch: int) -> None:
    """Write an epoch-granular checkpoint of the in-progress fit."""
    from ..resilience.checkpoint import pack_fit_state

    arrays, meta = pack_fit_state(
        model.params(),
        opt,
        rng,
        epoch=epoch,
        extra_meta={"history": [float(v) for v in model.history]},
    )
    checkpoint.save(epoch, arrays, meta)


class SequenceClassifier:
    """Next-phrase classifier: Embedding -> backbone -> k softmax heads.

    For a history window of phrase ids, head ``k`` predicts the phrase
    ``k+1`` positions after the window — the paper's "3-step prediction
    (to predict the next 3 phrases)".  ``backbone`` names a model-zoo
    family (``lstm``/``tcn``/``attention``); ``backbone_params`` are the
    family-specific hyperparameter overrides.
    """

    def __init__(
        self,
        vocab_size: int,
        *,
        embed_dim: int = 32,
        hidden_size: int = 64,
        num_layers: int = 2,
        steps: int = 3,
        seed: int = 0,
        pretrained_embeddings: np.ndarray | None = None,
        backbone: str = "lstm",
        backbone_params: Mapping[str, object] | None = None,
    ) -> None:
        if vocab_size < 2:
            raise ShapeError(f"vocab_size must be >= 2, got {vocab_size}")
        if steps < 1:
            raise ShapeError(f"steps must be >= 1, got {steps}")
        rng = np.random.default_rng(seed)
        self.vocab_size = vocab_size
        self.embed_dim = embed_dim
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        self.steps = steps
        self.seed = seed
        self.backbone_name = backbone
        self.backbone_params = dict(backbone_params or {})
        self.embedding = Embedding(vocab_size, embed_dim, rng)
        if pretrained_embeddings is not None:
            self.embedding.load_vectors(pretrained_embeddings)
        self.backbone = build_backbone(
            backbone, embed_dim, hidden_size, num_layers, rng,
            self.backbone_params,
        )
        self.heads = [Dense(hidden_size, vocab_size, rng) for _ in range(steps)]
        self.loss_fn = CategoricalCrossEntropy()
        self.history: list[float] = []
        self._fitted = False

    # ------------------------------------------------------------------
    # forward / backward
    # ------------------------------------------------------------------
    def forward(self, x_ids: np.ndarray) -> list[np.ndarray]:
        """Logits per step for an ``(B, T)`` id batch: list of ``(B, V)``."""
        x_ids = np.asarray(x_ids)
        if x_ids.ndim != 2:
            raise ShapeError(f"input ids must be (B, T), got {x_ids.shape}")
        vecs = self.embedding.forward(x_ids)  # (B, T, E)
        hs = self.backbone.forward(vecs)  # (B, T, H)
        self._last_hs_shape = hs.shape
        last = hs[:, -1, :]  # (B, H)
        return [head.forward(last) for head in self.heads]

    def _backward(self, dlogits: Sequence[np.ndarray]) -> None:
        B, T, H = self._last_hs_shape
        dlast = np.zeros((B, H))
        for head, dl in zip(self.heads, dlogits):
            dlast += head.backward(dl)
        dhs = np.zeros((B, T, H))
        dhs[:, -1, :] = dlast
        dvecs = self.backbone.backward(dhs)
        self.embedding.backward(dvecs)

    def _zero_grad(self) -> None:
        self.embedding.zero_grad()
        self.backbone.zero_grad()
        for head in self.heads:
            head.zero_grad()

    def params(self) -> dict[str, np.ndarray]:
        """All trainable parameters, namespaced per sub-module."""
        return _merge_params(
            self.embedding.params(),
            self.backbone.params(),
            *[h.params() for h in self.heads],
        )

    def grads(self) -> dict[str, np.ndarray]:
        """All gradients, namespaced like :meth:`params`."""
        return _merge_params(
            self.embedding.grads(),
            self.backbone.grads(),
            *[h.grads() for h in self.heads],
        )

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        *,
        epochs: int = 8,
        batch_size: int = 64,
        optimizer: _OptimizerBase | None = None,
        grad_clip: float = 5.0,
        rng: np.random.Generator | None = None,
        checkpoint=None,
    ) -> list[float]:
        """Train on ``(N, T)`` windows and ``(N, steps)`` targets.

        Returns the per-epoch mean losses (also kept in ``self.history``).
        Passing a :class:`~repro.resilience.CheckpointManager` as
        ``checkpoint`` writes an atomic checkpoint after every epoch and
        resumes from the newest one on entry, replaying the remaining
        epochs bit-identically to an uninterrupted run.
        """
        x = np.asarray(x)
        y = np.asarray(y)
        if x.ndim != 2 or y.ndim != 2 or y.shape != (x.shape[0], self.steps):
            raise ShapeError(
                f"expected x=(N,T), y=(N,{self.steps}); got {x.shape}, {y.shape}"
            )
        if len(x) == 0:
            raise TrainingError("no training windows")
        opt = optimizer if optimizer is not None else SGD(0.5, momentum=0.9)
        rng = rng if rng is not None else np.random.default_rng(self.seed)
        start_epoch = 0
        if checkpoint is not None:
            start_epoch = _resume_fit(self, checkpoint, opt, rng)
        with current_tracer().span(
            "nn.classifier.fit", windows=len(x), epochs=epochs
        ) as fit_span:
            for epoch in range(start_epoch, epochs):
                tick = time.perf_counter()
                epoch_loss = 0.0
                batches = 0
                for idx in batch_iterator(len(x), batch_size, rng):
                    self._zero_grad()
                    logits = self.forward(x[idx])
                    loss = 0.0
                    dlogits = []
                    for k in range(self.steps):
                        loss += self.loss_fn.loss(logits[k], y[idx, k])
                        dlogits.append(self.loss_fn.grad(logits[k], y[idx, k]))
                    loss /= self.steps
                    for dl in dlogits:
                        dl /= self.steps
                    self._backward(dlogits)
                    grads = self.grads()
                    clip_gradients(grads, grad_clip)
                    opt.step(self.params(), grads)
                    epoch_loss += loss
                    batches += 1
                self.history.append(epoch_loss / max(batches, 1))
                _observe_epoch(
                    "nn.classifier",
                    epoch,
                    self.history[-1],
                    (time.perf_counter() - tick) * 1e3,
                )
                if checkpoint is not None:
                    _checkpoint_fit(self, checkpoint, opt, rng, epoch + 1)
            if self.history:
                fit_span.set(final_loss=self.history[-1])
        self._fitted = True
        return self.history

    # ------------------------------------------------------------------
    # inference
    # ------------------------------------------------------------------
    def predict_logits(self, x: np.ndarray) -> np.ndarray:
        """Logits of shape ``(B, steps, V)``."""
        if not self._fitted:
            raise NotFittedError("SequenceClassifier.fit has not run")
        return np.stack(self.forward(np.asarray(x)), axis=1)

    def predict_next(self, x: np.ndarray) -> np.ndarray:
        """Most likely phrase id per step, shape ``(B, steps)``."""
        return np.argmax(self.predict_logits(x), axis=-1)

    def predict_autoregressive(self, x: np.ndarray, steps: int) -> np.ndarray:
        """Multi-step prediction by feeding each prediction back in.

        The deployment-style alternative to the parallel k-step heads:
        predict one phrase with head 0, slide it into the history window,
        and re-run the network — so a k-step prediction costs k forward
        passes (the per-step time growth of the paper's Figure 10).
        Returns predicted ids of shape ``(B, steps)``.
        """
        if not self._fitted:
            raise NotFittedError("SequenceClassifier.fit has not run")
        if steps < 1:
            raise ShapeError(f"steps must be >= 1, got {steps}")
        window = np.array(x, dtype=np.int64, copy=True)
        if window.ndim != 2:
            raise ShapeError(f"input ids must be (B, T), got {window.shape}")
        out = np.empty((window.shape[0], steps), dtype=np.int64)
        for k in range(steps):
            logits = self.forward(window)[0]
            nxt = np.argmax(logits, axis=-1)
            out[:, k] = nxt
            window = np.concatenate([window[:, 1:], nxt[:, None]], axis=1)
        return out

    def predict_topk(self, x: np.ndarray, k: int) -> np.ndarray:
        """Top-*k* candidate phrase ids per step, shape ``(B, steps, k)``.

        This is the primitive behind DeepLog-style detection: an observed
        key is anomalous when absent from the top-*g* predictions.
        """
        if k < 1 or k > self.vocab_size:
            raise ShapeError(f"k must be in [1, {self.vocab_size}], got {k}")
        logits = self.predict_logits(x)
        part = np.argpartition(-logits, k - 1, axis=-1)[..., :k]
        return part

    def accuracy(self, x: np.ndarray, y: np.ndarray) -> float:
        """Mean exact-match accuracy over all steps."""
        pred = self.predict_next(x)
        y = np.asarray(y)
        if pred.shape != y.shape:
            raise ShapeError(f"shape mismatch: {pred.shape} vs {y.shape}")
        return float((pred == y).mean())

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Persist architecture metadata and weights to an ``.npz`` file."""
        meta = {
            "kind": "SequenceClassifier",
            "vocab_size": self.vocab_size,
            "embed_dim": self.embed_dim,
            "hidden_size": self.hidden_size,
            "num_layers": self.num_layers,
            "steps": self.steps,
            "seed": self.seed,
            "fitted": self._fitted,
            "backbone": self.backbone_name,
            "backbone_params": self.backbone_params,
        }
        arrays = {k.replace(".", "__"): v for k, v in self.params().items()}
        np.savez(path, __meta__=json.dumps(meta), **arrays)

    @classmethod
    def load(cls, path: str | Path) -> "SequenceClassifier":
        """Rebuild a saved classifier; inverse of :meth:`save`."""
        try:
            data = np.load(path, allow_pickle=False)
            meta = json.loads(str(data["__meta__"]))
        except (OSError, KeyError, ValueError) as exc:
            raise SerializationError(f"cannot load model from {path}") from exc
        if meta.get("kind") != "SequenceClassifier":
            raise SerializationError(f"{path} does not hold a SequenceClassifier")
        model = cls(
            meta["vocab_size"],
            embed_dim=meta["embed_dim"],
            hidden_size=meta["hidden_size"],
            num_layers=meta["num_layers"],
            steps=meta["steps"],
            seed=meta["seed"],
            # Files written before the model zoo carry no backbone field;
            # they are implicitly the paper's LSTM.
            backbone=meta.get("backbone", "lstm"),
            backbone_params=meta.get("backbone_params", {}),
        )
        params = model.params()
        for key, arr in params.items():
            stored = data[key.replace(".", "__")]
            if stored.shape != arr.shape:
                raise SerializationError(f"shape mismatch for {key} in {path}")
            arr[...] = stored
        model._fitted = bool(meta.get("fitted", False))
        return model


class SequenceRegressor:
    """Continuous sequence regressor: backbone -> linear head, MSE loss.

    Phase 2 trains it on windows of ``(dT, phrase_id)`` 2-state vectors
    with RMSprop (Table 5); phase 3 reuses the trained weights for
    per-node inference.  ``backbone`` names a model-zoo family
    (``lstm``/``tcn``/``attention``).
    """

    def __init__(
        self,
        input_dim: int,
        *,
        output_dim: int | None = None,
        hidden_size: int = 64,
        num_layers: int = 2,
        seed: int = 0,
        backbone: str = "lstm",
        backbone_params: Mapping[str, object] | None = None,
    ) -> None:
        if input_dim < 1:
            raise ShapeError(f"input_dim must be >= 1, got {input_dim}")
        rng = np.random.default_rng(seed)
        self.input_dim = input_dim
        self.output_dim = output_dim if output_dim is not None else input_dim
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        self.seed = seed
        self.backbone_name = backbone
        self.backbone_params = dict(backbone_params or {})
        self.backbone = build_backbone(
            backbone, input_dim, hidden_size, num_layers, rng,
            self.backbone_params,
        )
        self.head = Dense(hidden_size, self.output_dim, rng)
        self.loss_fn = MeanSquaredError()
        self.history: list[float] = []
        self._fitted = False

    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Predict the next sample for each ``(B, T, D)`` window: ``(B, D_out)``."""
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 3 or x.shape[2] != self.input_dim:
            raise ShapeError(
                f"input must be (B, T, {self.input_dim}), got {x.shape}"
            )
        hs = self.backbone.forward(x)
        self._last_hs_shape = hs.shape
        return self.head.forward(hs[:, -1, :])

    def _backward(self, dy: np.ndarray) -> None:
        B, T, H = self._last_hs_shape
        dlast = self.head.backward(dy)
        dhs = np.zeros((B, T, H))
        dhs[:, -1, :] = dlast
        self.backbone.backward(dhs)

    def _zero_grad(self) -> None:
        self.backbone.zero_grad()
        self.head.zero_grad()

    def params(self) -> dict[str, np.ndarray]:
        """All trainable parameters, namespaced per sub-module."""
        return _merge_params(self.backbone.params(), self.head.params())

    def grads(self) -> dict[str, np.ndarray]:
        """All gradients, namespaced like :meth:`params`."""
        return _merge_params(self.backbone.grads(), self.head.grads())

    # ------------------------------------------------------------------
    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        *,
        epochs: int = 30,
        batch_size: int = 32,
        optimizer: _OptimizerBase | None = None,
        grad_clip: float = 5.0,
        rng: np.random.Generator | None = None,
        checkpoint=None,
    ) -> list[float]:
        """Train on ``(N, T, D)`` windows and ``(N, D_out)`` targets.

        ``checkpoint`` behaves as in :meth:`SequenceClassifier.fit`:
        per-epoch atomic checkpoints with bit-identical resume.
        """
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if x.ndim != 3 or y.shape != (x.shape[0], self.output_dim):
            raise ShapeError(
                f"expected x=(N,T,{self.input_dim}), y=(N,{self.output_dim}); "
                f"got {x.shape}, {y.shape}"
            )
        if len(x) == 0:
            raise TrainingError("no training windows")
        opt = optimizer if optimizer is not None else RMSprop(0.002)
        rng = rng if rng is not None else np.random.default_rng(self.seed)
        start_epoch = 0
        if checkpoint is not None:
            start_epoch = _resume_fit(self, checkpoint, opt, rng)
        with current_tracer().span(
            "nn.regressor.fit", windows=len(x), epochs=epochs
        ) as fit_span:
            for epoch in range(start_epoch, epochs):
                tick = time.perf_counter()
                epoch_loss = 0.0
                batches = 0
                for idx in batch_iterator(len(x), batch_size, rng):
                    self._zero_grad()
                    pred = self.forward(x[idx])
                    loss = self.loss_fn.loss(pred, y[idx])
                    self._backward(self.loss_fn.grad(pred, y[idx]))
                    grads = self.grads()
                    clip_gradients(grads, grad_clip)
                    opt.step(self.params(), grads)
                    epoch_loss += loss
                    batches += 1
                self.history.append(epoch_loss / max(batches, 1))
                _observe_epoch(
                    "nn.regressor",
                    epoch,
                    self.history[-1],
                    (time.perf_counter() - tick) * 1e3,
                )
                if checkpoint is not None:
                    _checkpoint_fit(self, checkpoint, opt, rng, epoch + 1)
            if self.history:
                fit_span.set(final_loss=self.history[-1])
        self._fitted = True
        return self.history

    # ------------------------------------------------------------------
    def predict(self, x: np.ndarray) -> np.ndarray:
        """Next-sample predictions, shape ``(B, D_out)``."""
        if not self._fitted:
            raise NotFittedError("SequenceRegressor.fit has not run")
        return self.forward(x)

    def predict_infer(self, x: np.ndarray) -> np.ndarray:
        """Batch-major inference predictions, shape ``(B, D_out)``.

        The serving-path twin of :meth:`predict`: same validation and
        semantics, but routed through the backbone's cache-free
        ``forward_infer`` kernel and the row-stable
        :meth:`Dense.forward_stable` head, so each window's prediction
        is bitwise independent of how many other windows share the
        batch (for B >= 2).  All batched phase-3 scoring goes through
        here; outputs may differ from :meth:`predict` by 1-2 ulp (the
        training forward keeps its own rounding for cache stability).
        """
        if not self._fitted:
            raise NotFittedError("SequenceRegressor.fit has not run")
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 3 or x.shape[2] != self.input_dim:
            raise ShapeError(
                f"input must be (B, T, {self.input_dim}), got {x.shape}"
            )
        hs = self.backbone.forward_infer(x)
        return self.head.forward_stable(hs[:, -1, :])

    def mse_per_sample(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Per-window MSE between prediction and target, shape ``(B,)``.

        This is the phase-3 match statistic compared against the 0.5
        threshold.
        """
        pred = self.predict(x)
        y = np.asarray(y, dtype=np.float64)
        if y.shape != pred.shape:
            raise ShapeError(f"target shape {y.shape} != {pred.shape}")
        diff = pred - y
        return np.mean(diff * diff, axis=1)

    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Persist architecture metadata and weights to an ``.npz`` file."""
        meta = {
            "kind": "SequenceRegressor",
            "input_dim": self.input_dim,
            "output_dim": self.output_dim,
            "hidden_size": self.hidden_size,
            "num_layers": self.num_layers,
            "seed": self.seed,
            "fitted": self._fitted,
            "backbone": self.backbone_name,
            "backbone_params": self.backbone_params,
        }
        arrays = {k.replace(".", "__"): v for k, v in self.params().items()}
        np.savez(path, __meta__=json.dumps(meta), **arrays)

    @classmethod
    def load(cls, path: str | Path) -> "SequenceRegressor":
        """Rebuild a saved regressor; inverse of :meth:`save`."""
        try:
            data = np.load(path, allow_pickle=False)
            meta = json.loads(str(data["__meta__"]))
        except (OSError, KeyError, ValueError) as exc:
            raise SerializationError(f"cannot load model from {path}") from exc
        if meta.get("kind") != "SequenceRegressor":
            raise SerializationError(f"{path} does not hold a SequenceRegressor")
        model = cls(
            meta["input_dim"],
            output_dim=meta["output_dim"],
            hidden_size=meta["hidden_size"],
            num_layers=meta["num_layers"],
            seed=meta["seed"],
            # Pre-model-zoo files carry no backbone field: implicitly LSTM.
            backbone=meta.get("backbone", "lstm"),
            backbone_params=meta.get("backbone_params", {}),
        )
        params = model.params()
        for key, arr in params.items():
            stored = data[key.replace(".", "__")]
            if stored.shape != arr.shape:
                raise SerializationError(f"shape mismatch for {key} in {path}")
            arr[...] = stored
        model._fitted = bool(meta.get("fitted", False))
        return model
