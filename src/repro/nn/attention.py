"""Single-head causal self-attention backbone with learned positions.

A small attention model in the transformer family, sized for Desh's
short history windows (8 phrase ids in phase 1, 5 chain vectors in
phases 2-3):

1. an input projection lifts ``(B, T, input_size)`` to the model width;
2. a **learned positional encoding** table is added (the model has no
   recurrence or convolution, so order information must be injected);
3. ``num_layers`` single-head **scaled dot-product attention** layers
   with a causal mask (position ``t`` attends to ``0..t`` only) and a
   residual connection refine the representation;
4. a causal **mean-pool head** finishes: output ``t`` is the mean of
   the attended representations at positions ``0..t``, so the last
   position — the summary the sequence models read — is the mean pool
   over the whole window while every prefix stays strictly causal.

All matmuls keep the batch axis stacked (``(B, T, H)`` against 2-D
weights, and per-sequence ``(T, H) @ (H, T)`` score products), so NumPy
runs one GEMM of fixed shape per sequence: a window's outputs are
bitwise independent of how many other windows share the batch, matching
the LSTM and TCN inference kernels.

Implements the model-zoo backbone protocol: ``forward`` / ``backward``
(training, cached), ``forward_infer`` (cache-free, thread-safe), and
``params`` / ``grads`` / ``zero_grad``.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

import numpy as np

from ..errors import ShapeError
from .activations import softmax
from .contracts import tensor_contract
from .initializers import glorot_uniform
from .layers import Dense

__all__ = ["AttentionLayer", "AttentionBackbone"]


class AttentionLayer:
    """One single-head causal self-attention layer with a residual add.

    ``out = h + softmax(mask(Q K^T / sqrt(H))) V Wo`` with
    ``Q = h Wq``, ``K = h Wk``, ``V = h Wv``; the mask zeroes attention
    to future positions.
    """

    def __init__(self, hidden_size: int, rng: np.random.Generator) -> None:
        if hidden_size <= 0:
            raise ShapeError(f"hidden_size must be >= 1, got {hidden_size}")
        self.hidden_size = hidden_size
        self.Wq = glorot_uniform(rng, hidden_size, hidden_size)
        self.Wk = glorot_uniform(rng, hidden_size, hidden_size)
        self.Wv = glorot_uniform(rng, hidden_size, hidden_size)
        self.Wo = glorot_uniform(rng, hidden_size, hidden_size)
        self.dWq = np.zeros_like(self.Wq)
        self.dWk = np.zeros_like(self.Wk)
        self.dWv = np.zeros_like(self.Wv)
        self.dWo = np.zeros_like(self.Wo)
        self._cache: Optional[tuple] = None

    @staticmethod
    def _causal_mask(T: int) -> np.ndarray:
        """``(T, T)`` additive mask: ``-inf`` strictly above the diagonal."""
        mask = np.zeros((T, T), dtype=np.float64)
        mask[np.triu_indices(T, k=1)] = -np.inf
        return mask

    def _attend(self, h: np.ndarray) -> tuple:
        """The attention tensors for *h*: ``(Q, K, V, A, ctx, out)``."""
        T = h.shape[1]
        scale = 1.0 / math.sqrt(self.hidden_size)
        q = h @ self.Wq
        k = h @ self.Wk
        v = h @ self.Wv
        scores = (q @ k.transpose(0, 2, 1)) * scale + self._causal_mask(T)
        attn = softmax(scores, axis=-1)
        ctx = attn @ v
        out = h + ctx @ self.Wo
        return q, k, v, attn, ctx, out

    @tensor_contract("(B, T, hidden_size):float -> (B, T, hidden_size):float")
    def forward(self, h: np.ndarray) -> np.ndarray:
        """Attend causally; caches the attention tensors for backward."""
        q, k, v, attn, ctx, out = self._attend(h)
        self._cache = (h, q, k, v, attn, ctx)
        return out

    @tensor_contract("(B, T, hidden_size):float -> (B, T, hidden_size):float")
    def forward_infer(self, h: np.ndarray) -> np.ndarray:
        """Cache-free forward for inference (safe to call concurrently)."""
        return self._attend(h)[-1]

    @tensor_contract("(B, T, hidden_size):float -> (B, T, hidden_size):float")
    def backward(self, dout: np.ndarray) -> np.ndarray:
        """Backprop through the residual, projection and softmax."""
        if self._cache is None:
            raise ShapeError("AttentionLayer.backward called before forward")
        h, q, k, v, attn, ctx = self._cache
        H = self.hidden_size
        scale = 1.0 / math.sqrt(H)
        ctx2 = ctx.reshape(-1, H)
        dout2 = dout.reshape(-1, H)
        self.dWo += ctx2.T @ dout2
        dctx = dout @ self.Wo.T
        dattn = dctx @ v.transpose(0, 2, 1)
        dv = attn.transpose(0, 2, 1) @ dctx
        # Softmax Jacobian rowwise; masked columns have attn == 0, so
        # their score gradient vanishes without touching the -inf mask.
        dscores = attn * (
            dattn - np.sum(dattn * attn, axis=-1, keepdims=True)
        )
        dscores *= scale
        dq = dscores @ k
        dk = dscores.transpose(0, 2, 1) @ q
        h2 = h.reshape(-1, H)
        self.dWq += h2.T @ dq.reshape(-1, H)
        self.dWk += h2.T @ dk.reshape(-1, H)
        self.dWv += h2.T @ dv.reshape(-1, H)
        dh = dout.copy()  # residual path
        dh += dq @ self.Wq.T
        dh += dk @ self.Wk.T
        dh += dv @ self.Wv.T
        return dh

    # ------------------------------------------------------------------
    def params(self) -> Dict[str, np.ndarray]:
        """Live views of the projection matrices, keyed by name."""
        return {"Wq": self.Wq, "Wk": self.Wk, "Wv": self.Wv, "Wo": self.Wo}

    def grads(self) -> Dict[str, np.ndarray]:
        """Gradient accumulators matching :meth:`params`."""
        return {"Wq": self.dWq, "Wk": self.dWk, "Wv": self.dWv, "Wo": self.dWo}

    def zero_grad(self) -> None:
        """Clear the gradient accumulators in place."""
        self.dWq[...] = 0.0
        self.dWk[...] = 0.0
        self.dWv[...] = 0.0
        self.dWo[...] = 0.0


class AttentionBackbone:
    """Projection + learned positions + attention stack + causal mean pool.

    Drop-in replacement for :class:`~repro.nn.lstm.StackedLSTM` in the
    sequence models; ``num_layers`` counts attention layers.
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        num_layers: int,
        rng: np.random.Generator,
        *,
        max_len: int = 256,
    ) -> None:
        if num_layers < 1:
            raise ShapeError(f"num_layers must be >= 1, got {num_layers}")
        if max_len < 1:
            raise ShapeError(f"max_len must be >= 1, got {max_len}")
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        self.max_len = max_len
        self.proj = Dense(input_size, hidden_size, rng)
        self.pos = rng.uniform(-0.05, 0.05, size=(max_len, hidden_size))
        self.dpos = np.zeros_like(self.pos)
        self.layers = [AttentionLayer(hidden_size, rng) for _ in range(num_layers)]
        self._T: Optional[int] = None

    # ------------------------------------------------------------------
    def _validate(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 3 or x.shape[2] != self.input_size:
            raise ShapeError(
                f"input must be (B, T, {self.input_size}), got {x.shape}"
            )
        if x.shape[1] > self.max_len:
            raise ShapeError(
                f"sequence length {x.shape[1]} exceeds max_len {self.max_len}"
            )
        return x

    @staticmethod
    def _causal_mean(h: np.ndarray) -> np.ndarray:
        """Prefix means along time: ``out[t] = mean(h[0..t])``."""
        T = h.shape[1]
        inv = 1.0 / np.arange(1, T + 1, dtype=np.float64)
        return np.cumsum(h, axis=1) * inv[None, :, None]

    @tensor_contract("(B, T, input_size):float -> (B, T, hidden_size):float")
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Project, attend and pool, caching for :meth:`backward`."""
        x = self._validate(x)
        T = x.shape[1]
        self._T = T
        h = self.proj.forward(x) + self.pos[:T]
        for layer in self.layers:
            h = layer.forward(h)
        return self._causal_mean(h)

    @tensor_contract("(B, T, input_size):float -> (B, T, hidden_size):float")
    def forward_infer(self, x: np.ndarray) -> np.ndarray:
        """Cache-free forward for the batch-major inference path.

        Writes no instance state, so concurrent calls are safe and each
        row's output is bitwise independent of its batch neighbours.
        """
        x = self._validate(x)
        T = x.shape[1]
        h = x @ self.proj.W + self.proj.b + self.pos[:T]
        for layer in self.layers:
            h = layer.forward_infer(h)
        return self._causal_mean(h)

    @tensor_contract("(B, T, hidden_size):float -> (B, T, input_size):float")
    def backward(self, dout: np.ndarray) -> np.ndarray:
        """Backprop through pool, attention stack, positions, projection."""
        if self._T is None:
            raise ShapeError("AttentionBackbone.backward called before forward")
        T = self._T
        inv = 1.0 / np.arange(1, T + 1, dtype=np.float64)
        # d/dh of the prefix mean: h[s] feeds every pooled t >= s with
        # weight 1/(t+1) — a reversed cumulative sum of dout/(t+1).
        dh = np.cumsum((dout * inv[None, :, None])[:, ::-1, :], axis=1)[:, ::-1, :]
        for layer in reversed(self.layers):
            dh = layer.backward(dh)
        self.dpos[:T] += dh.sum(axis=0)
        return self.proj.backward(dh)

    # ------------------------------------------------------------------
    def params(self) -> Dict[str, np.ndarray]:
        """All trainable parameters, namespaced per sub-module."""
        out: Dict[str, np.ndarray] = {
            f"proj.{k}": v for k, v in self.proj.params().items()
        }
        out["pos"] = self.pos
        for i, layer in enumerate(self.layers):
            out.update({f"a{i}.{k}": v for k, v in layer.params().items()})
        return out

    def grads(self) -> Dict[str, np.ndarray]:
        """All gradients, namespaced like :meth:`params`."""
        out: Dict[str, np.ndarray] = {
            f"proj.{k}": v for k, v in self.proj.grads().items()
        }
        out["pos"] = self.dpos
        for i, layer in enumerate(self.layers):
            out.update({f"a{i}.{k}": v for k, v in layer.grads().items()})
        return out

    def zero_grad(self) -> None:
        """Clear every gradient accumulator in place."""
        self.proj.zero_grad()
        self.dpos[...] = 0.0
        for layer in self.layers:
            layer.zero_grad()
