"""Sequence-model quality metrics: perplexity and top-k accuracy.

Perplexity is the standard language-model diagnostic for next-phrase
prediction quality (lower is better; equals the vocabulary size for a
uniform predictor).  Top-k accuracy is the quantity DeepLog's top-g
anomaly rule rests on: an entry is "normal" when the observed key is
within the model's k most likely continuations.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from .activations import log_softmax

__all__ = ["perplexity", "topk_accuracy"]


def perplexity(logits: np.ndarray, targets: np.ndarray) -> float:
    """exp(mean negative log-likelihood) of *targets* under *logits*.

    Parameters
    ----------
    logits:
        ``(N, C)`` unnormalized scores.
    targets:
        ``(N,)`` integer class ids.
    """
    logits = np.asarray(logits, dtype=np.float64)
    targets = np.asarray(targets)
    if logits.ndim != 2 or targets.shape != (logits.shape[0],):
        raise ShapeError(
            f"need logits (N, C) and targets (N,), got {logits.shape}, "
            f"{targets.shape}"
        )
    if not np.issubdtype(targets.dtype, np.integer):
        raise ShapeError(f"targets must be integers, got {targets.dtype}")
    if targets.size == 0:
        raise ShapeError("cannot compute perplexity of an empty batch")
    if targets.min() < 0 or targets.max() >= logits.shape[1]:
        raise ShapeError("target class out of range")
    lp = log_softmax(logits, axis=-1)
    nll = -lp[np.arange(len(targets)), targets].mean()
    return float(np.exp(nll))


def topk_accuracy(logits: np.ndarray, targets: np.ndarray, k: int) -> float:
    """Fraction of targets within the top-*k* scored classes."""
    logits = np.asarray(logits, dtype=np.float64)
    targets = np.asarray(targets)
    if logits.ndim != 2 or targets.shape != (logits.shape[0],):
        raise ShapeError(
            f"need logits (N, C) and targets (N,), got {logits.shape}, "
            f"{targets.shape}"
        )
    if not 1 <= k <= logits.shape[1]:
        raise ShapeError(f"k must be in [1, {logits.shape[1]}], got {k}")
    if targets.size == 0:
        raise ShapeError("cannot compute accuracy of an empty batch")
    top = np.argpartition(-logits, k - 1, axis=-1)[:, :k]
    hits = (top == targets[:, None]).any(axis=1)
    return float(hits.mean())
