"""Dense and embedding layers with explicit forward/backward passes.

Layers follow a uniform protocol used by the optimizers:

* ``params()`` returns a dict of name -> parameter array (views, mutated
  in place by optimizers),
* ``grads()`` returns the matching dict of gradient accumulators,
* ``zero_grad()`` clears the accumulators in place.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..errors import ShapeError
from .contracts import tensor_contract
from .initializers import glorot_uniform, zeros

__all__ = ["Dense", "Embedding"]


class Dense:
    """Affine layer ``y = x @ W + b`` over the trailing axis.

    Accepts inputs of shape ``(..., in_dim)``; all leading axes are
    treated as batch dimensions.
    """

    def __init__(
        self, in_dim: int, out_dim: int, rng: np.random.Generator
    ) -> None:
        if in_dim <= 0 or out_dim <= 0:
            raise ShapeError(f"bad Dense dims {in_dim}->{out_dim}")
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.W = glorot_uniform(rng, in_dim, out_dim)
        self.b = zeros(out_dim)
        self.dW = np.zeros_like(self.W)
        self.db = np.zeros_like(self.b)
        self._x: Optional[np.ndarray] = None

    @tensor_contract("(..., in_dim):float -> (..., out_dim):float")
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Affine map over the trailing axis; caches the input for backward."""
        if x.shape[-1] != self.in_dim:
            raise ShapeError(
                f"Dense expected trailing dim {self.in_dim}, got {x.shape}"
            )
        self._x = x
        return x @ self.W + self.b

    @tensor_contract("(B, in_dim):float -> (B, out_dim):float")
    def forward_stable(self, x: np.ndarray) -> np.ndarray:
        """Row-stable affine map for the batch-major inference path.

        BLAS picks different kernels for ``(M, K) @ (K, N)`` depending
        on M when N is skinny, so ``forward``'s GEMM can round row i of
        a stacked batch differently from the same row scored alone (a
        1-ulp drift that breaks the batched-vs-sequential bit-identity
        guarantee).  This variant computes each output column as an
        elementwise multiply-reduce, which NumPy evaluates identically
        per row regardless of how many rows ride along.  Costs
        ``out_dim`` passes over ``x`` — cheap for the skinny prediction
        heads this path serves.  Does not cache for backward.
        """
        if x.ndim != 2 or x.shape[1] != self.in_dim:
            raise ShapeError(
                f"Dense expected (B, {self.in_dim}), got {x.shape}"
            )
        out = np.empty((x.shape[0], self.out_dim))
        for j in range(self.out_dim):
            # deshlint: allow[P1] per-column on purpose — a fused GEMM
            # would break the batched-vs-sequential bit-identity guarantee
            np.sum(x * self.W[:, j], axis=1, out=out[:, j])
        out += self.b
        return out

    @tensor_contract("(..., out_dim):float -> (..., in_dim):float")
    def backward(self, dy: np.ndarray) -> np.ndarray:
        """Accumulate parameter grads; return gradient w.r.t. the input."""
        if self._x is None:
            raise ShapeError("Dense.backward called before forward")
        x = self._x
        x2 = x.reshape(-1, self.in_dim)
        dy2 = dy.reshape(-1, self.out_dim)
        self.dW += x2.T @ dy2
        self.db += dy2.sum(axis=0)
        return dy @ self.W.T

    def params(self) -> Dict[str, np.ndarray]:
        """Live views of the parameter arrays, keyed by name."""
        return {"W": self.W, "b": self.b}

    def grads(self) -> Dict[str, np.ndarray]:
        """Gradient accumulators matching :meth:`params`."""
        return {"W": self.dW, "b": self.db}

    def zero_grad(self) -> None:
        """Clear the gradient accumulators in place."""
        self.dW[...] = 0.0
        self.db[...] = 0.0


class Embedding:
    """Lookup table mapping integer ids to dense vectors.

    Forward takes an integer array of any shape and returns vectors with
    one extra trailing axis of size ``dim``.  Backward scatters gradients
    back into the table rows with ``np.add.at`` (duplicate ids accumulate).
    """

    def __init__(self, vocab_size: int, dim: int, rng: np.random.Generator) -> None:
        if vocab_size <= 0 or dim <= 0:
            raise ShapeError(f"bad Embedding dims {vocab_size}x{dim}")
        self.vocab_size = vocab_size
        self.dim = dim
        self.W = rng.uniform(-0.05, 0.05, size=(vocab_size, dim))
        self.dW = np.zeros_like(self.W)
        self._ids: Optional[np.ndarray] = None

    @tensor_contract("(...):int -> (..., dim):float")
    def forward(self, ids: np.ndarray) -> np.ndarray:
        """Look up vectors for integer ids; caches ids for backward."""
        ids = np.asarray(ids)
        if not np.issubdtype(ids.dtype, np.integer):
            raise ShapeError(f"Embedding ids must be integers, got {ids.dtype}")
        if ids.size and (ids.min() < 0 or ids.max() >= self.vocab_size):
            raise ShapeError(
                f"Embedding ids out of range [0, {self.vocab_size}): "
                f"[{ids.min()}, {ids.max()}]"
            )
        self._ids = ids
        return self.W[ids]

    @tensor_contract("(..., dim):float -> None")
    def backward(self, dvecs: np.ndarray) -> None:
        """Scatter-accumulate gradients into the embedding rows."""
        if self._ids is None:
            raise ShapeError("Embedding.backward called before forward")
        np.add.at(self.dW, self._ids.reshape(-1), dvecs.reshape(-1, self.dim))

    def load_vectors(self, vectors: np.ndarray) -> None:
        """Initialize the table from pretrained vectors (skip-gram output)."""
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.shape != self.W.shape:
            raise ShapeError(
                f"pretrained vectors shape {vectors.shape} != {self.W.shape}"
            )
        self.W[...] = vectors

    def params(self) -> Dict[str, np.ndarray]:
        """Live view of the embedding table, keyed by name."""
        return {"W": self.W}

    def grads(self) -> Dict[str, np.ndarray]:
        """Gradient accumulator matching :meth:`params`."""
        return {"W": self.dW}

    def zero_grad(self) -> None:
        """Clear the gradient accumulator in place."""
        self.dW[...] = 0.0
