"""Temporal convolutional network backbone (causal dilated Conv1d).

A from-scratch NumPy TCN in the shape popularized by Bai et al. and the
Prognostika disk-failure predictor: a stack of residual blocks, each
holding two causal dilated convolutions with ReLU activations, dilation
doubling per level so ``num_layers`` levels with kernel ``k`` see a
receptive field of ``1 + 2 * (k - 1) * (2^levels - 1)`` timesteps.

The convolution is im2col-based: the input is left-padded with
``(k - 1) * dilation`` zero rows (strict causality — output t never
reads an input after t), the ``k`` dilated taps are gathered into a
``(B, T, k * C_in)`` column tensor, and one matmul against the
``(k * C_in, C_out)`` weight applies every filter at every timestep.
Backward scatters the column gradient back through the same ``k`` tap
slices, so both directions are loop-free over batch and time.

The column matmul deliberately keeps the batch axis stacked
(``(B, T, kC) @ (kC, C_out)``): NumPy dispatches one GEMM of fixed
``M = T`` per sequence, so a window's outputs are bitwise independent
of how many other windows ride in the batch — the same guarantee the
LSTM inference kernel provides to :class:`~repro.nn.batched.BatchedScorer`.

The backbone implements the model-zoo protocol consumed by
:class:`~repro.nn.model.SequenceClassifier` /
:class:`~repro.nn.model.SequenceRegressor`: ``forward`` / ``backward``
(training, with caches), ``forward_infer`` (cache-free, thread-safe),
and ``params`` / ``grads`` / ``zero_grad``.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..errors import ShapeError
from .activations import relu
from .contracts import tensor_contract
from .initializers import glorot_uniform, zeros

__all__ = ["CausalConv1d", "TemporalBlock", "TCNBackbone"]


class CausalConv1d:
    """Dilated causal 1-D convolution over ``(B, T, C)`` sequences.

    Output position ``t`` convolves inputs ``t, t - d, ..., t - (k-1)d``
    (missing history reads as zeros), so the layer is causal by
    construction.  Weights are stored pre-flattened as
    ``(k * in_channels, out_channels)`` for the im2col matmul.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        dilation: int,
        rng: np.random.Generator,
    ) -> None:
        if in_channels <= 0 or out_channels <= 0:
            raise ShapeError(
                f"bad conv channels {in_channels}->{out_channels}"
            )
        if kernel_size < 1 or dilation < 1:
            raise ShapeError(
                f"kernel_size and dilation must be >= 1, got "
                f"{kernel_size}, {dilation}"
            )
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.dilation = dilation
        self.W = glorot_uniform(rng, kernel_size * in_channels, out_channels)
        self.b = zeros(out_channels)
        self.dW = np.zeros_like(self.W)
        self.db = np.zeros_like(self.b)
        self._cols: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def _im2col(self, x: np.ndarray) -> np.ndarray:
        """Gather the dilated taps: ``(B, T, C)`` -> ``(B, T, k * C)``.

        Tap ``j`` of output ``t`` is input ``t - (k - 1 - j) * dilation``
        (zero when negative), realized as ``k`` shifted views over the
        left-padded input — no index matrices, no per-timestep loop.
        """
        B, T, C = x.shape
        k, d = self.kernel_size, self.dilation
        pad = (k - 1) * d
        xp = np.concatenate(
            [np.zeros((B, pad, C), dtype=np.float64), x], axis=1
        )
        cols = np.empty((B, T, k, C), dtype=np.float64)
        for j in range(k):
            # deshlint: allow[P1] k shifted views (k is a small constant);
            # a gather matrix would copy the same data with extra indexing
            cols[:, :, j, :] = xp[:, j * d : j * d + T, :]
        return cols.reshape(B, T, k * C)

    def _validate(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 3 or x.shape[2] != self.in_channels:
            raise ShapeError(
                f"conv input must be (B, T, {self.in_channels}), got {x.shape}"
            )
        return x

    @tensor_contract("(B, T, in_channels):float -> (B, T, out_channels):float")
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Convolve causally; caches the column tensor for backward."""
        x = self._validate(x)
        cols = self._im2col(x)
        self._cols = cols
        return cols @ self.W + self.b

    @tensor_contract("(B, T, in_channels):float -> (B, T, out_channels):float")
    def forward_infer(self, x: np.ndarray) -> np.ndarray:
        """Cache-free forward for inference (safe to call concurrently)."""
        x = self._validate(x)
        return self._im2col(x) @ self.W + self.b

    @tensor_contract("(B, T, out_channels):float -> (B, T, in_channels):float")
    def backward(self, dy: np.ndarray) -> np.ndarray:
        """Accumulate weight grads; scatter the taps back to the input."""
        if self._cols is None:
            raise ShapeError("CausalConv1d.backward called before forward")
        B, T, _ = dy.shape
        k, d, C = self.kernel_size, self.dilation, self.in_channels
        cols2 = self._cols.reshape(-1, k * C)
        dy2 = dy.reshape(-1, self.out_channels)
        self.dW += cols2.T @ dy2
        self.db += dy2.sum(axis=0)
        dcols = (dy @ self.W.T).reshape(B, T, k, C)
        pad = (k - 1) * d
        dxp = np.zeros((B, T + pad, C), dtype=np.float64)
        for j in range(k):
            # deshlint: allow[P1] inverse of the k forward tap views
            dxp[:, j * d : j * d + T, :] += dcols[:, :, j, :]
        return dxp[:, pad:, :]

    # ------------------------------------------------------------------
    def params(self) -> Dict[str, np.ndarray]:
        """Live views of the parameter arrays, keyed by name."""
        return {"W": self.W, "b": self.b}

    def grads(self) -> Dict[str, np.ndarray]:
        """Gradient accumulators matching :meth:`params`."""
        return {"W": self.dW, "b": self.db}

    def zero_grad(self) -> None:
        """Clear the gradient accumulators in place."""
        self.dW[...] = 0.0
        self.db[...] = 0.0


class TemporalBlock:
    """One TCN residual level: conv -> ReLU -> conv, plus a skip path.

    The skip path is the identity when channel counts match and a 1x1
    convolution otherwise; the block output is
    ``relu(conv2(relu(conv1(x))) + skip(x))``.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        dilation: int,
        rng: np.random.Generator,
    ) -> None:
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.conv1 = CausalConv1d(
            in_channels, out_channels, kernel_size, dilation, rng
        )
        self.conv2 = CausalConv1d(
            out_channels, out_channels, kernel_size, dilation, rng
        )
        self.skip: Optional[CausalConv1d] = None
        if in_channels != out_channels:
            self.skip = CausalConv1d(in_channels, out_channels, 1, 1, rng)
        self._mask1: Optional[np.ndarray] = None
        self._mask2: Optional[np.ndarray] = None

    @tensor_contract("(B, T, in_channels):float -> (B, T, out_channels):float")
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Residual double convolution; caches the ReLU masks."""
        h = relu(self.conv1.forward(x))
        self._mask1 = h > 0
        z = self.conv2.forward(h)
        res = x if self.skip is None else self.skip.forward(x)
        out = relu(z + res)
        self._mask2 = out > 0
        return out

    @tensor_contract("(B, T, in_channels):float -> (B, T, out_channels):float")
    def forward_infer(self, x: np.ndarray) -> np.ndarray:
        """Cache-free forward for inference (safe to call concurrently)."""
        h = relu(self.conv1.forward_infer(x))
        z = self.conv2.forward_infer(h)
        res = x if self.skip is None else self.skip.forward_infer(x)
        return relu(z + res)

    @tensor_contract("(B, T, out_channels):float -> (B, T, in_channels):float")
    def backward(self, dy: np.ndarray) -> np.ndarray:
        """Backprop through both convolutions and the skip path."""
        if self._mask1 is None or self._mask2 is None:
            raise ShapeError("TemporalBlock.backward called before forward")
        dz = dy * self._mask2
        dh = self.conv2.backward(dz) * self._mask1
        dx = self.conv1.backward(dh)
        if self.skip is None:
            dx += dz
        else:
            dx += self.skip.backward(dz)
        return dx

    # ------------------------------------------------------------------
    def params(self) -> Dict[str, np.ndarray]:
        """All block parameters, namespaced per convolution."""
        out = {f"conv1.{k}": v for k, v in self.conv1.params().items()}
        out.update({f"conv2.{k}": v for k, v in self.conv2.params().items()})
        if self.skip is not None:
            out.update({f"skip.{k}": v for k, v in self.skip.params().items()})
        return out

    def grads(self) -> Dict[str, np.ndarray]:
        """All block gradients, namespaced like :meth:`params`."""
        out = {f"conv1.{k}": v for k, v in self.conv1.grads().items()}
        out.update({f"conv2.{k}": v for k, v in self.conv2.grads().items()})
        if self.skip is not None:
            out.update({f"skip.{k}": v for k, v in self.skip.grads().items()})
        return out

    def zero_grad(self) -> None:
        """Clear all gradient accumulators in place."""
        self.conv1.zero_grad()
        self.conv2.zero_grad()
        if self.skip is not None:
            self.skip.zero_grad()


class TCNBackbone:
    """Stack of temporal blocks with exponentially growing dilation.

    Drop-in replacement for :class:`~repro.nn.lstm.StackedLSTM` in the
    sequence models: maps ``(B, T, input_size)`` to
    ``(B, T, hidden_size)`` where position ``t`` summarizes the causal
    receptive field ending at ``t`` (the models read position ``T - 1``
    as the sequence summary, exactly as they read the LSTM's last
    hidden state).
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        num_layers: int,
        rng: np.random.Generator,
        *,
        kernel_size: int = 3,
    ) -> None:
        if num_layers < 1:
            raise ShapeError(f"num_layers must be >= 1, got {num_layers}")
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        self.kernel_size = kernel_size
        self.blocks = [
            TemporalBlock(
                input_size if i == 0 else hidden_size,
                hidden_size,
                kernel_size,
                2**i,
                rng,
            )
            for i in range(num_layers)
        ]

    @property
    def receptive_field(self) -> int:
        """Timesteps the last output position can see."""
        return 1 + 2 * (self.kernel_size - 1) * (2**self.num_layers - 1)

    @tensor_contract("(B, T, input_size):float -> (B, T, hidden_size):float")
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Run all blocks, caching activations for :meth:`backward`."""
        h = np.asarray(x, dtype=np.float64)
        for block in self.blocks:
            h = block.forward(h)
        return h

    @tensor_contract("(B, T, input_size):float -> (B, T, hidden_size):float")
    def forward_infer(self, x: np.ndarray) -> np.ndarray:
        """Cache-free forward for the batch-major inference path.

        Writes no instance state, so concurrent calls are safe and each
        row's output is bitwise independent of its batch neighbours
        (per-sequence GEMMs of fixed ``M = T``).
        """
        h = np.asarray(x, dtype=np.float64)
        for block in self.blocks:
            h = block.forward_infer(h)
        return h

    @tensor_contract("(B, T, hidden_size):float -> (B, T, input_size):float")
    def backward(self, dh: np.ndarray) -> np.ndarray:
        """Backprop through the block stack in reverse order."""
        for block in reversed(self.blocks):
            dh = block.backward(dh)
        return dh

    # ------------------------------------------------------------------
    def params(self) -> Dict[str, np.ndarray]:
        """All trainable parameters, namespaced ``b<level>.<name>``."""
        out: Dict[str, np.ndarray] = {}
        for i, block in enumerate(self.blocks):
            out.update({f"b{i}.{k}": v for k, v in block.params().items()})
        return out

    def grads(self) -> Dict[str, np.ndarray]:
        """All gradients, namespaced like :meth:`params`."""
        out: Dict[str, np.ndarray] = {}
        for i, block in enumerate(self.blocks):
            out.update({f"b{i}.{k}": v for k, v in block.grads().items()})
        return out

    def zero_grad(self) -> None:
        """Clear every block's gradient accumulators in place."""
        for block in self.blocks:
            block.zero_grad()
