"""Training harness: validation splits, early stopping, LR decay.

The paper trains for fixed epoch budgets; this harness adds the
engineering around that for production use — hold out a validation
fraction, stop when validation loss plateaus, optionally decay the
learning rate on plateau — while remaining a thin layer over the
models' own ``fit`` (one epoch per call, warm state).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol

import numpy as np

from ..errors import ConfigError, TrainingError
from ..obs import current_tracer, metrics_registry
from .optimizers import _OptimizerBase

__all__ = ["EarlyStoppingConfig", "TrainingHistory", "fit_with_validation"]


class _Fittable(Protocol):  # pragma: no cover - typing aid
    def fit(self, x, y, *, epochs, batch_size, optimizer, grad_clip, rng): ...


@dataclass(frozen=True)
class EarlyStoppingConfig:
    """Stop when validation loss fails to improve.

    Attributes
    ----------
    patience:
        Epochs without improvement tolerated before stopping.
    min_delta:
        Minimum decrease in validation loss that counts as improvement.
    val_fraction:
        Trailing fraction of the data held out for validation.
    max_epochs:
        Hard training budget.
    lr_decay:
        Multiplier applied to the optimizer's learning rate every time
        patience is half-exhausted (1.0 disables decay).
    """

    patience: int = 10
    min_delta: float = 1e-4
    val_fraction: float = 0.15
    max_epochs: int = 500
    lr_decay: float = 0.5

    def __post_init__(self) -> None:
        if self.patience < 1:
            raise ConfigError("patience must be >= 1")
        if self.min_delta < 0:
            raise ConfigError("min_delta must be >= 0")
        if not 0.0 < self.val_fraction < 1.0:
            raise ConfigError("val_fraction must be in (0, 1)")
        if self.max_epochs < 1:
            raise ConfigError("max_epochs must be >= 1")
        if not 0.0 < self.lr_decay <= 1.0:
            raise ConfigError("lr_decay must be in (0, 1]")


@dataclass
class TrainingHistory:
    """Per-epoch record of a validated training run."""

    train_losses: list[float] = field(default_factory=list)
    val_losses: list[float] = field(default_factory=list)
    stopped_early: bool = False
    best_epoch: int = -1

    @property
    def epochs_run(self) -> int:
        """Number of epochs actually trained."""
        return len(self.val_losses)

    @property
    def best_val_loss(self) -> float:
        """Lowest validation loss seen (inf before any epoch)."""
        if not self.val_losses:
            return float("inf")
        return min(self.val_losses)


def fit_with_validation(
    model,
    x: np.ndarray,
    y: np.ndarray,
    *,
    optimizer: _OptimizerBase,
    val_loss_fn: Callable[[object, np.ndarray, np.ndarray], float],
    config: EarlyStoppingConfig | None = None,
    batch_size: int = 32,
    grad_clip: float = 5.0,
    seed: int = 0,
    checkpoint=None,
) -> TrainingHistory:
    """Train *model* with a held-out validation split and early stopping.

    Parameters
    ----------
    model:
        A :class:`~repro.nn.model.SequenceClassifier` or
        :class:`~repro.nn.model.SequenceRegressor` (anything with the
        models' ``fit`` signature).
    x, y:
        Full dataset; the trailing ``val_fraction`` (after shuffling) is
        held out.
    val_loss_fn:
        ``f(model, x_val, y_val) -> float`` evaluated after each epoch.
    checkpoint:
        Optional :class:`~repro.resilience.CheckpointManager`.  When
        given, an atomic checkpoint (weights, optimizer slots, early
        stopping counters, loss histories) is written after every epoch
        and the newest intact one is resumed from on entry, so a killed
        run continues to bit-identical weights: the validation split and
        the per-epoch batch rngs are derived deterministically from
        ``seed``, leaving no hidden state outside the checkpoint.
    """
    cfg = config if config is not None else EarlyStoppingConfig()
    if len(x) != len(y):
        raise TrainingError(f"x/y length mismatch: {len(x)} vs {len(y)}")
    n_val = max(1, int(round(len(x) * cfg.val_fraction)))
    if n_val >= len(x):
        raise TrainingError("dataset too small for the validation fraction")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(x))
    val_idx, train_idx = order[:n_val], order[n_val:]
    x_train, y_train = x[train_idx], y[train_idx]
    x_val, y_val = x[val_idx], y[val_idx]

    history = TrainingHistory()
    best = float("inf")
    bad_epochs = 0
    start_epoch = 0
    if checkpoint is not None:
        resumed = checkpoint.load_latest()
        if resumed is not None:
            from ..resilience.checkpoint import restore_fit_state

            _, arrays, meta = resumed
            start_epoch = restore_fit_state(
                arrays, meta, model.params(), optimizer, None
            )
            history.train_losses = [float(v) for v in meta.get("train_losses", [])]
            history.val_losses = [float(v) for v in meta.get("val_losses", [])]
            history.best_epoch = int(meta.get("best_epoch", -1))
            history.stopped_early = bool(meta.get("stopped_early", False))
            best = float(meta.get("best", float("inf")))
            bad_epochs = int(meta.get("bad_epochs", 0))
            if history.stopped_early:
                return history
    registry = metrics_registry()
    with current_tracer().span(
        "nn.fit_with_validation",
        train_windows=len(x_train),
        val_windows=len(x_val),
    ) as span:
        for epoch in range(start_epoch, cfg.max_epochs):
            losses = model.fit(
                x_train,
                y_train,
                epochs=1,
                batch_size=batch_size,
                optimizer=optimizer,
                grad_clip=grad_clip,
                rng=np.random.default_rng(seed + 1 + epoch),
            )
            history.train_losses.append(losses[-1])
            val = float(val_loss_fn(model, x_val, y_val))
            history.val_losses.append(val)
            registry.gauge("trainer.train_loss").set(float(losses[-1]))
            registry.gauge("trainer.val_loss").set(val)
            if val < best - cfg.min_delta:
                best = val
                bad_epochs = 0
                history.best_epoch = epoch
            else:
                bad_epochs += 1
                if cfg.lr_decay < 1.0 and bad_epochs == max(
                    1, cfg.patience // 2
                ):
                    optimizer.learning_rate *= cfg.lr_decay
                if bad_epochs >= cfg.patience:
                    history.stopped_early = True
            if checkpoint is not None:
                from ..resilience.checkpoint import pack_fit_state

                arrays, meta = pack_fit_state(
                    model.params(),
                    optimizer,
                    None,
                    epoch=epoch + 1,
                    extra_meta={
                        "train_losses": history.train_losses,
                        "val_losses": history.val_losses,
                        "best_epoch": history.best_epoch,
                        "stopped_early": history.stopped_early,
                        "best": best,
                        "bad_epochs": bad_epochs,
                    },
                )
                checkpoint.save(epoch + 1, arrays, meta)
            if history.stopped_early:
                break
        span.set(
            epochs_run=history.epochs_run,
            stopped_early=history.stopped_early,
        )
    return history
