"""From-scratch NumPy neural-network substrate.

The paper's prototype uses Keras with a TensorFlow backend (Section 4);
this offline environment has neither, so this subpackage implements the
required pieces directly on NumPy with full backpropagation:

* :mod:`~repro.nn.lstm` — LSTM cell and stacked LSTM with BPTT,
* :mod:`~repro.nn.layers` — dense and embedding layers,
* :mod:`~repro.nn.losses` — categorical cross-entropy and MSE,
* :mod:`~repro.nn.optimizers` — SGD (momentum), RMSprop, Adam,
* :mod:`~repro.nn.embeddings` — skip-gram word2vec with negative sampling,
* :mod:`~repro.nn.model` — the sequence classifier / regressor models
  used by Desh phases 1 and 2-3 respectively,
* :mod:`~repro.nn.tcn` — causal dilated temporal-convolution backbone,
* :mod:`~repro.nn.attention` — single-head causal attention backbone,
* :mod:`~repro.nn.registry` — the model zoo: named backbone families
  (``lstm``/``tcn``/``attention``) behind one builder + schema registry,
* :mod:`~repro.nn.contracts` — runtime shape/dtype contracts on the
  layer forward/backward paths (compiled out under ``python -O``),
* :mod:`~repro.nn.batched` — the batch-major inference scoring core
  shared by phase 3, the streaming monitor, and the serving shards.

Everything is vectorized over the batch dimension (one fused gate matmul
per timestep), following the hpc-parallel guide's "vectorize the inner
loop" idiom.
"""

from .activations import sigmoid, sigmoid_infer, tanh, softmax, relu
from .attention import AttentionBackbone, AttentionLayer
from .batched import BatchedScorer
from .contracts import TensorSpec, parse_spec, tensor_contract
from .initializers import glorot_uniform, orthogonal
from .layers import Dense, Embedding
from .lstm import LSTMCell, StackedLSTM
from .losses import CategoricalCrossEntropy, MeanSquaredError
from .optimizers import SGD, RMSprop, Adam, clip_gradients
from .embeddings import SkipGramEmbedder
from .model import SequenceClassifier, SequenceRegressor
from .registry import (
    HyperParam,
    ModelFamily,
    build_backbone,
    get_model,
    register_model,
    registered_models,
)
from .tcn import CausalConv1d, TCNBackbone, TemporalBlock
from .data import sliding_windows, multi_step_targets, batch_iterator
from .metrics import perplexity, topk_accuracy

__all__ = [
    "TensorSpec",
    "parse_spec",
    "tensor_contract",
    "AttentionBackbone",
    "AttentionLayer",
    "CausalConv1d",
    "TCNBackbone",
    "TemporalBlock",
    "HyperParam",
    "ModelFamily",
    "build_backbone",
    "get_model",
    "register_model",
    "registered_models",
    "sigmoid",
    "sigmoid_infer",
    "BatchedScorer",
    "tanh",
    "softmax",
    "relu",
    "glorot_uniform",
    "orthogonal",
    "Dense",
    "Embedding",
    "LSTMCell",
    "StackedLSTM",
    "CategoricalCrossEntropy",
    "MeanSquaredError",
    "SGD",
    "RMSprop",
    "Adam",
    "clip_gradients",
    "SkipGramEmbedder",
    "SequenceClassifier",
    "SequenceRegressor",
    "sliding_windows",
    "multi_step_targets",
    "batch_iterator",
    "perplexity",
    "topk_accuracy",
]
