"""Numerically stable activation functions and their derivatives.

All functions are elementwise and fully vectorized; derivative helpers
take the *activated* value (not the pre-activation) so forward caches
can be reused during backprop without recomputation.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "sigmoid",
    "sigmoid_grad",
    "sigmoid_infer",
    "tanh",
    "tanh_grad",
    "relu",
    "relu_grad",
    "softmax",
    "log_softmax",
]


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Logistic sigmoid, stable for large |x|.

    Uses the two-branch formulation so ``exp`` never overflows.
    """
    out = np.empty_like(x, dtype=np.float64)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def sigmoid_infer(x: np.ndarray) -> np.ndarray:
    """Logistic sigmoid for the inference path: branch-free and in-place.

    The training :func:`sigmoid` pays ~7x its exp cost in fancy-indexing
    machinery for the two-branch split.  Inference has no backward pass
    that would reuse the mask, so this variant computes
    ``1 / (1 + exp(-x))`` directly with three vectorized passes and no
    temporaries beyond the output.  For very negative ``x``, ``exp(-x)``
    overflows to ``inf`` and the reciprocal correctly returns ``0.0``;
    the overflow warning is suppressed because that saturation is the
    intended result, not an error.

    The output may differ from :func:`sigmoid` in the last 1-2 ulp (the
    two formulations round differently), which is why training keeps the
    two-branch version: pipeline caches fingerprint training outputs.
    The inference path only requires *self*-consistency — every scoring
    route goes through this same function, so batched and sequential
    scoring still agree bit for bit.
    """
    with np.errstate(over="ignore"):
        out = np.exp(-x)
    out += 1.0
    np.reciprocal(out, out=out)
    return out


def sigmoid_grad(y: np.ndarray) -> np.ndarray:
    """d sigmoid / dx expressed in the output ``y = sigmoid(x)``."""
    return y * (1.0 - y)


def tanh(x: np.ndarray) -> np.ndarray:
    """Hyperbolic tangent (numpy's is already stable)."""
    return np.tanh(x)


def tanh_grad(y: np.ndarray) -> np.ndarray:
    """d tanh / dx expressed in the output ``y = tanh(x)``."""
    return 1.0 - y * y


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(x, 0.0)


def relu_grad(y: np.ndarray) -> np.ndarray:
    """d relu / dx expressed in the output ``y = relu(x)``."""
    return (y > 0).astype(y.dtype)


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Softmax along *axis*, shifted by the max for stability."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    ex = np.exp(shifted)
    return ex / np.sum(ex, axis=axis, keepdims=True)


def log_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Log-softmax along *axis* (log-sum-exp trick)."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))
