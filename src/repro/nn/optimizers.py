"""Optimizers: SGD with momentum, RMSprop, Adam, plus gradient clipping.

Phase 1 uses plain stochastic gradient descent, phases 2-3 use RMSprop
(Table 5).  Adam is provided for the extension experiments.  Optimizers
mutate the parameter arrays *in place* (the arrays returned by each
layer's ``params()`` are live views), following the in-place-update
idiom from the hpc-parallel guide.
"""

from __future__ import annotations

from typing import Dict, Mapping

import numpy as np

from ..errors import ConfigError

__all__ = ["SGD", "RMSprop", "Adam", "clip_gradients"]


def clip_gradients(grads: Mapping[str, np.ndarray], max_norm: float) -> float:
    """Scale all gradients in place so their global L2 norm <= *max_norm*.

    Returns the pre-clipping global norm.  Clipping by global norm (not
    per-array) preserves gradient direction, the standard recipe against
    exploding LSTM gradients.
    """
    if max_norm <= 0:
        raise ConfigError(f"max_norm must be > 0, got {max_norm}")
    total = 0.0
    for g in grads.values():
        total += float(np.sum(g * g))
    norm = float(np.sqrt(total))
    if norm > max_norm:
        scale = max_norm / (norm + 1e-12)
        for g in grads.values():
            g *= scale
    return norm


class _OptimizerBase:
    """Shared parameter validation and state management."""

    def __init__(self, learning_rate: float):
        if learning_rate <= 0:
            raise ConfigError(f"learning_rate must be > 0, got {learning_rate}")
        self.learning_rate = learning_rate
        self._state: Dict[str, Dict[str, np.ndarray]] = {}

    def _slot(self, key: str, like: np.ndarray, *names: str) -> Dict[str, np.ndarray]:
        slot = self._state.get(key)
        if slot is None:
            slot = {n: np.zeros_like(like) for n in names}
            self._state[key] = slot
        return slot

    def state_dict(self) -> tuple[Dict[str, np.ndarray], Dict[str, object]]:
        """Snapshot the slot arrays and hyper-state for checkpointing.

        Returns ``(arrays, extra)`` where *arrays* flattens every slot
        to ``"<param key>##<slot name>"`` and *extra* holds the
        JSON-serializable hyper-state (the learning rate, which decay
        schedules mutate).  Subclasses with extra scalar state (Adam's
        per-key timestep) extend *extra*.
        """
        arrays = {
            f"{key}##{name}": arr
            for key, slot in self._state.items()
            for name, arr in slot.items()
        }
        return arrays, {"learning_rate": self.learning_rate}

    def load_state_dict(
        self, arrays: Mapping[str, np.ndarray], extra: Mapping[str, object]
    ) -> None:
        """Restore a snapshot produced by :meth:`state_dict`."""
        self._state = {}
        for flat, arr in arrays.items():
            key, sep, name = flat.rpartition("##")
            if not sep:
                raise ConfigError(f"malformed optimizer state key {flat!r}")
            self._state.setdefault(key, {})[name] = np.array(arr, copy=True)
        if "learning_rate" in extra:
            self.learning_rate = float(extra["learning_rate"])  # type: ignore[arg-type]

    def step(
        self, params: Mapping[str, np.ndarray], grads: Mapping[str, np.ndarray]
    ) -> None:
        if params.keys() != grads.keys():
            raise ConfigError(
                f"params/grads key mismatch: {sorted(params)} vs {sorted(grads)}"
            )
        for key in params:
            if params[key].shape != grads[key].shape:
                raise ConfigError(
                    f"shape mismatch for {key}: "
                    f"{params[key].shape} vs {grads[key].shape}"
                )
            self._update(key, params[key], grads[key])

    def _update(self, key: str, p: np.ndarray, g: np.ndarray) -> None:
        raise NotImplementedError


class SGD(_OptimizerBase):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(self, learning_rate: float = 0.1, momentum: float = 0.0):
        super().__init__(learning_rate)
        if not 0.0 <= momentum < 1.0:
            raise ConfigError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum

    def _update(self, key: str, p: np.ndarray, g: np.ndarray) -> None:
        if self.momentum == 0.0:
            p -= self.learning_rate * g
            return
        slot = self._slot(key, p, "v")
        v = slot["v"]
        v *= self.momentum
        v -= self.learning_rate * g
        p += v


class RMSprop(_OptimizerBase):
    """RMSprop: per-parameter learning rates from an EMA of squared grads."""

    def __init__(
        self, learning_rate: float = 0.001, rho: float = 0.9, eps: float = 1e-8
    ):
        super().__init__(learning_rate)
        if not 0.0 < rho < 1.0:
            raise ConfigError(f"rho must be in (0, 1), got {rho}")
        if eps <= 0:
            raise ConfigError(f"eps must be > 0, got {eps}")
        self.rho = rho
        self.eps = eps

    def _update(self, key: str, p: np.ndarray, g: np.ndarray) -> None:
        slot = self._slot(key, p, "s")
        s = slot["s"]
        s *= self.rho
        s += (1.0 - self.rho) * g * g
        p -= self.learning_rate * g / (np.sqrt(s) + self.eps)


class Adam(_OptimizerBase):
    """Adam with bias correction (extension experiments only)."""

    def __init__(
        self,
        learning_rate: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ):
        super().__init__(learning_rate)
        for name, value in (("beta1", beta1), ("beta2", beta2)):
            if not 0.0 < value < 1.0:
                raise ConfigError(f"{name} must be in (0, 1), got {value}")
        if eps <= 0:
            raise ConfigError(f"eps must be > 0, got {eps}")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._t: Dict[str, int] = {}

    def state_dict(self) -> tuple[Dict[str, np.ndarray], Dict[str, object]]:
        """Snapshot slots plus the per-key bias-correction timesteps."""
        arrays, extra = super().state_dict()
        extra["t"] = dict(self._t)
        return arrays, extra

    def load_state_dict(
        self, arrays: Mapping[str, np.ndarray], extra: Mapping[str, object]
    ) -> None:
        """Restore slots and the per-key bias-correction timesteps."""
        super().load_state_dict(arrays, extra)
        self._t = {k: int(v) for k, v in dict(extra.get("t", {})).items()}

    def _update(self, key: str, p: np.ndarray, g: np.ndarray) -> None:
        slot = self._slot(key, p, "m", "v")
        t = self._t.get(key, 0) + 1
        self._t[key] = t
        m, v = slot["m"], slot["v"]
        m *= self.beta1
        m += (1.0 - self.beta1) * g
        v *= self.beta2
        v += (1.0 - self.beta2) * g * g
        m_hat = m / (1.0 - self.beta1**t)
        v_hat = v / (1.0 - self.beta2**t)
        p -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.eps)
