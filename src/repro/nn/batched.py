"""Batch-major scoring core: one vectorized path for all inference.

Phase 3, the streaming monitor, and the serving shards all score the
same thing — stacks of ``(history, 2)`` chain windows — but historically
each walked its own loop around :meth:`SequenceRegressor.predict`.
:class:`BatchedScorer` is the single chokepoint they now share:

* :meth:`chain_matrix` builds the window stack for one growing episode,
  bit-equal to the phase-3 offline encoding but without re-deriving the
  phrase normalization or the gather indices on every call (the phrase
  "embedding" lookup table and the per-length window index matrices are
  cached);
* :meth:`predict_batch` runs the stack through the cache-free
  batch-major LSTM kernel (:meth:`StackedLSTM.forward_infer`) and the
  row-stable head, optionally in fixed-size chunks whose boundaries are
  chosen so no chunk ever degenerates to a single row (BLAS takes a
  different kernel for M=1, which would break row-bit-independence).

Because every row of :meth:`predict_batch`'s output depends only on the
matching input window (for chunk sizes >= 2), scoring B units stacked
into one call is bitwise identical to scoring each unit alone — the
property the monitor's batched flush and its tests rely on.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ShapeError
from .contracts import tensor_contract
from .model import SequenceRegressor

__all__ = ["BatchedScorer"]

#: Cached window-index matrices are kept for at most this many distinct
#: episode lengths; live episodes are length-capped upstream (the
#: monitor's event cap), so in practice the cache never cycles.
_INDEX_CACHE_LIMIT = 128


class BatchedScorer:
    """Precomputed, cached scoring front-end over a trained regressor."""

    def __init__(self, regressor: SequenceRegressor, scaler, *, history: int) -> None:
        if history < 1:
            raise ShapeError(f"history must be >= 1, got {history}")
        self.regressor = regressor
        self.scaler = scaler
        self.history = history
        # The phrase "embedding": id -> normalized code, computed once
        # with the exact elementwise formula LeadTimeScaler.encode uses,
        # so table lookups reproduce its bits.
        self._phrase_codes = (
            np.arange(scaler.vocab_size, dtype=np.float64)
            / scaler.vocab_size
            * scaler.id_scale
        )
        self._index_cache: dict = {}

    # ------------------------------------------------------------------
    @property
    def input_dim(self) -> int:
        """Window feature dimension (delegates to the regressor)."""
        return self.regressor.input_dim

    @property
    def output_dim(self) -> int:
        """Prediction dimension (delegates to the regressor)."""
        return self.regressor.output_dim

    # ------------------------------------------------------------------
    def _window_indices(self, n: int) -> np.ndarray:
        """The ``(n, history)`` gather matrix into a left-padded chain."""
        cached = self._index_cache.get(n)
        if cached is None:
            if len(self._index_cache) >= _INDEX_CACHE_LIMIT:
                self._index_cache.clear()
            cached = (
                np.arange(n, dtype=np.intp)[:, None]
                + np.arange(self.history, dtype=np.intp)[None, :]
            )
            self._index_cache[n] = cached
        return cached

    def chain_matrix(
        self, timestamps: np.ndarray, phrase_ids: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray, int]":
        """The chain-score matrix of one episode: ``(X, Y, pad_len)``.

        Bit-equal to the offline phase-3 window pipeline
        (``encode_chain`` -> ``pad_vectors`` -> windowing) with the
        anchor at the newest event: ``X`` is ``(N, history, 2)``, ``Y``
        is ``(N, 2)`` (one window per real event, left-padding
        replicating the first vector), ``pad_len`` the rows of padding.
        """
        timestamps = np.asarray(timestamps, dtype=np.float64)
        phrase_ids = np.asarray(phrase_ids)
        if (
            timestamps.ndim != 1
            or len(timestamps) == 0
            or timestamps.shape != phrase_ids.shape
        ):
            raise ShapeError(
                f"chain must be matching non-empty 1-D arrays, got "
                f"{timestamps.shape} and {phrase_ids.shape}"
            )
        if np.any(np.diff(timestamps) < 0):
            raise ShapeError("timestamps must be non-decreasing")
        if phrase_ids.min() < 0 or phrase_ids.max() >= self.scaler.vocab_size:
            raise ShapeError("phrase id out of vocabulary range")
        n = len(timestamps)
        vectors = np.empty((n, 2), dtype=np.float64)
        np.clip(
            (timestamps[-1] - timestamps) / self.scaler.max_lead_seconds,
            0.0,
            1.0,
            out=vectors[:, 0],
        )
        vectors[:, 1] = self._phrase_codes[phrase_ids]
        padded = np.concatenate(
            [np.repeat(vectors[:1], self.history, axis=0), vectors], axis=0
        )
        x = padded[self._window_indices(n)]
        # Window i predicts padded[i + history] == vectors[i], so the
        # target matrix is the vectors themselves.
        return x, vectors, self.history

    # ------------------------------------------------------------------
    @staticmethod
    def _chunk_bounds(total: int, chunk: int) -> "list[tuple[int, int]]":
        """Chunk ``[0, total)`` into runs of ~*chunk* rows, none of size 1.

        A single-row GEMM takes BLAS's gemv path, which rounds
        differently from the batched kernel — a size-1 tail chunk would
        score its window with different bits than the same window inside
        a larger batch.  A size-1 tail is therefore merged into the
        preceding chunk (which grows to ``chunk + 1`` rows).
        """
        if total <= 0:
            return []
        bounds = [
            (start, min(start + chunk, total))
            for start in range(0, total, chunk)
        ]
        if len(bounds) >= 2 and bounds[-1][1] - bounds[-1][0] == 1:
            bounds.pop()
            start, _ = bounds.pop()
            bounds.append((start, total))
        return bounds

    @tensor_contract("(B, T, input_dim):float -> (B, output_dim):float")
    def predict_batch(
        self, x: np.ndarray, chunk: Optional[int] = None
    ) -> np.ndarray:
        """Score a window stack through the batch-major inference kernel.

        ``chunk`` bounds the rows per LSTM call (memory/cache control for
        very large flushes); chunked and unchunked results are bitwise
        identical because chunk boundaries never isolate a single row.
        """
        if chunk is None or len(x) <= chunk:
            return self.regressor.predict_infer(x)
        if chunk < 2:
            raise ShapeError(f"chunk must be >= 2, got {chunk}")
        out = np.empty((len(x), self.output_dim), dtype=np.float64)
        for start, end in self._chunk_bounds(len(x), chunk):
            out[start:end] = self.regressor.predict_infer(x[start:end])
        return out
