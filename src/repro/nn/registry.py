"""The model zoo: named sequence-model backbones behind one registry.

Desh's phase-1 classifier and phase-2/3 regressor are both "backbone +
head" models; the backbone is the part that varies across the zoo.  A
:class:`ModelFamily` couples a backbone class (anything implementing
``forward`` / ``forward_infer`` / ``backward`` / ``params`` / ``grads``
/ ``zero_grad`` over ``(B, T, D) -> (B, T, H)``) with its name and a
hyperparameter schema; :func:`build_backbone` is the single constructor
the sequence models call, keyed by ``DeshConfig.model`` / the CLI
``--model`` flag.

Three families ship built in:

========== ==========================================================
``lstm``   the paper's stacked LSTM (Table 5) — the default
``tcn``    causal dilated temporal convolutions with residual blocks
``attention`` single-head causal self-attention with learned positions
========== ==========================================================

Every family must pass the shared conformance suite
(``tests/test_nn_conformance.py``): finite-difference gradient checks
on all parameters, loss-decreases training smoke, bit-identical
save/load round trips, online-``update`` support, and declared tensor
contracts on every forward/backward.  Register a new family only once
those tests pass against it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

import numpy as np

from ..errors import ConfigError
from .attention import AttentionBackbone
from .lstm import StackedLSTM
from .tcn import TCNBackbone

__all__ = [
    "HyperParam",
    "ModelFamily",
    "register_model",
    "get_model",
    "registered_models",
    "build_backbone",
]


@dataclass(frozen=True)
class HyperParam:
    """One family-specific hyperparameter: name, default and doc line."""

    name: str
    default: object
    doc: str


@dataclass(frozen=True)
class ModelFamily:
    """One registered backbone family.

    ``backbone`` is constructed as
    ``backbone(input_size, hidden_size, num_layers, rng, **params)``
    where ``params`` are the schema defaults merged with the caller's
    overrides (``DeshConfig.model_params``).
    """

    name: str
    summary: str
    backbone: type
    params: Tuple[HyperParam, ...] = ()

    def resolve_params(self, overrides: Mapping[str, object]) -> dict:
        """Schema defaults merged with *overrides*; rejects unknown keys."""
        known = {p.name: p.default for p in self.params}
        for key in overrides:
            if key not in known:
                accepted = ", ".join(sorted(known)) or "(none)"
                raise ConfigError(
                    f"model {self.name!r} has no hyperparameter {key!r} "
                    f"(accepts: {accepted})"
                )
        known.update(overrides)
        return known

    def build(
        self,
        input_size: int,
        hidden_size: int,
        num_layers: int,
        rng: np.random.Generator,
        overrides: Mapping[str, object] | None = None,
    ):
        """Construct this family's backbone."""
        params = self.resolve_params(overrides or {})
        return self.backbone(input_size, hidden_size, num_layers, rng, **params)


_REGISTRY: Dict[str, ModelFamily] = {}


def register_model(family: ModelFamily) -> None:
    """Add *family* to the zoo; duplicate names are a configuration bug."""
    if family.name in _REGISTRY:
        raise ConfigError(f"model {family.name!r} is already registered")
    _REGISTRY[family.name] = family


def get_model(name: str) -> ModelFamily:
    """The registered family called *name*.

    Raises :class:`ConfigError` naming the registered families for an
    unknown name — the crisp failure mode for garbled model manifests.
    """
    family = _REGISTRY.get(name)
    if family is None:
        known = ", ".join(registered_models())
        raise ConfigError(
            f"unknown model {name!r} (registered models: {known})"
        )
    return family


def registered_models() -> Tuple[str, ...]:
    """All registered family names, sorted."""
    return tuple(sorted(_REGISTRY))


def build_backbone(
    name: str,
    input_size: int,
    hidden_size: int,
    num_layers: int,
    rng: np.random.Generator,
    params: Mapping[str, object] | None = None,
):
    """Construct the named family's backbone (the models' entry point)."""
    return get_model(name).build(
        input_size, hidden_size, num_layers, rng, params
    )


register_model(
    ModelFamily(
        name="lstm",
        summary="stacked LSTM with BPTT (the paper's Table-5 model)",
        backbone=StackedLSTM,
    )
)
register_model(
    ModelFamily(
        name="tcn",
        summary="causal dilated temporal convolutions with residual blocks",
        backbone=TCNBackbone,
        params=(
            HyperParam(
                "kernel_size",
                3,
                "taps per causal convolution (dilation doubles per level)",
            ),
        ),
    )
)
register_model(
    ModelFamily(
        name="attention",
        summary="single-head causal self-attention with learned positions",
        backbone=AttentionBackbone,
        params=(
            HyperParam(
                "max_len",
                256,
                "longest supported window (positional table rows)",
            ),
        ),
    )
)
