"""Windowing and batching utilities for sequence training.

Desh trains on sliding windows: a *history* of samples predicts the next
*steps* samples (history size 8 / 3-step in phase 1, history 5 / 1-step
in phases 2-3 — Table 5).  Windows never cross node-sequence boundaries:
the per-node sequences are windowed independently and the window sets
concatenated, which matches the paper's "logs from each node are
concatenated and fed to the same LSTM" without fabricating transitions
between unrelated nodes.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from ..errors import ShapeError

__all__ = [
    "sliding_windows",
    "sliding_windows_continuous",
    "multi_step_targets",
    "windows_from_sequences",
    "batch_iterator",
]


def sliding_windows(
    sequence: np.ndarray, history: int, steps: int = 1
) -> tuple[np.ndarray, np.ndarray]:
    """Windows over a 1-D integer sequence.

    Returns ``(X, Y)`` with ``X`` of shape ``(N, history)`` and ``Y`` of
    shape ``(N, steps)``; ``X[i]`` is ``sequence[i : i+history]`` and
    ``Y[i]`` the following *steps* entries.  ``N`` may be zero for short
    sequences.
    """
    sequence = np.asarray(sequence)
    if sequence.ndim != 1:
        raise ShapeError(f"sequence must be 1-D, got shape {sequence.shape}")
    if history < 1 or steps < 1:
        raise ShapeError(f"history and steps must be >= 1, got {history}, {steps}")
    n = len(sequence) - history - steps + 1
    if n <= 0:
        return (
            np.empty((0, history), dtype=sequence.dtype),
            np.empty((0, steps), dtype=sequence.dtype),
        )
    idx = np.arange(n)[:, None]
    x = sequence[idx + np.arange(history)[None, :]]
    y = sequence[idx + history + np.arange(steps)[None, :]]
    return x, y


def sliding_windows_continuous(
    sequence: np.ndarray, history: int, steps: int = 1
) -> tuple[np.ndarray, np.ndarray]:
    """Windows over a 2-D ``(T, D)`` continuous sequence.

    Returns ``(X, Y)`` with ``X`` of shape ``(N, history, D)`` and ``Y``
    of shape ``(N, steps, D)``.
    """
    sequence = np.asarray(sequence, dtype=np.float64)
    if sequence.ndim != 2:
        raise ShapeError(f"sequence must be 2-D (T, D), got shape {sequence.shape}")
    if history < 1 or steps < 1:
        raise ShapeError(f"history and steps must be >= 1, got {history}, {steps}")
    t, d = sequence.shape
    n = t - history - steps + 1
    if n <= 0:
        return np.empty((0, history, d)), np.empty((0, steps, d))
    idx = np.arange(n)[:, None]
    x = sequence[idx + np.arange(history)[None, :]]
    y = sequence[idx + history + np.arange(steps)[None, :]]
    return x, y


def multi_step_targets(y: np.ndarray, steps: int) -> list[np.ndarray]:
    """Split a ``(N, steps)`` target block into per-step 1-D target arrays."""
    y = np.asarray(y)
    if y.ndim != 2 or y.shape[1] != steps:
        raise ShapeError(f"targets must be (N, {steps}), got {y.shape}")
    return [y[:, k] for k in range(steps)]


def windows_from_sequences(
    sequences: Sequence[np.ndarray], history: int, steps: int = 1
) -> tuple[np.ndarray, np.ndarray]:
    """Window each per-node sequence independently and stack the results.

    Accepts 1-D (phrase ids) or 2-D ``(T, D)`` sequences; all sequences
    must share dimensionality.
    """
    if not sequences:
        raise ShapeError("need at least one sequence")
    xs, ys = [], []
    first = np.asarray(sequences[0])
    windower = sliding_windows if first.ndim == 1 else sliding_windows_continuous
    for seq in sequences:
        seq = np.asarray(seq)
        if seq.ndim != first.ndim:
            raise ShapeError("mixed 1-D and 2-D sequences")
        x, y = windower(seq, history, steps)
        if len(x):
            xs.append(x)
            ys.append(y)
    if not xs:
        shape_x = (0, history) if first.ndim == 1 else (0, history, first.shape[-1])
        shape_y = (0, steps) if first.ndim == 1 else (0, steps, first.shape[-1])
        return np.empty(shape_x, dtype=first.dtype), np.empty(shape_y, dtype=first.dtype)
    return np.concatenate(xs, axis=0), np.concatenate(ys, axis=0)


def batch_iterator(
    n: int,
    batch_size: int,
    rng: np.random.Generator | None = None,
) -> Iterator[np.ndarray]:
    """Yield index batches covering ``range(n)``, shuffled when *rng* given."""
    if n < 0:
        raise ShapeError(f"n must be >= 0, got {n}")
    if batch_size < 1:
        raise ShapeError(f"batch_size must be >= 1, got {batch_size}")
    order = np.arange(n)
    if rng is not None:
        rng.shuffle(order)
    for start in range(0, n, batch_size):
        yield order[start : start + batch_size]
