"""LSTM cell and stacked LSTM with full backpropagation through time.

The LSTM follows Hochreiter & Schmidhuber's formulation (the paper's
reference [27]) with the standard fused-gate layout: one matmul per
timestep computes all four gates for the whole batch::

    gates = x_t @ W + h_{t-1} @ U + b          # (B, 4H)
    i, f, g, o = split(gates)
    c_t = sigmoid(f) * c_{t-1} + sigmoid(i) * tanh(g)
    h_t = sigmoid(o) * tanh(c_t)

Only the timestep loop remains in Python; everything inside it is a
batched NumPy operation (the hpc-parallel guide's vectorization idiom).
The forget-gate bias is initialized to 1, the usual trick that lets
memory persist early in training — important for the day/week-scale
dependencies HPC logs exhibit (Section 2).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import ShapeError
from .activations import sigmoid, sigmoid_grad, sigmoid_infer, tanh, tanh_grad
from .contracts import tensor_contract
from .initializers import glorot_uniform, orthogonal, zeros

__all__ = ["LSTMCell", "StackedLSTM"]


class LSTMCell:
    """Single LSTM layer processing ``(batch, time, features)`` tensors."""

    def __init__(
        self, input_size: int, hidden_size: int, rng: np.random.Generator
    ) -> None:
        if input_size <= 0 or hidden_size <= 0:
            raise ShapeError(f"bad LSTM dims {input_size}->{hidden_size}")
        self.input_size = input_size
        self.hidden_size = hidden_size
        H = hidden_size
        self.W = glorot_uniform(rng, input_size, 4 * H)
        self.U = np.concatenate(
            [orthogonal(rng, H, H) for _ in range(4)], axis=1
        )
        self.b = zeros(4 * H)
        self.b[H : 2 * H] = 1.0  # forget-gate bias
        self.dW = np.zeros_like(self.W)
        self.dU = np.zeros_like(self.U)
        self.db = np.zeros_like(self.b)
        self._cache: Optional[dict] = None

    # ------------------------------------------------------------------
    @tensor_contract("(B, T, input_size):float -> (B, T, hidden_size):float")
    def forward(
        self,
        x: np.ndarray,
        h0: Optional[np.ndarray] = None,
        c0: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Run the cell over a batch of sequences.

        Parameters
        ----------
        x:
            Input tensor of shape ``(B, T, input_size)``.
        h0, c0:
            Optional initial states of shape ``(B, hidden_size)``.

        Returns
        -------
        Hidden states for every timestep, shape ``(B, T, hidden_size)``.
        """
        if x.ndim != 3 or x.shape[2] != self.input_size:
            raise ShapeError(
                f"LSTM expected (B, T, {self.input_size}), got {x.shape}"
            )
        B, T, _ = x.shape
        H = self.hidden_size
        h = np.zeros((B, H)) if h0 is None else h0
        c = np.zeros((B, H)) if c0 is None else c0
        if h.shape != (B, H) or c.shape != (B, H):
            raise ShapeError(f"initial state must be ({B}, {H})")

        hs = np.empty((B, T, H))
        # Per-timestep caches needed by BPTT.
        gates_i = np.empty((B, T, H))
        gates_f = np.empty((B, T, H))
        gates_g = np.empty((B, T, H))
        gates_o = np.empty((B, T, H))
        cs = np.empty((B, T, H))
        tanh_cs = np.empty((B, T, H))
        h_prevs = np.empty((B, T, H))
        c_prevs = np.empty((B, T, H))

        # Precompute the input projection for all timesteps in one matmul.
        x_proj = x @ self.W  # (B, T, 4H)

        for t in range(T):
            h_prevs[:, t] = h
            c_prevs[:, t] = c
            gates = x_proj[:, t] + h @ self.U + self.b
            i = sigmoid(gates[:, :H])
            f = sigmoid(gates[:, H : 2 * H])
            g = tanh(gates[:, 2 * H : 3 * H])
            o = sigmoid(gates[:, 3 * H :])
            c = f * c + i * g
            tc = tanh(c)
            h = o * tc
            gates_i[:, t], gates_f[:, t], gates_g[:, t], gates_o[:, t] = i, f, g, o
            cs[:, t] = c
            tanh_cs[:, t] = tc
            hs[:, t] = h

        self._cache = {
            "x": x,
            "i": gates_i,
            "f": gates_f,
            "g": gates_g,
            "o": gates_o,
            "c": cs,
            "tanh_c": tanh_cs,
            "h_prev": h_prevs,
            "c_prev": c_prevs,
        }
        return hs

    # ------------------------------------------------------------------
    def _infer_step(
        self, proj: np.ndarray, h: np.ndarray, c: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray]":
        """One cache-free timestep given the precomputed input projection.

        Shared by :meth:`step_batch` and :meth:`forward_infer` so both
        batch-major entry points execute the exact same instruction
        sequence — the bit-identity argument for batched scoring rests
        on every path funnelling through this one kernel.  The i|f gate
        columns are adjacent in the fused layout, so a single
        :func:`sigmoid_infer` call covers both.
        """
        H = self.hidden_size
        gates = proj + h @ self.U
        gates += self.b
        i_f = sigmoid_infer(gates[:, : 2 * H])
        g = tanh(gates[:, 2 * H : 3 * H])
        o = sigmoid_infer(gates[:, 3 * H :])
        c = i_f[:, H:] * c + i_f[:, :H] * g
        h = o * tanh(c)
        return h, c

    @tensor_contract(
        "(B, input_size):float, (B, hidden_size):float, (B, hidden_size):float"
        " -> (B, hidden_size):float, (B, hidden_size):float"
    )
    def step_batch(
        self,
        x: np.ndarray,
        h: Optional[np.ndarray] = None,
        c: Optional[np.ndarray] = None,
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Advance B independent per-node states by one timestep.

        Stacks B node states into ``(B, hidden_size)`` matrices so the
        four gate projections fuse into one BLAS call instead of B
        sequential ones.  Missing states default to zeros (fresh nodes).

        Returns the new ``(h, c)`` pair; inputs are not mutated, so
        callers can keep per-node state snapshots.
        """
        if x.ndim != 2 or x.shape[1] != self.input_size:
            raise ShapeError(
                f"step_batch expected (B, {self.input_size}), got {x.shape}"
            )
        B = x.shape[0]
        H = self.hidden_size
        if h is None:
            h = np.zeros((B, H))
        if c is None:
            c = np.zeros((B, H))
        if h.shape != (B, H) or c.shape != (B, H):
            raise ShapeError(f"step_batch state must be ({B}, {H})")
        return self._infer_step(x @ self.W, h, c)

    @tensor_contract("(B, T, input_size):float -> (B, T, hidden_size):float")
    def forward_infer(
        self,
        x: np.ndarray,
        h0: Optional[np.ndarray] = None,
        c0: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Inference-only forward: no BPTT caches, fused projections.

        Identical signature and output shape to :meth:`forward`, but
        allocates nothing beyond the output, routes the input projection
        through one 2-D GEMM for all timesteps, and uses the branch-free
        inference sigmoid.  Outputs may differ from :meth:`forward` in
        the final ulp (see :func:`sigmoid_infer`); the scoring stack
        only ever compares inference-path outputs with each other.
        """
        if x.ndim != 3 or x.shape[2] != self.input_size:
            raise ShapeError(
                f"LSTM expected (B, T, {self.input_size}), got {x.shape}"
            )
        B, T, _ = x.shape
        H = self.hidden_size
        h = np.zeros((B, H)) if h0 is None else h0
        c = np.zeros((B, H)) if c0 is None else c0
        if h.shape != (B, H) or c.shape != (B, H):
            raise ShapeError(f"initial state must be ({B}, {H})")
        flat = np.ascontiguousarray(x).reshape(B * T, self.input_size)
        x_proj = (flat @ self.W).reshape(B, T, 4 * H)
        hs = np.empty((B, T, H))
        for t in range(T):
            h, c = self._infer_step(x_proj[:, t], h, c)
            hs[:, t] = h
        return hs

    # ------------------------------------------------------------------
    @tensor_contract("(B, T, hidden_size):float -> (B, T, input_size):float")
    def backward(self, dh_all: np.ndarray) -> np.ndarray:
        """BPTT given upstream gradients for every timestep's hidden state.

        Parameters
        ----------
        dh_all:
            Gradient of the loss w.r.t. the forward output, shape
            ``(B, T, hidden_size)``.

        Returns
        -------
        Gradient w.r.t. the input, shape ``(B, T, input_size)``.
        Parameter gradients are accumulated into ``dW``/``dU``/``db``.
        """
        if self._cache is None:
            raise ShapeError("LSTMCell.backward called before forward")
        cache = self._cache
        x = cache["x"]
        B, T, _ = x.shape
        H = self.hidden_size
        if dh_all.shape != (B, T, H):
            raise ShapeError(
                f"dh_all must be ({B}, {T}, {H}), got {dh_all.shape}"
            )

        dx = np.empty_like(x)
        dh_next = np.zeros((B, H))
        dc_next = np.zeros((B, H))
        dgates = np.empty((B, 4 * H))

        for t in range(T - 1, -1, -1):
            i = cache["i"][:, t]
            f = cache["f"][:, t]
            g = cache["g"][:, t]
            o = cache["o"][:, t]
            tc = cache["tanh_c"][:, t]
            c_prev = cache["c_prev"][:, t]
            h_prev = cache["h_prev"][:, t]

            dh = dh_all[:, t] + dh_next
            dc = dh * o * tanh_grad(tc) + dc_next

            dgates[:, :H] = dc * g * sigmoid_grad(i)
            dgates[:, H : 2 * H] = dc * c_prev * sigmoid_grad(f)
            dgates[:, 2 * H : 3 * H] = dc * i * tanh_grad(g)
            dgates[:, 3 * H :] = dh * tc * sigmoid_grad(o)

            self.dW += x[:, t].T @ dgates
            self.dU += h_prev.T @ dgates
            self.db += dgates.sum(axis=0)

            dx[:, t] = dgates @ self.W.T
            dh_next = dgates @ self.U.T
            dc_next = dc * f

        return dx

    # ------------------------------------------------------------------
    def params(self) -> Dict[str, np.ndarray]:
        """Live views of the gate parameter arrays."""
        return {"W": self.W, "U": self.U, "b": self.b}

    def grads(self) -> Dict[str, np.ndarray]:
        """Gradient accumulators matching :meth:`params`."""
        return {"W": self.dW, "U": self.dU, "b": self.db}

    def zero_grad(self) -> None:
        """Clear the gradient accumulators in place."""
        self.dW[...] = 0.0
        self.dU[...] = 0.0
        self.db[...] = 0.0


class StackedLSTM:
    """Multiple LSTM layers, each feeding the next (Figure 1b).

    The paper uses two hidden layers: "More than 1 hidden layer
    strengthens LSTM's efficacy to remember past phrases" (Section 3.1).
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        num_layers: int,
        rng: np.random.Generator,
    ) -> None:
        if num_layers < 1:
            raise ShapeError(f"num_layers must be >= 1, got {num_layers}")
        self.layers: List[LSTMCell] = []
        size = input_size
        for _ in range(num_layers):
            self.layers.append(LSTMCell(size, hidden_size, rng))
            size = hidden_size
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.num_layers = num_layers

    @tensor_contract("(B, T, input_size):float -> (B, T, hidden_size):float")
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Pass ``(B, T, input_size)`` through all layers; returns top-layer states."""
        h = x
        for layer in self.layers:
            h = layer.forward(h)
        return h

    @tensor_contract("(B, T, input_size):float -> (B, T, hidden_size):float")
    def forward_infer(self, x: np.ndarray) -> np.ndarray:
        """Cache-free inference forward through all layers (batch-major)."""
        h = x
        for layer in self.layers:
            h = layer.forward_infer(h)
        return h

    @tensor_contract(
        "(B, input_size):float, (num_layers, 2, B, hidden_size):float"
        " -> (B, hidden_size):float, (num_layers, 2, B, hidden_size):float"
    )
    def step_batch(
        self, x: np.ndarray, states: Optional[np.ndarray] = None
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Advance B stacked per-node states by one timestep.

        ``states`` packs every layer's ``(h, c)`` pair into one
        ``(num_layers, 2, B, hidden_size)`` tensor; ``None`` starts all
        B nodes fresh.  Returns the top layer's new hidden state and the
        updated state tensor (a new array — the input is not mutated).
        """
        if x.ndim != 2 or x.shape[1] != self.input_size:
            raise ShapeError(
                f"step_batch expected (B, {self.input_size}), got {x.shape}"
            )
        B = x.shape[0]
        H = self.hidden_size
        expected = (self.num_layers, 2, B, H)
        if states is None:
            states = np.zeros(expected)
        if states.shape != expected:
            raise ShapeError(
                f"step_batch states must be {expected}, got {states.shape}"
            )
        new_states = np.empty(expected)
        h = x
        for idx, layer in enumerate(self.layers):
            h, c = layer.step_batch(h, states[idx, 0], states[idx, 1])
            new_states[idx, 0] = h
            new_states[idx, 1] = c
        return h, new_states

    @tensor_contract("(B, T, hidden_size):float -> (B, T, input_size):float")
    def backward(self, dh: np.ndarray) -> np.ndarray:
        """Backprop through all layers; returns gradient w.r.t. the input."""
        for layer in reversed(self.layers):
            dh = layer.backward(dh)
        return dh

    def params(self) -> Dict[str, np.ndarray]:
        """All layers' parameters, namespaced as ``l<idx>.<name>``."""
        out: Dict[str, np.ndarray] = {}
        for idx, layer in enumerate(self.layers):
            for name, arr in layer.params().items():
                out[f"l{idx}.{name}"] = arr
        return out

    def grads(self) -> Dict[str, np.ndarray]:
        """All layers' gradients, namespaced like :meth:`params`."""
        out: Dict[str, np.ndarray] = {}
        for idx, layer in enumerate(self.layers):
            for name, arr in layer.grads().items():
                out[f"l{idx}.{name}"] = arr
        return out

    def zero_grad(self) -> None:
        """Clear every layer's gradient accumulators."""
        for layer in self.layers:
            layer.zero_grad()
