"""Runtime tensor contracts: shape/dtype decorators for layer methods.

deshlint's static rules cannot see array shapes, so the nn substrate
complements them with *runtime* contracts — a declarative spec attached
to each ``forward``/``backward``::

    @tensor_contract("(B, T, input_size):float -> (B, T, hidden_size):float")
    def forward(self, x): ...

The spec grammar is ``input -> output`` where each side is ``None``, a
single ``(dim, dim, ...)`` group with an optional ``:float``/``:int``
dtype, or a comma-separated list of such groups (the batch-major
stateful APIs take and return several tensors)::

    @tensor_contract(
        "(B, input_size):float, (B, hidden_size):float"
        " -> (B, hidden_size):float, (B, hidden_size):float"
    )
    def step_batch(self, x, h=None): ...

A multi-group input side checks the leading positional arguments in
order (``None`` arguments are skipped — optional state defaults); a
multi-group output side requires the return value to be a tuple of
matching length.  All groups on both sides share one binding scope, so
a symbolic ``B`` must agree across every tensor in the call.  A dim is
an integer literal, ``...`` (any leading dims, first position only),
or an identifier; identifiers resolve against instance attributes when
the layer defines them (``in_dim``, ``hidden_size``) and otherwise
bind on first use, so ``B``/``T`` enforce *consistency* between input
and output without pinning concrete sizes.

Contracts are assertions, not error handling: like ``assert``, the
whole checking layer compiles out under ``python -O`` (``__debug__``
false means :func:`tensor_contract` returns the function untouched at
decoration time — zero per-call overhead).  Violations raise
:class:`~repro.errors.ContractError`, a :class:`~repro.errors.ShapeError`
subclass, so existing shape-guard handling keeps working.
"""

from __future__ import annotations

import functools
import re
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np

from ..errors import ContractError

__all__ = ["TensorSpec", "declared_contracts", "parse_spec", "tensor_contract"]

#: ``module.qualname`` of every decorated function -> its spec string.
#: Populated at decoration time even under ``python -O`` (where the
#: wrapper itself is compiled out), so static consumers — deshlint's F1
#: shape-flow analysis — can always recover the declared specs without
#: re-parsing source decorators.
_SPEC_REGISTRY: dict = {}

_SIDE_RE = re.compile(r"^\((?P<dims>[^)]*)\)(?::(?P<dtype>\w+))?$")

_DTYPES = {
    "float": np.floating,
    "int": np.integer,
    "bool": np.bool_,
}


@dataclass(frozen=True)
class TensorSpec:
    """One side of a contract: expected dims and dtype family.

    ``dims`` holds ``...`` (Ellipsis), int literals, or identifier
    strings; ``ellipsis_lead`` records whether the spec opened with
    ``...`` (matching any leading shape prefix).  ``dtype`` is an
    abstract NumPy scalar base class or ``None`` for "any".
    """

    dims: Tuple[object, ...]
    ellipsis_lead: bool
    dtype: Optional[type]

    def describe(self) -> str:
        """Human-readable form used in violation messages."""
        parts = ["..."] if self.ellipsis_lead else []
        parts += [str(d) for d in self.dims]
        suffix = ""
        for name, klass in _DTYPES.items():
            if klass is self.dtype:
                suffix = f":{name}"
        return f"({', '.join(parts)}){suffix}"


def _parse_side(text: str) -> Optional[TensorSpec]:
    text = text.strip()
    if text in ("none", "None"):
        return None
    match = _SIDE_RE.match(text)
    if match is None:
        raise ContractError(f"bad tensor spec side {text!r}")
    dtype = None
    if match.group("dtype"):
        if match.group("dtype") not in _DTYPES:
            raise ContractError(
                f"unknown dtype {match.group('dtype')!r} "
                f"(have: {', '.join(sorted(_DTYPES))})"
            )
        dtype = _DTYPES[match.group("dtype")]
    raw = [d.strip() for d in match.group("dims").split(",") if d.strip()]
    ellipsis_lead = False
    dims: list[object] = []
    for i, dim in enumerate(raw):
        if dim == "...":
            if i != 0:
                raise ContractError(
                    f"'...' is only allowed in the first position: {text!r}"
                )
            ellipsis_lead = True
        elif dim.lstrip("-").isdigit():
            dims.append(int(dim))
        elif dim.isidentifier():
            dims.append(dim)
        else:
            raise ContractError(f"bad dim {dim!r} in tensor spec {text!r}")
    return TensorSpec(tuple(dims), ellipsis_lead, dtype)


def _split_top(text: str) -> "list[str]":
    """Split on commas at paren depth zero (multi-group side grammar)."""
    parts: list[str] = []
    depth = 0
    start = 0
    for index, char in enumerate(text):
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
            if depth < 0:
                raise ContractError(f"unbalanced parens in tensor spec {text!r}")
        elif char == "," and depth == 0:
            parts.append(text[start:index])
            start = index + 1
    if depth != 0:
        raise ContractError(f"unbalanced parens in tensor spec {text!r}")
    parts.append(text[start:])
    return parts


def _parse_group(text: str) -> object:
    """Parse one side: a bare spec, ``None``, or a tuple of specs."""
    parts = _split_top(text)
    if len(parts) == 1:
        return _parse_side(parts[0])
    specs = []
    for part in parts:
        spec = _parse_side(part)
        if spec is None:
            raise ContractError(
                f"None is not allowed inside a multi-group side: {text!r}"
            )
        specs.append(spec)
    return tuple(specs)


def parse_spec(spec: str) -> Tuple[object, object]:
    """Parse ``"input -> output"`` into per-side specs.

    Each element of the returned pair is ``None``, a single
    :class:`TensorSpec`, or (for multi-group sides) a tuple of
    :class:`TensorSpec`.
    """
    head, arrow, tail = spec.partition("->")
    if not arrow:
        raise ContractError(f"bad tensor contract {spec!r}")
    try:
        return _parse_group(head), _parse_group(tail)
    except ContractError as exc:
        raise ContractError(f"bad tensor contract {spec!r}: {exc}") from exc


def _check(
    side: str,
    spec: Optional[TensorSpec],
    value: object,
    owner: object,
    func_name: str,
    bindings: dict,
) -> None:
    """Validate one array against one spec, updating dim bindings."""
    label = f"{type(owner).__name__}.{func_name} {side}"
    if spec is None:
        if side == "output" and value is not None:
            raise ContractError(f"{label}: expected None, got {type(value).__name__}")
        return
    arr = np.asarray(value)
    if spec.dtype is not None and not np.issubdtype(arr.dtype, spec.dtype):
        raise ContractError(
            f"{label}: dtype {arr.dtype} does not satisfy {spec.describe()}"
        )
    shape = arr.shape
    if spec.ellipsis_lead:
        if len(shape) < len(spec.dims):
            raise ContractError(
                f"{label}: shape {shape} too short for {spec.describe()}"
            )
        lead, tail = shape[: len(shape) - len(spec.dims)], shape[len(shape) - len(spec.dims):]
        prior = bindings.setdefault("...", lead)
        if prior != lead:
            raise ContractError(
                f"{label}: leading dims {lead} != bound {prior} "
                f"for {spec.describe()}"
            )
    else:
        if len(shape) != len(spec.dims):
            raise ContractError(
                f"{label}: shape {shape} has wrong rank for {spec.describe()}"
            )
        tail = shape
    for dim, actual in zip(spec.dims, tail):
        if isinstance(dim, int):
            expected = dim
        else:
            if hasattr(owner, dim):
                expected = int(getattr(owner, dim))
            elif dim in bindings:
                expected = bindings[dim]
            else:
                bindings[dim] = actual
                continue
        if actual != expected:
            raise ContractError(
                f"{label}: shape {shape} violates {spec.describe()} "
                f"(dim {dim} should be {expected}, got {actual})"
            )


def tensor_contract(spec: str) -> Callable:
    """Decorator enforcing *spec* on a method's first array argument.

    The input spec applies to the first positional argument after
    ``self``; the output spec to the return value.  Under ``python -O``
    the decorator is the identity function (contracts compile out).
    """
    if not __debug__:  # pragma: no cover - exercised via subprocess test
        def record(func: Callable) -> Callable:
            _SPEC_REGISTRY[f"{func.__module__}.{func.__qualname__}"] = spec
            return func

        return record
    inp, out = parse_spec(spec)  # parse once, at decoration time

    def decorate(func: Callable) -> Callable:
        @functools.wraps(func)
        def wrapper(self, *args, **kwargs):
            bindings: dict = {}
            if isinstance(inp, tuple):
                # Multi-group input: leading positional args in order;
                # None means an optional state arg left at its default.
                for spec, value in zip(inp, args):
                    if value is not None:
                        _check("input", spec, value, self, func.__name__, bindings)
            elif inp is not None and args:
                _check("input", inp, args[0], self, func.__name__, bindings)
            result = func(self, *args, **kwargs)
            if isinstance(out, tuple):
                if not isinstance(result, tuple) or len(result) != len(out):
                    raise ContractError(
                        f"{type(self).__name__}.{func.__name__} output: "
                        f"expected a {len(out)}-tuple, got "
                        f"{type(result).__name__}"
                    )
                for spec, value in zip(out, result):
                    _check("output", spec, value, self, func.__name__, bindings)
            else:
                _check("output", out, result, self, func.__name__, bindings)
            return result

        wrapper.__tensor_contract__ = spec
        _SPEC_REGISTRY[f"{func.__module__}.{func.__qualname__}"] = spec
        return wrapper

    return decorate


def declared_contracts(cls: type) -> dict:
    """Spec strings declared on *cls*'s own methods, keyed by method name.

    The static view of a class's tensor contracts, independent of
    ``python -O``: specs come from the wrapper attribute when present
    and from the decoration-time registry otherwise.  This is the hook
    deshlint's F1 shape-flow analysis uses as its transfer functions.
    """
    out: dict = {}
    for name, member in vars(cls).items():
        spec = getattr(member, "__tensor_contract__", None)
        if spec is None and callable(member):
            spec = _SPEC_REGISTRY.get(f"{member.__module__}.{member.__qualname__}")
        if spec is not None:
            out[name] = spec
    return out
