"""Weight initializers.

Glorot/Xavier uniform for input projections, orthogonal for recurrent
matrices (the standard recipe that keeps LSTM gradients well-conditioned
over long unrolls), zeros plus a forget-gate bias of 1 for LSTM biases.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError

__all__ = ["glorot_uniform", "orthogonal", "zeros"]


def glorot_uniform(
    rng: np.random.Generator, fan_in: int, fan_out: int
) -> np.ndarray:
    """Glorot/Xavier uniform matrix of shape ``(fan_in, fan_out)``."""
    if fan_in <= 0 or fan_out <= 0:
        raise ShapeError(f"fan dimensions must be positive, got {fan_in}x{fan_out}")
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def orthogonal(rng: np.random.Generator, rows: int, cols: int) -> np.ndarray:
    """Orthogonal matrix of shape ``(rows, cols)`` via QR decomposition.

    For non-square shapes the result has orthonormal columns (rows >= cols)
    or orthonormal rows (rows < cols).
    """
    if rows <= 0 or cols <= 0:
        raise ShapeError(f"dimensions must be positive, got {rows}x{cols}")
    a = rng.standard_normal((max(rows, cols), min(rows, cols)))
    q, r = np.linalg.qr(a)
    # Sign correction makes the distribution uniform over orthogonal mats.
    q *= np.sign(np.diag(r))
    if rows < cols:
        q = q.T
    return np.ascontiguousarray(q[:rows, :cols])


def zeros(*shape: int) -> np.ndarray:
    """Zero array of the given shape (float64)."""
    return np.zeros(shape, dtype=np.float64)
