"""Loss functions with analytic gradients.

Phase 1 trains with categorical cross-entropy ("log analysis is a
multi-class problem"), phases 2 and 3 with mean squared error (Table 5).
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from .activations import log_softmax, softmax

__all__ = ["CategoricalCrossEntropy", "MeanSquaredError"]


class CategoricalCrossEntropy:
    """Softmax + cross-entropy over integer class targets.

    Operating on logits keeps the gradient the numerically exact
    ``softmax(logits) - onehot(targets)`` without materializing one-hots.
    """

    def loss(self, logits: np.ndarray, targets: np.ndarray) -> float:
        """Mean negative log-likelihood.

        Parameters
        ----------
        logits:
            ``(N, C)`` unnormalized scores.
        targets:
            ``(N,)`` integer class ids in ``[0, C)``.
        """
        logits, targets = self._check(logits, targets)
        lp = log_softmax(logits, axis=-1)
        return float(-lp[np.arange(len(targets)), targets].mean())

    def grad(self, logits: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Gradient of :meth:`loss` w.r.t. the logits, shape ``(N, C)``."""
        logits, targets = self._check(logits, targets)
        p = softmax(logits, axis=-1)
        p[np.arange(len(targets)), targets] -= 1.0
        p /= len(targets)
        return p

    @staticmethod
    def _check(
        logits: np.ndarray, targets: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        logits = np.asarray(logits, dtype=np.float64)
        targets = np.asarray(targets)
        if logits.ndim != 2:
            raise ShapeError(f"logits must be 2-D, got {logits.shape}")
        if targets.shape != (logits.shape[0],):
            raise ShapeError(
                f"targets must be ({logits.shape[0]},), got {targets.shape}"
            )
        if not np.issubdtype(targets.dtype, np.integer):
            raise ShapeError(f"targets must be integers, got {targets.dtype}")
        if targets.size and (targets.min() < 0 or targets.max() >= logits.shape[1]):
            raise ShapeError("target class out of range")
        return logits, targets


class MeanSquaredError:
    """Mean squared error over arbitrary-shape predictions."""

    def loss(self, pred: np.ndarray, target: np.ndarray) -> float:
        """Mean squared error between prediction and target."""
        pred, target = self._check(pred, target)
        diff = pred - target
        return float(np.mean(diff * diff))

    def grad(self, pred: np.ndarray, target: np.ndarray) -> np.ndarray:
        """Gradient of :meth:`loss` w.r.t. *pred* (same shape)."""
        pred, target = self._check(pred, target)
        return 2.0 * (pred - target) / pred.size

    @staticmethod
    def _check(
        pred: np.ndarray, target: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        pred = np.asarray(pred, dtype=np.float64)
        target = np.asarray(target, dtype=np.float64)
        if pred.shape != target.shape:
            raise ShapeError(
                f"prediction shape {pred.shape} != target shape {target.shape}"
            )
        if pred.size == 0:
            raise ShapeError("cannot compute MSE of empty arrays")
        return pred, target
