"""repro — a full reproduction of Desh (Das et al., HPDC 2018).

Desh (Deep Learning for System Health) predicts *which* HPC compute node
will fail and *in how many minutes*, by mining unstructured system logs
with a three-phase stacked-LSTM pipeline.  This package reimplements the
complete system and every substrate it depends on:

* :mod:`repro.simlog` — a synthetic Cray-style log generator with exact
  ground truth (substituting for the paper's proprietary 373GB logs),
* :mod:`repro.parsing` — tokenization, Drain-style template mining,
  phrase encoding and Safe/Unknown/Error labeling,
* :mod:`repro.nn` — a from-scratch NumPy neural substrate (LSTM + BPTT,
  skip-gram embeddings, SGD/RMSprop/Adam),
* :mod:`repro.core` — the three Desh phases and the ``Desh`` facade,
* :mod:`repro.pipeline` — the staged training pipeline: typed stage
  artifacts, fingerprint-keyed caching and full-model persistence,
* :mod:`repro.analysis` — every metric, table and figure of the paper's
  evaluation,
* :mod:`repro.baselines` — DeepLog, n-gram and severity-keyword
  comparators,
* :mod:`repro.parallel`, :mod:`repro.io`, :mod:`repro.topology` —
  supporting substrates.

Quickstart::

    from repro import Desh, DeshConfig, generate_system

    log = generate_system("M3", seed=7)
    train, test = log.split(0.3)
    model = Desh(DeshConfig()).fit(list(train.records))
    for warning in model.warn(test.records):
        print(warning.message())
"""

from .config import (
    DeshConfig,
    EmbeddingConfig,
    Phase1Config,
    Phase2Config,
    Phase3Config,
)
from .core import Desh, DeshModel, FailureWarning
from .errors import ReproError
from .pipeline import ArtifactStore, DeshPipeline, load_model, save_model
from .events import EventSequence, Label, ParsedEvent
from .simlog import generate_system, SYSTEM_PRESETS
from .topology import ClusterTopology, CrayNodeId

__version__ = "1.0.0"

__all__ = [
    "Desh",
    "DeshModel",
    "DeshConfig",
    "EmbeddingConfig",
    "Phase1Config",
    "Phase2Config",
    "Phase3Config",
    "FailureWarning",
    "ReproError",
    "ArtifactStore",
    "DeshPipeline",
    "save_model",
    "load_model",
    "EventSequence",
    "Label",
    "ParsedEvent",
    "generate_system",
    "SYSTEM_PRESETS",
    "ClusterTopology",
    "CrayNodeId",
    "__version__",
]
