"""Static/dynamic content separation (Table 2 of the paper).

Each log message is "segregated into static and dynamic contents to
identify the constant message subphrase separating it from the variable
component (e.g., error identifier, IP address)"; the dynamic component is
discarded.  :func:`mask_message` replaces every dynamic span with the
``<*>`` mask so that all occurrences of one message family collapse to a
single canonical static phrase.

The masking rules are applied in priority order — composite dynamic
tokens (IP addresses, device ids, Lustre target names) are masked before
the generic number rules so their constant punctuation does not leak
into the static phrase.
"""

from __future__ import annotations

import re
from typing import Iterable

__all__ = ["MASK", "mask_message", "mask_many", "tokenize", "DYNAMIC_PATTERNS"]

MASK = "<*>"

#: Ordered (name, compiled regex) masking rules.  Order matters: composite
#: tokens first, generic decimal/hex numbers last.
DYNAMIC_PATTERNS: tuple[tuple[str, re.Pattern[str]], ...] = (
    ("hex_prefixed", re.compile(r"0x[0-9a-fA-F]+")),
    ("timestamp_tag", re.compile(r"\b\d{8}t\d{6}\b")),
    ("ipv4", re.compile(r"\b\d{1,3}(?:\.\d{1,3}){3}\b")),
    ("lustre_target", re.compile(r"\bsnx\d+-OST\d+\b")),
    ("nid", re.compile(r"\bnid\d+\b")),
    ("pci_devid", re.compile(r"\b[0-9a-f]{2}:[0-9a-f]{2}\.\d\b")),
    ("path", re.compile(r"/[\w.\-][\w./\-]*")),
    ("decimal", re.compile(r"\b\d+\b")),
    # Bare hex words (>= 6 chars, must contain a digit) such as kernel
    # page addresses; pure-decimal tokens were consumed by the rule above.
    ("hex_bare", re.compile(r"\b(?=[a-f]*\d)[0-9a-f]{6,}\b")),
)

_WS_RE = re.compile(r"\s+")


def mask_message(message: str) -> str:
    """Return the canonical static form of *message*.

    Every dynamic span (hex ids, decimals, IPs, paths, device ids, ...)
    becomes :data:`MASK`; runs of whitespace are normalized to single
    spaces.  The result is deterministic: two messages produced from the
    same template always mask to the same string.

    >>> mask_message("hwerr[2816]: Correctable AER_BAD_TLP Error 0x5f00")
    'hwerr[<*>]: Correctable AER_BAD_TLP Error <*>'
    """
    out = message
    for _, pattern in DYNAMIC_PATTERNS:
        out = pattern.sub(MASK, out)
    return _WS_RE.sub(" ", out).strip()


def tokenize(message: str) -> list[str]:
    """Whitespace-tokenize the masked form of *message*.

    The template miner operates on these token lists; dynamic tokens are
    already collapsed to :data:`MASK` so token positions align across
    occurrences of the same message family.
    """
    return mask_message(message).split(" ")


def mask_many(messages: Iterable[str]) -> list[str]:
    """Vectorized convenience wrapper: mask every message in a batch."""
    return [mask_message(m) for m in messages]
