"""Phrase labeling: Safe / Unknown / Error categorization (Table 3).

The paper's labels come from "consultation with the system
administrators"; the catalog of indicative phrases is published in its
Tables 3, 8 and 9, and this module encodes those rules directly.  A
phrase that matches no rule defaults to *Unknown* — exactly the paper's
semantics ("may or may not be indicative of some anomaly").

Terminal phrases — the messages that anchor failure chains because they
mark a node going down (``cb_node_unavailable``, shutdown events) — are
flagged separately.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Sequence

from ..errors import LabelingError
from ..events import Label

__all__ = ["PhraseLabeler", "default_labeler", "SAFE_PATTERNS", "ERROR_PATTERNS", "TERMINAL_PATTERNS"]


#: Phrases that are "definitely not related to any system anomaly".
SAFE_PATTERNS: tuple[str, ...] = (
    r"Mounting NID",
    r"apic_timer_irqs",
    r"Setting flag",
    r"Wait4Boot",
    r"Sending ec node info",
    r"Running sysctl",
    r"All threads awake",
    r"synchronized to",
    r"nss_ldap reconnected",
    r"session opened for user",
    r"Accepted publickey",
    r"Lustre: .* connected to",
    r"DVS: mounted",
    r"placeApp message",
    r"heartbeat ok",
    r"thermal reading nominal",
    r"all tests passed",
    r"audit: backlog",
    r"link up, port active",
    r"scrub rate set",
    r"login on tty",
    r"credential decoded",
)

#: Phrases "definitely indicative of some anomaly" — terminal messages or
#: major hardware/software malfunction.
ERROR_PATTERNS: tuple[str, ...] = (
    r"cb_node_unavailable",
    r"node shutdown in progress",
    r"Node .* is down",
    r"Debug NMI detected",
    r"Stop NMI detected",
    r"Kernel panic",
    r"Call Trace",
    r"^Stack:",
    r"Oops:",
    r"heartbeat fault",
    r"ASIC link failed",
    r"Uncorrected MCE",
    r"self-detected stall",
    r"LBUG",
    r"CANCELLED DUE TO NODE FAILURE",
    r"System: halted",
)

#: Error phrases that additionally mark the node as *down* (chain anchors).
TERMINAL_PATTERNS: tuple[str, ...] = (
    r"cb_node_unavailable",
    r"node shutdown in progress",
)


@dataclass(frozen=True)
class PhraseLabeler:
    """Rule-based Safe/Unknown/Error classifier over static phrases.

    Error rules take precedence over Safe rules (a phrase mentioning both
    a panic and benign words is an anomaly indicator); anything unmatched
    is Unknown.
    """

    safe_patterns: Sequence[str] = SAFE_PATTERNS
    error_patterns: Sequence[str] = ERROR_PATTERNS
    terminal_patterns: Sequence[str] = TERMINAL_PATTERNS

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "_safe_re", self._compile(self.safe_patterns, "safe")
        )
        object.__setattr__(
            self, "_error_re", self._compile(self.error_patterns, "error")
        )
        object.__setattr__(
            self, "_terminal_re", self._compile(self.terminal_patterns, "terminal")
        )

    @staticmethod
    def _compile(patterns: Sequence[str], kind: str) -> re.Pattern[str]:
        if not patterns:
            raise LabelingError(f"{kind} pattern list must not be empty")
        try:
            return re.compile("|".join(f"(?:{p})" for p in patterns))
        except re.error as exc:
            raise LabelingError(f"invalid {kind} pattern: {exc}") from exc

    def label(self, phrase: str) -> str:
        """Classify one static phrase into Safe / Unknown / Error."""
        if not phrase:
            raise LabelingError("cannot label an empty phrase")
        if self._error_re.search(phrase):  # type: ignore[attr-defined]
            return Label.ERROR
        if self._safe_re.search(phrase):  # type: ignore[attr-defined]
            return Label.SAFE
        return Label.UNKNOWN

    def is_terminal(self, phrase: str) -> bool:
        """True when *phrase* marks a node going down."""
        return bool(self._terminal_re.search(phrase))  # type: ignore[attr-defined]

    def label_many(self, phrases: Sequence[str]) -> list[str]:
        """Classify a batch of phrases."""
        return [self.label(p) for p in phrases]


def default_labeler() -> PhraseLabeler:
    """The standard labeler built from the paper's published phrase lists."""
    return PhraseLabeler()
