"""Drain-style log template miner.

Groups tokenized log messages into message families ("phrases" in the
paper's terminology) using a fixed-depth parse tree:

* level 0 splits by token count (two messages with different lengths are
  never the same template),
* levels 1..depth split by the leading tokens (two by default, as in
  the original Drain; a generalized token becomes the wildcard ``<*>``
  branch),
* leaves hold template clusters; a message joins the most similar
  cluster above ``sim_threshold``, otherwise it founds a new one.

When a message joins a cluster, tokens that disagree with the cluster
template are generalized to ``<*>``.  Because :mod:`repro.parsing.tokenizer`
already masks dynamic fields, most clusters converge after one message;
the tree earns its keep on messages whose dynamic parts escape the
masking rules (free-form fragments, truncated words, ...).

This is an independent reimplementation of the Drain algorithm (He et
al., ICWS 2017), the de-facto standard parser for unstructured HPC logs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from ..errors import TemplateMinerError
from .tokenizer import MASK, tokenize

__all__ = ["MinedTemplate", "TemplateMiner"]


@dataclass
class MinedTemplate:
    """One mined message family."""

    template_id: int
    tokens: list[str]
    count: int = 0

    @property
    def text(self) -> str:
        """The template rendered as a space-joined token string."""
        return " ".join(self.tokens)

    def similarity(self, tokens: list[str]) -> float:
        """Fraction of positions matching *tokens*; ``<*>`` matches anything."""
        if len(tokens) != len(self.tokens):
            return 0.0
        same = sum(
            1 for a, b in zip(self.tokens, tokens) if a == b or a == MASK
        )
        return same / len(tokens)

    def absorb(self, tokens: list[str]) -> None:
        """Merge *tokens* into this template, wildcarding disagreements."""
        if len(tokens) != len(self.tokens):
            raise TemplateMinerError(
                f"token length mismatch: {len(tokens)} vs {len(self.tokens)}"
            )
        self.tokens = [
            a if (a == b or a == MASK) else MASK
            for a, b in zip(self.tokens, tokens)
        ]
        self.count += 1


@dataclass
class _Node:
    children: Dict[str, "_Node"] = field(default_factory=dict)
    clusters: list[MinedTemplate] = field(default_factory=list)


class TemplateMiner:
    """Fixed-depth Drain parse tree.

    Parameters
    ----------
    depth:
        Number of leading tokens used as tree keys (default 2, matching
        Drain's standard depth-4 tree: root + length + 2 token levels).
    sim_threshold:
        Minimum similarity for a message to join an existing cluster
        (0.7: with a shallow tree the leaf test must be strict, or
        families sharing a two-token prefix over-generalize).
    max_children:
        Per-node branching cap; overflow tokens fall into the wildcard
        branch, bounding memory on high-cardinality token positions.
    """

    def __init__(
        self,
        depth: int = 2,
        sim_threshold: float = 0.7,
        max_children: int = 100,
    ) -> None:
        if depth < 1:
            raise TemplateMinerError(f"depth must be >= 1, got {depth}")
        if not 0.0 < sim_threshold <= 1.0:
            raise TemplateMinerError(
                f"sim_threshold must be in (0, 1], got {sim_threshold}"
            )
        if max_children < 1:
            raise TemplateMinerError(f"max_children must be >= 1, got {max_children}")
        self.depth = depth
        self.sim_threshold = sim_threshold
        self.max_children = max_children
        self._root: Dict[int, _Node] = {}
        self._templates: list[MinedTemplate] = []

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def templates(self) -> list[MinedTemplate]:
        """All mined templates, in id order."""
        return list(self._templates)

    def __len__(self) -> int:
        return len(self._templates)

    def get(self, template_id: int) -> MinedTemplate:
        """The template with the given dense id."""
        try:
            return self._templates[template_id]
        except IndexError:
            raise TemplateMinerError(f"no template with id {template_id}") from None

    # ------------------------------------------------------------------
    # mining
    # ------------------------------------------------------------------
    def add_message(self, message: str) -> MinedTemplate:
        """Route *message* through the tree; returns its (possibly new) template."""
        tokens = tokenize(message)
        if not tokens or tokens == [""]:
            raise TemplateMinerError("cannot mine an empty message")
        node = self._descend(tokens, create=True)
        assert node is not None
        best = self._best_cluster(node, tokens)
        if best is not None:
            best.absorb(tokens)
            return best
        template = MinedTemplate(template_id=len(self._templates), tokens=list(tokens), count=1)
        self._templates.append(template)
        node.clusters.append(template)
        return template

    def match(self, message: str) -> Optional[MinedTemplate]:
        """Find the template for *message* without modifying the tree."""
        tokens = tokenize(message)
        node = self._descend(tokens, create=False)
        if node is None:
            return None
        return self._best_cluster(node, tokens)

    def fit(self, messages: Iterable[str]) -> "TemplateMiner":
        """Mine every message in *messages*; returns self for chaining."""
        for m in messages:
            self.add_message(m)
        return self

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _descend(self, tokens: list[str], *, create: bool) -> Optional[_Node]:
        length = len(tokens)
        node = self._root.get(length)
        if node is None:
            if not create:
                return None
            node = self._root[length] = _Node()
        for i in range(min(self.depth, length)):
            key = tokens[i]
            # High-cardinality guard: numbers that escaped masking, or a
            # full branch, go down the wildcard edge.
            if key not in node.children:
                if any(ch.isdigit() for ch in key):
                    key = MASK
                elif len(node.children) >= self.max_children:
                    key = MASK
            child = node.children.get(key)
            if child is None:
                if not create:
                    # Fall back to the wildcard branch when matching only.
                    child = node.children.get(MASK)
                    if child is None:
                        return None
                else:
                    child = node.children[key] = _Node()
            node = child
        return node

    def _best_cluster(
        self, node: _Node, tokens: list[str]
    ) -> Optional[MinedTemplate]:
        best: Optional[MinedTemplate] = None
        best_sim = self.sim_threshold
        for cluster in node.clusters:
            sim = cluster.similarity(tokens)
            if sim >= best_sim and (best is None or sim > best_sim):
                best, best_sim = cluster, sim
        return best
