"""Phrase vocabulary: static template text <-> integer phrase id.

"Once the constant messages are extracted they are encoded to a uniquely
identifiable number" (Section 3.1).  The vocabulary also tracks
occurrence counts (used by the skip-gram negative-sampling table) and
supports JSON round-tripping for model persistence.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, Iterator

import numpy as np

from ..errors import SerializationError, VocabularyError

__all__ = ["PhraseVocabulary"]


class PhraseVocabulary:
    """Bidirectional mapping between phrase text and dense integer ids."""

    def __init__(self) -> None:
        self._text_to_id: Dict[str, int] = {}
        self._id_to_text: list[str] = []
        self._counts: list[int] = []

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add(self, text: str, count: int = 1) -> int:
        """Intern *text*, bumping its count; returns the phrase id."""
        if not text:
            raise VocabularyError("cannot intern an empty phrase")
        if count < 0:
            raise VocabularyError(f"count must be >= 0, got {count}")
        pid = self._text_to_id.get(text)
        if pid is None:
            pid = len(self._id_to_text)
            self._text_to_id[text] = pid
            self._id_to_text.append(text)
            self._counts.append(0)
        self._counts[pid] += count
        return pid

    def update(self, texts: Iterable[str]) -> None:
        """Intern every text in *texts*, bumping counts."""
        for t in texts:
            self.add(t)

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._id_to_text)

    def __contains__(self, text: str) -> bool:
        return text in self._text_to_id

    def __iter__(self) -> Iterator[str]:
        return iter(self._id_to_text)

    def id_of(self, text: str) -> int:
        """The id of *text*; raises for unknown phrases."""
        try:
            return self._text_to_id[text]
        except KeyError:
            raise VocabularyError(f"unknown phrase: {text!r}") from None

    def text_of(self, phrase_id: int) -> str:
        """The phrase text for *phrase_id*; raises for unknown ids."""
        if not 0 <= phrase_id < len(self._id_to_text):
            raise VocabularyError(f"unknown phrase id: {phrase_id}")
        return self._id_to_text[phrase_id]

    def get_id(self, text: str, default: int = -1) -> int:
        """Like :meth:`id_of` but returns *default* for unknown phrases."""
        return self._text_to_id.get(text, default)

    def count_of(self, phrase_id: int) -> int:
        """Occurrence count recorded for *phrase_id*."""
        if not 0 <= phrase_id < len(self._counts):
            raise VocabularyError(f"unknown phrase id: {phrase_id}")
        return self._counts[phrase_id]

    def counts(self) -> np.ndarray:
        """Occurrence counts as an ``int64`` array indexed by phrase id."""
        return np.asarray(self._counts, dtype=np.int64)

    def frequencies(self) -> np.ndarray:
        """Normalized occurrence frequencies (sums to 1)."""
        c = self.counts().astype(np.float64)
        total = c.sum()
        if total == 0:
            raise VocabularyError("vocabulary has no counted occurrences")
        return c / total

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serializable payload (inverse of :meth:`from_dict`)."""
        return {"phrases": self._id_to_text, "counts": self._counts}

    @classmethod
    def from_dict(cls, data: dict) -> "PhraseVocabulary":
        """Rebuild a vocabulary from a :meth:`to_dict` payload."""
        phrases = data.get("phrases")
        counts = data.get("counts")
        if not isinstance(phrases, list) or not isinstance(counts, list):
            raise SerializationError("malformed vocabulary payload")
        if len(phrases) != len(counts):
            raise SerializationError(
                f"phrases/counts length mismatch: {len(phrases)} vs {len(counts)}"
            )
        vocab = cls()
        for text, count in zip(phrases, counts):
            vocab.add(text, int(count))
        return vocab

    def save(self, path: str | Path) -> None:
        """Write the vocabulary to a JSON file."""
        Path(path).write_text(json.dumps(self.to_dict()))

    @classmethod
    def load(cls, path: str | Path) -> "PhraseVocabulary":
        """Read a vocabulary from a JSON file (inverse of :meth:`save`)."""
        try:
            return cls.from_dict(json.loads(Path(path).read_text()))
        except (OSError, json.JSONDecodeError) as exc:
            raise SerializationError(f"cannot load vocabulary from {path}") from exc
