"""Log-parsing substrate: tokenize, mine templates, encode, label.

This mirrors the paper's phase-1 preprocessing (Section 3.1): each raw
message is segregated into *static* and *dynamic* content (Table 2); the
static templates are mined, encoded to unique phrase ids, and labeled
Safe / Unknown / Error (Table 3).
"""

from .tokenizer import mask_message, tokenize, MASK
from .miner import TemplateMiner, MinedTemplate
from .encoder import PhraseVocabulary
from .labeling import PhraseLabeler, default_labeler
from .pipeline import LogParser, ParseResult

__all__ = [
    "mask_message",
    "tokenize",
    "MASK",
    "TemplateMiner",
    "MinedTemplate",
    "PhraseVocabulary",
    "PhraseLabeler",
    "default_labeler",
    "LogParser",
    "ParseResult",
]
