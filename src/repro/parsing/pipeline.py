"""End-to-end log parsing: raw records -> labeled, encoded event streams.

:class:`LogParser` wires the tokenizer, template miner, vocabulary and
labeler together.  ``fit`` mines the phrase inventory from training
records; ``transform`` maps any records (training or disjoint test data)
to :class:`~repro.events.ParsedEvent` streams with phrase ids, labels and
terminal flags — the exact input representation of LSTM phases 1-3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from ..errors import NotFittedError
from ..events import EventSequence, Label, ParsedEvent, group_by_node
from ..obs import current_tracer, metrics_registry
from ..simlog.record import LogRecord
from ..topology.cray import CrayNodeId
from .encoder import PhraseVocabulary
from .labeling import PhraseLabeler, default_labeler
from .miner import TemplateMiner

__all__ = ["LogParser", "ParseResult"]


@dataclass
class ParseResult:
    """Parsed event streams plus per-node segmentation helpers.

    ``ingest_stats`` is populated when the records came through the
    hardened ingest front-end (:meth:`LogParser.transform_lines`), so
    callers can account for quarantined/deduplicated raw lines in
    addition to the ``skipped`` out-of-vocabulary records.
    """

    events: list[ParsedEvent]
    skipped: int = 0
    ingest_stats: "object | None" = field(default=None, compare=False)

    def by_node(self) -> dict[Optional[CrayNodeId], EventSequence]:
        """Per-node event sequences (phase-3 batching unit)."""
        return group_by_node(self.events)

    def node_events(self, node: CrayNodeId) -> EventSequence:
        """The events of one specific node, as a sequence."""
        return EventSequence(node, [e for e in self.events if e.node == node])

    def __len__(self) -> int:
        return len(self.events)


class LogParser:
    """Mines phrase templates from raw records and encodes event streams."""

    def __init__(
        self,
        *,
        miner: TemplateMiner | None = None,
        labeler: PhraseLabeler | None = None,
    ) -> None:
        self.miner = miner if miner is not None else TemplateMiner()
        self.labeler = labeler if labeler is not None else default_labeler()
        self.vocab = PhraseVocabulary()
        self._labels: list[str] = []
        self._terminal: list[bool] = []
        self._fitted = False

    # ------------------------------------------------------------------
    # fitting
    # ------------------------------------------------------------------
    @classmethod
    def from_vocabulary(
        cls,
        vocab: PhraseVocabulary,
        *,
        labeler: PhraseLabeler | None = None,
    ) -> "LogParser":
        """Reconstruct a fitted parser from a persisted vocabulary.

        The vocabulary's phrase texts *are* the mined templates (masking
        is idempotent), so replaying them through a fresh miner in id
        order rebuilds the exact template tree — phrase ids, labels and
        terminal flags all match the original parser.  This is how a
        model saved by the CLI scores logs it has never seen.
        """
        parser = cls(labeler=labeler)
        for pid in range(len(vocab)):
            text = vocab.text_of(pid)
            template = parser.miner.add_message(text)
            if template.template_id != pid:
                raise NotFittedError(
                    f"vocabulary phrase {pid} ({text!r}) did not rebuild "
                    f"to a unique template (got id {template.template_id})"
                )
            parser._intern(text)
        parser._fitted = True
        return parser

    def fit(self, records: Iterable[LogRecord]) -> "LogParser":
        """Mine templates and build the phrase vocabulary from *records*."""
        with current_tracer().span("parse.fit") as span:
            count = 0
            for record in records:
                template = self.miner.add_message(record.message)
                self._intern(template.text)
                count += 1
            self._fitted = True
            span.set(records=count, phrases=len(self.vocab))
        return self

    def _intern(self, text: str) -> int:
        pid = self.vocab.add(text)
        while len(self._labels) < len(self.vocab):
            phrase = self.vocab.text_of(len(self._labels))
            self._labels.append(self.labeler.label(phrase))
            self._terminal.append(self.labeler.is_terminal(phrase))
        return pid

    # ------------------------------------------------------------------
    # encoding
    # ------------------------------------------------------------------
    def encode(self, record: LogRecord) -> Optional[ParsedEvent]:
        """Encode one record; returns ``None`` for out-of-vocabulary messages.

        Test data may contain unseen message families ("new patterns or
        unknown failures are rare" — Observation 1); those are skipped
        rather than force-fitted, matching the paper's protocol of
        validating against *trained* chains.
        """
        if not self._fitted:
            raise NotFittedError("LogParser.fit must run before encode")
        template = self.miner.match(record.message)
        if template is None:
            return None
        pid = self.vocab.get_id(template.text)
        if pid < 0:
            return None
        return ParsedEvent(
            timestamp=record.timestamp,
            phrase_id=pid,
            node=record.node,
            label=self._labels[pid],
            terminal=self._terminal[pid],
        )

    def transform(self, records: Iterable[LogRecord]) -> ParseResult:
        """Encode a record stream, skipping out-of-vocabulary messages."""
        with current_tracer().span("parse.transform") as span:
            events: list[ParsedEvent] = []
            skipped = 0
            for record in records:
                event = self.encode(record)
                if event is None:
                    skipped += 1
                else:
                    events.append(event)
            events.sort()
            span.set(events=len(events), skipped=skipped)
        if skipped:
            metrics_registry().counter("parse.oov_skipped").inc(skipped)
        return ParseResult(events=events, skipped=skipped)

    def transform_lines(
        self, lines: Iterable[str], *, ingestor=None
    ) -> ParseResult:
        """Encode a *raw line* stream through the hardened ingest path.

        Lines are parsed by a :class:`~repro.resilience.HardenedIngestor`
        (a default-configured one is created when *ingestor* is omitted):
        unparseable lines are quarantined against the ingestor's error
        budget, duplicates dropped, and mild reordering repaired, before
        the surviving records are encoded exactly as :meth:`transform`
        does.  The result carries the ingest stats.
        """
        if ingestor is None:
            from ..resilience.ingest import HardenedIngestor

            ingestor = HardenedIngestor()
        with current_tracer().span("ingest.transform_lines") as span:
            result = self.transform(ingestor.ingest_lines(lines))
            span.set(
                lines=ingestor.stats.lines_seen,
                quarantined=ingestor.stats.quarantined,
            )
        result.ingest_stats = ingestor.stats
        return result

    def fit_transform(self, records: Sequence[LogRecord]) -> ParseResult:
        """Fit on *records* then encode the same records."""
        return self.fit(records).transform(records)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def num_phrases(self) -> int:
        """Size of the mined phrase vocabulary."""
        return len(self.vocab)

    def phrase_label(self, phrase_id: int) -> str:
        """The Safe/Unknown/Error label of one phrase id."""
        if not 0 <= phrase_id < len(self._labels):
            raise NotFittedError(f"no label for phrase id {phrase_id}")
        return self._labels[phrase_id]

    def is_terminal_id(self, phrase_id: int) -> bool:
        """Whether the phrase id marks a node going down."""
        if not 0 <= phrase_id < len(self._terminal):
            raise NotFittedError(f"no terminal flag for phrase id {phrase_id}")
        return self._terminal[phrase_id]

    def terminal_ids(self) -> list[int]:
        """Phrase ids of terminal (node-down) messages."""
        return [i for i, t in enumerate(self._terminal) if t]

    def labels_by_id(self) -> list[str]:
        """All phrase labels, indexed by phrase id."""
        return list(self._labels)

    def phrases_with_label(self, label: str) -> list[int]:
        """Phrase ids carrying the given label."""
        if label not in Label.ALL:
            raise NotFittedError(f"invalid label {label!r}")
        return [i for i, l in enumerate(self._labels) if l == label]
