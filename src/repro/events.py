"""Shared event containers used by the parsing pipeline and the Desh core.

A :class:`ParsedEvent` is the unit the whole pipeline operates on: one log
record reduced to (timestamp, node, phrase id, label).  An
:class:`EventSequence` is a time-ordered list of events belonging to one
node — the per-node streams Desh trains on (Figure 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Sequence

import numpy as np

from .errors import ChainExtractionError
from .topology.cray import CrayNodeId

__all__ = ["Label", "ParsedEvent", "EventSequence", "group_by_node"]


class Label:
    """The three phrase categories of Table 3."""

    SAFE = "safe"
    UNKNOWN = "unknown"
    ERROR = "error"

    ALL = (SAFE, UNKNOWN, ERROR)


@dataclass(frozen=True, order=True)
class ParsedEvent:
    """One parsed log event.

    Ordering is by ``(timestamp, phrase_id)`` so sorting a mixed stream
    yields a stable chronological order.
    """

    timestamp: float
    phrase_id: int = field(compare=True)
    node: Optional[CrayNodeId] = field(compare=False, default=None)
    label: str = field(compare=False, default=Label.UNKNOWN)
    terminal: bool = field(compare=False, default=False)

    def __post_init__(self) -> None:
        if self.label not in Label.ALL:
            raise ChainExtractionError(f"invalid label {self.label!r}")
        if self.phrase_id < 0:
            raise ChainExtractionError(f"phrase_id must be >= 0, got {self.phrase_id}")


class EventSequence:
    """Time-ordered events of a single node.

    Provides the array views the neural phases consume: ``phrase_ids()``
    and ``timestamps()`` as NumPy arrays (no copies are made after the
    first materialization).
    """

    def __init__(
        self, node: Optional[CrayNodeId], events: Iterable[ParsedEvent]
    ) -> None:
        self.node = node
        self.events: list[ParsedEvent] = sorted(events)
        for e in self.events:
            if e.node != node:
                raise ChainExtractionError(
                    f"event node {e.node} does not match sequence node {node}"
                )
        self._ids: Optional[np.ndarray] = None
        self._times: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[ParsedEvent]:
        return iter(self.events)

    def __getitem__(self, i: int) -> ParsedEvent:
        return self.events[i]

    def phrase_ids(self) -> np.ndarray:
        """Phrase ids as an ``int64`` array (cached)."""
        if self._ids is None:
            self._ids = np.array([e.phrase_id for e in self.events], dtype=np.int64)
        return self._ids

    def timestamps(self) -> np.ndarray:
        """Timestamps as a ``float64`` array (cached)."""
        if self._times is None:
            self._times = np.array([e.timestamp for e in self.events], dtype=np.float64)
        return self._times

    def without_safe(self) -> "EventSequence":
        """Copy with Safe-labeled events removed (Section 3.1, post-labeling)."""
        return EventSequence(
            self.node, [e for e in self.events if e.label != Label.SAFE]
        )

    def terminals(self) -> list[int]:
        """Indices of terminal events within this sequence."""
        return [i for i, e in enumerate(self.events) if e.terminal]


def group_by_node(
    events: Iterable[ParsedEvent],
) -> dict[Optional[CrayNodeId], EventSequence]:
    """Partition a mixed event stream into per-node sequences."""
    buckets: dict[Optional[CrayNodeId], list[ParsedEvent]] = {}
    for e in events:
        buckets.setdefault(e.node, []).append(e)
    return {node: EventSequence(node, evs) for node, evs in buckets.items()}
