"""Cray ``cA-BcCsSnN`` node identifiers.

The paper (Section 4.5) explains that the node id encodes the exact
physical location of a node::

    c<X>-<Y>c<C>s<S>n<N>
     |    |  |   |   +-- node number within the blade
     |    |  |   +------ blade slot within the chassis
     |    |  +---------- chassis within the cabinet
     |    +------------- cabinet row
     +------------------ cabinet column

e.g. ``c1-0c1s1n0`` is cabinet column 1, row 0, chassis 1, slot 1, node 0.
Real Cray XC machines have 3 chassis per cabinet, 16 blade slots per
chassis and 4 nodes per blade; those are the defaults used by
:class:`repro.topology.cluster.ClusterTopology`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from functools import total_ordering

from ..errors import NodeIdError

__all__ = ["CrayNodeId", "parse_node_id", "format_node_id", "NODE_ID_RE"]

NODE_ID_RE = re.compile(
    r"^c(?P<col>\d+)-(?P<row>\d+)c(?P<chassis>\d+)s(?P<slot>\d+)n(?P<node>\d+)$"
)


@total_ordering
@dataclass(frozen=True)
class CrayNodeId:
    """Physical location of one compute node in a Cray machine."""

    col: int
    row: int
    chassis: int
    slot: int
    node: int

    def __post_init__(self) -> None:
        for name in ("col", "row", "chassis", "slot", "node"):
            v = getattr(self, name)
            if not isinstance(v, int) or v < 0:
                raise NodeIdError(f"{name} must be a non-negative int, got {v!r}")

    # ------------------------------------------------------------------
    # codec
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "CrayNodeId":
        """Parse ``cA-BcCsSnN`` text into a :class:`CrayNodeId`."""
        m = NODE_ID_RE.match(text.strip())
        if m is None:
            raise NodeIdError(f"not a valid Cray node id: {text!r}")
        return cls(
            col=int(m.group("col")),
            row=int(m.group("row")),
            chassis=int(m.group("chassis")),
            slot=int(m.group("slot")),
            node=int(m.group("node")),
        )

    def __str__(self) -> str:
        return f"c{self.col}-{self.row}c{self.chassis}s{self.slot}n{self.node}"

    # ------------------------------------------------------------------
    # location helpers
    # ------------------------------------------------------------------
    @property
    def cabinet(self) -> tuple[int, int]:
        """(column, row) pair identifying the cabinet."""
        return (self.col, self.row)

    @property
    def blade(self) -> tuple[int, int, int, int]:
        """(col, row, chassis, slot) identifying the blade."""
        return (self.col, self.row, self.chassis, self.slot)

    def same_cabinet(self, other: "CrayNodeId") -> bool:
        """True when both nodes live in the same physical cabinet."""
        return self.cabinet == other.cabinet

    def same_blade(self, other: "CrayNodeId") -> bool:
        """True when both nodes share a blade (strongest spatial coupling)."""
        return self.blade == other.blade

    def location_phrase(self) -> str:
        """Human-readable location, for failure warnings.

        >>> CrayNodeId(1, 0, 2, 5, 3).location_phrase()
        'cabinet c1-0, chassis 2, blade 5, node 3'
        """
        return (
            f"cabinet c{self.col}-{self.row}, chassis {self.chassis}, "
            f"blade {self.slot}, node {self.node}"
        )

    # ------------------------------------------------------------------
    # ordering — lexicographic by physical position
    # ------------------------------------------------------------------
    def _key(self) -> tuple[int, int, int, int, int]:
        return (self.col, self.row, self.chassis, self.slot, self.node)

    def __lt__(self, other: object) -> bool:
        if not isinstance(other, CrayNodeId):
            return NotImplemented
        return self._key() < other._key()


def parse_node_id(text: str) -> CrayNodeId:
    """Module-level convenience wrapper around :meth:`CrayNodeId.parse`."""
    return CrayNodeId.parse(text)


def format_node_id(node: CrayNodeId) -> str:
    """Render a :class:`CrayNodeId` in canonical ``cA-BcCsSnN`` form."""
    return str(node)
