"""Cray-style cluster topology substrate.

Provides :class:`CrayNodeId` (the ``cA-BcCsSnN`` identifier format whose
fields localize a node to cabinet column/row, chassis, blade (slot) and
node number — Section 4.5 of the paper) and :class:`ClusterTopology`
describing a whole machine.
"""

from .cray import CrayNodeId, format_node_id, parse_node_id
from .cluster import ClusterTopology

__all__ = ["CrayNodeId", "format_node_id", "parse_node_id", "ClusterTopology"]
