"""Whole-machine topology: cabinets x chassis x blades x nodes.

The generator uses a :class:`ClusterTopology` to enumerate node ids, to
pick spatially-correlated victims for cascading faults, and to size the
synthetic M1-M4 systems.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from ..errors import TopologyError
from .cray import CrayNodeId

__all__ = ["ClusterTopology"]


@dataclass(frozen=True)
class ClusterTopology:
    """Rectangular Cray-style machine layout.

    Parameters mirror real Cray XC geometry: ``chassis_per_cabinet`` is 3,
    ``slots_per_chassis`` 16 and ``nodes_per_blade`` 4 on XC30/XC40 systems;
    smaller values produce the scaled-down test machines.
    """

    cabinet_cols: int = 2
    cabinet_rows: int = 1
    chassis_per_cabinet: int = 3
    slots_per_chassis: int = 16
    nodes_per_blade: int = 4

    def __post_init__(self) -> None:
        for name in (
            "cabinet_cols",
            "cabinet_rows",
            "chassis_per_cabinet",
            "slots_per_chassis",
            "nodes_per_blade",
        ):
            v = getattr(self, name)
            if not isinstance(v, int) or v <= 0:
                raise TopologyError(f"{name} must be a positive int, got {v!r}")

    # ------------------------------------------------------------------
    # counting
    # ------------------------------------------------------------------
    @property
    def num_cabinets(self) -> int:
        """Total cabinet count (columns x rows)."""
        return self.cabinet_cols * self.cabinet_rows

    @property
    def nodes_per_chassis(self) -> int:
        """Compute nodes housed in one chassis."""
        return self.slots_per_chassis * self.nodes_per_blade

    @property
    def nodes_per_cabinet(self) -> int:
        """Compute nodes housed in one cabinet."""
        return self.chassis_per_cabinet * self.nodes_per_chassis

    @property
    def num_nodes(self) -> int:
        """Total compute-node count of the machine."""
        return self.num_cabinets * self.nodes_per_cabinet

    # ------------------------------------------------------------------
    # enumeration / indexing
    # ------------------------------------------------------------------
    def nodes(self) -> Iterator[CrayNodeId]:
        """Yield every node id in canonical physical order."""
        for col in range(self.cabinet_cols):
            for row in range(self.cabinet_rows):
                for chassis in range(self.chassis_per_cabinet):
                    for slot in range(self.slots_per_chassis):
                        for node in range(self.nodes_per_blade):
                            yield CrayNodeId(col, row, chassis, slot, node)

    def node_at(self, index: int) -> CrayNodeId:
        """Return the node id at flat *index* in canonical order."""
        if not 0 <= index < self.num_nodes:
            raise TopologyError(
                f"node index {index} out of range [0, {self.num_nodes})"
            )
        node = index % self.nodes_per_blade
        index //= self.nodes_per_blade
        slot = index % self.slots_per_chassis
        index //= self.slots_per_chassis
        chassis = index % self.chassis_per_cabinet
        index //= self.chassis_per_cabinet
        row = index % self.cabinet_rows
        col = index // self.cabinet_rows
        return CrayNodeId(col, row, chassis, slot, node)

    def index_of(self, node: CrayNodeId) -> int:
        """Inverse of :meth:`node_at`."""
        self._check_bounds(node)
        return (
            (
                (node.col * self.cabinet_rows + node.row) * self.chassis_per_cabinet
                + node.chassis
            )
            * self.slots_per_chassis
            + node.slot
        ) * self.nodes_per_blade + node.node

    def _check_bounds(self, node: CrayNodeId) -> None:
        if (
            node.col >= self.cabinet_cols
            or node.row >= self.cabinet_rows
            or node.chassis >= self.chassis_per_cabinet
            or node.slot >= self.slots_per_chassis
            or node.node >= self.nodes_per_blade
        ):
            raise TopologyError(f"node {node} outside topology {self}")

    # ------------------------------------------------------------------
    # spatial neighbourhoods (for correlated fault injection)
    # ------------------------------------------------------------------
    def blade_mates(self, node: CrayNodeId) -> list[CrayNodeId]:
        """All other nodes sharing *node*'s blade."""
        self._check_bounds(node)
        return [
            CrayNodeId(node.col, node.row, node.chassis, node.slot, n)
            for n in range(self.nodes_per_blade)
            if n != node.node
        ]

    def cabinet_mates(self, node: CrayNodeId) -> list[CrayNodeId]:
        """All other nodes sharing *node*'s cabinet."""
        self._check_bounds(node)
        out: list[CrayNodeId] = []
        for chassis in range(self.chassis_per_cabinet):
            for slot in range(self.slots_per_chassis):
                for n in range(self.nodes_per_blade):
                    cand = CrayNodeId(node.col, node.row, chassis, slot, n)
                    if cand != node:
                        out.append(cand)
        return out

    def sample_nodes(
        self, rng: np.random.Generator, count: int, *, replace: bool = False
    ) -> list[CrayNodeId]:
        """Sample *count* node ids uniformly without (or with) replacement."""
        if count < 0:
            raise TopologyError(f"count must be >= 0, got {count}")
        if not replace and count > self.num_nodes:
            raise TopologyError(
                f"cannot sample {count} distinct nodes from {self.num_nodes}"
            )
        idx = rng.choice(self.num_nodes, size=count, replace=replace)
        return [self.node_at(int(i)) for i in np.atleast_1d(idx)]

    @classmethod
    def with_at_least(cls, min_nodes: int, **fixed: int) -> "ClusterTopology":
        """Build the smallest topology (by adding cabinets) with >= *min_nodes*.

        Keyword arguments override the per-cabinet geometry.
        """
        if min_nodes <= 0:
            raise TopologyError(f"min_nodes must be positive, got {min_nodes}")
        geometry = {
            "chassis_per_cabinet": 3,
            "slots_per_chassis": 16,
            "nodes_per_blade": 4,
        }
        geometry.update(fixed)
        probe = cls(cabinet_cols=1, cabinet_rows=1, **geometry)
        per_cabinet = probe.nodes_per_cabinet
        cabinets = -(-min_nodes // per_cabinet)  # ceil division
        return cls(cabinet_cols=cabinets, cabinet_rows=1, **geometry)

    def node_list(self) -> Sequence[CrayNodeId]:
        """Materialize :meth:`nodes` as a list."""
        return list(self.nodes())
