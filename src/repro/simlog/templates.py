"""Message template catalog for the synthetic Cray log generator.

Every template has a *static* part (the constant message subphrase the
paper's phrase analysis extracts — Table 2) and *dynamic* fields (error
identifiers, addresses, PIDs, ...) that vary per occurrence.  Templates
are written with ``{kind}`` placeholders; :meth:`MessageTemplate.fill`
substitutes concrete values drawn from a random generator, and
:meth:`MessageTemplate.static_text` yields the masked form used by tests
and by the ground-truth join.

The catalog's message texts are taken from the snippets published in the
paper's own Tables 2, 3, 8 and 9 (LustreError, LNet, hwerr, DVS, slurm,
MCE, NMI, kernel panic, ...) plus generic Linux console noise, so the
mined templates and labels line up with the paper's phrase lists.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, Mapping, Sequence

import numpy as np

from ..errors import LogGenerationError

__all__ = [
    "FieldKind",
    "FIELD_GENERATORS",
    "MessageTemplate",
    "TemplateCatalog",
    "default_catalog",
    "SAFE",
    "UNKNOWN",
    "ERROR",
]

# Intrinsic label hints (ground truth for the Table 3 categorization).
SAFE = "safe"
UNKNOWN = "unknown"
ERROR = "error"

_PLACEHOLDER_RE = re.compile(r"\{([a-z0-9_]+)\}")

FieldKind = str


def _hex32(rng: np.random.Generator) -> str:
    return f"0x{int(rng.integers(0, 1 << 32)):x}"


def _hex16(rng: np.random.Generator) -> str:
    return f"0x{int(rng.integers(0, 1 << 16)):x}"


def _smallint(rng: np.random.Generator) -> str:
    return str(int(rng.integers(0, 64)))


def _bigint(rng: np.random.Generator) -> str:
    return str(int(rng.integers(1000, 10_000_000)))


def _pid(rng: np.random.Generator) -> str:
    return str(int(rng.integers(100, 65536)))


def _jobid(rng: np.random.Generator) -> str:
    return str(int(rng.integers(100000, 999999)))


def _ip(rng: np.random.Generator) -> str:
    a, b = rng.integers(1, 255, size=2)
    return f"10.128.{int(a)}.{int(b)}"


def _nid(rng: np.random.Generator) -> str:
    return f"nid{int(rng.integers(0, 8192)):05d}"


def _path(rng: np.random.Generator) -> str:
    names = ("lus", "scratch", "proc", "var", "opt", "dsl", "ufs")
    a = names[int(rng.integers(0, len(names)))]
    return f"/{a}/snx{int(rng.integers(1, 9))}"


def _devid(rng: np.random.Generator) -> str:
    return f"{int(rng.integers(0, 256)):02x}:{int(rng.integers(0, 32)):02x}.{int(rng.integers(0, 8))}"


def _exitcode(rng: np.random.Generator) -> str:
    return str(int(rng.choice([1, 2, 9, 11, 127, 137, 139, 255])))


def _timestamp_tag(rng: np.random.Generator) -> str:
    return f"2014{int(rng.integers(1, 13)):02d}{int(rng.integers(1, 29)):02d}t{int(rng.integers(0, 240000)):06d}"


def _lustre_tgt(rng: np.random.Generator) -> str:
    return f"snx11{int(rng.integers(0, 99)):02d}-OST{int(rng.integers(0, 64)):04d}"


def _cpuid(rng: np.random.Generator) -> str:
    return str(int(rng.integers(0, 48)))


def _bank(rng: np.random.Generator) -> str:
    return str(int(rng.integers(0, 24)))


def _page(rng: np.random.Generator) -> str:
    # Force a high bit so the address is always >= 9 hex digits; the
    # tokenizer's bare-hex rule then masks it deterministically.
    return f"{int(rng.integers(0, 1 << 36)) | (1 << 35):x}"


FIELD_GENERATORS: Dict[FieldKind, Callable[[np.random.Generator], str]] = {
    "hex32": _hex32,
    "hex16": _hex16,
    "smallint": _smallint,
    "bigint": _bigint,
    "pid": _pid,
    "jobid": _jobid,
    "ip": _ip,
    "nid": _nid,
    "path": _path,
    "devid": _devid,
    "exitcode": _exitcode,
    "tstag": _timestamp_tag,
    "lustre_tgt": _lustre_tgt,
    "cpuid": _cpuid,
    "bank": _bank,
    "page": _page,
}


@dataclass(frozen=True)
class MessageTemplate:
    """One log message family: static text plus dynamic placeholders.

    Attributes
    ----------
    key:
        Short unique identifier used by fault-chain definitions.
    facility:
        Logging facility the message is emitted under.
    text:
        Message text with ``{kind}`` placeholders for dynamic fields.
    label:
        Ground-truth Table-3 category: ``safe`` / ``unknown`` / ``error``.
    terminal:
        True for messages that mark a node going down (the failure-chain
        anchor, e.g. ``cb_node_unavailable``).
    weight:
        Relative frequency among background noise (safe templates only).
    """

    key: str
    facility: str
    text: str
    label: str = SAFE
    terminal: bool = False
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.label not in (SAFE, UNKNOWN, ERROR):
            raise LogGenerationError(f"bad label {self.label!r} for {self.key}")
        if self.weight <= 0:
            raise LogGenerationError(f"weight must be > 0 for {self.key}")
        for kind in self.field_kinds():
            if kind not in FIELD_GENERATORS:
                raise LogGenerationError(
                    f"unknown field kind {kind!r} in template {self.key}"
                )
        if self.terminal and self.label != ERROR:
            raise LogGenerationError(
                f"terminal template {self.key} must carry the error label"
            )

    def field_kinds(self) -> tuple[str, ...]:
        """Placeholder kinds appearing in :attr:`text`, in order."""
        return tuple(_PLACEHOLDER_RE.findall(self.text))

    def fill(self, rng: np.random.Generator) -> str:
        """Render the message with concrete dynamic-field values."""
        return _PLACEHOLDER_RE.sub(
            lambda m: FIELD_GENERATORS[m.group(1)](rng), self.text
        )

    def static_text(self, mask: str = "<*>") -> str:
        """Render the static form with placeholders replaced by *mask*."""
        return _PLACEHOLDER_RE.sub(mask, self.text)


class TemplateCatalog:
    """Indexed collection of :class:`MessageTemplate` objects."""

    def __init__(self, templates: Sequence[MessageTemplate]):
        self._by_key: Dict[str, MessageTemplate] = {}
        for t in templates:
            if t.key in self._by_key:
                raise LogGenerationError(f"duplicate template key {t.key!r}")
            self._by_key[t.key] = t
        self._safe = [t for t in templates if t.label == SAFE]
        weights = np.array([t.weight for t in self._safe], dtype=np.float64)
        self._safe_probs = weights / weights.sum() if len(weights) else weights

    def __len__(self) -> int:
        return len(self._by_key)

    def __iter__(self) -> Iterator[MessageTemplate]:
        return iter(self._by_key.values())

    def __contains__(self, key: str) -> bool:
        return key in self._by_key

    def get(self, key: str) -> MessageTemplate:
        """The template with the given key; raises if absent."""
        try:
            return self._by_key[key]
        except KeyError:
            raise LogGenerationError(f"no such template: {key!r}") from None

    def keys(self) -> tuple[str, ...]:
        """All template keys, in insertion order."""
        return tuple(self._by_key)

    def by_label(self, label: str) -> list[MessageTemplate]:
        """Templates carrying the given ground-truth label."""
        return [t for t in self._by_key.values() if t.label == label]

    def terminals(self) -> list[MessageTemplate]:
        """Templates that mark a node going down."""
        return [t for t in self._by_key.values() if t.terminal]

    def sample_safe(self, rng: np.random.Generator) -> MessageTemplate:
        """Draw one benign background template by weight."""
        if not self._safe:
            raise LogGenerationError("catalog has no safe templates")
        i = rng.choice(len(self._safe), p=self._safe_probs)
        return self._safe[int(i)]

    def static_label_map(self, mask: str = "<*>") -> Mapping[str, str]:
        """Map of static text -> ground-truth label, for evaluation joins."""
        return {t.static_text(mask): t.label for t in self._by_key.values()}


def _safe_templates() -> list[MessageTemplate]:
    """Benign console noise (Table 3 column 1 plus generic Linux chatter)."""
    mk = MessageTemplate
    return [
        mk("mount_nid", "kernel", "Mounting NID specific {path}", SAFE, weight=4),
        mk("apic_timer", "kernel", "cpu {cpuid} apic_timer_irqs {bigint}", SAFE, weight=6),
        mk("set_flag", "rca", "Setting flag {hex16}", SAFE, weight=3),
        mk("wait4boot", "bootd", "Wait4Boot", SAFE, weight=2),
        mk("ec_node_info", "rca", "Sending ec node info with boot code {smallint}", SAFE, weight=2),
        mk("sysctl_apply", "init", "Running sysctl, using values from /etc/sysctl.conf", SAFE, weight=2),
        mk("lnet_quiesce", "kernel", "LNet: hardware quiesce {tstag}, All threads awake", SAFE, weight=3),
        mk("ntp_sync", "ntpd", "synchronized to {ip}, stratum 2", SAFE, weight=3),
        mk("nscd_reconnect", "nscd", "nss_ldap reconnected to LDAP server", SAFE, weight=2),
        mk("cron_session", "crond", "session opened for user root by (uid={smallint})", SAFE, weight=4),
        mk("sshd_accept", "sshd", "Accepted publickey for root from {ip} port {pid}", SAFE, weight=2),
        mk("lustre_connect", "kernel", "Lustre: {lustre_tgt} connected to {ip}", SAFE, weight=4),
        mk("dvs_mount", "kernel", "DVS: mounted {path} on client", SAFE, weight=2),
        mk("alps_placement", "apsched", "placeApp message for apid {jobid}", SAFE, weight=3),
        mk("rca_heartbeat_ok", "rca", "ec_node_info heartbeat ok seq {bigint}", SAFE, weight=5),
        mk("thermal_ok", "bwtd", "cabinet thermal reading nominal {smallint} C", SAFE, weight=2),
        mk("nhc_pass", "node_health", "<node_health> all tests passed in {smallint} s", SAFE, weight=3),
        mk("kernel_audit", "kernel", "audit: backlog limit {bigint}", SAFE, weight=1),
        mk("ib_portup", "kernel", "ib0: link up, port active speed {smallint} Gb", SAFE, weight=1),
        mk("memory_scrub", "kernel", "EDAC MC0: scrub rate set to {bigint}", SAFE, weight=1),
        mk("console_login", "login", "root login on ttyS0", SAFE, weight=1),
        mk("munge_ok", "munged", "authentication credential decoded for uid {smallint}", SAFE, weight=1),
    ]


def _unknown_templates() -> list[MessageTemplate]:
    """Ambiguous phrases (Table 3 column 2, Table 8) — may or may not be
    part of a failure chain."""
    mk = MessageTemplate
    U = UNKNOWN
    return [
        mk("lnet_no_traffic", "kernel", "LNet: No gnilnd traffic received from {nid}", U),
        mk("oom_invoked", "kernel", "python invoked oom killer: gfp_mask={hex32}, order={smallint}", U),
        mk("gnilnd_reaper", "kernel", "LNet: {bigint} gnilnd:kgnilnd reaper dgram check {hex16}", U),
        mk("pcie_corrected", "kernel", "PCIe Bus Error: severity=Corrected, type=Physical Layer, id={devid}", U),
        mk("err_type_sev", "hwerrlogd", "ERROR: Type:2; Severity:80; id {hex16}", U),
        mk("lustre_error", "kernel", "LustreError: {bigint}:0:(client.c:{bigint}) {lustre_tgt} operation failed", U),
        mk("oom_killed_proc", "kernel", "Out of memory: Killed process {pid} (aprun)", U),
        mk("lnet_critical_hw", "kernel", "Lnet: Critical hardware error: {hex32}", U),
        mk("slurm_load_part", "slurmd", "Slurm load partitions error: Unable to contact slurm controller", U),
        mk("hwerr_aer_tlp", "hwerrlogd", "hwerr[{pid}]: Correctable AER_BAD_TLP Error {hex32}", U),
        mk("llmrd_shutdown", "llmrd", "Sent shutdown to llmrd at process {pid}", U),
        mk("aer_multi_corr", "kernel", "AER: Multiple corrected error recvd id {devid}", U),
        mk("trap_invalid", "kernel", "Trap invalid code {smallint} Error {hex16}", U),
        mk("modprobe_fatal", "modprobe", "modprobe: Fatal: Module {path} not found {smallint}", U),
        mk("nhc_exitcode", "node_health", "<node_health> {pid} Warning: program {path} returned with exit code {exitcode}", U),
        mk("dvs_verify_fs", "kernel", "DVS: Verify Filesystem {path}", U),
        mk("kernel_null_deref", "kernel", "BUG: unable to handle kernel NULL pointer dereference at {hex32}", U),
        mk("mce_logged", "kernel", "H/W Error: MCE Logged bank {bank} status {hex32}", U),
        mk("corr_mem_page", "kernel", "Corrected Memory Errors on Page {page}", U),
        mk("mce_notify_irq", "kernel", "mce_notify_irq: {smallint} messages suppressed", U),
        mk("hwerr_ssid_rsp", "hwerrlogd", "hwerr {hex16}:ssid rsp a status msg protocol err error :Info1={hex32}: Info2={hex16}: Info3={smallint}", U),
        mk("dvs_no_servers", "kernel", "DVS: {path} no servers functioning properly", U),
        mk("gsockets_critical", "kernel", "[Gsockets] debug [0]: critical h/w error {hex32}", U),
        mk("startproc_ldap", "startproc", "Startproc: nss_ldap: failed to bind to LDAP server {ip}", U),
        mk("slurmd_stopped", "slurmd", "Slurmd Stopped on node {nid}", U),
        mk("corr_dimm", "kernel", "Corrected DIMM Memory Errors dimm {smallint}", U),
        mk("lustre_skipped", "kernel", "LustreError: Skipped {bigint} previous similar messages", U),
        mk("lustre_binary_skip", "kernel", "Lustre: {lustre_tgt} binary skipped {bigint}", U),
        mk("lnet_hw_quiesce_err", "kernel", "Lnet: H/W Quiesce pending err {hex16}", U),
        mk("nhc_failures", "node_health", "<node_health> {smallint} failures: suspect node", U),
        mk("tests_failed", "node_health", "The following tests {path} failed", U),
        mk("hwerr_rsp", "hwerrlogd", "hwerr[{pid}]: RSP {hex32} command queue stall", U),
        mk("mce_hw_error_run", "kernel", "[Hardware Error]: Run the above through 'mcelog --ascii'", U),
        mk("mce_cpu_exception", "kernel", "CPU {cpuid}: Machine Check Exception: {hex16} Bank {bank}: {hex32}", U),
        mk("mce_rip_inexact", "kernel", "[Hardware Error]: RIP !INEXACT! 10:<{hex32}> aprun", U),
        mk("swap_insufficient", "kernel", "lowmem_reserve[]: {smallint} {smallint} {bigint}", U),
        mk("ipogif_timeout", "kernel", "ipogif0: transmit timed out, resetting {smallint}", U),
        mk("ec_hss_event", "erd", "ec_hss_general_avail event {hex16} processed late", U),
        mk("apinit_flush", "apinit", "apinit: flushing {smallint} pending launch messages", U),
        mk("seg_violation", "kernel", "aprun[{pid}]: segfault at {hex32} ip {hex32} sp {hex32} error {smallint}", U),
        mk("page_alloc_fail", "kernel", "aprun: page allocation failure: order:{smallint}, mode:{hex16}", U),
    ]


def _error_templates() -> list[MessageTemplate]:
    """Strong anomaly indicators and terminal messages (Table 3 column 3)."""
    mk = MessageTemplate
    E = ERROR
    return [
        mk("node_down_warn", "erd", "WARNING: Node {nid} is down", E),
        mk("debug_nmi", "kernel", "Debug NMI detected on cpu {cpuid}", E),
        mk("kernel_panic", "kernel", "Kernel panic - not syncing: Fatal Machine check", E),
        mk("call_trace", "kernel", "Call Trace: <{hex32}> panic+{hex16}/{hex16}", E),
        mk("stack_trace", "kernel", "Stack: {hex32} {hex32} {hex32}", E),
        mk("stop_nmi", "kernel", "Stop NMI detected on cpu {cpuid}", E),
        mk("page_fault_oops", "kernel", "Oops: {hex16} [#1] SMP page fault", E),
        mk("heartbeat_fault", "erd", "ec_node_failed: node heartbeat fault {nid}", E),
        mk("hsn_link_failed", "erd", "HSN ASIC link failed lcb {devid}", E),
        mk("uncorr_mce", "kernel", "[Hardware Error]: Uncorrected MCE bank {bank} status {hex32}", E),
        mk("cpu_stall", "kernel", "INFO: rcu_sched self-detected stall on CPU {cpuid}", E),
        mk("lbug", "kernel", "LustreError: LBUG - assertion failed at {path}", E),
        mk("slurm_kill_task", "slurmd", "error: *** JOB {jobid} CANCELLED DUE TO NODE FAILURE ***", E),
        mk("system_halted", "kernel", "System: halted", E),
        # Terminal messages — the anchors of failure chains.
        mk("cb_node_unavailable", "erd", "cb_node_unavailable", E, terminal=True),
        mk("node_unavail_shutdown", "erd", "ec_console_log: node shutdown in progress {nid}", E, terminal=True),
    ]


def default_catalog() -> TemplateCatalog:
    """The standard ~80-template catalog used by all presets and tests."""
    return TemplateCatalog(_safe_templates() + _unknown_templates() + _error_templates())
