"""Log record model and raw-line codec.

A raw line looks like real Cray/Linux console output::

    2015-12-16T16:25:48.301744 c1-0c1s1n0 kernel: LNet: hardware quiesce 20141216t162520, All threads awake

i.e. an ISO timestamp with microseconds, the node id (or a service host
name for system-level messages), the logging facility, and the free-form
message.  :func:`parse_line` inverts :func:`render_line` exactly.
"""

from __future__ import annotations

import datetime as _dt
import re
from dataclasses import dataclass, replace
from typing import Optional

from ..errors import ParseError
from ..topology.cray import NODE_ID_RE, CrayNodeId

__all__ = ["LogRecord", "render_line", "parse_line", "EPOCH"]

# All synthetic timestamps are offsets in seconds from this epoch, chosen
# arbitrarily inside the paper's data-collection era.
EPOCH = _dt.datetime(2015, 1, 1, 0, 0, 0)

_LINE_RE = re.compile(
    r"^(?P<ts>\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}\.\d{6})\s+"
    r"(?P<source>\S+)\s+"
    r"(?P<facility>[\w.\-]+):\s"
    r"(?P<message>.*)$"
)


@dataclass(frozen=True)
class LogRecord:
    """One log event.

    Attributes
    ----------
    timestamp:
        Seconds since :data:`EPOCH` (float, microsecond resolution).
    node:
        Originating compute node, or ``None`` for system-level sources
        (e.g. the SMW or a boot node); then ``source`` carries the host.
    facility:
        Logging facility/program (``kernel``, ``slurmd``, ``hwerrlogd`` ...).
    message:
        The unstructured message text (static template + dynamic fields).
    source:
        Host name used when ``node`` is ``None``.
    """

    timestamp: float
    node: Optional[CrayNodeId]
    facility: str
    message: str
    source: str = "smw"

    def __post_init__(self) -> None:
        if self.timestamp < 0:
            raise ParseError(f"timestamp must be >= 0, got {self.timestamp!r}")
        # Microsecond resolution is an invariant: the raw-line codec
        # carries exactly six fractional digits, so rounding here makes
        # render/parse round-trips lossless.
        object.__setattr__(self, "timestamp", round(self.timestamp, 6))
        if not self.facility:
            raise ParseError("facility must be non-empty")
        if "\n" in self.message:
            raise ParseError("message must be a single line")

    @property
    def source_text(self) -> str:
        """The node id string, or the service host for system messages."""
        return str(self.node) if self.node is not None else self.source

    def shifted(self, dt_seconds: float) -> "LogRecord":
        """Return a copy with the timestamp shifted by *dt_seconds*."""
        return replace(self, timestamp=self.timestamp + dt_seconds)

    def wallclock(self) -> _dt.datetime:
        """Absolute wall-clock time of this record."""
        return EPOCH + _dt.timedelta(seconds=self.timestamp)


def render_line(record: LogRecord) -> str:
    """Serialize a :class:`LogRecord` to its raw syslog line."""
    stamp = record.wallclock().strftime("%Y-%m-%dT%H:%M:%S.%f")
    return f"{stamp} {record.source_text} {record.facility}: {record.message}"


def parse_line(line: str) -> LogRecord:
    """Parse a raw syslog line back into a :class:`LogRecord`.

    Raises
    ------
    ParseError
        If the line does not match the expected layout.
    """
    m = _LINE_RE.match(line.rstrip("\n"))
    if m is None:
        raise ParseError(f"unparseable log line: {line!r}")
    try:
        when = _dt.datetime.strptime(m.group("ts"), "%Y-%m-%dT%H:%M:%S.%f")
    except ValueError as exc:  # pragma: no cover - regex prevalidates
        raise ParseError(f"bad timestamp in line: {line!r}") from exc
    timestamp = (when - EPOCH).total_seconds()
    if timestamp < 0:
        raise ParseError(f"timestamp predates epoch: {line!r}")
    source = m.group("source")
    node: Optional[CrayNodeId] = None
    host = source
    if NODE_ID_RE.match(source):
        node = CrayNodeId.parse(source)
        host = "smw"
    return LogRecord(
        timestamp=timestamp,
        node=node,
        facility=m.group("facility"),
        message=m.group("message"),
        source=host,
    )
