"""The synthetic log generator: compose all traffic sources with ground truth.

A generated log interleaves, per node and machine-wide:

* benign background noise (weighted safe templates, Poisson per node),
* ambient one-off anomalies (Unknown phrases *outside* any chain — the
  reason Table 8's contribution percentages are below 100%),
* slurm-like job placement/completion records,
* injected failure chains (class-stratified, Table-7 lead times) whose
  terminal message marks an anomalous node failure,
* near-miss chains — the same anomalous prefixes that recover instead of
  failing (Table 9),
* maintenance windows — mass service shutdowns that must *not* count as
  anomalous failures (Section 2, "Node Failures"),
* reboot traffic after every downed node.

The exact injected events are returned as :class:`GroundTruth` so the
evaluation can score predictions without any hand labeling.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

import numpy as np

from ..errors import LogGenerationError
from ..topology.cluster import ClusterTopology
from ..topology.cray import CrayNodeId
from .faults import ChainTemplate, FailureClass, FaultModel, default_fault_model
from .record import LogRecord
from .templates import TemplateCatalog, default_catalog
from .workload import WorkloadModel

__all__ = [
    "GeneratorConfig",
    "FailureEvent",
    "NearMissEvent",
    "MaintenanceEvent",
    "GroundTruth",
    "GeneratedLog",
    "LogGenerator",
]


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs of the synthetic log generator.

    Attributes
    ----------
    horizon:
        Length of the simulated window in seconds.
    background_rate:
        Expected benign messages per node per second.
    ambient_anomaly_rate:
        Expected *chain-free* Unknown phrases per node per second.
    failure_count:
        Number of anomalous node failures to inject.
    near_miss_ratio:
        Near-miss chains per failure (e.g. 0.5 -> half as many).
    maintenance_count:
        Number of mass-shutdown maintenance windows.
    maintenance_fraction:
        Fraction of the machine taken down per maintenance window.
    downtime:
        Seconds a downed node stays silent before its reboot traffic.
    edge_margin:
        Keep injected terminals this many seconds away from the horizon
        edges so chains are never truncated.
    cascade_prob:
        Probability that an injected failure triggers a *correlated*
        follow-up failure on a node in the same cabinet within a few
        minutes — the cabinet-level spatial correlation Gupta et al.
        (DSN'15) report and the paper cites.  Zero by default (the
        calibrated presets assume independent failures).
    """

    horizon: float = 6 * 3600.0
    background_rate: float = 1 / 120.0
    ambient_anomaly_rate: float = 1 / 2400.0
    failure_count: int = 40
    near_miss_ratio: float = 0.6
    maintenance_count: int = 1
    maintenance_fraction: float = 0.25
    downtime: float = 300.0
    edge_margin: float = 900.0
    cascade_prob: float = 0.0

    def __post_init__(self) -> None:
        if self.horizon <= 2 * self.edge_margin:
            raise LogGenerationError(
                "horizon must exceed twice the edge margin "
                f"({self.horizon} vs 2*{self.edge_margin})"
            )
        if self.background_rate <= 0:
            raise LogGenerationError("background_rate must be > 0")
        if self.ambient_anomaly_rate < 0:
            raise LogGenerationError("ambient_anomaly_rate must be >= 0")
        if self.failure_count < 0:
            raise LogGenerationError("failure_count must be >= 0")
        if self.near_miss_ratio < 0:
            raise LogGenerationError("near_miss_ratio must be >= 0")
        if not 0 <= self.maintenance_fraction <= 1:
            raise LogGenerationError("maintenance_fraction must be in [0, 1]")
        if self.downtime < 0:
            raise LogGenerationError("downtime must be >= 0")
        if not 0.0 <= self.cascade_prob < 1.0:
            raise LogGenerationError("cascade_prob must be in [0, 1)")


@dataclass(frozen=True)
class FailureEvent:
    """Ground truth for one injected anomalous node failure."""

    node: CrayNodeId
    failure_class: FailureClass
    chain_name: str
    first_anomaly_time: float
    terminal_time: float

    @property
    def lead_time(self) -> float:
        """Seconds between the first anomalous phrase and the terminal."""
        return self.terminal_time - self.first_anomaly_time


@dataclass(frozen=True)
class NearMissEvent:
    """Ground truth for an anomalous sequence that did *not* end in failure."""

    node: CrayNodeId
    failure_class: FailureClass
    chain_name: str
    start_time: float
    end_time: float


@dataclass(frozen=True)
class MaintenanceEvent:
    """A mass service shutdown (not an anomalous failure)."""

    start_time: float
    nodes: tuple[CrayNodeId, ...]


@dataclass
class GroundTruth:
    """All injected events, with query helpers for evaluation."""

    failures: list[FailureEvent] = field(default_factory=list)
    near_misses: list[NearMissEvent] = field(default_factory=list)
    maintenance: list[MaintenanceEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.failures.sort(key=lambda f: f.terminal_time)
        self._terminal_times = [f.terminal_time for f in self.failures]

    def failures_on(self, node: CrayNodeId) -> list[FailureEvent]:
        """All injected failures of one node."""
        return [f for f in self.failures if f.node == node]

    def failure_near(
        self, node: CrayNodeId, when: float, *, lookahead: float = 600.0
    ) -> Optional[FailureEvent]:
        """The failure on *node* whose terminal falls in [when, when+lookahead].

        Used to score a prediction raised at time *when*: a true positive
        is a matching upcoming terminal on the same node.
        """
        lo = bisect.bisect_left(self._terminal_times, when)
        hi = bisect.bisect_right(self._terminal_times, when + lookahead)
        for f in self.failures[lo:hi]:
            if f.node == node:
                return f
        return None

    def failures_in(self, start: float, end: float) -> list[FailureEvent]:
        """Failures whose terminal lies in ``[start, end]``."""
        lo = bisect.bisect_left(self._terminal_times, start)
        hi = bisect.bisect_right(self._terminal_times, end)
        return self.failures[lo:hi]

    def summary(self) -> dict[str, int]:
        """Event counts per kind (failures, near misses, maintenance)."""
        return {
            "failures": len(self.failures),
            "near_misses": len(self.near_misses),
            "maintenance_windows": len(self.maintenance),
        }


@dataclass(frozen=True)
class GeneratedLog:
    """A complete synthetic log plus its ground truth and provenance."""

    records: tuple[LogRecord, ...]
    ground_truth: GroundTruth
    topology: ClusterTopology
    catalog: TemplateCatalog
    config: GeneratorConfig

    def __len__(self) -> int:
        return len(self.records)

    def lines(self) -> Iterable[str]:
        """Render every record as a raw log line (sorted by time)."""
        from .record import render_line

        return (render_line(r) for r in self.records)

    def split(self, train_fraction: float) -> tuple["GeneratedLog", "GeneratedLog"]:
        """Chronological split (the paper's 30/70 train/test protocol).

        Ground-truth events are partitioned by terminal/end time into the
        half whose time range contains them.
        """
        if not 0 < train_fraction < 1:
            raise LogGenerationError(
                f"train_fraction must be in (0, 1), got {train_fraction}"
            )
        cut = self.config.horizon * train_fraction
        train_records = tuple(r for r in self.records if r.timestamp < cut)
        test_records = tuple(r for r in self.records if r.timestamp >= cut)
        gt = self.ground_truth

        def _split_gt(before: bool) -> GroundTruth:
            keep = (lambda t: t < cut) if before else (lambda t: t >= cut)
            return GroundTruth(
                failures=[f for f in gt.failures if keep(f.terminal_time)],
                near_misses=[m for m in gt.near_misses if keep(m.end_time)],
                maintenance=[m for m in gt.maintenance if keep(m.start_time)],
            )

        train = GeneratedLog(
            train_records, _split_gt(True), self.topology, self.catalog, self.config
        )
        test = GeneratedLog(
            test_records, _split_gt(False), self.topology, self.catalog, self.config
        )
        return train, test


class LogGenerator:
    """Generate synthetic Cray-style logs with exact ground truth."""

    def __init__(
        self,
        topology: ClusterTopology,
        *,
        catalog: TemplateCatalog | None = None,
        fault_model: FaultModel | None = None,
        workload: WorkloadModel | None = None,
    ) -> None:
        self.topology = topology
        self.catalog = catalog if catalog is not None else default_catalog()
        self.fault_model = (
            fault_model if fault_model is not None else default_fault_model()
        )
        self.fault_model.validate_against(self.catalog)
        self.workload = workload if workload is not None else WorkloadModel()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def generate(
        self, config: GeneratorConfig, rng: np.random.Generator
    ) -> GeneratedLog:
        """Produce one complete log for the given configuration."""
        records: list[LogRecord] = []
        truth = GroundTruth()

        nodes = self.topology.node_list()
        downtimes: dict[CrayNodeId, list[tuple[float, float]]] = {n: [] for n in nodes}

        # 1. failure chains (placed first so downtime windows are known).
        failures = self._place_failures(config, rng, nodes, downtimes)
        for event, chain_records in failures:
            truth.failures.append(event)
            records.extend(chain_records)

        # 2. near-miss chains.
        n_near = int(round(config.failure_count * config.near_miss_ratio))
        for event, chain_records in self._place_near_misses(
            config, rng, nodes, downtimes, n_near
        ):
            truth.near_misses.append(event)
            records.extend(chain_records)

        # 3. maintenance windows (mass shutdowns + reboots).
        for event, maint_records in self._place_maintenance(
            config, rng, nodes, downtimes
        ):
            truth.maintenance.append(event)
            records.extend(maint_records)

        # 4. background noise + ambient anomalies, masked by downtime.
        records.extend(self._background(config, rng, nodes, downtimes))

        # 5. job workload records, masked by downtime.
        jobs = self.workload.sample_jobs(rng, self.topology, config.horizon)
        job_records = self.workload.job_records(rng, jobs, self.catalog, config.horizon)
        records.extend(
            r for r in job_records if not self._is_down(downtimes, r.node, r.timestamp)
        )

        records.sort(key=lambda r: (r.timestamp, r.source_text))
        truth.__post_init__()  # re-sort failure index after appends
        return GeneratedLog(
            records=tuple(records),
            ground_truth=truth,
            topology=self.topology,
            catalog=self.catalog,
            config=config,
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    @staticmethod
    def _is_down(
        downtimes: dict[CrayNodeId, list[tuple[float, float]]],
        node: Optional[CrayNodeId],
        when: float,
    ) -> bool:
        if node is None:
            return False
        return any(lo <= when < hi for lo, hi in downtimes.get(node, ()))

    def _emit(
        self,
        rng: np.random.Generator,
        key: str,
        node: Optional[CrayNodeId],
        when: float,
    ) -> LogRecord:
        tpl = self.catalog.get(key)
        return LogRecord(
            timestamp=when, node=node, facility=tpl.facility, message=tpl.fill(rng)
        )

    def _reboot_records(
        self, rng: np.random.Generator, node: CrayNodeId, at: float, horizon: float
    ) -> list[LogRecord]:
        """Boot chatter after a downed node comes back."""
        out: list[LogRecord] = []
        for i, key in enumerate(("wait4boot", "ec_node_info", "mount_nid")):
            t = at + 2.0 * i + float(rng.uniform(0.0, 1.0))
            if t < horizon:
                out.append(self._emit(rng, key, node, t))
        return out

    def _instantiate_chain(
        self,
        rng: np.random.Generator,
        chain: ChainTemplate,
        node: CrayNodeId,
        terminal_time: float,
        *,
        with_terminal: bool,
    ) -> tuple[list[LogRecord], float]:
        """Materialize chain records; returns (records, first_anomaly_time).

        Failure chains (``with_terminal=True``) replay the template's
        stages verbatim.  Near misses replay a *perturbed* copy — some
        stages dropped, some substituted with other anomalous phrases —
        matching the paper's Table 9 observation that non-failing
        sequences share phrases with failure chains without being
        identical, and end in recovery messages instead of a terminal.
        """
        offsets = chain.sample_offsets(rng)
        stage_keys: list[str] = list(chain.stage_keys)
        if not with_terminal:
            unknown = self.catalog.by_label("unknown")
            keys: list[str] = []
            for key in stage_keys:
                roll = rng.random()
                if roll < 0.30:
                    continue  # stage masked (the fault was corrected)
                if roll < 0.50:
                    key = unknown[int(rng.integers(0, len(unknown)))].key
                keys.append(key)
            while len(keys) < 2:
                keys.append(stage_keys[int(rng.integers(0, len(stage_keys)))])
            stage_keys = keys
            offsets = offsets[: len(stage_keys)]
            if len(offsets) < len(stage_keys):
                offsets = chain.sample_offsets(rng)[: len(stage_keys)]
        out: list[LogRecord] = []
        for key, off in zip(stage_keys, offsets):
            out.append(self._emit(rng, key, node, terminal_time - float(off)))
        if with_terminal:
            out.append(self._emit(rng, chain.terminal_key, node, terminal_time))
        else:
            for j, key in enumerate(chain.recovery_keys):
                out.append(
                    self._emit(rng, key, node, terminal_time + 3.0 * (j + 1))
                )
        first = terminal_time - float(offsets[0])
        return out, first

    def _sample_event_slot(
        self,
        config: GeneratorConfig,
        rng: np.random.Generator,
        nodes: Sequence[CrayNodeId],
        downtimes: dict[CrayNodeId, list[tuple[float, float]]],
        *,
        clearance: float,
    ) -> tuple[CrayNodeId, float]:
        """Pick a (node, terminal_time) not colliding with existing downtime."""
        lo = config.edge_margin
        hi = config.horizon - config.edge_margin
        for _ in range(200):
            node = nodes[int(rng.integers(0, len(nodes)))]
            when = float(rng.uniform(lo, hi))
            window = (when - clearance, when + clearance + config.downtime)
            if not any(
                w_lo < window[1] and window[0] < w_hi
                for w_lo, w_hi in downtimes[node]
            ):
                return node, when
        raise LogGenerationError(
            "could not place an event without collisions; "
            "reduce failure_count or enlarge the horizon"
        )

    def _place_failures(
        self,
        config: GeneratorConfig,
        rng: np.random.Generator,
        nodes: Sequence[CrayNodeId],
        downtimes: dict[CrayNodeId, list[tuple[float, float]]],
    ) -> list[tuple[FailureEvent, list[LogRecord]]]:
        out: list[tuple[FailureEvent, list[LogRecord]]] = []
        for _ in range(config.failure_count):
            chain = self.fault_model.sample_chain(rng)
            clearance = chain.lead_mean + 4 * chain.lead_std
            node, terminal_time = self._sample_event_slot(
                config, rng, nodes, downtimes, clearance=clearance
            )
            out.append(
                self._materialize_failure(
                    config, rng, downtimes, chain, node, terminal_time
                )
            )
            # Spatial correlation: a failure may cascade to a cabinet
            # mate a few minutes later (shared power/cooling/interconnect).
            if config.cascade_prob > 0 and rng.random() < config.cascade_prob:
                cascade = self._try_cascade(config, rng, downtimes, node, terminal_time)
                if cascade is not None:
                    out.append(cascade)
        return out

    def _try_cascade(
        self,
        config: GeneratorConfig,
        rng: np.random.Generator,
        downtimes: dict[CrayNodeId, list[tuple[float, float]]],
        origin: CrayNodeId,
        origin_terminal: float,
    ) -> Optional[tuple[FailureEvent, list[LogRecord]]]:
        """Place a correlated follow-up failure in *origin*'s cabinet."""
        mates = self.topology.cabinet_mates(origin)
        if not mates:
            return None
        chain = self.fault_model.sample_chain(rng)
        clearance = chain.lead_mean + 4 * chain.lead_std
        for _ in range(10):
            mate = mates[int(rng.integers(0, len(mates)))]
            terminal_time = origin_terminal + float(rng.uniform(60.0, 240.0))
            if terminal_time >= config.horizon - config.edge_margin:
                continue
            window = (
                terminal_time - clearance,
                terminal_time + clearance + config.downtime,
            )
            if any(
                lo < window[1] and window[0] < hi for lo, hi in downtimes[mate]
            ):
                continue
            return self._materialize_failure(
                config, rng, downtimes, chain, mate, terminal_time
            )
        return None

    def _materialize_failure(
        self,
        config: GeneratorConfig,
        rng: np.random.Generator,
        downtimes: dict[CrayNodeId, list[tuple[float, float]]],
        chain: ChainTemplate,
        node: CrayNodeId,
        terminal_time: float,
    ) -> tuple[FailureEvent, list[LogRecord]]:
        """Instantiate one failure chain + downtime + reboot on *node*."""
        chain_records, first = self._instantiate_chain(
            rng, chain, node, terminal_time, with_terminal=True
        )
        # The chain itself plus the downtime must stay clear of other
        # traffic for this node.
        downtimes[node].append((first, terminal_time + config.downtime))
        chain_records.extend(
            self._reboot_records(
                rng, node, terminal_time + config.downtime, config.horizon
            )
        )
        return (
            FailureEvent(
                node=node,
                failure_class=chain.failure_class,
                chain_name=chain.name,
                first_anomaly_time=first,
                terminal_time=terminal_time,
            ),
            chain_records,
        )

    def _place_near_misses(
        self,
        config: GeneratorConfig,
        rng: np.random.Generator,
        nodes: Sequence[CrayNodeId],
        downtimes: dict[CrayNodeId, list[tuple[float, float]]],
        count: int,
    ) -> list[tuple[NearMissEvent, list[LogRecord]]]:
        out: list[tuple[NearMissEvent, list[LogRecord]]] = []
        for _ in range(count):
            chain = self.fault_model.sample_chain(rng)
            clearance = chain.lead_mean + 4 * chain.lead_std
            node, pseudo_terminal = self._sample_event_slot(
                config, rng, nodes, downtimes, clearance=clearance
            )
            chain_records, first = self._instantiate_chain(
                rng, chain, node, pseudo_terminal, with_terminal=False
            )
            end = max(r.timestamp for r in chain_records)
            # Reserve only the chain span; the node stays up (no downtime).
            downtimes[node].append((first, first))  # zero-width marker
            out.append(
                (
                    NearMissEvent(
                        node=node,
                        failure_class=chain.failure_class,
                        chain_name=chain.name,
                        start_time=first,
                        end_time=end,
                    ),
                    chain_records,
                )
            )
        return out

    def _place_maintenance(
        self,
        config: GeneratorConfig,
        rng: np.random.Generator,
        nodes: Sequence[CrayNodeId],
        downtimes: dict[CrayNodeId, list[tuple[float, float]]],
    ) -> list[tuple[MaintenanceEvent, list[LogRecord]]]:
        out: list[tuple[MaintenanceEvent, list[LogRecord]]] = []
        count = max(1, int(round(len(nodes) * config.maintenance_fraction)))
        for _ in range(config.maintenance_count):
            start = float(
                rng.uniform(config.edge_margin, config.horizon - config.edge_margin)
            )
            picked = self.topology.sample_nodes(rng, min(count, len(nodes)))
            records: list[LogRecord] = []
            for node in picked:
                # Shutdown messages land within seconds of each other — the
                # mass-reboot signature administrators recognize.
                t = start + float(rng.uniform(0.0, 20.0))
                records.append(self._emit(rng, "node_unavail_shutdown", node, t))
                downtimes[node].append((t, t + config.downtime))
                records.extend(
                    self._reboot_records(rng, node, t + config.downtime, config.horizon)
                )
            out.append((MaintenanceEvent(start_time=start, nodes=tuple(picked)), records))
        return out

    def _background(
        self,
        config: GeneratorConfig,
        rng: np.random.Generator,
        nodes: Sequence[CrayNodeId],
        downtimes: dict[CrayNodeId, list[tuple[float, float]]],
    ) -> list[LogRecord]:
        """Benign noise: bursty template runs plus periodic heartbeats.

        Real console logs are highly repetitive — a template typically
        repeats several times in a burst, and daemons emit heartbeats on
        a fixed period.  This structure is what makes next-phrase
        prediction learnable at all (the paper's ~85% phase-1 accuracy);
        i.i.d. noise would be information-theoretically unpredictable.
        """
        records: list[LogRecord] = []
        unknown_templates = self.catalog.by_label("unknown")
        mean_burst = 3.0
        for node in nodes:
            # Periodic heartbeat: one rca heartbeat every ~10 minutes.
            period = 600.0 * float(rng.uniform(0.9, 1.1))
            phase = float(rng.uniform(0.0, period))
            hb = self.catalog.get("rca_heartbeat_ok")
            t = phase
            while t < config.horizon:
                if not self._is_down(downtimes, node, t):
                    records.append(
                        LogRecord(
                            timestamp=t,
                            node=node,
                            facility=hb.facility,
                            message=hb.fill(rng),
                        )
                    )
                t += period
            # Bursty noise: geometric-length runs of one template.
            n_events = config.background_rate * config.horizon
            n_bursts = int(rng.poisson(max(n_events / mean_burst, 1e-9)))
            starts = rng.uniform(0.0, config.horizon, size=n_bursts)
            for start in starts:
                tpl = self.catalog.sample_safe(rng)
                run = 1 + int(rng.geometric(1.0 / mean_burst))
                t = float(start)
                for _ in range(min(run, 8)):
                    if t >= config.horizon:
                        break
                    if not self._is_down(downtimes, node, t):
                        records.append(
                            LogRecord(
                                timestamp=t,
                                node=node,
                                facility=tpl.facility,
                                message=tpl.fill(rng),
                            )
                        )
                    t += float(rng.exponential(3.0)) + 0.2
            n_ambient = int(
                rng.poisson(config.ambient_anomaly_rate * config.horizon)
            )
            times = rng.uniform(0.0, config.horizon, size=n_ambient)
            for t in times:
                if self._is_down(downtimes, node, float(t)):
                    continue
                tpl = unknown_templates[int(rng.integers(0, len(unknown_templates)))]
                records.append(
                    LogRecord(
                        timestamp=float(t),
                        node=node,
                        facility=tpl.facility,
                        message=tpl.fill(rng),
                    )
                )
        return records
