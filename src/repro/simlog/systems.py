"""Scaled-down reproductions of the paper's four systems (Table 1).

======  ==========  =========  ======  ============
System  Duration    Log size   Nodes   Type
======  ==========  =========  ======  ============
M1      10 months   373 GB     5600    Cray XC30
M2      12 months   150 GB     6400    Cray XE6
M3       8 months    39 GB     2100    Cray XC40
M4      10 months    22 GB     1872    Cray XC40/XC30
======  ==========  =========  ======  ============

We reproduce the machines at ~1/100 scale (node count and duration) so a
full four-system evaluation runs on a laptop, while preserving the
relative orderings — M2 is the largest machine, M3/M4 the smallest —
and the qualitative per-system failure-class mixes the paper reports:
M2 sees more Hardware/FileSystem failures and fewer kernel panics (hence
its longer average lead times, Figure 7), and M4 yields lower precision
(more near-miss traffic confusing the classifier, Figure 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from ..errors import ConfigError
from ..topology.cluster import ClusterTopology
from .faults import FailureClass, FaultModel, default_fault_model
from .generator import GeneratedLog, GeneratorConfig, LogGenerator
from .templates import default_catalog
from .workload import WorkloadModel

__all__ = ["SystemPreset", "SYSTEM_PRESETS", "generate_system"]


@dataclass(frozen=True)
class SystemPreset:
    """One synthetic machine, with its Table-1 provenance recorded."""

    name: str
    machine_type: str
    paper_duration: str
    paper_size: str
    paper_nodes: int
    topology: ClusterTopology
    generator: GeneratorConfig
    class_mix: Mapping[FailureClass, float]
    near_miss_ratio: float

    @property
    def scaled_nodes(self) -> int:
        """Node count of the scaled synthetic machine."""
        return self.topology.num_nodes


def _topo(nodes: int) -> ClusterTopology:
    """Small-geometry topology with at least *nodes* nodes."""
    return ClusterTopology.with_at_least(
        nodes, chassis_per_cabinet=2, slots_per_chassis=4, nodes_per_blade=4
    )


def _mix(**weights: float) -> dict[FailureClass, float]:
    by_name = {c.name.lower(): c for c in FailureClass}
    mix = {by_name[k]: v for k, v in weights.items()}
    total = sum(mix.values())
    return {c: w / total for c, w in mix.items()}


SYSTEM_PRESETS: dict[str, SystemPreset] = {
    "M1": SystemPreset(
        name="M1",
        machine_type="Cray XC30",
        paper_duration="10 months",
        paper_size="373GB",
        paper_nodes=5600,
        topology=_topo(56),
        generator=GeneratorConfig(
            horizon=10 * 3600.0,
            failure_count=170,
            near_miss_ratio=0.7,
            maintenance_count=1,
        ),
        class_mix=_mix(
            job=0.08, mce=0.22, filesystem=0.20, traps=0.14, hardware=0.16, panic=0.20
        ),
        near_miss_ratio=0.7,
    ),
    "M2": SystemPreset(
        name="M2",
        machine_type="Cray XE6",
        paper_duration="12 months",
        paper_size="150GB",
        paper_nodes=6400,
        topology=_topo(72),
        generator=GeneratorConfig(
            horizon=11 * 3600.0,
            failure_count=190,
            near_miss_ratio=0.5,
            maintenance_count=1,
        ),
        # More Hardware + FileSystem, fewer panics -> longer lead times.
        class_mix=_mix(
            job=0.06, mce=0.18, filesystem=0.28, traps=0.10, hardware=0.30, panic=0.08
        ),
        near_miss_ratio=0.5,
    ),
    "M3": SystemPreset(
        name="M3",
        machine_type="Cray XC40",
        paper_duration="8 months",
        paper_size="39GB",
        paper_nodes=2100,
        topology=_topo(24),
        generator=GeneratorConfig(
            horizon=10 * 3600.0,
            failure_count=140,
            near_miss_ratio=0.55,
            maintenance_count=1,
        ),
        class_mix=_mix(
            job=0.10, mce=0.24, filesystem=0.20, traps=0.16, hardware=0.14, panic=0.16
        ),
        near_miss_ratio=0.55,
    ),
    "M4": SystemPreset(
        name="M4",
        machine_type="Cray XC40/XC30",
        paper_duration="10 months",
        paper_size="22GB",
        paper_nodes=1872,
        topology=_topo(20),
        generator=GeneratorConfig(
            horizon=10 * 3600.0,
            failure_count=120,
            near_miss_ratio=1.1,  # heavier near-miss traffic -> lower precision
            maintenance_count=1,
        ),
        class_mix=_mix(
            job=0.10, mce=0.20, filesystem=0.22, traps=0.16, hardware=0.14, panic=0.18
        ),
        near_miss_ratio=1.1,
    ),
}


def generate_system(name: str, seed: int = 2018) -> GeneratedLog:
    """Generate the synthetic log of one preset system (M1..M4)."""
    try:
        preset = SYSTEM_PRESETS[name.upper()]
    except KeyError:
        raise ConfigError(
            f"unknown system {name!r}; choose from {sorted(SYSTEM_PRESETS)}"
        ) from None
    fault_model = default_fault_model().with_mix(preset.class_mix)
    generator = LogGenerator(
        preset.topology,
        catalog=default_catalog(),
        fault_model=fault_model,
        workload=WorkloadModel(),
    )
    from ..rng import derive_seed

    rng = np.random.default_rng(derive_seed(seed, "simlog", preset.name))
    return generator.generate(preset.generator, rng)
