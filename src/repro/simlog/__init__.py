"""Synthetic Cray-style HPC system-log substrate.

The paper evaluates Desh on proprietary production logs from four Cray
machines (373GB / 150GB / 39GB / 22GB — Table 1).  Those logs are not
publicly available, so this subpackage generates statistically faithful
replacements: unstructured syslog lines with Cray node ids, a large
template catalog (drawn from the message snippets the paper itself
publishes in Tables 2, 3, 8 and 9), a slurm-like job workload, injected
failure chains for the paper's six failure classes (Table 7) with
class-specific lead-time distributions, near-miss anomaly sequences that
never terminate in a failure (Table 9), maintenance shutdowns, and exact
ground truth for evaluation.

See DESIGN.md section 2 for the substitution argument.
"""

from .record import LogRecord, render_line, parse_line
from .templates import MessageTemplate, TemplateCatalog, default_catalog
from .faults import FailureClass, ChainTemplate, FaultModel, default_fault_model
from .workload import WorkloadModel, Job
from .generator import (
    LogGenerator,
    GeneratorConfig,
    GeneratedLog,
    FailureEvent,
    NearMissEvent,
    MaintenanceEvent,
    GroundTruth,
)
from .systems import SystemPreset, SYSTEM_PRESETS, generate_system

__all__ = [
    "LogRecord",
    "render_line",
    "parse_line",
    "MessageTemplate",
    "TemplateCatalog",
    "default_catalog",
    "FailureClass",
    "ChainTemplate",
    "FaultModel",
    "default_fault_model",
    "WorkloadModel",
    "Job",
    "LogGenerator",
    "GeneratorConfig",
    "GeneratedLog",
    "FailureEvent",
    "NearMissEvent",
    "MaintenanceEvent",
    "GroundTruth",
    "SystemPreset",
    "SYSTEM_PRESETS",
    "generate_system",
]
