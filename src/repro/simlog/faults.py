"""Failure classes, chain templates and lead-time distributions.

Table 7 of the paper defines six node-failure classes with measured
average lead times (seconds)::

    Job 81.52   MCE 160.29   FileSystem 119.32
    Traps 115.74   Hardware 124.29   Panic 58.87

A :class:`ChainTemplate` lists the ordered anomalous phrases (by template
key) that precede the terminal message for one failure scenario, plus the
class lead-time distribution.  Observation 4 of the paper — per-class
lead-time standard deviation is low compared to per-system deviation —
is reproduced by giving every class a tight Gaussian around its Table-7
mean, while systems mix classes in different proportions.

Near-miss variants replay the same anomalous prefixes *without* a
terminal message (the node recovers), reproducing the Table 9 phenomenon
that identical phrases occur both inside and outside failure chains.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from ..errors import LogGenerationError
from .templates import TemplateCatalog, default_catalog

__all__ = [
    "FailureClass",
    "ChainTemplate",
    "FaultModel",
    "default_fault_model",
    "PAPER_LEAD_TIMES",
]


class FailureClass(enum.Enum):
    """The six node-failure classes of Table 7."""

    JOB = "Job"
    MCE = "MCE"
    FILESYSTEM = "FS"
    TRAPS = "Traps"
    HARDWARE = "H/W"
    PANIC = "Panic"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: Average lead times (seconds) per class, from Table 7.
PAPER_LEAD_TIMES: Mapping[FailureClass, float] = {
    FailureClass.JOB: 81.52,
    FailureClass.MCE: 160.29,
    FailureClass.FILESYSTEM: 119.32,
    FailureClass.TRAPS: 115.74,
    FailureClass.HARDWARE: 124.29,
    FailureClass.PANIC: 58.87,
}


@dataclass(frozen=True)
class ChainTemplate:
    """One failure scenario: anomalous phrase sequence ending in a terminal.

    Attributes
    ----------
    name:
        Unique scenario name.
    failure_class:
        The Table-7 class this scenario belongs to.
    stage_keys:
        Ordered non-terminal template keys (Unknown/Error phrases).
    terminal_key:
        Template key of the terminal message anchoring the chain.
    lead_mean / lead_std:
        Gaussian parameters (seconds) for the total lead time — the gap
        between the first anomalous phrase and the terminal message.
    recovery_keys:
        Benign/ambiguous templates appended in the *near-miss* variant
        instead of the terminal message (the node survives).
    """

    name: str
    failure_class: FailureClass
    stage_keys: tuple[str, ...]
    terminal_key: str = "cb_node_unavailable"
    lead_mean: float = 120.0
    lead_std: float = 18.0
    recovery_keys: tuple[str, ...] = ("nhc_pass",)

    def __post_init__(self) -> None:
        if len(self.stage_keys) < 2:
            raise LogGenerationError(
                f"chain {self.name!r} needs >= 2 stage phrases"
            )
        if self.lead_mean <= 0 or self.lead_std <= 0:
            raise LogGenerationError(
                f"chain {self.name!r} needs positive lead_mean/lead_std"
            )

    def validate_against(self, catalog: TemplateCatalog) -> None:
        """Check that all referenced keys exist and the terminal is terminal."""
        for key in (*self.stage_keys, self.terminal_key, *self.recovery_keys):
            if key not in catalog:
                raise LogGenerationError(
                    f"chain {self.name!r} references unknown template {key!r}"
                )
        if not catalog.get(self.terminal_key).terminal:
            raise LogGenerationError(
                f"chain {self.name!r}: {self.terminal_key!r} is not terminal"
            )

    def sample_lead_time(self, rng: np.random.Generator) -> float:
        """Draw a total lead time (seconds), clipped to stay positive."""
        lo = max(5.0, self.lead_mean - 3 * self.lead_std)
        hi = self.lead_mean + 3 * self.lead_std
        return float(np.clip(rng.normal(self.lead_mean, self.lead_std), lo, hi))

    def sample_offsets(self, rng: np.random.Generator) -> np.ndarray:
        """Event time offsets, in seconds before the terminal message.

        Returns a descending array of length ``len(stage_keys)``; the
        first stage fires the full lead time ahead of the terminal and
        later stages land at the scenario's characteristic interior
        fractions, perturbed by a small relative jitter.  The *total*
        lead varies per instance (Gaussian, :meth:`sample_lead_time`) but
        the progression shape is stable — the paper's Observation 4:
        "different failure classes have unique and reproducible lead
        times to failure".
        """
        lead = self.sample_lead_time(rng)
        n = len(self.stage_keys)
        if n == 1:
            return np.array([lead])
        # Characteristic fractions: evenly spaced from 1 down toward the
        # terminal, with 5%-of-lead jitter per stage.
        fractions = np.linspace(1.0, 1.0 / n, n)
        jitter = rng.normal(0.0, 0.05, size=n)
        jitter[0] = 0.0  # first stage defines the lead exactly
        offsets = np.clip(fractions + jitter, 0.02, 1.0) * lead
        # Keep strictly descending order after jitter.
        offsets = np.maximum.accumulate(offsets[::-1])[::-1]
        for i in range(1, n):
            if offsets[i] >= offsets[i - 1]:
                offsets[i] = offsets[i - 1] * 0.98
        return offsets


def _default_chains() -> list[ChainTemplate]:
    C = ChainTemplate
    F = FailureClass
    lt = PAPER_LEAD_TIMES
    return [
        # --- MCE: processor corruption (the paper's Table 4 example) -----
        C(
            "mce_processor_corruption",
            F.MCE,
            (
                "mce_cpu_exception",
                "mce_hw_error_run",
                "mce_rip_inexact",
                "uncorr_mce",
                "kernel_panic",
                "call_trace",
            ),
            lead_mean=lt[F.MCE],
            lead_std=22.0,
            recovery_keys=("corr_mem_page", "nhc_pass"),
        ),
        C(
            "mce_memory_fault",
            F.MCE,
            ("mce_logged", "corr_dimm", "corr_mem_page", "mce_notify_irq", "uncorr_mce"),
            lead_mean=lt[F.MCE],
            lead_std=22.0,
            recovery_keys=("nhc_pass",),
        ),
        # --- FileSystem: Lustre / DVS bugs --------------------------------
        C(
            "fs_lustre_bug",
            F.FILESYSTEM,
            ("lustre_error", "lustre_skipped", "dvs_verify_fs", "dvs_no_servers", "lbug"),
            lead_mean=lt[F.FILESYSTEM],
            lead_std=18.0,
            recovery_keys=("lustre_connect", "nhc_pass"),
        ),
        C(
            "fs_lnet_protocol",
            F.FILESYSTEM,
            ("lnet_no_traffic", "gnilnd_reaper", "lustre_error", "lnet_critical_hw", "hsn_link_failed"),
            lead_mean=lt[F.FILESYSTEM],
            lead_std=18.0,
            recovery_keys=("lnet_hw_quiesce_err", "lustre_connect"),
        ),
        # --- Job: slurm scheduler based ------------------------------------
        C(
            "job_slurm_controller",
            F.JOB,
            ("slurm_load_part", "slurmd_stopped", "nhc_exitcode", "slurm_kill_task"),
            lead_mean=lt[F.JOB],
            lead_std=14.0,
            recovery_keys=("nhc_pass",),
        ),
        C(
            "job_oom_abort",
            F.JOB,
            ("oom_invoked", "oom_killed_proc", "nhc_exitcode", "slurm_kill_task"),
            lead_mean=lt[F.JOB],
            lead_std=14.0,
            recovery_keys=("nhc_pass",),
        ),
        # --- Traps: segfaults / invalid opcodes ----------------------------
        C(
            "trap_segfault",
            F.TRAPS,
            ("seg_violation", "trap_invalid", "page_fault_oops", "stack_trace"),
            lead_mean=lt[F.TRAPS],
            lead_std=17.0,
            recovery_keys=("nhc_pass",),
        ),
        C(
            "trap_null_deref",
            F.TRAPS,
            ("kernel_null_deref", "trap_invalid", "page_fault_oops", "call_trace"),
            lead_mean=lt[F.TRAPS],
            lead_std=17.0,
            recovery_keys=("nhc_exitcode", "nhc_pass"),
        ),
        # --- Hardware: NMI / heartbeat / interconnect ----------------------
        C(
            "hw_nmi_heartbeat",
            F.HARDWARE,
            ("lnet_critical_hw", "gsockets_critical", "debug_nmi", "heartbeat_fault", "stop_nmi"),
            lead_mean=lt[F.HARDWARE],
            lead_std=19.0,
            recovery_keys=("nhc_pass",),
        ),
        C(
            "hw_protocol_err",
            F.HARDWARE,
            ("hwerr_ssid_rsp", "err_type_sev", "hwerr_rsp", "heartbeat_fault"),
            lead_mean=lt[F.HARDWARE],
            lead_std=19.0,
            recovery_keys=("hwerr_aer_tlp", "nhc_pass"),
        ),
        # --- Panic: immediate kernel panics (short lead) --------------------
        C(
            "panic_fatal_check",
            F.PANIC,
            ("kernel_null_deref", "kernel_panic", "call_trace", "stack_trace"),
            lead_mean=lt[F.PANIC],
            lead_std=10.0,
            recovery_keys=("nhc_pass",),
        ),
        C(
            "panic_oops",
            F.PANIC,
            ("page_fault_oops", "kernel_panic", "stack_trace"),
            lead_mean=lt[F.PANIC],
            lead_std=10.0,
            recovery_keys=("nhc_pass",),
        ),
    ]


@dataclass(frozen=True)
class FaultModel:
    """Chain catalog plus the per-class mixing weights of one machine."""

    chains: tuple[ChainTemplate, ...]
    class_mix: Mapping[FailureClass, float] = field(
        default_factory=lambda: {
            FailureClass.JOB: 0.08,
            FailureClass.MCE: 0.22,
            FailureClass.FILESYSTEM: 0.22,
            FailureClass.TRAPS: 0.14,
            FailureClass.HARDWARE: 0.16,
            FailureClass.PANIC: 0.18,
        }
    )

    def __post_init__(self) -> None:
        if not self.chains:
            raise LogGenerationError("FaultModel needs at least one chain")
        total = sum(self.class_mix.values())
        if not np.isclose(total, 1.0, atol=1e-6):
            raise LogGenerationError(f"class_mix must sum to 1, got {total}")
        covered = {c.failure_class for c in self.chains}
        for cls, w in self.class_mix.items():
            if w > 0 and cls not in covered:
                raise LogGenerationError(
                    f"class {cls} has weight {w} but no chain template"
                )

    def validate_against(self, catalog: TemplateCatalog) -> None:
        """Check that every chain references valid catalog templates."""
        for chain in self.chains:
            chain.validate_against(catalog)

    def chains_for(self, cls: FailureClass) -> list[ChainTemplate]:
        """All chain templates belonging to one failure class."""
        return [c for c in self.chains if c.failure_class == cls]

    def sample_class(self, rng: np.random.Generator) -> FailureClass:
        """Draw a failure class according to the machine's mix."""
        classes = list(self.class_mix.keys())
        probs = np.array([self.class_mix[c] for c in classes], dtype=np.float64)
        return classes[int(rng.choice(len(classes), p=probs))]

    def sample_chain(
        self, rng: np.random.Generator, cls: FailureClass | None = None
    ) -> ChainTemplate:
        """Draw a chain template, optionally restricted to one class."""
        if cls is None:
            cls = self.sample_class(rng)
        pool = self.chains_for(cls)
        if not pool:
            raise LogGenerationError(f"no chain templates for class {cls}")
        return pool[int(rng.integers(0, len(pool)))]

    def with_mix(self, mix: Mapping[FailureClass, float]) -> "FaultModel":
        """Return a copy with a different class mix (used by M1-M4 presets)."""
        return FaultModel(chains=self.chains, class_mix=dict(mix))


def default_fault_model() -> FaultModel:
    """The standard chain catalog, validated against the default templates."""
    model = FaultModel(chains=tuple(_default_chains()))
    model.validate_against(default_catalog())
    return model
