"""Slurm-like job workload simulation.

The paper's machines run "more than 1,200,000 jobs/year"; job scheduler
activity is a major source of both benign log traffic and Job-class
failures.  :class:`WorkloadModel` simulates a simple batch scheduler:
jobs arrive as a Poisson process, occupy a random subset of nodes for a
bounded duration, and emit placement / completion / cancellation
messages on their nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import LogGenerationError
from ..topology.cluster import ClusterTopology
from ..topology.cray import CrayNodeId
from .record import LogRecord
from .templates import TemplateCatalog

__all__ = ["Job", "WorkloadModel"]


@dataclass(frozen=True)
class Job:
    """One scheduled batch job."""

    job_id: int
    nodes: tuple[CrayNodeId, ...]
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise LogGenerationError(
                f"job {self.job_id}: end ({self.end}) must follow start ({self.start})"
            )
        if not self.nodes:
            raise LogGenerationError(f"job {self.job_id}: needs at least one node")

    @property
    def duration(self) -> float:
        """Job runtime in seconds."""
        return self.end - self.start


@dataclass(frozen=True)
class WorkloadModel:
    """Poisson batch-job arrival model.

    Attributes
    ----------
    arrival_rate:
        Expected job arrivals per second across the machine.
    mean_duration / min_duration:
        Exponential job-length model (seconds), floored at ``min_duration``.
    max_job_nodes:
        Upper bound on nodes per job (drawn log-uniformly from 1).
    """

    arrival_rate: float = 1 / 120.0
    mean_duration: float = 1800.0
    min_duration: float = 60.0
    max_job_nodes: int = 8

    def __post_init__(self) -> None:
        if self.arrival_rate <= 0:
            raise LogGenerationError("arrival_rate must be > 0")
        if self.min_duration <= 0 or self.mean_duration < self.min_duration:
            raise LogGenerationError("need 0 < min_duration <= mean_duration")
        if self.max_job_nodes < 1:
            raise LogGenerationError("max_job_nodes must be >= 1")

    def sample_jobs(
        self,
        rng: np.random.Generator,
        topology: ClusterTopology,
        horizon: float,
        first_job_id: int = 100000,
    ) -> list[Job]:
        """Generate the job arrivals over ``[0, horizon)`` seconds."""
        if horizon <= 0:
            raise LogGenerationError(f"horizon must be > 0, got {horizon}")
        expected = self.arrival_rate * horizon
        count = int(rng.poisson(expected))
        starts = np.sort(rng.uniform(0.0, horizon, size=count))
        durations = np.maximum(
            rng.exponential(self.mean_duration, size=count), self.min_duration
        )
        max_nodes = min(self.max_job_nodes, topology.num_nodes)
        jobs: list[Job] = []
        for i in range(count):
            # Log-uniform node count in [1, max_nodes] favouring small jobs,
            # like real batch traces.
            width = int(np.exp(rng.uniform(0.0, np.log(max_nodes + 1))))
            width = int(np.clip(width, 1, max_nodes))
            nodes = tuple(topology.sample_nodes(rng, width))
            jobs.append(
                Job(
                    job_id=first_job_id + i,
                    nodes=nodes,
                    start=float(starts[i]),
                    end=float(starts[i] + durations[i]),
                )
            )
        return jobs

    def job_records(
        self,
        rng: np.random.Generator,
        jobs: Sequence[Job],
        catalog: TemplateCatalog,
        horizon: float,
    ) -> list[LogRecord]:
        """Emit the benign scheduler log records for a job list.

        Each job logs an ALPS placement message on every allocated node at
        start, and a node-health pass at completion (when inside the
        horizon).  These are *safe* phrases and serve as structured noise.
        """
        place = catalog.get("alps_placement")
        done = catalog.get("nhc_pass")
        records: list[LogRecord] = []
        for job in jobs:
            for node in job.nodes:
                records.append(
                    LogRecord(
                        timestamp=job.start,
                        node=node,
                        facility=place.facility,
                        message=place.fill(rng),
                    )
                )
                if job.end < horizon:
                    records.append(
                        LogRecord(
                            timestamp=job.end,
                            node=node,
                            facility=done.facility,
                            message=done.fill(rng),
                        )
                    )
        return records
