"""BlueGene-style structured RAS log rendering (the §4.6 genericity test).

The paper asks "How generic is Desh?" and contrasts Cray's unstructured
console logs with BlueGene/L RAS logs, whose lines carry an explicit
location code and a severity column (Table 12) — and whose severities
famously mislead: INFO lines can be abnormal and FATAL lines normal.

This module renders any generated log in a BlueGene-style format::

    1117838570.363779 R02-M1-N3-J08-U2 RAS KERNEL INFO instruction ...
    ^timestamp        ^location        ^   ^facility ^severity ^message

and parses it back, mapping the location code onto the Cray topology
(rack->cabinet column, midplane->row, nodecard->chassis, jumper->slot,
unit->node) and **dropping the severity column** — Desh "does not
consider the log severity levels even if present" (Section 3.1).  The
round trip demonstrates that the pipeline is agnostic to the logging
paradigm: only (timestamp, component, message) matter.

Severities are assigned with deliberate Table-12-style mismatches
(correctable-error messages get INFO, some benign boot chatter gets
FATAL) so any consumer trusting the severity column is provably misled.
"""

from __future__ import annotations

import re
from typing import Iterable, Iterator, Optional

from ..errors import ParseError
from ..topology.cray import CrayNodeId
from .record import LogRecord

__all__ = [
    "severity_for",
    "render_bluegene_line",
    "parse_bluegene_line",
    "to_bluegene",
    "from_bluegene",
]

_SEVERITIES = ("INFO", "WARNING", "ERROR", "FATAL")

_BG_RE = re.compile(
    r"^(?P<ts>\d+\.\d{6})\s+"
    r"(?P<loc>R\d+-M\d+-N\d+-J\d+-U\d+|SYS)\s+RAS\s+"
    r"(?P<facility>[\w.\-]+)\s+"
    r"(?P<severity>INFO|WARNING|ERROR|FATAL)\s+"
    r"(?P<message>.*)$"
)


def severity_for(record: LogRecord) -> str:
    """Assign a BlueGene-style severity, with Table-12 mismatches.

    The rules are deliberately *surface-level* (keyword driven), the way
    real RAS severities are assigned by emitting code rather than by
    failure relevance:

    * anything "corrected"/"correctable" logs as INFO even when it is
      part of a failure chain (the paper's "ddr error(s) detected and
      corrected ... Abnormal" row);
    * boot-time chatter logs as FATAL (the "MailboxMonitor ... Normal"
      row) because historically those subsystems over-report;
    * panics and NMIs log as FATAL, generic errors as ERROR, warnings as
      WARNING, everything else INFO.
    """
    msg = record.message
    lower = msg.lower()
    if "corrected" in lower or "correctable" in lower:
        return "INFO"
    if "wait4boot" in lower or "boot code" in lower:
        return "FATAL"  # deliberate mismatch: benign boot chatter
    if "panic" in lower or "nmi" in lower or "halted" in lower:
        return "FATAL"
    if "error" in lower or "fault" in lower or "unavailable" in lower:
        return "ERROR"
    if "warning" in lower or "killed" in lower:
        return "WARNING"
    return "INFO"


def _location_code(node: Optional[CrayNodeId]) -> str:
    if node is None:
        return "SYS"
    return (
        f"R{node.col:02d}-M{node.row}-N{node.chassis}"
        f"-J{node.slot:02d}-U{node.node}"
    )


_LOC_RE = re.compile(r"^R(\d+)-M(\d+)-N(\d+)-J(\d+)-U(\d+)$")


def _parse_location(code: str) -> Optional[CrayNodeId]:
    if code == "SYS":
        return None
    m = _LOC_RE.match(code)
    if m is None:
        raise ParseError(f"bad BlueGene location code: {code!r}")
    col, row, chassis, slot, node = (int(g) for g in m.groups())
    return CrayNodeId(col, row, chassis, slot, node)


def render_bluegene_line(record: LogRecord) -> str:
    """Render one record as a BlueGene-style RAS line."""
    return (
        f"{record.timestamp:.6f} {_location_code(record.node)} RAS "
        f"{record.facility} {severity_for(record)} {record.message}"
    )


def parse_bluegene_line(line: str) -> tuple[LogRecord, str]:
    """Parse a RAS line back to ``(record, severity)``.

    The severity is returned separately — the Desh pipeline discards it,
    but Table-12-style analyses need it.
    """
    m = _BG_RE.match(line.rstrip("\n"))
    if m is None:
        raise ParseError(f"unparseable BlueGene line: {line!r}")
    node = _parse_location(m.group("loc"))
    record = LogRecord(
        timestamp=float(m.group("ts")),
        node=node,
        facility=m.group("facility"),
        message=m.group("message"),
        source="smw" if node is not None else "bgsn",
    )
    return record, m.group("severity")


def to_bluegene(records: Iterable[LogRecord]) -> Iterator[str]:
    """Render a record stream in BlueGene format."""
    for record in records:
        yield render_bluegene_line(record)


def from_bluegene(lines: Iterable[str]) -> Iterator[LogRecord]:
    """Parse a BlueGene-format stream, discarding severities (Section 3.1)."""
    for line in lines:
        record, _severity = parse_bluegene_line(line)
        yield record
