"""Per-shard circuit breaker over the scoring path.

A shard whose model scoring keeps failing (poisoned episode, corrupted
weights, pathological input) must not burn its whole time budget
re-raising: the breaker watches consecutive scoring faults and, past a
threshold, **opens** — routing the shard's monitor into the existing
degraded-mode path (events still buffered, scoring skipped) for a
cooldown measured in queue items.  After the cooldown it goes
**half-open**, letting scoring attempts through again; a configured run
of successes closes it, a single fault re-opens it.

The breaker is deliberately clock-free: state advances per unit of work
(queue items), so chaos-soak assertions about its trajectory are
deterministic and independent of scheduler timing.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..obs import metrics_registry

__all__ = ["BreakerConfig", "CircuitBreaker"]

#: Gauge encoding of the breaker state (Prometheus-friendly).
_STATE_CODES = {"closed": 0.0, "open": 1.0, "half-open": 2.0}


@dataclass(frozen=True)
class BreakerConfig:
    """Thresholds of one circuit breaker.

    Attributes
    ----------
    fail_threshold:
        Consecutive scoring faults that open the breaker.
    cooldown_items:
        Queue items processed in the open state before it half-opens.
    half_open_successes:
        Successful scorings in the half-open state that close it.
    """

    fail_threshold: int = 5
    cooldown_items: int = 64
    half_open_successes: int = 2

    def __post_init__(self) -> None:
        if self.fail_threshold < 1:
            raise ConfigError(
                f"fail_threshold must be >= 1, got {self.fail_threshold}"
            )
        if self.cooldown_items < 1:
            raise ConfigError(
                f"cooldown_items must be >= 1, got {self.cooldown_items}"
            )
        if self.half_open_successes < 1:
            raise ConfigError(
                "half_open_successes must be >= 1, got "
                f"{self.half_open_successes}"
            )


class CircuitBreaker:
    """Closed → open → half-open state machine over scoring outcomes."""

    def __init__(
        self, config: BreakerConfig | None = None, *, name: str = "shard"
    ) -> None:
        self.config = config if config is not None else BreakerConfig()
        self.name = name
        self.state = "closed"
        self.opened_total = 0
        self._consecutive_faults = 0
        self._cooldown_left = 0
        self._half_open_successes = 0

    # ------------------------------------------------------------------
    def allow(self) -> bool:
        """Whether scoring may run for the next unit of work.

        Advances the open-state cooldown as a side effect: each denied
        unit of work brings the breaker one item closer to half-open.
        """
        if self.state != "open":
            return True
        self._cooldown_left -= 1
        if self._cooldown_left <= 0:
            self._set_state("half-open")
            self._half_open_successes = 0
            return True
        return False

    def record_success(self) -> None:
        """A scoring attempt succeeded."""
        if self.state == "half-open":
            self._half_open_successes += 1
            if self._half_open_successes >= self.config.half_open_successes:
                self._set_state("closed")
                self._consecutive_faults = 0
        else:
            self._consecutive_faults = 0

    def record_fault(self) -> None:
        """A scoring attempt failed (degraded skip)."""
        if self.state == "half-open":
            self._open()
            return
        self._consecutive_faults += 1
        if self.state == "closed" and (
            self._consecutive_faults >= self.config.fail_threshold
        ):
            self._open()

    def _open(self) -> None:
        self._set_state("open")
        self.opened_total += 1
        self._cooldown_left = self.config.cooldown_items
        self._consecutive_faults = 0
        metrics_registry().counter(f"serve.{self.name}.breaker_opened").inc()

    def _set_state(self, state: str) -> None:
        self.state = state
        metrics_registry().gauge(f"serve.{self.name}.breaker_state").set(
            _STATE_CODES[state]
        )

    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        """Operator-facing snapshot for the health endpoint."""
        return {
            "state": self.state,
            "opened_total": self.opened_total,
            "consecutive_faults": self._consecutive_faults,
            "cooldown_left": self._cooldown_left if self.state == "open" else 0,
        }

    # ------------------------------------------------------------------
    # checkpointable state
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """The full state machine position, JSON-serializable."""
        return {
            "version": 1,
            "state": self.state,
            "opened_total": self.opened_total,
            "consecutive_faults": self._consecutive_faults,
            "cooldown_left": self._cooldown_left,
            "half_open_successes": self._half_open_successes,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot in place."""
        version = state.get("version")
        if version != 1:
            raise ConfigError(
                f"unsupported breaker state version {version!r} (expected 1)"
            )
        if state["state"] not in _STATE_CODES:
            raise ConfigError(f"unknown breaker state {state['state']!r}")
        self.state = str(state["state"])
        self.opened_total = int(state["opened_total"])
        self._consecutive_faults = int(state["consecutive_faults"])
        self._cooldown_left = int(state["cooldown_left"])
        self._half_open_successes = int(state["half_open_successes"])
