"""Chaos soak harness: drive the service under injected service faults.

:func:`run_soak` is the end-to-end proof demanded of the serving layer:
feed a real rendered log stream through a live
:class:`~repro.serve.service.PredictionService` while a
:class:`~repro.resilience.ChaosInjector` profile injects *service*
faults — worker crashes mid-feed, slow-consumer stalls, ingest burst
storms — and assert the robustness contract:

* **no unhandled exceptions** anywhere (a loop-level exception handler
  records anything that escapes; the soak fails if it saw one);
* **every crashed worker was restarted** by the supervisor, and no
  worker was given up on;
* load was **shed, not errored**: every send either lands or comes back
  as an explicit shed the driver retries — the stream is eventually
  processed in full;
* for profiles without line faults (``service-crash``), the post-drain
  per-node monitor state and alert stream are **bit-identical** to a
  fault-free run of the same stream — crashes at item boundaries plus
  peek/commit replay lose and duplicate nothing;
* the maximum crash-to-recovery time stays under
  :data:`RECOVERY_SLO_SECONDS`.

Determinism: each shard worker's fault decisions come from its own RNG
stream (``derive_seed(seed, "soak.shard<i>")``) consumed only by that
worker's hook, and the driver's burst decisions from a separate stream
— so the injected fault sequence is reproducible regardless of how the
event loop interleaves tasks.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..errors import InjectedFaultError, ServeError
from ..resilience.chaos import FAULT_PROFILES, ChaosInjector, FaultProfile
from ..rng import derive_seed
from .service import PredictionService, ServeConfig

__all__ = [
    "AVAILABILITY_SLO",
    "RECOVERY_SLO_SECONDS",
    "SoakReport",
    "run_soak",
]

#: Fraction of non-duplicate lines that must be processed end to end
#: (after driver retries of shed batches).  Shedding is allowed;
#: *losing* data is not.
AVAILABILITY_SLO = 1.0

#: Documented ceiling on worker crash-to-recovery time (seconds):
#: supervisor backoff (base 0.02 s, doubling, jittered) plus replay of
#: the in-flight item.  The soak and the service bench assert the
#: maximum observed recovery stays under this.
RECOVERY_SLO_SECONDS = 2.0

#: Driver retries of one batch before declaring the stream stuck.
_MAX_RETRIES_PER_BATCH = 200

#: Latency histogram buckets for per-batch ingest time (seconds).
_INGEST_BUCKETS = (
    0.0001, 0.0002, 0.0005, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05,
    0.1, 0.2, 0.5, 1.0, 2.0, 5.0,
)


@dataclass
class SoakReport:
    """Everything a soak run measured, JSON-serializable via as_dict."""

    profile: str
    lines_sent: int = 0
    accepted: int = 0
    deduped: int = 0
    shed_events: int = 0
    retries: int = 0
    lost: int = 0
    crashes_injected: int = 0
    stalls_injected: int = 0
    bursts_injected: int = 0
    worker_restarts: int = 0
    workers_given_up: int = 0
    recovery_times: list = field(default_factory=list)
    ingest_latencies: list = field(default_factory=list)
    predict_latencies: list = field(default_factory=list)
    alerts: int = 0
    unhandled_errors: list = field(default_factory=list)
    bit_identical: Optional[bool] = None
    elapsed_seconds: float = 0.0

    @property
    def max_recovery_seconds(self) -> float:
        """The slowest observed crash-to-recovery interval (0 if none)."""
        return max(self.recovery_times, default=0.0)

    @property
    def availability(self) -> float:
        """Fraction of routable (non-duplicate) lines fully processed."""
        routable = self.lines_sent - self.deduped
        if routable <= 0:
            return 1.0
        return (routable - self.lost) / routable

    def as_dict(self) -> dict:
        """The report as a plain dict (for JSON output and the bench)."""
        return {
            "profile": self.profile,
            "lines_sent": self.lines_sent,
            "accepted": self.accepted,
            "deduped": self.deduped,
            "shed_events": self.shed_events,
            "retries": self.retries,
            "lost": self.lost,
            "availability": self.availability,
            "crashes_injected": self.crashes_injected,
            "stalls_injected": self.stalls_injected,
            "bursts_injected": self.bursts_injected,
            "worker_restarts": self.worker_restarts,
            "workers_given_up": self.workers_given_up,
            "recovery_times": list(self.recovery_times),
            "max_recovery_seconds": self.max_recovery_seconds,
            "alerts": self.alerts,
            "unhandled_errors": list(self.unhandled_errors),
            "bit_identical": self.bit_identical,
            "elapsed_seconds": self.elapsed_seconds,
        }


def _soak_config(config: Optional[ServeConfig], total_lines: int) -> ServeConfig:
    """The soak's service config: bit-identity needs a full-stream dedup
    window (no eviction → dedup decisions independent of retry order)."""
    if config is not None:
        return config
    return ServeConfig(
        num_shards=2,
        queue_depth=64,
        backpressure_wait=0.05,
        dedup_window=max(4096, total_lines + 1),
        checkpoint_dir=None,
    )


def _fingerprint(service: PredictionService) -> str:
    """Canonical JSON of the post-drain prediction-relevant state.

    Alert *contents* are compared order-independently: the global
    sequence interleaving across concurrently-draining shards is
    scheduler timing, not prediction output, and differs even between
    two fault-free runs.  Per-shard monitor state (buffers, counters,
    alert latches) is compared exactly.
    """
    alerts = sorted(
        (
            {k: v for k, v in alert.items() if k != "seq"}
            for alert in service.alerts_since(0)
        ),
        key=lambda alert: (alert["node"], alert["decision_time"]),
    )
    state = {
        "shards": [
            shard.monitor.state_dict() for shard in service._shards
        ],
        "alerts": alerts,
    }
    return json.dumps(state, sort_keys=True)


async def _drive(
    service: PredictionService,
    batches: list[list[str]],
    driver_chaos: ChaosInjector,
    report: SoakReport,
    *,
    predict_every: int = 0,
) -> None:
    """Send every batch (merging bursts, retrying sheds) until accepted."""
    loop = asyncio.get_running_loop()
    pending: list[list[str]] = list(batches)
    batch_index = 0
    while pending:
        faults = driver_chaos.service_faults()
        merge = min(max(1, faults.burst_factor), len(pending))
        batch = [line for part in pending[:merge] for line in part]
        del pending[:merge]
        to_send = batch
        retries = 0
        while to_send:
            start = loop.time()
            result = await service.ingest_lines(to_send)
            report.ingest_latencies.append(loop.time() - start)
            report.accepted += result.accepted
            report.deduped += result.deduped
            if not result.shed:
                break
            report.shed_events += 1
            retries += 1
            if retries > _MAX_RETRIES_PER_BATCH:
                report.lost += result.shed
                break
            report.retries += 1
            to_send = result.shed_lines
            await asyncio.sleep(
                min(result.retry_after or 0.01, 0.02)
            )
        if predict_every and batch and batch_index % predict_every == 0:
            parts = batch[0].split(None, 2)
            if len(parts) >= 2:
                start = loop.time()
                await service.predict(parts[1])
                report.predict_latencies.append(loop.time() - start)
        batch_index += 1


async def _run_one(
    model,
    lines: Sequence[str],
    profile: FaultProfile,
    *,
    seed: int,
    config: ServeConfig,
    batch_size: int,
    report: SoakReport,
    inject_service_faults: bool,
    predict_every: int = 0,
) -> str:
    """One full service lifecycle over *lines*; returns the fingerprint."""
    loop = asyncio.get_running_loop()
    loop.set_exception_handler(
        lambda _loop, context: report.unhandled_errors.append(
            str(context.get("message") or context.get("exception"))
        )
    )
    shard_chaos = [
        ChaosInjector(profile, seed=derive_seed(seed, f"soak.shard{index}"))
        for index in range(config.num_shards)
    ]

    def fault_hook(shard_index: int, _item_index: int) -> Optional[float]:
        """Draw and apply this work item's service-fault decisions."""
        if not inject_service_faults:
            return None
        faults = shard_chaos[shard_index].service_faults()
        if faults.crash:
            raise InjectedFaultError(
                f"injected worker crash on shard {shard_index}"
            )
        return faults.stall_seconds or None

    service = PredictionService(model, config, fault_hook=fault_hook)
    await service.start(restore=False)
    start = loop.time()
    batches = [
        list(lines[i : i + batch_size])
        for i in range(0, len(lines), batch_size)
    ]
    driver_chaos = ChaosInjector(
        profile if inject_service_faults else FaultProfile(),
        seed=derive_seed(seed, "soak.driver"),
    )
    await _drive(
        service, batches, driver_chaos, report, predict_every=predict_every
    )
    await service.stop(checkpoint=False)
    report.elapsed_seconds += loop.time() - start
    if inject_service_faults:
        report.lines_sent = sum(len(b) for b in batches)
        for injector in shard_chaos:
            report.crashes_injected += injector.stats.crashes_injected
            report.stalls_injected += injector.stats.stalls_injected
        report.bursts_injected = driver_chaos.stats.bursts_injected
        report.worker_restarts = service.supervisor.total_restarts
        report.workers_given_up = sum(
            1 for state in service.supervisor.states if state.failed
        )
        report.recovery_times = service.supervisor.recovery_times()
        report.alerts = service._alert_seq
    return _fingerprint(service)


def run_soak(
    model,
    lines: Sequence[str],
    profile: "FaultProfile | str" = "service-crash",
    *,
    seed: int = 0,
    config: Optional[ServeConfig] = None,
    batch_size: int = 64,
    predict_every: int = 0,
) -> SoakReport:
    """Soak the service over *lines* under *profile*; returns the report.

    For profiles whose faults are purely service-shaped (no line
    damage), a fault-free reference run is executed first and
    ``report.bit_identical`` records whether the faulted run's
    post-drain monitor state and alert stream match it exactly.
    ``predict_every`` > 0 additionally issues one deadline-bounded
    prediction request every that many batches (request-latency data
    for the bench).

    Synchronous wrapper — owns its own event loop, so call it from
    ordinary code and tests (not from inside a running loop).
    """
    if isinstance(profile, str):
        if profile not in FAULT_PROFILES:
            raise ServeError(
                f"unknown fault profile {profile!r}; "
                f"known: {sorted(FAULT_PROFILES)}"
            )
        profile_name, profile = profile, FAULT_PROFILES[profile]
    else:
        profile_name = "custom"
    report = SoakReport(profile=profile_name)
    if profile.has_line_faults():
        line_chaos = ChaosInjector(
            profile, seed=derive_seed(seed, "soak.lines")
        )
        faulted_lines = list(line_chaos.inject(lines))
        reference_fp = None
    else:
        faulted_lines = list(lines)
        reference = SoakReport(profile=profile_name)
        reference_fp = asyncio.run(
            _run_one(
                model,
                faulted_lines,
                FaultProfile(),
                seed=seed,
                config=_soak_config(config, len(faulted_lines)),
                batch_size=batch_size,
                report=reference,
                inject_service_faults=False,
            )
        )
        report.unhandled_errors.extend(reference.unhandled_errors)
    faulted_fp = asyncio.run(
        _run_one(
            model,
            faulted_lines,
            profile,
            seed=seed,
            config=_soak_config(config, len(faulted_lines)),
            batch_size=batch_size,
            report=report,
            inject_service_faults=True,
            predict_every=predict_every,
        )
    )
    if reference_fp is not None:
        report.bit_identical = faulted_fp == reference_fp
    return report
