"""deshserve: the fault-tolerant long-running prediction service.

The serving layer turns the paper's trained offline model into an
operational system-health endpoint: raw syslog lines stream in, per-node
failure warnings with lead times stream out, and the whole thing is
built to *stay up* — supervised shard workers, bounded queues with
backpressure and explicit load-shedding, per-shard circuit breakers
into the monitor's degraded mode, deadline-bounded prediction calls,
and graceful shutdown into an atomic checkpoint that resumes
bit-identically.  Everything is stdlib ``asyncio``; no new dependencies.

Layout:

* :mod:`~repro.serve.router` — stable BLAKE2b node → shard placement;
* :mod:`~repro.serve.queues` — bounded peek/commit queues + ingest dedup;
* :mod:`~repro.serve.breaker` — per-shard circuit breakers (item-clocked);
* :mod:`~repro.serve.supervisor` — worker restart with backoff + jitter;
* :mod:`~repro.serve.service` — the sharded :class:`PredictionService`;
* :mod:`~repro.serve.state` — checkpoint pack/restore of serving state;
* :mod:`~repro.serve.server` — the hand-rolled asyncio HTTP front-end;
* :mod:`~repro.serve.soak` — the chaos soak harness and its SLOs.
"""

from .breaker import BreakerConfig, CircuitBreaker
from .queues import HashDeduper, ShardQueue
from .router import ShardRouter
from .server import HttpServer, run_server
from .service import IngestResult, PredictionService, ServeConfig
from .soak import (
    AVAILABILITY_SLO,
    RECOVERY_SLO_SECONDS,
    SoakReport,
    run_soak,
)
from .supervisor import RestartPolicy, Supervisor, WorkerState

__all__ = [
    "AVAILABILITY_SLO",
    "RECOVERY_SLO_SECONDS",
    "BreakerConfig",
    "CircuitBreaker",
    "HashDeduper",
    "HttpServer",
    "IngestResult",
    "PredictionService",
    "RestartPolicy",
    "ServeConfig",
    "ShardQueue",
    "ShardRouter",
    "SoakReport",
    "Supervisor",
    "WorkerState",
    "run_server",
    "run_soak",
]
