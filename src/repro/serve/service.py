"""The fault-tolerant prediction service over sharded monitor state.

:class:`PredictionService` is the long-running deployment surface the
paper's lead-time predictions need: it fronts ``num_shards``
independent :class:`~repro.core.monitor.StreamingMonitor` instances
(each with its own hardened ingestor, LRU node table and episode
buffers) behind bounded queues, a supervisor, and per-shard circuit
breakers.  Robustness is the design center:

* **ingest** hash-dedups each line, routes it to its owning shard, and
  admits it to that shard's bounded queue — waiting briefly for space
  (backpressure) and then **shedding** the batch with a retry-after
  hint rather than blocking or buffering without bound;
* **shard workers** consume queue items under a peek/commit contract,
  so a crash mid-item (contained and restarted by the
  :class:`~repro.serve.supervisor.Supervisor`) replays the item and
  loses nothing;
* **circuit breakers** watch consecutive scoring faults per shard and
  trip the monitor into its degraded-mode path (buffering without
  scoring) for a cooldown instead of letting a poisoned shard fail
  every item;
* **prediction calls carry deadlines**: an on-demand
  :meth:`PredictionService.predict` rides the shard queue like any
  other item, and if its deadline expires while queued (or scoring
  faults, or the breaker is open) the caller gets an explicit
  *degraded answer* instead of an error or an unbounded wait;
* **graceful shutdown** seals ingest, drains every queue, stops the
  workers and writes an atomic
  :class:`~repro.resilience.CheckpointManager` checkpoint of the entire
  mutable state — monitors, breakers, dedup window, alert ring — so a
  restarted service resumes the stream bit-identically.

Everything is stdlib ``asyncio`` + the repo's own subsystems; the HTTP
front-end lives in :mod:`repro.serve.server`.
"""

from __future__ import annotations

import asyncio
import math
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ..core.alerts import FailureWarning
from ..core.monitor import StreamingMonitor
from ..errors import ConfigError, PredictionError, ServeError
from ..obs import metrics_registry
from ..resilience.checkpoint import CheckpointManager
from ..topology.cray import NODE_ID_RE, CrayNodeId
from .breaker import BreakerConfig, CircuitBreaker
from .queues import HashDeduper, ShardQueue
from .router import ShardRouter
from .supervisor import RestartPolicy, Supervisor

__all__ = ["ServeConfig", "IngestResult", "PredictionService"]


@dataclass(frozen=True)
class ServeConfig:
    """Tuning knobs of the prediction service.

    Attributes
    ----------
    num_shards:
        Independent monitor shards (and workers, queues, breakers).
    queue_depth:
        Per-shard queue capacity in items (one item = one routed batch
        or one prediction request).
    drain_batch_items:
        Max queue items a shard worker takes per wake
        (:meth:`~repro.serve.queues.ShardQueue.peek_many`); an ingest
        burst drains as a few large batched scoring flushes instead of
        many single-item ones.  Each item still commits individually,
        so crash-replay granularity is unchanged.
    backpressure_wait:
        Seconds ingest waits for queue space before shedding a batch.
    retry_after:
        The ``Retry-After`` hint (seconds) returned with shed batches.
    dedup_window:
        Ingest-level hash-dedup window in lines (0 disables).
    deadline_seconds:
        Default deadline for on-demand prediction calls.
    drain_timeout:
        Seconds graceful shutdown waits per queue before giving up on a
        drain (a permanently failed worker must not wedge shutdown).
    alert_buffer:
        Retained alert ring size (``alerts_since`` replay window).
    subscriber_buffer:
        Per-subscriber queue depth; a slower consumer drops alerts.
    episode_gap / max_nodes_per_shard / max_events_per_node /
    recovery_successes:
        Forwarded to each shard's
        :class:`~repro.core.monitor.StreamingMonitor`.
    breaker / restart:
        Per-shard breaker thresholds and worker restart policy.
    checkpoint_dir:
        When set, graceful shutdown writes a service checkpoint here
        and :meth:`PredictionService.start` restores the latest one.
    checkpoint_keep:
        Retention for service checkpoints (see ``CheckpointManager``).
    seed:
        Seed for the supervisor's deterministic restart jitter.
    """

    num_shards: int = 4
    queue_depth: int = 256
    drain_batch_items: int = 8
    backpressure_wait: float = 0.05
    retry_after: float = 1.0
    dedup_window: int = 4096
    deadline_seconds: float = 0.25
    drain_timeout: float = 5.0
    alert_buffer: int = 1024
    subscriber_buffer: int = 256
    episode_gap: float = 600.0
    max_nodes_per_shard: int = 4096
    max_events_per_node: int = 512
    recovery_successes: int = 3
    breaker: BreakerConfig = field(default_factory=BreakerConfig)
    restart: RestartPolicy = field(default_factory=RestartPolicy)
    checkpoint_dir: Optional[str] = None
    checkpoint_keep: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ConfigError(f"num_shards must be >= 1, got {self.num_shards}")
        if self.queue_depth < 1:
            raise ConfigError(
                f"queue_depth must be >= 1, got {self.queue_depth}"
            )
        if self.drain_batch_items < 1:
            raise ConfigError(
                f"drain_batch_items must be >= 1, got {self.drain_batch_items}"
            )
        for name in (
            "backpressure_wait",
            "retry_after",
            "deadline_seconds",
            "drain_timeout",
        ):
            value = getattr(self, name)
            if value < 0:
                raise ConfigError(f"{name} must be >= 0, got {value}")
        if self.dedup_window < 0:
            raise ConfigError(
                f"dedup_window must be >= 0, got {self.dedup_window}"
            )
        if self.alert_buffer < 1:
            raise ConfigError(
                f"alert_buffer must be >= 1, got {self.alert_buffer}"
            )
        if self.subscriber_buffer < 1:
            raise ConfigError(
                f"subscriber_buffer must be >= 1, got {self.subscriber_buffer}"
            )
        if self.checkpoint_keep < 1:
            raise ConfigError(
                f"checkpoint_keep must be >= 1, got {self.checkpoint_keep}"
            )


@dataclass
class IngestResult:
    """Accounting of one ingest batch: every line ends up in a bucket."""

    received: int = 0
    accepted: int = 0
    deduped: int = 0
    shed: int = 0
    retry_after: Optional[float] = None
    #: The shed lines themselves (not serialized): a driver that must
    #: not lose data (e.g. the soak harness) retries exactly these.
    shed_lines: list = field(default_factory=list)

    def as_dict(self) -> dict:
        """JSON-serializable form (the ingest endpoint's response body)."""
        out = {
            "received": self.received,
            "accepted": self.accepted,
            "deduped": self.deduped,
            "shed": self.shed,
        }
        if self.retry_after is not None:
            out["retry_after"] = self.retry_after
        return out


class _Shard:
    """One shard's state bundle: monitor, queue, breaker, counters."""

    def __init__(
        self, index: int, monitor: StreamingMonitor, queue: ShardQueue,
        breaker: CircuitBreaker,
    ) -> None:
        self.index = index
        self.monitor = monitor
        self.queue = queue
        self.breaker = breaker
        self.items_taken = 0
        self.lines_processed = 0
        self.ingest_errors = 0


def _finite(value: float) -> Optional[float]:
    """*value* as a JSON-safe float (None for inf/NaN)."""
    return float(value) if math.isfinite(value) else None


class PredictionService:
    """Sharded, supervised, backpressured serving over a trained model.

    Parameters
    ----------
    model:
        The trained :class:`~repro.core.desh.DeshModel` every shard
        monitor scores with (shared, read-only).
    config:
        A :class:`ServeConfig`; defaults are production-ish.
    ingest_config:
        Optional :class:`~repro.resilience.IngestConfig` forwarded to
        each shard monitor's hardened raw-line path.
    fault_hook:
        Chaos-soak hook called as ``fault_hook(shard_index,
        item_index)`` before each queue item is processed (i.e. at an
        item boundary, before any monitor mutation).  It may raise
        :class:`~repro.errors.InjectedFaultError` to crash the worker
        or return a positive float to stall it that many seconds.
    """

    def __init__(
        self,
        model,
        config: ServeConfig | None = None,
        *,
        ingest_config=None,
        fault_hook: Optional[Callable[[int, int], Optional[float]]] = None,
    ) -> None:
        self.model = model
        self.config = config if config is not None else ServeConfig()
        self.router = ShardRouter(self.config.num_shards)
        self.dedup = HashDeduper(self.config.dedup_window)
        self._fault_hook = fault_hook
        self._shards = [
            _Shard(
                index,
                StreamingMonitor(
                    model,
                    episode_gap=self.config.episode_gap,
                    max_nodes=self.config.max_nodes_per_shard,
                    max_events_per_node=self.config.max_events_per_node,
                    ingest_config=ingest_config,
                    recovery_successes=self.config.recovery_successes,
                ),
                ShardQueue(self.config.queue_depth),
                CircuitBreaker(self.config.breaker, name=f"shard{index}"),
            )
            for index in range(self.config.num_shards)
        ]
        self.supervisor = Supervisor(
            self._worker_main,
            self.config.num_shards,
            policy=self.config.restart,
            seed=self.config.seed,
            on_give_up=self._seal_shard,
        )
        self._subscribers: list[asyncio.Queue] = []
        self._alerts: deque = deque(maxlen=self.config.alert_buffer)
        self._alert_seq = 0
        self._accepting = False
        self._started = False
        self._checkpoints = (
            CheckpointManager(
                self.config.checkpoint_dir, keep=self.config.checkpoint_keep
            )
            if self.config.checkpoint_dir is not None
            else None
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self, *, restore: bool = True) -> bool:
        """Start the shard workers; returns True when a checkpoint was
        restored (requires ``checkpoint_dir`` and an intact manifest)."""
        if self._started:
            raise ServeError("service already started")
        restored = False
        if restore and self._checkpoints is not None:
            restored = self._restore_latest()
        self._started = True
        self._accepting = True
        await self.supervisor.start()
        return restored

    def _restore_latest(self) -> bool:
        from .state import restore_service_state

        loaded = self._checkpoints.load_latest()
        if loaded is None:
            return False
        _step, _arrays, meta = loaded
        restore_service_state(self, meta)
        metrics_registry().counter("serve.restores").inc()
        return True

    async def stop(self, *, checkpoint: bool = True) -> Optional[str]:
        """Graceful shutdown: seal, drain, stop workers, checkpoint.

        Returns the checkpoint payload path (as str) when one was
        written.  Queues that fail to drain within ``drain_timeout``
        (e.g. behind a permanently failed worker) are abandoned; their
        still-queued items are *not* part of the checkpoint, which only
        captures committed state.
        """
        self._accepting = False
        for shard in self._shards:
            shard.queue.close()
        for shard in self._shards:
            drained = await shard.queue.join(self.config.drain_timeout)
            if not drained:
                metrics_registry().counter("serve.drain_timeouts").inc()
        await self.supervisor.stop()
        self._started = False
        path: Optional[str] = None
        if checkpoint and self._checkpoints is not None:
            from .state import save_service_checkpoint

            path = str(save_service_checkpoint(self._checkpoints, self))
        for queue in list(self._subscribers):
            try:
                queue.put_nowait(None)  # shutdown sentinel for streamers
            except asyncio.QueueFull:
                continue
        return path

    def _seal_shard(self, index: int) -> None:
        """A worker exhausted its restart budget: stop feeding its queue."""
        self._shards[index].queue.close()

    # ------------------------------------------------------------------
    # ingest path
    # ------------------------------------------------------------------
    async def ingest_lines(self, lines: Sequence[str]) -> IngestResult:
        """Admit a batch of raw log lines: dedup → route → offer.

        Never raises on full queues or a sealed service — load is shed
        and reported, with a retry-after hint.  Shedding composes with
        the dedup window to make client retries idempotent.
        """
        result = IngestResult(received=len(lines))
        registry = metrics_registry()
        if not self._accepting:
            result.shed = len(lines)
            result.shed_lines = list(lines)
            result.retry_after = self.config.retry_after
            registry.counter("serve.ingest.shed").inc(result.shed)
            return result
        batches: list[list[str]] = [[] for _ in self._shards]
        digests: list[list[bytes]] = [[] for _ in self._shards]
        for line in lines:
            if self.dedup.window > 0:
                digest = self.dedup.digest(line)
                # reserve() is the atomic check-then-stage: it runs
                # before any await, so a concurrent ingest carrying the
                # same line dedups against the reservation instead of
                # racing the post-backpressure record().
                if not self.dedup.reserve(digest):
                    result.deduped += 1
                    self.dedup.duplicates += 1
                    continue
            else:
                digest = b""
            index = self.router.shard_of_line(line)
            batches[index].append(line)
            digests[index].append(digest)
        if result.deduped:
            registry.counter("serve.ingest.deduped").inc(result.deduped)
        for shard, batch, batch_digests in zip(self._shards, batches, digests):
            if not batch:
                continue
            admitted = await shard.queue.offer_wait(
                ("lines", batch), self.config.backpressure_wait
            )
            if admitted:
                result.accepted += len(batch)
                # Dedup records only *admitted* lines, so a client retry
                # of a shed batch is not mistaken for a duplicate.
                if self.dedup.window > 0:
                    for digest in batch_digests:
                        # deshlint: allow[F4] safe: the digest was reserved before the await, which made the check-then-act atomic; commit only promotes already-staged state
                        self.dedup.commit_reserved(digest)
            else:
                result.shed += len(batch)
                result.shed_lines.extend(batch)
                if self.dedup.window > 0:
                    for digest in batch_digests:
                        # deshlint: allow[F4] safe: dropping a pre-await reservation leaves no window state, so the client retry of this shed batch is admitted
                        self.dedup.release(digest)
            registry.gauge(f"serve.shard{shard.index}.queue_depth").set(
                shard.queue.depth
            )
        if result.accepted:
            registry.counter("serve.ingest.accepted").inc(result.accepted)
        if result.shed:
            registry.counter("serve.ingest.shed").inc(result.shed)
            result.retry_after = self.config.retry_after
        return result

    # ------------------------------------------------------------------
    # shard worker
    # ------------------------------------------------------------------
    async def _worker_main(self, index: int) -> None:
        """One shard's consume loop (supervised; may crash and restart)."""
        shard = self._shards[index]
        while True:
            # Drain a run of queued items in one wake so ingest bursts
            # amortize into large batched scoring flushes; each item
            # still commits individually, so a crash mid-run leaves the
            # failed item at the head for bit-identical replay.
            items = await shard.queue.peek_many(self.config.drain_batch_items)
            for item in items:
                if self._fault_hook is not None:
                    # Fault injection fires at the item boundary, before
                    # any monitor mutation — a crash here replays the
                    # item after restart with bit-identical results.
                    stall = self._fault_hook(index, shard.items_taken)
                    if stall:
                        metrics_registry().counter("serve.stalls").inc()
                        await asyncio.sleep(stall)
                kind = item[0]
                if kind == "lines":
                    self._process_lines(shard, item[1])
                elif kind == "predict":
                    self._process_predict(shard, item)
                else:  # pragma: no cover - internal invariant
                    raise ServeError(f"unknown queue item kind {kind!r}")
                shard.queue.commit()
                shard.items_taken += 1
                self.supervisor.note_progress(index)
                metrics_registry().gauge(
                    f"serve.shard{shard.index}.queue_depth"
                ).set(shard.queue.depth)
            # Yield so long drains cannot starve the event loop.
            await asyncio.sleep(0)

    def _process_lines(self, shard: _Shard, batch: list[str]) -> None:
        monitor = shard.monitor
        allow = shard.breaker.allow()
        monitor.degraded_mode = not allow
        registry = metrics_registry()
        for outcome in monitor.feed_line_batch(batch):
            shard.lines_processed += 1
            if outcome.ingest_error is not None:
                # Budget exhaustion is an operational signal, not a
                # reason to kill the worker: the line is already
                # quarantined, so count and keep serving.
                shard.ingest_errors += 1
                registry.counter("serve.ingest_budget_errors").inc()
                continue
            if allow and outcome.attempted:
                if outcome.skipped:
                    shard.breaker.record_fault()
                else:
                    shard.breaker.record_success()
            if outcome.warning is not None:
                self._publish(outcome.warning)

    def _process_predict(self, shard: _Shard, item: tuple) -> None:
        _kind, node_text, deadline, future = item
        if future.done():
            return
        loop = asyncio.get_running_loop()
        registry = metrics_registry()
        if deadline is not None and loop.time() > deadline:
            registry.counter("serve.predict.deadline_expired").inc()
            future.set_result(
                self._degraded_answer(node_text, "deadline-expired")
            )
            return
        if shard.breaker.state == "open":
            registry.counter("serve.predict.breaker_degraded").inc()
            future.set_result(self._degraded_answer(node_text, "breaker-open"))
            return
        try:
            node = CrayNodeId.parse(node_text)
        except Exception:  # deshlint: allow[R4] NodeIdError inherits ValueError; any unparseable id degrades to a typed answer instead of crashing the worker
            future.set_result(self._degraded_answer(node_text, "bad-node-id"))
            return
        episode = shard.monitor.open_episode(node)
        answer = {
            "node": node_text,
            "degraded": False,
            "open_events": len(episode),
            "alerted": shard.monitor.has_alerted(node),
            "flagged": False,
            "mse": None,
            "lead_seconds": 0.0,
        }
        if episode:
            try:
                flagged, mse, lead = self.model.predictor.score_partial(
                    episode
                )
            except PredictionError:
                shard.breaker.record_fault()
                registry.counter("serve.predict.faults").inc()
                future.set_result(
                    self._degraded_answer(node_text, "prediction-error")
                )
                return
            shard.breaker.record_success()
            answer.update(
                flagged=bool(flagged),
                mse=_finite(mse),
                lead_seconds=float(lead),
            )
        future.set_result(answer)

    @staticmethod
    def _degraded_answer(node_text: str, reason: str) -> dict:
        """The explicit degraded response shape (never an exception)."""
        return {
            "node": node_text,
            "degraded": True,
            "reason": reason,
            "flagged": False,
            "mse": None,
            "lead_seconds": 0.0,
        }

    # ------------------------------------------------------------------
    # on-demand prediction with deadline
    # ------------------------------------------------------------------
    async def predict(
        self, node_text: str, *, deadline_seconds: Optional[float] = None
    ) -> dict:
        """Deadline-bounded prediction for one node's open episode.

        The request rides the owning shard's queue like any other item;
        whatever happens — queue full, deadline expired while queued,
        breaker open, scoring fault — the caller gets a dict, with
        ``degraded: true`` and a ``reason`` instead of an error.
        """
        budget = (
            deadline_seconds
            if deadline_seconds is not None
            else self.config.deadline_seconds
        )
        if budget <= 0:
            raise ConfigError(f"deadline must be > 0, got {budget}")
        shard = self._shards[self.router.shard_of_key(node_text)]
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        item = ("predict", node_text, loop.time() + budget, future)
        if not shard.queue.offer(item):
            metrics_registry().counter("serve.predict.shed").inc()
            return self._degraded_answer(node_text, "queue-full")
        try:
            return await asyncio.wait_for(future, budget)
        except asyncio.TimeoutError:
            metrics_registry().counter("serve.predict.deadline_expired").inc()
            return self._degraded_answer(node_text, "deadline-expired")

    # ------------------------------------------------------------------
    # alerts
    # ------------------------------------------------------------------
    def _publish(self, warning: FailureWarning) -> None:
        self._alert_seq += 1
        payload = {
            "seq": self._alert_seq,
            "node": str(warning.node),
            "decision_time": warning.decision_time,
            "lead_seconds": warning.lead_seconds,
            "mse": _finite(warning.mse),
            "likely_class": warning.likely_class,
            "message": warning.message(),
        }
        self._alerts.append(payload)
        metrics_registry().counter("serve.alerts").inc()
        for queue in list(self._subscribers):
            try:
                queue.put_nowait(payload)
            except asyncio.QueueFull:
                # Slow consumer: drop for this subscriber, never stall
                # the shard worker.
                metrics_registry().counter("serve.subscriber_drops").inc()

    def subscribe(self) -> asyncio.Queue:
        """A live alert queue (``None`` is the shutdown sentinel)."""
        queue: asyncio.Queue = asyncio.Queue(
            maxsize=self.config.subscriber_buffer
        )
        self._subscribers.append(queue)
        return queue

    def unsubscribe(self, queue: asyncio.Queue) -> None:
        """Detach a subscriber queue obtained from :meth:`subscribe`."""
        try:
            self._subscribers.remove(queue)
        except ValueError:
            return

    def alerts_since(self, seq: int = 0) -> list[dict]:
        """Buffered alerts with sequence numbers above *seq*."""
        return [alert for alert in self._alerts if alert["seq"] > seq]

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def node_status(self, node_text: str) -> Optional[dict]:
        """Per-node serving state, or ``None`` for an unparseable id."""
        if not NODE_ID_RE.match(node_text.strip()):
            return None
        node = CrayNodeId.parse(node_text)
        shard = self._shards[self.router.shard_of_key(node_text)]
        episode = shard.monitor.open_episode(node)
        return {
            "node": str(node),
            "shard": shard.index,
            "open_events": len(episode),
            "alerted": shard.monitor.has_alerted(node),
            "last_timestamp": episode[-1].timestamp if episode else None,
        }

    def health(self) -> dict:
        """The full operator-facing health document."""
        shards = []
        degraded = False
        for shard, worker in zip(self._shards, self.supervisor.states):
            monitor_health = shard.monitor.health().as_dict()
            if shard.breaker.state != "closed" or worker.failed:
                degraded = True
            if monitor_health["status"] == "degraded":
                degraded = True
            shards.append(
                {
                    "shard": shard.index,
                    "monitor": monitor_health,
                    "breaker": shard.breaker.as_dict(),
                    "worker": worker.as_dict(),
                    "queue": {
                        "depth": shard.queue.depth,
                        "capacity": shard.queue.capacity,
                        "offered": shard.queue.offered,
                        "committed": shard.queue.committed,
                        "high_water": shard.queue.high_water,
                        "closed": shard.queue.closed,
                    },
                    "items_taken": shard.items_taken,
                    "lines_processed": shard.lines_processed,
                    "ingest_errors": shard.ingest_errors,
                }
            )
        return {
            "status": "degraded" if degraded else "ok",
            "accepting": self._accepting,
            "num_shards": self.config.num_shards,
            "restarts": self.supervisor.total_restarts,
            "alerts_buffered": len(self._alerts),
            "alert_seq": self._alert_seq,
            "deduped": self.dedup.duplicates,
            "shards": shards,
        }
