"""Bounded per-shard work queues and hash-based ingest deduplication.

:class:`ShardQueue` is the service's backpressure primitive: a bounded
FIFO with **peek/commit** consumption.  The shard worker peeks the head
item, processes it, and only then commits (removes) it — so a worker
that crashes mid-item leaves the item at the head of the queue and the
restarted worker reprocesses it.  Combined with crash injection at item
boundaries (before any monitor mutation), this is what makes a chaos
soak's per-node predictions bit-identical to a fault-free run.

Producers never block indefinitely: :meth:`ShardQueue.offer` is
non-blocking and :meth:`ShardQueue.offer_wait` waits for space only up
to a backpressure budget, after which the caller *sheds* the batch
(HTTP 429 with ``Retry-After``).  Shedding composes with
:class:`HashDeduper`: a client that retries a partially shed batch has
its already-accepted lines dropped by the dedup window, so retries are
idempotent.

All of this is single-event-loop ``asyncio``; there are no threads and
no locks, only condition-free event signalling sized for one consumer
per queue (the shard worker) and any number of producers.
"""

from __future__ import annotations

import asyncio
import hashlib
import itertools
from collections import deque
from typing import Optional

from ..errors import ConfigError

__all__ = ["ShardQueue", "HashDeduper"]


class ShardQueue:
    """Bounded FIFO with non-blocking offer and peek/commit consumption.

    One consumer (the shard worker) and any number of producers.  The
    consumer contract is strictly ``peek → process → commit``; an item
    is only removed once the worker survived processing it.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ConfigError(f"queue capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.closed = False
        self.offered = 0
        self.committed = 0
        self.high_water = 0
        self._items: deque = deque()
        self._not_empty = asyncio.Event()
        self._space = asyncio.Event()
        self._empty = asyncio.Event()
        self._empty.set()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def depth(self) -> int:
        """Number of items currently queued (admitted, not committed)."""
        return len(self._items)

    # ------------------------------------------------------------------
    # producer side
    # ------------------------------------------------------------------
    def offer(self, item: object) -> bool:
        """Admit *item* without blocking; False when full or closed."""
        if self.closed or len(self._items) >= self.capacity:
            return False
        self._items.append(item)
        self.offered += 1
        if len(self._items) > self.high_water:
            self.high_water = len(self._items)
        self._empty.clear()
        self._not_empty.set()
        return True

    async def offer_wait(self, item: object, timeout: float) -> bool:
        """Admit *item*, waiting up to *timeout* seconds for space.

        This is the backpressure phase: the producer is slowed down by
        at most *timeout* before the batch is shed.  Returns ``False``
        (shed) when space never appeared or the queue closed.
        """
        if self.offer(item):
            return True
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        while True:
            remaining = deadline - loop.time()
            if remaining <= 0 or self.closed:
                return False
            # deshlint: allow[F4] optimistic retry: offer() re-checks right after the clear, so a wakeup between clear and wait costs one loop turn, never a lost item
            self._space.clear()
            if self.offer(item):  # re-check after clear: no lost wakeup
                return True
            try:
                await asyncio.wait_for(self._space.wait(), remaining)
            except asyncio.TimeoutError:
                return self.offer(item)

    # ------------------------------------------------------------------
    # consumer side (single consumer)
    # ------------------------------------------------------------------
    async def peek(self) -> object:
        """Wait for a head item and return it *without* removing it."""
        while not self._items:
            # deshlint: allow[F4] single consumer: the while re-checks emptiness after every wait, so a stale clear costs one loop turn, never a lost wakeup
            self._not_empty.clear()
            await self._not_empty.wait()
        return self._items[0]

    async def peek_many(self, max_items: int) -> "list[object]":
        """Wait for a head item, then return up to *max_items* from the
        head without removing any.

        The batched-drain twin of :meth:`peek`: a worker that wakes to a
        burst takes the whole run of queued items in one look and
        commits them one by one as each survives processing, so the
        crash-replay contract (head item replayed after a restart) is
        unchanged.
        """
        if max_items < 1:
            raise ConfigError(f"max_items must be >= 1, got {max_items}")
        while not self._items:
            # deshlint: allow[F4] single consumer: the while re-checks emptiness after every wait, so a stale clear costs one loop turn, never a lost wakeup
            self._not_empty.clear()
            await self._not_empty.wait()
        return list(itertools.islice(self._items, max_items))

    def commit(self) -> None:
        """Remove the head item after it has been fully processed."""
        if not self._items:
            raise ConfigError("commit() with no in-flight item")
        self._items.popleft()
        self.committed += 1
        self._space.set()
        if not self._items:
            self._empty.set()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop admitting new items (queued items still drain)."""
        self.closed = True
        self._space.set()

    async def join(self, timeout: Optional[float] = None) -> bool:
        """Wait until every admitted item has been committed.

        Returns ``True`` when the queue drained, ``False`` on timeout
        (a permanently failed worker must not wedge shutdown).
        """
        if not self._items:
            return True
        try:
            await asyncio.wait_for(self._empty.wait(), timeout)
        except asyncio.TimeoutError:
            return False
        return True


class HashDeduper:
    """Sliding-window exact-duplicate detection over line digests.

    Keeps BLAKE2b digests (not the lines themselves) of the last
    ``window`` lines, so the memory cost of the dedup window is fixed
    regardless of line length.  The window contents are part of the
    service checkpoint: ingest dedup that forgot its window across a
    restart would re-admit duplicates straddling the restart and break
    bit-identical resume.
    """

    _DIGEST_SIZE = 16

    def __init__(self, window: int) -> None:
        if window < 0:
            raise ConfigError(f"dedup window must be >= 0, got {window}")
        self.window = window
        self.duplicates = 0
        self._ring: deque = deque(maxlen=max(1, window))
        self._counts: dict[bytes, int] = {}
        # Digests staged by in-flight ingest batches: reserved before
        # the backpressure await, committed (recorded) or released
        # after.  Transient by design — never checkpointed, because a
        # reservation's batch either commits before the checkpoint is
        # taken or is replayed by the client after a restart.
        self._reserved: set[bytes] = set()

    def digest(self, line: str) -> bytes:
        """The window digest of *line* (stable across processes)."""
        return hashlib.blake2b(
            line.encode("utf-8", "replace"), digest_size=self._DIGEST_SIZE
        ).digest()

    def contains(self, digest: bytes) -> bool:
        """Whether *digest* is in the window (query only, no recording)."""
        return digest in self._counts

    def record(self, digest: bytes) -> None:
        """Admit *digest* into the window, evicting the oldest at capacity.

        Split from :meth:`contains` so ingest can dedup-check a batch up
        front but record only the lines that were actually *admitted* —
        a shed batch leaves no trace, so the client's retry of it is not
        mistaken for a duplicate.
        """
        if self.window == 0:
            return
        if len(self._ring) == self._ring.maxlen:
            oldest = self._ring[0]
            remaining = self._counts.get(oldest, 0) - 1
            if remaining <= 0:
                self._counts.pop(oldest, None)
            else:
                self._counts[oldest] = remaining
        self._ring.append(digest)
        self._counts[digest] = self._counts.get(digest, 0) + 1

    # ------------------------------------------------------------------
    # reservation protocol (concurrent ingest batches)
    # ------------------------------------------------------------------
    def reserve(self, digest: bytes) -> bool:
        """Atomically test-and-stage *digest* for admission.

        ``contains`` + later ``record`` is a check-then-act: when the
        admission decision sits on the far side of an await (ingest
        waits out backpressure before recording), a concurrent batch
        carrying the same line passes the ``contains`` check too and
        the duplicate is admitted twice.  ``reserve`` closes the race
        without a lock — it runs synchronously before the await, so
        the second batch sees the reservation and dedups against it.

        Returns ``False`` when the digest is already in the window or
        already reserved by an in-flight batch.
        """
        if self.window == 0:
            return True
        if digest in self._counts or digest in self._reserved:
            return False
        self._reserved.add(digest)
        return True

    def release(self, digest: bytes) -> None:
        """Drop a reservation without recording it (the batch was shed)."""
        self._reserved.discard(digest)

    def commit_reserved(self, digest: bytes) -> None:
        """Record a reserved digest into the window (batch admitted)."""
        self._reserved.discard(digest)
        self.record(digest)

    def seen(self, line: str) -> bool:
        """Record *line*; True when it duplicates one in the window."""
        if self.window == 0:
            return False
        digest = self.digest(line)
        duplicate = self.contains(digest)
        self.record(digest)
        if duplicate:
            self.duplicates += 1
            return True
        return False

    # ------------------------------------------------------------------
    # checkpointable state
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """The window contents and counters, JSON-serializable."""
        return {
            "version": 1,
            "duplicates": self.duplicates,
            "ring": [digest.hex() for digest in self._ring],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot in place."""
        version = state.get("version")
        if version != 1:
            raise ConfigError(
                f"unsupported dedup state version {version!r} (expected 1)"
            )
        self._ring.clear()
        self._counts.clear()
        self._reserved.clear()
        self.duplicates = int(state["duplicates"])
        for hexdigest in state["ring"]:
            digest = bytes.fromhex(hexdigest)
            self._ring.append(digest)
            self._counts[digest] = self._counts.get(digest, 0) + 1
