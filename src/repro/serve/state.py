"""Service checkpointing: pack/restore the full mutable serving state.

Graceful shutdown snapshots everything a restarted
:class:`~repro.serve.service.PredictionService` needs to resume the
stream **bit-identically**: every shard monitor's
:meth:`~repro.core.monitor.StreamingMonitor.state_dict` (buffers in LRU
order, alert latches, counters, status machine, ingest stats + dedup
window), every circuit breaker's position, the service-level ingest
dedup window, and the retained alert ring.  The snapshot is pure JSON
and rides the :class:`~repro.resilience.CheckpointManager` ``meta``
channel (``arrays={}``), inheriting its atomic write-rename-manifest
protocol and retention/GC.

What is deliberately *not* captured: still-queued (uncommitted) items —
the checkpoint is taken after the drain, and an undrainable queue's
items are shed, not silently persisted — and the model weights, which
have their own training checkpoints.
"""

from __future__ import annotations

from pathlib import Path

from ..errors import ServeError
from ..resilience.checkpoint import CheckpointManager

__all__ = ["service_state", "restore_service_state", "save_service_checkpoint"]

#: Bump when the layout of the service snapshot changes incompatibly.
STATE_VERSION = 1


def service_state(service) -> dict:
    """The service's complete mutable state as a JSON-serializable dict."""
    return {
        "version": STATE_VERSION,
        "num_shards": service.config.num_shards,
        "alert_seq": service._alert_seq,
        "alerts": list(service._alerts),
        "dedup": service.dedup.state_dict(),
        "shards": [
            {
                "monitor": shard.monitor.state_dict(),
                "breaker": shard.breaker.state_dict(),
                "items_taken": shard.items_taken,
                "lines_processed": shard.lines_processed,
                "ingest_errors": shard.ingest_errors,
            }
            for shard in service._shards
        ],
    }


def restore_service_state(service, state: dict) -> None:
    """Load a :func:`service_state` snapshot into *service* in place.

    Raises :class:`~repro.errors.ServeError` on a version or topology
    mismatch — resuming a 4-shard checkpoint into an 8-shard service
    would silently re-route every node and must be rejected.
    """
    version = state.get("version")
    if version != STATE_VERSION:
        raise ServeError(
            f"unsupported service state version {version!r} "
            f"(expected {STATE_VERSION})"
        )
    num_shards = state.get("num_shards")
    if num_shards != service.config.num_shards:
        raise ServeError(
            f"checkpoint has {num_shards} shards but the service is "
            f"configured for {service.config.num_shards}; shard counts "
            "must match for routing to stay stable"
        )
    service._alert_seq = int(state["alert_seq"])
    service._alerts.clear()
    service._alerts.extend(state["alerts"])
    service.dedup.load_state_dict(state["dedup"])
    for shard, shard_state in zip(service._shards, state["shards"]):
        shard.monitor.load_state_dict(shard_state["monitor"])
        shard.breaker.load_state_dict(shard_state["breaker"])
        shard.items_taken = int(shard_state["items_taken"])
        shard.lines_processed = int(shard_state["lines_processed"])
        shard.ingest_errors = int(shard_state["ingest_errors"])


def save_service_checkpoint(
    manager: CheckpointManager, service
) -> Path:
    """Write the service snapshot through *manager* (atomic, retained).

    The checkpoint step is the total committed-item count across
    shards, so successive shutdowns produce monotonically increasing
    steps and retention keeps the newest snapshots.
    """
    step = sum(shard.items_taken for shard in service._shards)
    return manager.save(step, arrays={}, meta=service_state(service))
