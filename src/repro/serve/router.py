"""Shard routing: stable hash placement of nodes onto shard workers.

The service partitions :class:`~repro.core.monitor.StreamingMonitor`
state across shards so thousands of nodes can be tracked without one
giant LRU table and so shard workers can fail (and be restarted)
independently.  Routing must therefore be

* **stable** — the same node always lands on the same shard, across
  runs *and* processes, so a checkpoint-resumed service finds each
  node's open episodes in the shard that owns them; and
* **hash-seed independent** — Python's builtin ``hash()`` is salted per
  process (``PYTHONHASHSEED``), so the router hashes with BLAKE2b over
  the routing key instead.

Lines are routed by their *source token* (the second whitespace field:
the node id, or the service host for system-level lines), which is
exactly the key the per-shard monitors bucket episodes by.  Lines too
mangled to carry a source token hash as a whole; the shard's hardened
ingestor quarantines them on arrival.
"""

from __future__ import annotations

import hashlib

from ..errors import ConfigError

__all__ = ["ShardRouter"]


class ShardRouter:
    """Deterministic key → shard placement for a fixed shard count."""

    def __init__(self, num_shards: int) -> None:
        if num_shards < 1:
            raise ConfigError(f"num_shards must be >= 1, got {num_shards}")
        self.num_shards = num_shards

    def shard_of_key(self, key: str) -> int:
        """The shard index owning *key* (stable across processes)."""
        digest = hashlib.blake2b(
            key.encode("utf-8", "replace"), digest_size=8
        ).digest()
        return int.from_bytes(digest, "big") % self.num_shards

    def shard_of_line(self, line: str) -> int:
        """Route a raw log line by its source token (second field).

        Falls back to hashing the whole line when no second field
        exists — such lines are unparseable anyway and only need *a*
        shard to be quarantined in.
        """
        parts = line.split(None, 2)
        key = parts[1] if len(parts) >= 2 else line
        return self.shard_of_key(key)
