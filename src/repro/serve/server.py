"""Stdlib-asyncio HTTP front-end over :class:`PredictionService`.

A deliberately small hand-rolled HTTP/1.1 server — the repo's
no-new-dependencies rule applies to serving too, and the endpoint
surface is narrow enough that ``asyncio.start_server`` plus a request
parser is simpler and more auditable than embedding a framework:

* ``POST /ingest`` — body = raw log lines; 200 with per-bucket
  accounting, or **429 + Retry-After** when load was shed;
* ``GET /health`` — the full service health document (shards, queues,
  breakers, workers);
* ``GET /nodes/<id>`` — one node's serving state;
* ``GET /predict/<id>`` — deadline-bounded on-demand prediction
  (``?deadline_ms=`` overrides the configured default);
* ``GET /alerts`` — buffered alerts as JSON (``?since=<seq>``), or a
  live ``text/event-stream`` when requested with ``?stream=1`` or an
  ``Accept: text/event-stream`` header;
* ``GET /metrics`` — the Prometheus text exposition of the repo-wide
  metrics registry.

Robustness posture: request bodies are size-capped (413), unknown
routes 404, malformed requests 400, and any unexpected handler failure
is contained to its connection as a 500 — a poisoned request must never
take the service down.  SSE writes carry a per-write timeout so one
stalled subscriber cannot pin a connection handler forever.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional

from ..errors import ConfigError
from ..obs import metrics_registry
from .service import PredictionService

__all__ = ["HttpServer", "run_server"]

#: Largest accepted request body (bytes); ingest batches beyond this 413.
MAX_BODY_BYTES = 4 * 1024 * 1024
#: Largest accepted request head (start line + headers) in bytes.
_MAX_HEAD_BYTES = 32 * 1024
#: Seconds an SSE write may stall before the subscriber is dropped.
_SSE_WRITE_TIMEOUT = 5.0
#: Seconds between SSE keepalive comments when no alerts flow.
_SSE_KEEPALIVE = 15.0

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class _BadRequest(Exception):
    """Internal: malformed request; mapped to a 4xx response."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class HttpServer:
    """Serve a :class:`PredictionService` over HTTP/1.1 (close-per-request)."""

    def __init__(
        self,
        service: PredictionService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        # Serializes start/stop: both check-then-act on _server across
        # an await, so concurrent lifecycle calls would otherwise race
        # (double-bind, or stop() closing a half-started listener).
        self._lifecycle = asyncio.Lock()

    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting; ``port`` 0 picks a free port."""
        async with self._lifecycle:
            if self._server is not None:
                raise ConfigError("server already started")
            self._server = await asyncio.start_server(
                self._handle_connection, self.host, self.port
            )
            self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Stop accepting connections and close the listener."""
        async with self._lifecycle:
            if self._server is None:
                return
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                method, path, query, headers, body = await self._read_request(
                    reader
                )
                metrics_registry().counter("serve.http.requests").inc()
                await self._dispatch(
                    writer, method, path, query, headers, body
                )
            except _BadRequest as exc:
                # Raised by request parsing *and* by handlers (e.g. a
                # garbage query parameter): always a 4xx, never a 500.
                await self._respond_json(
                    writer, exc.status, {"error": str(exc)}
                )
                return
        except (ConnectionError, asyncio.IncompleteReadError):
            return  # client went away mid-request; nothing to answer
        except Exception as exc:  # deshlint: allow[R4] connection boundary: a handler bug must 500 its own connection, never crash the accept loop
            metrics_registry().counter("serve.http.errors").inc()
            try:
                await self._respond_json(
                    writer, 500, {"error": f"{type(exc).__name__}: {exc}"}
                )
            except (ConnectionError, RuntimeError):
                return
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                return

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict, dict, bytes]:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.LimitOverrunError as exc:
            raise _BadRequest(413, "request head too large") from exc
        except asyncio.IncompleteReadError as exc:
            raise _BadRequest(400, "truncated request") from exc
        if len(head) > _MAX_HEAD_BYTES:
            raise _BadRequest(413, "request head too large")
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3:
            raise _BadRequest(400, f"malformed request line: {lines[0]!r}")
        method, target, _version = parts
        path, _, query_text = target.partition("?")
        query: dict[str, str] = {}
        for pair in query_text.split("&"):
            if not pair:
                continue
            key, _, value = pair.partition("=")
            query[key] = value
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            key, _, value = line.partition(":")
            headers[key.strip().lower()] = value.strip()
        length_text = headers.get("content-length", "0")
        try:
            length = int(length_text)
        except ValueError as exc:
            raise _BadRequest(
                400, f"bad Content-Length: {length_text!r}"
            ) from exc
        if length < 0:
            raise _BadRequest(400, f"bad Content-Length: {length_text!r}")
        if length > MAX_BODY_BYTES:
            raise _BadRequest(413, f"body exceeds {MAX_BODY_BYTES} bytes")
        body = await reader.readexactly(length) if length else b""
        return method, path, query, headers, body

    # ------------------------------------------------------------------
    async def _dispatch(
        self,
        writer: asyncio.StreamWriter,
        method: str,
        path: str,
        query: dict,
        headers: dict,
        body: bytes,
    ) -> None:
        if path == "/ingest":
            if method != "POST":
                await self._respond_json(
                    writer, 405, {"error": "POST required"}
                )
                return
            await self._handle_ingest(writer, body)
            return
        if method != "GET":
            await self._respond_json(writer, 405, {"error": "GET required"})
            return
        if path == "/health":
            await self._respond_json(writer, 200, self.service.health())
        elif path == "/metrics":
            await self._respond_text(
                writer,
                200,
                metrics_registry().to_prometheus(),
                content_type="text/plain; version=0.0.4",
            )
        elif path == "/alerts":
            wants_stream = query.get("stream") == "1" or (
                "text/event-stream" in headers.get("accept", "")
            )
            if wants_stream:
                await self._handle_alert_stream(writer)
            else:
                since = _int_query(query, "since", 0)
                await self._respond_json(
                    writer,
                    200,
                    {"alerts": self.service.alerts_since(since)},
                )
        elif path.startswith("/nodes/"):
            status = self.service.node_status(path[len("/nodes/"):])
            if status is None:
                await self._respond_json(
                    writer, 404, {"error": "unknown or invalid node id"}
                )
            else:
                await self._respond_json(writer, 200, status)
        elif path.startswith("/predict/"):
            deadline_ms = _int_query(query, "deadline_ms", 0)
            answer = await self.service.predict(
                path[len("/predict/"):],
                deadline_seconds=(
                    deadline_ms / 1000.0 if deadline_ms > 0 else None
                ),
            )
            await self._respond_json(writer, 200, answer)
        else:
            await self._respond_json(
                writer, 404, {"error": f"no route for {path}"}
            )

    async def _handle_ingest(
        self, writer: asyncio.StreamWriter, body: bytes
    ) -> None:
        lines = [
            line
            for line in body.decode("utf-8", "replace").splitlines()
            if line.strip()
        ]
        result = await self.service.ingest_lines(lines)
        if result.shed:
            extra = {}
            if result.retry_after is not None:
                extra["Retry-After"] = f"{result.retry_after:g}"
            await self._respond_json(
                writer, 429, result.as_dict(), extra_headers=extra
            )
        else:
            await self._respond_json(writer, 200, result.as_dict())

    async def _handle_alert_stream(self, writer: asyncio.StreamWriter) -> None:
        """Server-sent events: replayed ring, then live until shutdown."""
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-cache\r\n"
            b"Connection: close\r\n\r\n"
        )
        queue = self.service.subscribe()
        try:
            for alert in self.service.alerts_since(0):
                await self._sse_write(writer, alert)
            while True:
                try:
                    alert = await asyncio.wait_for(
                        queue.get(), _SSE_KEEPALIVE
                    )
                except asyncio.TimeoutError:
                    writer.write(b": keepalive\r\n\r\n")
                    await asyncio.wait_for(
                        writer.drain(), _SSE_WRITE_TIMEOUT
                    )
                    continue
                if alert is None:  # shutdown sentinel
                    return
                await self._sse_write(writer, alert)
        except (ConnectionError, asyncio.TimeoutError):
            metrics_registry().counter("serve.sse.dropped").inc()
            return
        finally:
            self.service.unsubscribe(queue)

    async def _sse_write(
        self, writer: asyncio.StreamWriter, alert: dict
    ) -> None:
        payload = json.dumps(alert, sort_keys=True)
        writer.write(
            f"id: {alert['seq']}\nevent: alert\ndata: {payload}\n\n".encode()
        )
        await asyncio.wait_for(writer.drain(), _SSE_WRITE_TIMEOUT)

    # ------------------------------------------------------------------
    async def _respond_json(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict,
        *,
        extra_headers: Optional[dict] = None,
    ) -> None:
        await self._respond_text(
            writer,
            status,
            json.dumps(payload, sort_keys=True),
            content_type="application/json",
            extra_headers=extra_headers,
        )

    async def _respond_text(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        text: str,
        *,
        content_type: str,
        extra_headers: Optional[dict] = None,
    ) -> None:
        body = text.encode("utf-8")
        head = [
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        for key, value in (extra_headers or {}).items():
            head.append(f"{key}: {value}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body)
        await writer.drain()


def _int_query(query: dict, key: str, default: int) -> int:
    """Parse an integer query parameter, 400-ing on garbage."""
    raw = query.get(key)
    if raw is None or raw == "":
        return default
    try:
        return int(raw)
    except ValueError as exc:
        raise _BadRequest(400, f"bad {key!r} value: {raw!r}") from exc


async def run_server(
    service: PredictionService,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    max_seconds: Optional[float] = None,
    restore: bool = True,
) -> dict:
    """Start the service + HTTP front-end and serve until interrupted.

    ``max_seconds`` bounds the run (for CI smoke jobs); ``None`` serves
    until cancellation (Ctrl-C in the CLI).  Returns a final health
    snapshot after graceful shutdown (drain + checkpoint).
    """
    restored = await service.start(restore=restore)
    server = HttpServer(service, host=host, port=port)
    await server.start()
    print(f"serving on http://{server.host}:{server.port}/ "
          f"(restored={restored})")
    try:
        if max_seconds is not None:
            await asyncio.sleep(max_seconds)
        else:
            while True:
                await asyncio.sleep(3600)
    except asyncio.CancelledError:
        pass
    finally:
        await server.stop()
        path = await service.stop(checkpoint=True)
        if path is not None:
            print(f"checkpoint written: {path}")
    return service.health()
