"""Worker supervision: restart crashed shard workers with backoff.

The supervisor owns one long-running task per shard worker.  A worker
that raises is *contained*: the exception is recorded, the restart
counter advances, and the worker coroutine is re-entered after an
exponential-backoff delay with deterministic jitter (drawn from a
seeded :class:`numpy.random.Generator`, per the repo's RNG discipline).
Because the shard's monitor state and queue live *outside* the worker
task, a restart loses nothing: the peek/commit queue contract replays
the in-flight item and processing resumes bit-identically.

Recovery time — crash to first successfully committed item after the
restart — is measured inside the supervisor and exported through the
``serve.recovery_seconds`` histogram; the chaos soak asserts its
maximum against the documented SLO.

A worker that keeps crashing without ever committing an item is given
up on after ``max_restarts`` consecutive failures (0 = never), leaving
the remaining shards serving; its queue is closed so producers shed
instead of filling a dead queue.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Awaitable, Callable, Optional

import numpy as np

from ..errors import ConfigError
from ..obs import metrics_registry
from ..rng import derive_seed

__all__ = ["RestartPolicy", "WorkerState", "Supervisor"]

#: Bucket bounds (seconds) for the recovery-time histogram: 1 ms – 60 s.
_RECOVERY_BUCKETS = (
    0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5,
    1.0, 2.0, 5.0, 10.0, 30.0, 60.0,
)


@dataclass(frozen=True)
class RestartPolicy:
    """Backoff and give-up rules for crashed workers.

    The restart delay after the *n*-th consecutive failure is
    ``min(max_delay, base_delay * 2**(n-1))`` stretched by up to
    ``jitter`` (a fraction, drawn deterministically), so a crash storm
    across shards de-synchronizes instead of thundering back together.
    """

    base_delay: float = 0.02
    max_delay: float = 2.0
    jitter: float = 0.25
    max_restarts: int = 0

    def __post_init__(self) -> None:
        if self.base_delay < 0:
            raise ConfigError(
                f"base_delay must be >= 0, got {self.base_delay}"
            )
        if self.max_delay < self.base_delay:
            raise ConfigError(
                f"max_delay must be >= base_delay, got {self.max_delay}"
            )
        if self.jitter < 0:
            raise ConfigError(f"jitter must be >= 0, got {self.jitter}")
        if self.max_restarts < 0:
            raise ConfigError(
                f"max_restarts must be >= 0, got {self.max_restarts}"
            )

    def delay(self, consecutive_failures: int, rng: np.random.Generator) -> float:
        """The backoff delay after this many consecutive failures."""
        if consecutive_failures < 1:
            return 0.0
        base = min(
            self.max_delay,
            self.base_delay * (2.0 ** (consecutive_failures - 1)),
        )
        return base * (1.0 + self.jitter * float(rng.random()))


@dataclass
class WorkerState:
    """Supervision bookkeeping of one shard worker."""

    restarts: int = 0
    consecutive_failures: int = 0
    running: bool = False
    failed: bool = False
    last_error: Optional[str] = None
    last_delay: float = 0.0
    recovery_times: list = field(default_factory=list)
    _crash_clock: Optional[float] = None

    def as_dict(self) -> dict:
        """Operator-facing snapshot for the health endpoint."""
        return {
            "running": self.running,
            "failed": self.failed,
            "restarts": self.restarts,
            "consecutive_failures": self.consecutive_failures,
            "last_error": self.last_error,
            "last_delay": self.last_delay,
            "recovery_times": list(self.recovery_times),
        }


class Supervisor:
    """Keep *num_workers* shard workers alive across crashes.

    ``worker_main`` is an async callable taking the worker index; it is
    expected to run forever (returning cleanly stops supervision of
    that worker).  ``on_give_up`` is invoked with the worker index when
    ``max_restarts`` consecutive failures exhaust the policy.
    """

    def __init__(
        self,
        worker_main: Callable[[int], Awaitable[None]],
        num_workers: int,
        *,
        policy: RestartPolicy | None = None,
        seed: int = 0,
        on_give_up: Optional[Callable[[int], None]] = None,
    ) -> None:
        if num_workers < 1:
            raise ConfigError(f"num_workers must be >= 1, got {num_workers}")
        self.policy = policy if policy is not None else RestartPolicy()
        self.states = [WorkerState() for _ in range(num_workers)]
        self._worker_main = worker_main
        self._on_give_up = on_give_up
        self._rng = np.random.default_rng(derive_seed(seed, "serve.supervisor"))
        self._tasks: list[asyncio.Task] = []
        self._stopping = False

    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Launch one supervised task per worker."""
        if self._tasks:
            raise ConfigError("supervisor already started")
        self._stopping = False
        self._tasks = [
            asyncio.ensure_future(self._run(index))
            for index in range(len(self.states))
        ]

    async def _run(self, index: int) -> None:
        state = self.states[index]
        loop = asyncio.get_running_loop()
        while not self._stopping:
            state.running = True
            try:
                await self._worker_main(index)
                state.running = False
                return  # clean exit: the worker chose to stop
            except asyncio.CancelledError:
                state.running = False
                raise
            except Exception as exc:  # deshlint: allow[R4] supervision boundary: any worker crash must be contained and restarted, never propagated out of the service
                state.running = False
                state.restarts += 1
                state.consecutive_failures += 1
                state.last_error = f"{type(exc).__name__}: {exc}"
                state._crash_clock = loop.time()
                metrics_registry().counter("serve.worker_restarts").inc()
                if (
                    self.policy.max_restarts
                    and state.consecutive_failures > self.policy.max_restarts
                ):
                    state.failed = True
                    metrics_registry().counter("serve.workers_given_up").inc()
                    if self._on_give_up is not None:
                        self._on_give_up(index)
                    return
                state.last_delay = self.policy.delay(
                    state.consecutive_failures, self._rng
                )
                if state.last_delay > 0:
                    await asyncio.sleep(state.last_delay)

    # ------------------------------------------------------------------
    def note_progress(self, index: int) -> None:
        """The worker committed an item: reset backoff, close recovery.

        The first committed item after a crash ends that crash's
        recovery interval; the measured time feeds the
        ``serve.recovery_seconds`` histogram and the soak SLO check.
        """
        state = self.states[index]
        state.consecutive_failures = 0
        if state._crash_clock is not None:
            recovery = asyncio.get_running_loop().time() - state._crash_clock
            state._crash_clock = None
            state.recovery_times.append(recovery)
            metrics_registry().histogram(
                "serve.recovery_seconds", _RECOVERY_BUCKETS
            ).observe(recovery)

    # ------------------------------------------------------------------
    @property
    def total_restarts(self) -> int:
        """Restarts across all workers since start."""
        return sum(state.restarts for state in self.states)

    def recovery_times(self) -> list[float]:
        """Every measured crash-to-recovery interval, in seconds."""
        out: list[float] = []
        for state in self.states:
            out.extend(state.recovery_times)
        return out

    async def stop(self) -> None:
        """Cancel all worker tasks and wait for them to unwind.

        The task list is detached *before* the first await: a second
        concurrent ``stop()`` (or a ``start()`` racing shutdown) then
        sees an empty list instead of re-cancelling tasks the first
        call is already gathering — the write happens while the state
        is still atomic with the read.
        """
        self._stopping = True
        tasks, self._tasks = self._tasks, []
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        for state in self.states:
            state.running = False
