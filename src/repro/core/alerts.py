"""Operator-facing failure warnings.

Section 4.5: "Desh can warn, *In 2.5 minutes, node X located in Y is
expected to fail*. The node id (e.g., cA-cBcCsSnN) contains the exact
location information."  :class:`FailureWarning` renders exactly that
message from a phase-3 prediction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..topology.cray import CrayNodeId
from .phase3 import FailurePrediction

__all__ = ["FailureWarning"]


@dataclass(frozen=True)
class FailureWarning:
    """Human-readable impending-failure warning with exact location.

    ``likely_class`` optionally carries the attributed Table-7 failure
    class (from :class:`~repro.core.classify.FailureClassifier`), so the
    operator knows not just *when* but *what kind* of failure to expect.
    """

    node: Optional[CrayNodeId]
    decision_time: float
    lead_seconds: float
    mse: float
    likely_class: Optional[str] = None

    @classmethod
    def from_prediction(
        cls,
        prediction: FailurePrediction,
        *,
        likely_class: Optional[str] = None,
    ) -> "FailureWarning":
        """Build a warning from a phase-3 prediction."""
        return cls(
            node=prediction.node,
            decision_time=prediction.decision_time,
            lead_seconds=prediction.lead_seconds,
            mse=prediction.mse,
            likely_class=likely_class,
        )

    @property
    def lead_minutes(self) -> float:
        """Predicted lead time in minutes."""
        return self.lead_seconds / 60.0

    def message(self) -> str:
        """The Section-4.5 warning sentence.

        >>> from repro.topology import CrayNodeId
        >>> FailureWarning(CrayNodeId(1, 0, 2, 5, 3), 0.0, 150.0, 0.1).message()
        'In 2.5 minutes, node c1-0c2s5n3 located at cabinet c1-0, chassis 2, blade 5, node 3 is expected to fail.'
        """
        suffix = f" (likely {self.likely_class})" if self.likely_class else ""
        if self.node is None:
            return (
                f"In {self.lead_minutes:.1f} minutes, a system-level failure "
                f"is expected.{suffix}"
            )
        return (
            f"In {self.lead_minutes:.1f} minutes, node {self.node} located at "
            f"{self.node.location_phrase()} is expected to fail.{suffix}"
        )

    def __str__(self) -> str:  # pragma: no cover - delegates to message()
        return self.message()
