"""Phase 3: per-node inference — flag failures and predict lead times.

Section 3.3: the test data is encoded into the same (dT, phrase) vectors
as phase 2, per node ("the vectors are not concatenated across nodes as
in phase 1 and 2 ... we form batches corresponding to distinct nodes").
The trained LSTM predicts the next sample of each window; the prediction
is compared with the observed test vector and the MSE computed.  "We use
a threshold of 0.5 for inferring node failures" — windows with
MSE <= 0.5 are matches against the trained failure chains.  The dT of
the sample at which the failure is flagged is the predicted lead time:
"if a failure is flagged after checking P3 we get 2.5 minutes lead time
... the earlier we flag the longer the lead" (Section 4.2).

The *flag position* — how many anomalous events must be observed before
a flag may be raised — is the sensitivity knob of Figure 8: requiring
fewer events flags earlier (longer lead times, more false positives).

An *online* scoring mode (:meth:`Phase3Predictor.score_partial`) anchors
the dT encoding at the newest observed event instead of the episode end,
so a live monitor can score a growing episode without future knowledge;
the model's own predicted dT, decoded back to seconds, is the lead-time
estimate.  This goes beyond the paper's offline evaluation but exercises
the identical model.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..config import Phase3Config
from ..errors import PredictionError
from ..obs import current_tracer, metrics_registry, obs_enabled
from ..events import EventSequence, ParsedEvent
from ..nn.batched import BatchedScorer
from ..nn.data import sliding_windows_continuous
from ..nn.model import SequenceRegressor
from ..topology.cray import CrayNodeId
from .chains import Episode, segment_episodes
from .deltas import LeadTimeScaler
from .phase2 import pad_vectors

__all__ = [
    "Phase3Predictor",
    "EpisodeVerdict",
    "FailurePrediction",
    "PartialScore",
]


def _passing_windows(
    mses: np.ndarray,
    *,
    history: int,
    pad_len: int,
    n_real: int,
    flag_position: int,
    threshold: float,
) -> np.ndarray:
    """Window indices whose MSE passes the flag test, in window order.

    Window ``w`` predicts padded sample ``w + history``; subtracting the
    padding gives the real event index under decision.  A window passes
    when that index is a real event at or past ``flag_position`` and its
    MSE is at or below ``threshold``.  One vectorized pass over the
    whole episode keeps the per-window cost of the measured
    ``phase3.prediction_ms`` path flat.
    """
    if not len(mses):
        return np.empty(0, dtype=np.intp)
    real_idx = np.arange(len(mses)) + history - pad_len
    ok = (
        (real_idx >= flag_position)
        & (real_idx < n_real)
        & (mses <= threshold)
    )
    return np.nonzero(ok)[0]


@dataclass(frozen=True)
class EpisodeVerdict:
    """Scoring outcome for one candidate episode."""

    episode: Episode
    flagged: bool
    mse: float
    decision_index: int = -1
    decision_time: float = float("nan")
    lead_seconds: float = 0.0

    @property
    def node(self) -> Optional[CrayNodeId]:
        """The node the scored episode belongs to."""
        return self.episode.node


@dataclass(frozen=True)
class PartialScore:
    """Outcome of scoring one growing episode on the batched path.

    ``error`` carries the per-unit :class:`~repro.errors.PredictionError`
    when scoring that unit failed; callers replicate the sequential
    path's error handling from it (the other fields are then defaults).
    """

    flagged: bool
    mse: float
    lead_seconds: float
    error: Optional[PredictionError] = None

    def as_tuple(self) -> "tuple[bool, float, float]":
        """The legacy ``(flagged, mse, lead_seconds)`` triple."""
        return self.flagged, self.mse, self.lead_seconds


@dataclass(frozen=True)
class FailurePrediction:
    """A raised failure flag: which node, when, and how much warning."""

    node: Optional[CrayNodeId]
    decision_time: float
    lead_seconds: float
    mse: float

    @property
    def predicted_failure_time(self) -> float:
        """Absolute time at which the node is expected to fail."""
        return self.decision_time + self.lead_seconds


class Phase3Predictor:
    """Score per-node episodes against the trained failure-chain model."""

    def __init__(
        self,
        regressor: SequenceRegressor,
        scaler: LeadTimeScaler,
        *,
        config: Phase3Config | None = None,
        episode_gap: float = 600.0,
    ) -> None:
        if episode_gap <= 0:
            raise PredictionError("episode_gap must be > 0")
        self.regressor = regressor
        self.scaler = scaler
        self.config = config if config is not None else Phase3Config()
        self.episode_gap = episode_gap
        self._scorer: Optional[BatchedScorer] = None

    @property
    def scorer(self) -> BatchedScorer:
        """The shared batch-major scoring core (built on first use)."""
        if self._scorer is None:
            self._scorer = BatchedScorer(
                self.regressor,
                self.scaler,
                history=self.config.history_size,
            )
        return self._scorer

    # ------------------------------------------------------------------
    # offline (paper) scoring
    # ------------------------------------------------------------------
    def _episode_windows(
        self, timestamps: np.ndarray, phrase_ids: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """Vector windows of an episode; returns (X, Y, pad_len)."""
        vectors = self.scaler.encode_chain(timestamps, phrase_ids)
        history = self.config.history_size
        # Same left-padding convention as phase-2 training: one window per
        # real event, so flags can be raised early in the episode.
        padded = pad_vectors(vectors, len(vectors) + history)
        pad_len = len(padded) - len(vectors)
        x, y = sliding_windows_continuous(padded, history, 1)
        return x, y[:, 0, :], pad_len

    def score_episode(self, episode: Episode) -> EpisodeVerdict:
        """Score one episode with the retrospective (paper) encoding.

        The flag is raised at the first window whose MSE is at or below
        the threshold, provided at least ``flag_position`` real events
        precede the decision sample; the decision sample's dT is the
        predicted lead time.

        Episodes are scored once whole and then with up to
        ``max_suffix_skip`` leading events removed — ambient anomalies
        that happened shortly before a chain get swept into the same
        episode and would otherwise misalign every window.  Within a
        suffix, at least ``confirmation_windows`` windows must match for
        the episode to be flagged; the decision point is the first match.
        The earliest flag across all suffixes wins (longest lead time).
        """
        if obs_enabled():
            start = time.perf_counter()
            verdict, windows = self._score_episode(episode)
            if windows:
                metrics_registry().histogram("phase3.prediction_ms").observe(
                    (time.perf_counter() - start) * 1e3 / windows
                )
        else:
            verdict, _ = self._score_episode(episode)
        registry = metrics_registry()
        registry.counter("phase3.episodes").inc()
        if verdict.flagged:
            registry.counter("phase3.flags").inc()
        return verdict

    def _score_episode(
        self, episode: Episode
    ) -> tuple[EpisodeVerdict, int]:
        """The scoring body; returns the verdict and the windows scored."""
        cfg = self.config
        if len(episode) < cfg.min_chain_events:
            verdict = EpisodeVerdict(
                episode=episode, flagged=False, mse=float("inf")
            )
            return verdict, 0
        all_ts = episode.timestamps()
        all_ids = episode.phrase_ids()
        end_time = episode.end_time
        best_mse = float("inf")
        best_flag: EpisodeVerdict | None = None
        windows_scored = 0
        max_skip = min(cfg.max_suffix_skip, len(episode) - cfg.min_chain_events)
        for skip in range(0, max_skip + 1):
            timestamps = all_ts[skip:]
            x, y, pad_len = self._episode_windows(timestamps, all_ids[skip:])
            mses: np.ndarray = self.scaler.mse_paper_units(
                self.regressor.predict(x), y
            )
            windows_scored += len(mses)
            if len(mses):
                best_mse = min(best_mse, float(np.min(mses)))
            hits = _passing_windows(
                mses,
                history=cfg.history_size,
                pad_len=pad_len,
                n_real=len(timestamps),
                flag_position=cfg.flag_position,
                threshold=cfg.mse_threshold,
            )
            if len(hits) >= cfg.confirmation_windows:
                first = int(hits[0])
                decision_index = skip + first + cfg.history_size - pad_len
                mse = float(mses[first])
                decision_time = float(all_ts[decision_index])
                candidate = EpisodeVerdict(
                    episode=episode,
                    flagged=True,
                    mse=mse,
                    decision_index=decision_index,
                    decision_time=decision_time,
                    lead_seconds=float(end_time - decision_time),
                )
                if (
                    best_flag is None
                    or candidate.decision_index < best_flag.decision_index
                ):
                    best_flag = candidate
        if best_flag is not None:
            return best_flag, windows_scored
        verdict = EpisodeVerdict(episode=episode, flagged=False, mse=best_mse)
        return verdict, windows_scored

    def predict_sequences(
        self, sequences: Sequence[EventSequence]
    ) -> list[EpisodeVerdict]:
        """Segment every node stream into episodes and score them all."""
        with current_tracer().span(
            "phase3.predict_sequences", sequences=len(sequences)
        ) as span:
            verdicts: list[EpisodeVerdict] = []
            for seq in sequences:
                if seq.node is None:
                    continue
                for episode in segment_episodes(
                    seq,
                    gap=self.episode_gap,
                    min_events=self.config.min_chain_events,
                ):
                    verdicts.append(self.score_episode(episode))
            span.set(
                episodes=len(verdicts),
                flagged=sum(1 for v in verdicts if v.flagged),
            )
        return verdicts

    def predictions(
        self, verdicts: Sequence[EpisodeVerdict]
    ) -> list[FailurePrediction]:
        """The raised flags among *verdicts*, as operator-facing predictions."""
        return [
            FailurePrediction(
                node=v.node,
                decision_time=v.decision_time,
                lead_seconds=v.lead_seconds,
                mse=v.mse,
            )
            for v in verdicts
            if v.flagged
        ]

    # ------------------------------------------------------------------
    # online scoring (live-monitor extension)
    # ------------------------------------------------------------------
    def _partial_matrix(
        self, events: Sequence[ParsedEvent]
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Window stack and targets for one growing episode."""
        timestamps = np.array([e.timestamp for e in events], dtype=np.float64)
        phrase_ids = np.array([e.phrase_id for e in events], dtype=np.int64)
        x, y, _ = self.scorer.chain_matrix(timestamps, phrase_ids)
        return x, y

    def _verdict_from(
        self, pred: np.ndarray, y: np.ndarray
    ) -> "tuple[bool, float, float]":
        """Turn one unit's predictions into ``(flagged, mse, lead)``.

        The lead estimate is the last window's predicted next dT decoded
        to seconds — read off the main forward's final row instead of a
        separate single-window call, so scoring a unit costs exactly one
        batched forward (and the single-row GEMM whose rounding differed
        from the batched kernel is gone entirely).
        """
        mses = self.scaler.mse_paper_units(pred, y)
        best = float(np.min(mses))
        lead = float(self.scaler.decode_lead_seconds(pred[-1, 0]))
        return best <= self.config.mse_threshold, best, lead

    def _observe_prediction(self, per_prediction_ms: float) -> None:
        """The single ``phase3.prediction_ms`` observation site."""
        metrics_registry().histogram("phase3.prediction_ms").observe(
            per_prediction_ms
        )

    def score_partial(
        self, events: Sequence[ParsedEvent]
    ) -> tuple[bool, float, float]:
        """Score a *growing* episode without knowing its end.

        The dT encoding is anchored at the newest observed event.  Returns
        ``(flagged, mse, lead_estimate_seconds)`` where the lead estimate
        is the model's predicted next dT decoded to seconds — how far
        ahead of the current event the model still expects chain activity
        before the terminal.

        Routed through the same :class:`~repro.nn.batched.BatchedScorer`
        kernel as :meth:`score_partial_batch`, so a unit scored alone is
        bitwise identical to the same unit scored inside a batched flush.
        """
        cfg = self.config
        if len(events) < max(2, cfg.min_chain_events):
            return False, float("inf"), 0.0
        timed = obs_enabled()
        start = time.perf_counter() if timed else 0.0
        x, y = self._partial_matrix(events)
        pred = self.scorer.predict_batch(x, chunk=cfg.scoring_batch)
        flagged, best, lead = self._verdict_from(pred, y)
        if timed and len(x):
            self._observe_prediction(
                (time.perf_counter() - start) * 1e3 / len(x)
            )
        return flagged, best, lead

    def score_partial_batch(
        self, units: "Sequence[Sequence[ParsedEvent]]"
    ) -> "list[PartialScore]":
        """Score many growing episodes through one batched forward.

        Window stacks of all scoreable units are concatenated and run as
        one (chunked) batch-major forward; per-row bit-independence of
        the inference kernel makes each unit's scores exactly equal to a
        lone :meth:`score_partial` call.  Units below the minimum event
        count return the same early-out triple the sequential path uses.
        If the batched forward itself raises
        :class:`~repro.errors.PredictionError`, scoring falls back to
        per-unit sequential calls so the error is attributed to exactly
        the unit(s) that fail, matching sequential semantics.

        ``phase3.prediction_ms`` is observed once per scored unit with
        the true per-prediction latency (batch elapsed / windows scored),
        never the whole-batch latency.
        """
        cfg = self.config
        results: "list[Optional[PartialScore]]" = [None] * len(units)
        mats: "list[tuple[int, np.ndarray, np.ndarray]]" = []
        for index, events in enumerate(units):
            if len(events) < max(2, cfg.min_chain_events):
                results[index] = PartialScore(False, float("inf"), 0.0)
                continue
            x, y = self._partial_matrix(events)
            mats.append((index, x, y))
        if not mats:
            return results
        timed = obs_enabled()
        start = time.perf_counter() if timed else 0.0
        if len(mats) == 1:
            stacked = mats[0][1]
        else:
            stacked = np.concatenate([x for _, x, _ in mats], axis=0)
        try:
            preds = self.scorer.predict_batch(stacked, chunk=cfg.scoring_batch)
        except PredictionError:
            for index, x, y in mats:
                unit_start = time.perf_counter() if timed else 0.0
                try:
                    pred = self.scorer.predict_batch(x, chunk=cfg.scoring_batch)
                except PredictionError as exc:
                    results[index] = PartialScore(
                        False, float("inf"), 0.0, error=exc
                    )
                    continue
                results[index] = PartialScore(*self._verdict_from(pred, y))
                if timed:
                    self._observe_prediction(
                        (time.perf_counter() - unit_start) * 1e3 / len(x)
                    )
            return results
        offset = 0
        for index, x, y in mats:
            pred = preds[offset : offset + len(x)]
            offset += len(x)
            results[index] = PartialScore(*self._verdict_from(pred, y))
        if timed:
            per_prediction_ms = (
                (time.perf_counter() - start) * 1e3 / len(stacked)
            )
            for _ in mats:
                self._observe_prediction(per_prediction_ms)
        return results
