"""Failure-chain formation and episode segmentation.

After phase-1 labeling, "a sequence of events leading to a node failure
is formed using Unknown (U) and Error (E) tagged phrases after referring
to the raw data, since terminal messages indicating a node going down
are known" (Section 3.1).  A :class:`FailureChain` is such a sequence:
the U/E events of one node inside a lookback window before a terminal
message, the terminal included.

Two practical rules from the paper are implemented here:

* **Maintenance filtering** — "Large-scale node reboots clearly indicate
  service-oriented shutdowns" (Section 2).  When many terminal messages
  land within a short machine-wide window, they are service shutdowns,
  not anomalous failures, and produce no chains.
* **Episode segmentation** — at test time the same U/E streams are cut
  into *episodes*: maximal runs of anomalous events whose inter-event
  gaps stay below the lookback window.  Each episode is a candidate
  failure sequence for phase 3 to score (it may be a true chain, a
  near-miss, or ambient clutter).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..errors import ChainExtractionError
from ..events import EventSequence, Label, ParsedEvent
from ..topology.cray import CrayNodeId

__all__ = ["FailureChain", "Episode", "ChainExtractor", "segment_episodes"]


@dataclass(frozen=True)
class FailureChain:
    """One extracted failure chain: U/E events ending in a terminal."""

    node: Optional[CrayNodeId]
    events: tuple[ParsedEvent, ...]

    def __post_init__(self) -> None:
        if len(self.events) < 2:
            raise ChainExtractionError("a chain needs at least 2 events")
        if not self.events[-1].terminal:
            raise ChainExtractionError("chain must end in a terminal event")
        times = [e.timestamp for e in self.events]
        if any(b < a for a, b in zip(times, times[1:])):
            raise ChainExtractionError("chain events must be time-ordered")
        if any(e.label == Label.SAFE for e in self.events):
            raise ChainExtractionError("chains must not contain Safe events")

    @property
    def terminal_time(self) -> float:
        """Timestamp of the terminal (node-down) message."""
        return self.events[-1].timestamp

    @property
    def lead_time(self) -> float:
        """Seconds from the first anomalous event to the terminal."""
        return self.terminal_time - self.events[0].timestamp

    def phrase_ids(self) -> np.ndarray:
        """Phrase ids of the chain events, in order."""
        return np.array([e.phrase_id for e in self.events], dtype=np.int64)

    def timestamps(self) -> np.ndarray:
        """Timestamps of the chain events, in order."""
        return np.array([e.timestamp for e in self.events], dtype=np.float64)

    def __len__(self) -> int:
        return len(self.events)


@dataclass(frozen=True)
class Episode:
    """A candidate anomalous sequence observed at test time."""

    node: Optional[CrayNodeId]
    events: tuple[ParsedEvent, ...]

    def __post_init__(self) -> None:
        if not self.events:
            raise ChainExtractionError("an episode needs at least 1 event")

    @property
    def start_time(self) -> float:
        """Timestamp of the first anomalous event."""
        return self.events[0].timestamp

    @property
    def end_time(self) -> float:
        """Timestamp of the last observed event."""
        return self.events[-1].timestamp

    @property
    def ends_in_terminal(self) -> bool:
        """Whether the episode closed with a node-down message."""
        return self.events[-1].terminal

    def phrase_ids(self) -> np.ndarray:
        """Phrase ids of the episode events, in order."""
        return np.array([e.phrase_id for e in self.events], dtype=np.int64)

    def timestamps(self) -> np.ndarray:
        """Timestamps of the episode events, in order."""
        return np.array([e.timestamp for e in self.events], dtype=np.float64)

    def __len__(self) -> int:
        return len(self.events)


@dataclass(frozen=True)
class ChainExtractor:
    """Extract failure chains from labeled per-node event streams.

    Parameters
    ----------
    lookback:
        Seconds before a terminal message inside which U/E events belong
        to its chain (bounds the longest learnable lead time).
    mass_window / mass_threshold:
        Terminal messages from >= ``mass_threshold`` distinct nodes within
        ``mass_window`` seconds are classified as a maintenance shutdown
        and dropped.
    min_events:
        Chains shorter than this (terminal included) are discarded as
        unlearnable.
    """

    lookback: float = 600.0
    mass_window: float = 60.0
    mass_threshold: int = 5
    min_events: int = 2

    def __post_init__(self) -> None:
        if self.lookback <= 0:
            raise ChainExtractionError("lookback must be > 0")
        if self.mass_window <= 0:
            raise ChainExtractionError("mass_window must be > 0")
        if self.mass_threshold < 2:
            raise ChainExtractionError("mass_threshold must be >= 2")
        if self.min_events < 2:
            raise ChainExtractionError("min_events must be >= 2")

    # ------------------------------------------------------------------
    def maintenance_terminals(
        self, sequences: Sequence[EventSequence]
    ) -> set[tuple[Optional[CrayNodeId], float]]:
        """Identify terminal events that belong to mass shutdowns.

        Returns the set of ``(node, timestamp)`` keys to be excluded from
        chain formation.
        """
        terminals: list[tuple[float, Optional[CrayNodeId]]] = []
        for seq in sequences:
            for e in seq:
                if e.terminal:
                    terminals.append((e.timestamp, seq.node))
        terminals.sort()
        excluded: set[tuple[Optional[CrayNodeId], float]] = set()
        i = 0
        n = len(terminals)
        while i < n:
            j = i
            nodes = set()
            while j < n and terminals[j][0] - terminals[i][0] <= self.mass_window:
                nodes.add(terminals[j][1])
                j += 1
            if len(nodes) >= self.mass_threshold:
                for t, node in terminals[i:j]:
                    excluded.add((node, t))
            i = j if j > i + 1 else i + 1
        return excluded

    # ------------------------------------------------------------------
    def extract(self, sequences: Sequence[EventSequence]) -> list[FailureChain]:
        """Form failure chains from per-node sequences (Safe events ignored)."""
        excluded = self.maintenance_terminals(sequences)
        chains: list[FailureChain] = []
        for seq in sequences:
            anomalous = [e for e in seq if e.label != Label.SAFE]
            for idx, e in enumerate(anomalous):
                if not e.terminal or (seq.node, e.timestamp) in excluded:
                    continue
                lo = e.timestamp - self.lookback
                members = [
                    a
                    for a in anomalous[:idx]
                    if lo <= a.timestamp <= e.timestamp and not a.terminal
                ]
                members.append(e)
                if len(members) >= self.min_events:
                    chains.append(FailureChain(seq.node, tuple(members)))
        chains.sort(key=lambda c: c.terminal_time)
        return chains


def segment_episodes(
    sequence: EventSequence,
    *,
    gap: float = 600.0,
    min_events: int = 2,
) -> list[Episode]:
    """Cut one node's U/E stream into candidate episodes.

    Consecutive anomalous events separated by at most *gap* seconds stay
    in the same episode; a terminal event always closes its episode.
    Episodes shorter than *min_events* are dropped (ambient one-off
    anomalies are not candidate failures).
    """
    if gap <= 0:
        raise ChainExtractionError("gap must be > 0")
    if min_events < 1:
        raise ChainExtractionError("min_events must be >= 1")
    anomalous = [e for e in sequence if e.label != Label.SAFE]
    episodes: list[Episode] = []
    current: list[ParsedEvent] = []
    for e in anomalous:
        if current and (
            e.timestamp - current[-1].timestamp > gap or current[-1].terminal
        ):
            if len(current) >= min_events:
                episodes.append(Episode(sequence.node, tuple(current)))
            current = []
        current.append(e)
    if len(current) >= min_events:
        episodes.append(Episode(sequence.node, tuple(current)))
    return episodes
