"""Failure-class attribution for predicted failures.

Table 7 groups node failures into six classes by "their predominant
context of failures ... investigating various chains leading to failed
nodes and determining the prominent phrases causing anomalous node
shutdowns".  This module operationalizes that grouping: a
:class:`FailureClassifier` learns, from the phase-1 failure chains and
(during evaluation) their ground-truth classes, which phrases are
prominent in which class, and attributes a class to any new episode by
nearest phrase-profile match.

This powers richer operator warnings — *"node X fails in 2 minutes,
likely a machine-check exception"* — and the per-class lead-time benches.
The classifier is deliberately simple (per-class phrase frequency
profiles with cosine matching): the paper's classes are defined by
phrase membership, not by sequence dynamics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

import numpy as np

from ..errors import NotFittedError, TrainingError
from ..simlog.faults import FailureClass
from .chains import Episode, FailureChain

__all__ = ["FailureClassifier", "keyword_class_rules", "classify_by_keywords"]


#: Phrase-fragment rules mirroring Table 7's class descriptions.  Used to
#: bootstrap class labels for training chains when no ground truth is
#: available (the realistic deployment path).
_KEYWORD_RULES: tuple[tuple[FailureClass, tuple[str, ...]], ...] = (
    (FailureClass.MCE, ("Machine Check", "MCE", "Memory Errors", "DIMM", "mce")),
    (
        FailureClass.FILESYSTEM,
        ("Lustre", "LNet", "Lnet", "DVS", "gnilnd", "OST"),
    ),
    (
        FailureClass.JOB,
        ("slurm", "Slurm", "oom", "Killed process", "CANCELLED"),
    ),
    (FailureClass.TRAPS, ("segfault", "Trap", "invalid", "Oops")),
    (
        FailureClass.HARDWARE,
        ("NMI", "heartbeat", "hwerr", "AER", "critical h/w", "ASIC"),
    ),
    (FailureClass.PANIC, ("panic", "Call Trace", "Stack")),
)


def keyword_class_rules() -> Mapping[FailureClass, tuple[str, ...]]:
    """The Table-7 keyword rules, class -> phrase fragments."""
    return {cls: frags for cls, frags in _KEYWORD_RULES}


def classify_by_keywords(
    phrases: Sequence[str],
) -> Optional[FailureClass]:
    """Attribute a class to a phrase list by keyword votes.

    Every rule fragment found in any phrase scores one vote for its
    class; Panic keywords are down-weighted because panics terminate
    *many* classes' chains (a trap chain also ends in a stack trace).
    Returns ``None`` when nothing matches.
    """
    votes: dict[FailureClass, float] = {cls: 0.0 for cls in FailureClass}
    for phrase in phrases:
        for cls, fragments in _KEYWORD_RULES:
            weight = 0.5 if cls is FailureClass.PANIC else 1.0
            for fragment in fragments:
                if fragment in phrase:
                    votes[cls] += weight
    best = max(votes, key=lambda c: votes[c])
    return best if votes[best] > 0 else None


class FailureClassifier:
    """Per-class phrase-frequency profiles with cosine matching."""

    def __init__(self, vocab_size: int) -> None:
        if vocab_size < 2:
            raise TrainingError(f"vocab_size must be >= 2, got {vocab_size}")
        self.vocab_size = vocab_size
        self._profiles: Optional[dict[FailureClass, np.ndarray]] = None

    # ------------------------------------------------------------------
    def fit(
        self,
        chains: Sequence[FailureChain],
        labels: Sequence[FailureClass],
    ) -> "FailureClassifier":
        """Build class profiles from labeled failure chains."""
        if len(chains) != len(labels):
            raise TrainingError(
                f"chains/labels length mismatch: {len(chains)} vs {len(labels)}"
            )
        if not chains:
            raise TrainingError("FailureClassifier received no chains")
        profiles = {
            cls: np.zeros(self.vocab_size, dtype=np.float64) for cls in FailureClass
        }
        for chain, label in zip(chains, labels):
            ids = chain.phrase_ids()
            profiles[label] += np.bincount(ids, minlength=self.vocab_size)
        for cls, vec in profiles.items():
            norm = np.linalg.norm(vec)
            if norm > 0:
                vec /= norm
        self._profiles = profiles
        return self

    def fit_with_keywords(
        self,
        chains: Sequence[FailureChain],
        vocab_texts: Sequence[str],
    ) -> "FailureClassifier":
        """Fit from chains alone, bootstrapping labels via keyword rules.

        Chains no rule matches are dropped (rare: every Table-7 class has
        distinctive phrases).
        """
        labeled_chains: list[FailureChain] = []
        labels: list[FailureClass] = []
        for chain in chains:
            phrases = [vocab_texts[int(i)] for i in chain.phrase_ids()]
            cls = classify_by_keywords(phrases)
            if cls is not None:
                labeled_chains.append(chain)
                labels.append(cls)
        return self.fit(labeled_chains, labels)

    # ------------------------------------------------------------------
    def classify(self, episode: Episode | FailureChain) -> FailureClass:
        """The nearest class profile for an episode's phrase histogram."""
        if self._profiles is None:
            raise NotFittedError("FailureClassifier.fit has not run")
        ids = episode.phrase_ids()
        vec = np.bincount(ids, minlength=self.vocab_size).astype(np.float64)
        norm = np.linalg.norm(vec)
        if norm > 0:
            vec /= norm
        scores = {
            cls: float(vec @ profile) for cls, profile in self._profiles.items()
        }
        return max(scores, key=lambda c: scores[c])

    def class_scores(
        self, episode: Episode | FailureChain
    ) -> dict[FailureClass, float]:
        """Cosine score against every class profile."""
        if self._profiles is None:
            raise NotFittedError("FailureClassifier.fit has not run")
        ids = episode.phrase_ids()
        vec = np.bincount(ids, minlength=self.vocab_size).astype(np.float64)
        norm = np.linalg.norm(vec)
        if norm > 0:
            vec /= norm
        return {cls: float(vec @ p) for cls, p in self._profiles.items()}
