"""Phase 1: train to recognize chains of log events leading to a failure.

Pipeline (Section 3.1, Figure 3a):

1. per-node phrase-id sequences are built from the parsed training events
   (node logs concatenated, i.e. windowed per node and pooled);
2. skip-gram word embeddings vectorize the encoded phrases (8-left /
   3-right context windows);
3. a 2-hidden-layer stacked LSTM trains with SGD + categorical
   cross-entropy to perform 3-step next-phrase prediction over history
   windows of size 8;
4. phrases are labeled Safe / Unknown / Error; Safe phrases are dropped
   and failure chains are formed around the known terminal messages.

The phase's artifacts — embeddings, the sequence classifier, and the
extracted failure chains — feed phase 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

import numpy as np

from ..config import EmbeddingConfig, Phase1Config
from ..errors import TrainingError
from ..events import EventSequence
from ..nn.data import windows_from_sequences
from ..nn.embeddings import SkipGramEmbedder
from ..nn.model import SequenceClassifier
from ..nn.optimizers import SGD
from ..parsing.pipeline import LogParser, ParseResult
from .chains import ChainExtractor, FailureChain

__all__ = ["Phase1Trainer", "Phase1Result"]


@dataclass
class Phase1Result:
    """Artifacts emitted by phase-1 training."""

    embedder: SkipGramEmbedder
    classifier: Optional[SequenceClassifier]
    chains: list[FailureChain]
    sequences: list[EventSequence]
    train_accuracy: float = 0.0
    losses: list[float] = field(default_factory=list)

    @property
    def num_chains(self) -> int:
        """Number of extracted failure chains."""
        return len(self.chains)


class Phase1Trainer:
    """Run the full phase-1 training pass."""

    def __init__(
        self,
        parser: LogParser,
        *,
        config: Phase1Config | None = None,
        embedding_config: EmbeddingConfig | None = None,
        chain_extractor: ChainExtractor | None = None,
        seed: int = 0,
        model: str = "lstm",
        model_params: Mapping[str, object] | None = None,
    ) -> None:
        self.parser = parser
        self.config = config if config is not None else Phase1Config()
        self.embedding_config = (
            embedding_config if embedding_config is not None else EmbeddingConfig()
        )
        self.chain_extractor = (
            chain_extractor if chain_extractor is not None else ChainExtractor()
        )
        self.seed = seed
        self.model = model
        self.model_params = dict(model_params or {})

    # ------------------------------------------------------------------
    def train(
        self,
        parsed: ParseResult,
        *,
        train_classifier: bool = True,
        checkpoint=None,
    ) -> Phase1Result:
        """Train embeddings + sequence LSTM, then extract failure chains.

        ``train_classifier=False`` skips the (comparatively expensive)
        LSTM fit when only the chains are needed — e.g. in benches that
        evaluate downstream stages in isolation.  ``checkpoint``
        (a :class:`~repro.resilience.CheckpointManager`) makes the LSTM
        fit resumable at epoch granularity; everything upstream of the
        LSTM (embeddings, windows) is deterministic given the seed and
        is simply recomputed on resume.
        """
        sequences = self.node_sequences(parsed)
        embedder = self.train_embedder(sequences)

        classifier: Optional[SequenceClassifier] = None
        losses: list[float] = []
        accuracy = 0.0
        if train_classifier:
            classifier, accuracy, losses = self.train_sequence_model(
                sequences, embedder, checkpoint=checkpoint
            )

        chains = self.chain_extractor.extract(sequences)
        return Phase1Result(
            embedder=embedder,
            classifier=classifier,
            chains=chains,
            sequences=sequences,
            train_accuracy=accuracy,
            losses=losses,
        )

    # ------------------------------------------------------------------
    def node_sequences(self, parsed: ParseResult) -> list[EventSequence]:
        """Node-attributed event sequences of *parsed*, validated."""
        if len(parsed) == 0:
            raise TrainingError("phase 1 received no parsed events")
        sequences = [
            seq for seq in parsed.by_node().values() if seq.node is not None
        ]
        if not sequences:
            raise TrainingError("phase 1 needs node-attributed events")
        return sequences

    def train_embedder(
        self, sequences: Sequence[EventSequence]
    ) -> SkipGramEmbedder:
        """Fit the skip-gram embeddings over the per-node id sequences."""
        id_sequences = [seq.phrase_ids() for seq in sequences]
        vocab_size = max(2, self.parser.num_phrases)
        rng = np.random.default_rng(self.seed)
        embedder = SkipGramEmbedder(vocab_size, self.embedding_config)
        embedder.fit(id_sequences, rng, counts=self._padded_counts(vocab_size))
        return embedder

    def train_sequence_model(
        self,
        sequences: Sequence[EventSequence],
        embedder: SkipGramEmbedder,
        *,
        checkpoint=None,
    ) -> tuple[SequenceClassifier, float, list[float]]:
        """Fit the phrase-sequence LSTM on windows over *sequences*.

        Returns ``(classifier, train_accuracy, losses)``.  Split out of
        :meth:`train` so the staged pipeline can run (and cache) the
        embedding and LSTM fits as separate stages while sharing the
        exact code path — results are bit-identical either way.
        """
        id_sequences = [seq.phrase_ids() for seq in sequences]
        vocab_size = max(2, self.parser.num_phrases)
        cfg = self.config
        x, y = windows_from_sequences(
            id_sequences, cfg.history_size, cfg.prediction_steps
        )
        if len(x) == 0:
            raise TrainingError(
                "no training windows; sequences shorter than "
                f"history ({cfg.history_size}) + steps ({cfg.prediction_steps})"
            )
        classifier = SequenceClassifier(
            vocab_size,
            embed_dim=self.embedding_config.dim,
            hidden_size=cfg.hidden_size,
            num_layers=cfg.hidden_layers,
            steps=cfg.prediction_steps,
            seed=self.seed,
            pretrained_embeddings=embedder.vectors,
            backbone=self.model,
            backbone_params=self.model_params,
        )
        losses = classifier.fit(
            x,
            y,
            epochs=cfg.epochs,
            batch_size=cfg.batch_size,
            optimizer=SGD(cfg.learning_rate, momentum=cfg.momentum),
            grad_clip=cfg.grad_clip,
            rng=np.random.default_rng(self.seed + 1),
            checkpoint=checkpoint,
        )
        accuracy = classifier.accuracy(x, y)
        return classifier, accuracy, losses

    # ------------------------------------------------------------------
    def _padded_counts(self, vocab_size: int) -> np.ndarray:
        counts = self.parser.vocab.counts()
        if len(counts) < vocab_size:
            counts = np.pad(counts, (0, vocab_size - len(counts)))
        return counts
