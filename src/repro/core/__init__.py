"""The paper's primary contribution: the three-phase Desh pipeline.

* :mod:`~repro.core.chains` — failure-chain formation from labeled event
  streams (phase 1's output, Section 3.1),
* :mod:`~repro.core.deltas` — cumulative delta-time computation and the
  (dT, phrase) vector encoding (Table 4, Section 3.2),
* :mod:`~repro.core.phase1` — embedding + phrase-sequence LSTM training,
* :mod:`~repro.core.phase2` — (dT, phrase) regressor on failure chains,
* :mod:`~repro.core.phase3` — per-node inference with the MSE <= 0.5
  match rule and lead-time extraction (Section 3.3),
* :mod:`~repro.core.desh` — the `Desh` facade tying it all together,
* :mod:`~repro.core.alerts` — operator-facing failure warnings.
"""

from .chains import FailureChain, ChainExtractor, Episode, segment_episodes
from .deltas import LeadTimeScaler, chain_to_deltas
from .phase1 import Phase1Trainer, Phase1Result
from .phase2 import Phase2Trainer, Phase2Result
from .phase3 import Phase3Predictor, EpisodeVerdict, FailurePrediction
from .desh import Desh, DeshModel
from .alerts import FailureWarning
from .classify import FailureClassifier, classify_by_keywords
from .monitor import StreamingMonitor

__all__ = [
    "FailureChain",
    "ChainExtractor",
    "Episode",
    "segment_episodes",
    "LeadTimeScaler",
    "chain_to_deltas",
    "Phase1Trainer",
    "Phase1Result",
    "Phase2Trainer",
    "Phase2Result",
    "Phase3Predictor",
    "EpisodeVerdict",
    "FailurePrediction",
    "Desh",
    "DeshModel",
    "FailureWarning",
    "FailureClassifier",
    "classify_by_keywords",
    "StreamingMonitor",
]
