"""Cumulative delta-time computation and (dT, phrase) vector encoding.

Section 3.2, Table 4: "we sort the data in descending order of
timestamps and calculate dTs, which is the cumulative time difference
between the current phrase and the last phrase (highest order) in the
sequence.  The highest timestamped phrase in the sequence is assigned
dT = 0."

For LSTM consumption the 2-state vectors are normalized into [0, 1]:
dT by a fixed lead-time horizon, the phrase id by the vocabulary size.
Using a *fixed* horizon (rather than per-chain max) keeps the encoding
invertible, so a predicted dT decodes back into seconds — that decoded
value is the predicted lead time of phase 3.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ShapeError

__all__ = ["chain_to_deltas", "LeadTimeScaler"]


def chain_to_deltas(timestamps: np.ndarray) -> np.ndarray:
    """Cumulative dT of each event to the last event of the sequence.

    >>> chain_to_deltas(np.array([10.0, 12.0, 15.0]))
    array([5., 3., 0.])
    """
    timestamps = np.asarray(timestamps, dtype=np.float64)
    if timestamps.ndim != 1 or len(timestamps) == 0:
        raise ShapeError(f"timestamps must be non-empty 1-D, got {timestamps.shape}")
    if np.any(np.diff(timestamps) < 0):
        raise ShapeError("timestamps must be non-decreasing")
    return timestamps[-1] - timestamps


@dataclass(frozen=True)
class LeadTimeScaler:
    """Invertible normalization between event sequences and LSTM vectors.

    Attributes
    ----------
    max_lead_seconds:
        dT normalization horizon; dTs are clipped to it (a chain longer
        than the horizon saturates, it does not wrap).
    vocab_size:
        Phrase ids are scaled by this into [0, 1).
    """

    max_lead_seconds: float
    vocab_size: int
    id_scale: float = 4.0

    def __post_init__(self) -> None:
        if self.max_lead_seconds <= 0:
            raise ShapeError("max_lead_seconds must be > 0")
        if self.vocab_size < 2:
            raise ShapeError("vocab_size must be >= 2")
        if self.id_scale <= 0:
            raise ShapeError("id_scale must be > 0")

    # ------------------------------------------------------------------
    def encode(self, deltas: np.ndarray, phrase_ids: np.ndarray) -> np.ndarray:
        """Build the ``(T, 2)`` normalized vector sequence.

        Column 0 is the normalized dT, column 1 the normalized phrase id
        — the 2-state input vector of Table 5, phases 2-3.
        """
        deltas = np.asarray(deltas, dtype=np.float64)
        phrase_ids = np.asarray(phrase_ids)
        if deltas.shape != phrase_ids.shape or deltas.ndim != 1:
            raise ShapeError(
                f"deltas {deltas.shape} and phrase_ids {phrase_ids.shape} "
                "must be matching 1-D arrays"
            )
        if np.any(deltas < 0):
            raise ShapeError("deltas must be >= 0")
        if phrase_ids.size and (
            phrase_ids.min() < 0 or phrase_ids.max() >= self.vocab_size
        ):
            raise ShapeError("phrase id out of vocabulary range")
        out = np.empty((len(deltas), 2), dtype=np.float64)
        out[:, 0] = np.clip(deltas / self.max_lead_seconds, 0.0, 1.0)
        # id_scale spreads the phrase dimension to [0, id_scale) so the
        # training MSE weights exact phrase identity appropriately — with
        # a unit range, adjacent phrase ids sit only 1/vocab apart and the
        # optimizer under-prioritizes them relative to dT.
        out[:, 1] = phrase_ids / self.vocab_size * self.id_scale
        return out

    def encode_chain(
        self, timestamps: np.ndarray, phrase_ids: np.ndarray
    ) -> np.ndarray:
        """Encode a time-ordered (timestamps, phrases) sequence directly."""
        return self.encode(chain_to_deltas(timestamps), phrase_ids)

    # ------------------------------------------------------------------
    def decode_lead_seconds(self, normalized_dt: float | np.ndarray) -> np.ndarray:
        """Invert the dT normalization back into seconds."""
        return np.clip(np.asarray(normalized_dt, dtype=np.float64), 0.0, 1.0) * (
            self.max_lead_seconds
        )

    def decode_phrase_id(self, normalized_pid: float | np.ndarray) -> np.ndarray:
        """Invert the phrase normalization (rounded to the nearest id)."""
        raw = (
            np.asarray(normalized_pid, dtype=np.float64)
            * self.vocab_size
            / self.id_scale
        )
        return np.clip(np.rint(raw), 0, self.vocab_size - 1).astype(np.int64)

    # ------------------------------------------------------------------
    def mse_paper_units(self, pred: np.ndarray, target: np.ndarray) -> np.ndarray:
        """Per-sample MSE in the paper's vector units.

        The paper's MSE <= 0.5 threshold (Section 3.3) operates on raw
        2-state vectors: dT in *minutes* and the *integer* phrase id.  In
        those units a single-id phrase mismatch alone contributes 1/2 to
        the two-dimensional MSE, so 0.5 effectively demands an exact
        phrase match with dT error below about a minute.  Training uses
        normalized vectors for conditioning; this method converts both
        *pred* and *target* (normalized ``(N, 2)`` arrays) back to paper
        units before computing the per-sample MSE.
        """
        pred = np.asarray(pred, dtype=np.float64)
        target = np.asarray(target, dtype=np.float64)
        if pred.shape != target.shape or pred.ndim != 2 or pred.shape[1] != 2:
            raise ShapeError(
                f"pred/target must be matching (N, 2) arrays, got "
                f"{pred.shape} and {target.shape}"
            )
        dt_err = (pred[:, 0] - target[:, 0]) * (self.max_lead_seconds / 60.0)
        id_err = (pred[:, 1] - target[:, 1]) * self.vocab_size / self.id_scale
        return 0.5 * (dt_err * dt_err + id_err * id_err)
